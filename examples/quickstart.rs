//! Quickstart: build the thesis' Fig 2-5 register-file circuit, verify it,
//! and print the Fig 3-10 signal-value summary and the Fig 3-11 error
//! report.
//!
//! Run with: `cargo run --example quickstart`

use scald::gen::figures::register_file_circuit;
use scald::verifier::{RunOptions, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, _signals) = register_file_circuit();
    println!(
        "Fig 2-5 register-file circuit: {} primitives, {} signals\n",
        netlist.prims().len(),
        netlist.signals().len()
    );

    let mut verifier = Verifier::new(netlist);
    let result = verifier.run(&RunOptions::new())?.into_sole();

    println!("--- Signal values over the 50 ns cycle (Fig 3-10) ---");
    print!("{}", verifier.summary_listing());

    println!("\n--- Setup, hold and minimum pulse width errors (Fig 3-11) ---");
    for v in &result.violations {
        println!("{v}");
    }
    println!(
        "{} violation(s), {} events processed, {} primitive evaluations",
        result.violations.len(),
        result.events,
        result.evaluations
    );
    Ok(())
}
