//! Self-timed module delay sizing (§4.2.1).
//!
//! The thesis suggests the verification machinery "could be used to
//! determine the delay of the basic modules, to determine how much of a
//! delay needs to be inserted in the circuit which specifies when the
//! module is 'done'". This example sizes a done-line delay for a
//! combinational module and then verifies a wrapper that uses it.
//!
//! Run with: `cargo run --example self_timed`

use scald::netlist::{Config, Conn, NetlistBuilder};
use scald::paths::PathAnalysis;
use scald::verifier::{RunOptions, Verifier, ViolationKind};
use scald::wave::{DelayRange, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // The module: a 3-level combinational datapath.
    let mut b = NetlistBuilder::new(Config::s1_example());
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    let a = b.signal("A")?;
    let c = b.signal("B")?;
    let x = b.signal("X")?;
    let y = b.signal("Y")?;
    let out = b.signal("RESULT")?;
    b.and2("G1", DelayRange::from_ns(1.0, 2.9), z(a), z(c), x);
    b.or2("G2", DelayRange::from_ns(1.0, 2.9), z(x), z(c), y);
    b.chg("G3", DelayRange::from_ns(3.0, 6.0), [z(y), z(a)], out);
    let module = b.finish()?;

    let analysis = PathAnalysis::analyze(&module);
    let delay = analysis.module_delay(&module).expect("module has outputs");
    println!("module settles within {delay} ns of its inputs changing");
    println!(
        "=> the self-timed DONE line needs at least {} ns of delay\n",
        delay.max
    );

    // The wrapper: REQ fans out to the module inputs and to a done-line
    // delay sized from the analysis; DONE clocks the capture register.
    // Verifying it confirms the sizing: the result is stable through the
    // capture edge.
    let mut b = NetlistBuilder::new(Config::s1_example());
    // REQ stays asserted for the first half-cycle (a handshake, not a pulse).
    let req = b.signal("REQ .C0-4 (0,0)")?;
    let x = b.signal("X")?;
    let y = b.signal("Y")?;
    let out = b.signal("RESULT")?;
    let done = b.signal("DONE")?;
    let captured = b.signal("CAPTURED")?;
    b.and2("G1", DelayRange::from_ns(1.0, 2.9), z(req), z(req), x);
    b.or2("G2", DelayRange::from_ns(1.0, 2.9), z(x), z(req), y);
    b.chg("G3", DelayRange::from_ns(3.0, 6.0), [z(y), z(req)], out);
    // Done-line delay: the measured max plus a 2 ns setup margin.
    let done_delay = delay.max + Time::from_ns(2.5);
    b.delay(
        "DONE LINE",
        DelayRange::new(done_delay, done_delay),
        z(req),
        done,
    );
    b.reg(
        "CAPTURE",
        DelayRange::from_ns(1.5, 4.5),
        z(done),
        z(out),
        captured,
    );
    b.setup_hold(
        "CAPTURE CHK",
        Time::from_ns(2.0),
        Time::from_ns(1.0),
        z(out),
        z(done),
    );
    let wrapper = b.finish()?;

    let mut v = Verifier::new(wrapper);
    let r = v.run(&RunOptions::new())?.into_sole();
    let setups = r.of_kind(ViolationKind::Setup);
    println!(
        "wrapper verification: {} setup violation(s) with a {done_delay} ns done line",
        setups.len()
    );
    for violation in &r.violations {
        println!("{violation}");
    }
    if setups.is_empty() {
        println!("the sized done line meets the module's timing.");
    }
    Ok(())
}
