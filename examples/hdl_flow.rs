//! The full SCALD pipeline over HDL text: parse → two-pass macro
//! expansion → timing verification, with the phase statistics of
//! Table 3-1.
//!
//! Compiles the Fig 2-5 register-file circuit from the component library
//! of Figs 3-5..3-9 expressed in the textual HDL.
//!
//! Run with: `cargo run --example hdl_flow`

use scald::gen::hdl_sources::register_file_example;
use scald::hdl::compile;
use scald::verifier::{RunOptions, Verifier};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let src = register_file_example();
    println!("--- HDL source ({} lines) ---", src.lines().count());

    let t = Instant::now();
    let expansion = compile(&src)?;
    let compile_time = t.elapsed();
    let stats = expansion.stats;
    println!(
        "expanded {} macros / {} instances into {} primitives, {} signals",
        stats.macros_defined, stats.instances_expanded, stats.prims_emitted, stats.signals
    );
    println!(
        "pass 1 {:?}, pass 2 {:?}, total {compile_time:?}",
        stats.pass1, stats.pass2
    );

    println!("\n--- Primitive types (Table 3-2 style) ---");
    for (name, count) in expansion.netlist.primitive_histogram() {
        println!("{count:>6}  {name}");
    }

    let t = Instant::now();
    let mut verifier = Verifier::new(expansion.netlist);
    let result = verifier.run(&RunOptions::new())?.into_sole();
    println!("\n--- Verification ({:?}) ---", t.elapsed());
    println!("{result}");
    print!("{}", verifier.xref_listing());
    Ok(())
}
