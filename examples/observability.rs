//! Observability tour: attach trace sinks to the fixed-point engine,
//! watch the convergence wave, read per-primitive evaluation counts,
//! and walk a violation's fan-in provenance back to its sources.
//!
//! Run with: `cargo run --example observability`

use scald::gen::figures::register_file_circuit;
use scald::trace::{CounterSink, TimelineSink, TraceSink};
use scald::verifier::{RunOptions, VerifierBuilder};
use std::sync::Arc;

/// Fans one event stream out to several sinks — sinks compose.
struct Tee(Vec<Arc<dyn TraceSink>>);

impl TraceSink for Tee {
    fn record(&self, event: &scald::trace::TraceEvent<'_>) {
        for sink in &self.0 {
            sink.record(event);
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, _signals) = register_file_circuit();

    let counters = Arc::new(CounterSink::new());
    let timeline = Arc::new(TimelineSink::new());
    let mut verifier = VerifierBuilder::new(netlist)
        .trace(Arc::new(Tee(vec![counters.clone(), timeline.clone()])))
        .build();
    let result = verifier.run(&RunOptions::new())?.into_sole();

    let snap = counters.snapshot();
    println!("--- engine effort ---");
    println!(
        "{} evaluations, {} events, worklist peaked at {}",
        snap.evaluations, snap.events, snap.max_queue_depth
    );
    println!("hottest primitives:");
    for (name, count) in snap.hottest_prims.iter().take(5) {
        println!("  {count:>4}x {name}");
    }
    println!("latest-settling signals:");
    for (name, ordinal) in snap.last_settled.iter().take(5) {
        println!("  @{ordinal:>4} {name}");
    }

    println!("\n--- convergence wave (worklist depth over time) ---");
    print!("{}", timeline.render_base_wave(60));

    println!("\n--- violations with fan-in provenance ---");
    for violation in &result.violations {
        // `Display` already includes the provenance chain; the structured
        // form is on `violation.provenance` for programmatic use.
        println!("{violation}");
    }

    println!("--- machine-readable report ---");
    let report = verifier.report("register-file (Fig 2-5)", &[result]);
    let doc = report.to_json();
    println!(
        "Report::to_json() -> {} bytes of schema '{}' v{}",
        doc.len(),
        scald::verifier::REPORT_SCHEMA,
        scald::verifier::REPORT_VERSION
    );
    Ok(())
}
