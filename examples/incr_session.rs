//! Incremental re-verification tour: open a [`Session`] on a generated
//! S-1-like design, apply an ECO retime as a [`NetlistDelta`], and show
//! that the warm-started re-verification touches a small dirty cone yet
//! produces a report byte-identical to a cold run of the edited design.
//!
//! Run with: `cargo run --example incr_session`
//!
//! [`Session`]: scald::incr::Session
//! [`NetlistDelta`]: scald::incr::NetlistDelta

use scald::gen::s1::{s1_like_netlist, S1Options};
use scald::incr::{Case, Delta, DesignInput, NetlistDelta, Session, Verifier};
use scald::verifier::RunOptions;
use scald::wave::DelayRange;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A mid-size synthetic design (~60 chips, a few hundred primitives).
    let (netlist, stats) = s1_like_netlist(S1Options::small());
    println!(
        "design: {} chips, {} primitives, {} signals",
        stats.chips, stats.prims, stats.signals
    );

    let mut session = Session::open(
        DesignInput::netlist(netlist, vec![Case::new()]),
        "incr example",
    )?;
    let cold = session.outcome().stats;
    println!(
        "cold open: {} events, {} violation(s)",
        cold.events,
        session.report().total_violations()
    );

    // The ECO: retime one datapath primitive.
    let target = session
        .netlist()
        .prims()
        .iter()
        .find(|p| p.name.ends_with("/LOGIC"))
        .expect("generated design has datapath slices")
        .name
        .clone();
    let mut delta = NetlistDelta::new();
    delta.retime(target.clone(), DelayRange::from_ns(2.0, 6.5));
    println!("eco: retime {target} to 2.0:6.5 ns");

    let outcome = session.apply(Delta::Netlist(delta.clone()))?;
    let warm = outcome.stats;
    println!(
        "warm apply: {} events, seeded {}/{} prims, cone {:.1}% of the design",
        warm.events,
        warm.seeded_prims,
        warm.total_prims,
        100.0 * warm.cone_fraction()
    );
    assert!(warm.warm, "a structural delta re-verifies warm");

    // The guarantee the whole subsystem rests on: the warm report equals
    // a cold verification of the edited design, byte for byte, once the
    // effort counters (events, wall time) are stripped.
    let (base, _) = s1_like_netlist(S1Options::small());
    let edited = delta.apply(&base)?;
    let mut cold_verifier = Verifier::new(edited);
    let results = cold_verifier.run(&RunOptions::new())?.cases;
    let cold_report = cold_verifier.report("incr example", &results);
    assert_eq!(
        outcome.report.strip_effort().to_json(),
        cold_report.strip_effort().to_json(),
        "warm-started report must be byte-identical to the cold run"
    );
    println!(
        "byte-identical to the cold run ({} vs {} events of settling work)",
        warm.events, cold.events
    );
    Ok(())
}
