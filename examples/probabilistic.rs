//! Probability-based analysis (§1.4.1.2, §4.2.4): the DIGSIM-style
//! extension the thesis sketches as future work.
//!
//! An 8-stage pipeline path is analyzed three ways: min/max worst case,
//! probabilistic with independent component delays, and probabilistic with
//! fully correlated delays (components from one production run, §4.2.3).
//!
//! Run with: `cargo run --example probabilistic`

use scald::netlist::{Config, Conn, NetlistBuilder};
use scald::stats::ProbPathAnalysis;
use scald::wave::{DelayRange, Time};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P0-1")?;
    let d = b.signal("D")?;
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    let q0 = b.signal("Q0")?;
    b.reg("R0", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q0);
    // Two reconvergent 4-stage branches joined before the endpoint: the
    // join takes the max of two path distributions, where correlation
    // matters.
    let mut branch_ends = Vec::new();
    for br in 0..2 {
        let mut cur = q0;
        for i in 0..4 {
            let next = b.signal(&format!("BR{br} N{i}"))?;
            b.buf(
                format!("BR{br} B{i}"),
                DelayRange::from_ns(1.0, 4.0),
                z(cur),
                next,
            );
            cur = next;
        }
        branch_ends.push(cur);
    }
    let joined = b.signal("JOINED")?;
    b.and2(
        "JOIN",
        DelayRange::from_ns(1.0, 2.0),
        z(branch_ends[0]),
        z(branch_ends[1]),
        joined,
    );
    b.setup_hold(
        "END CHK",
        Time::from_ns(2.5),
        Time::from_ns(0.0),
        z(joined),
        z(clk),
    );
    let netlist = b.finish()?;

    println!(
        "two reconvergent 4-stage branches (1.0/4.0 ns buffers) joined by an\n\
         AND gate, behind a 1.5/4.5 ns register\n"
    );
    for (label, rho) in [
        ("independent (rho = 0)", 0.0),
        ("correlated (rho = 1)", 1.0),
    ] {
        let analysis = ProbPathAnalysis::analyze(&netlist, rho);
        let r = analysis
            .reports()
            .iter()
            .find(|r| r.constraint_source == "END CHK")
            .expect("endpoint analyzed");
        println!("{label}:");
        println!("  arrival distribution : {}", r.arrival);
        println!("  3-sigma bound        : {:.2} ns", r.arrival.quantile(3.0));
        println!("  min/max worst case   : {:.2} ns", r.worst_case_ns);
        println!("  P(setup violated)    : {:.2e}\n", r.violation_probability);
    }
    println!(
        "The 3-sigma bound sits well inside the worst case — the reason\n\
         probabilistic analysis predicts faster feasible designs (§1.4.1.2) —\n\
         but the answer depends on the correlation assumption, which is why\n\
         the thesis kept min/max for production use (§4.2.4)."
    );
    Ok(())
}
