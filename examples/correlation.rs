//! The correlation problem (Figs 4-1/4-2, §4.2.3).
//!
//! A register reloads itself through a multiplexer. The clock buffer
//! inserts a large skew; because the verifier reasons in absolute times it
//! forgets that the register's clock and its own output are displaced by
//! the *same* skew, and reports a **false** hold error. The designer's
//! workaround is the `CORR` fictitious delay — at least as long as the
//! clock skew — inserted into the feedback path, which suppresses the
//! false message while keeping every real check alive.
//!
//! Run with: `cargo run --example correlation`

use scald::gen::figures::correlation_circuit;
use scald::verifier::{RunOptions, Verifier, ViolationKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Fig 4-1: feedback register, no CORR delay ===");
    let mut v = Verifier::new(correlation_circuit(false));
    let r = v.run(&RunOptions::new())?.into_sole();
    let holds = r.of_kind(ViolationKind::Hold);
    println!("{} hold violation(s) reported:", holds.len());
    for violation in holds {
        println!("{violation}");
    }
    println!(
        "(the real hardware is safe: register + mux minimum delay exceeds \
         the hold time, but the correlation is invisible to absolute-time \
         analysis)"
    );

    println!("\n=== Fig 4-2: with the CORR fictitious delay inserted ===");
    let mut v = Verifier::new(correlation_circuit(true));
    let r = v.run(&RunOptions::new())?.into_sole();
    if r.of_kind(ViolationKind::Hold).is_empty() {
        println!(
            "false hold error suppressed; {} other violation(s)",
            r.violations.len()
        );
    } else {
        for violation in &r.violations {
            println!("{violation}");
        }
    }
    Ok(())
}
