//! Gated-clock hazard detection (Fig 1-5, §2.6).
//!
//! A register clock is gated by an enable that arrives up to 5 ns too
//! late, so a spurious clock pulse can slip through. The `&A` evaluation
//! directive catches the unstable control; without it, the worst-case
//! value algebra still exposes the runt pulse to the minimum-pulse-width
//! checker.
//!
//! Run with: `cargo run --example hazard_detection`

use scald::gen::figures::hazard_circuit;
use scald::verifier::{RunOptions, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== With the &A directive on the clock input ===");
    let mut v = Verifier::new(hazard_circuit(true));
    let r = v.run(&RunOptions::new())?.into_sole();
    for violation in &r.violations {
        println!("{violation}");
    }

    println!("=== Without the directive (worst-case values only) ===");
    let mut v = Verifier::new(hazard_circuit(false));
    let r = v.run(&RunOptions::new())?.into_sole();
    for violation in &r.violations {
        println!("{violation}");
    }
    let regck = v
        .netlist()
        .signal_by_name("REG CLOCK")
        .expect("signal exists");
    println!("REG CLOCK value over the cycle: {}", v.resolved(regck));
    Ok(())
}
