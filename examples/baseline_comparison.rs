//! The headline comparison (§2.1, §4.1): one symbolic verification pass
//! vs exhaustive min/max logic simulation vs worst-case path search.
//!
//! A mux-selected slow path hides a set-up bug that only appears for the
//! input patterns that select it. The Timing Verifier finds it in one
//! pass; the logic simulator must sweep input patterns (2^n of them) and
//! only trips the bug on the patterns that exercise the path; the path
//! searcher finds it but also cries wolf on the phantom path of the
//! Fig 2-6 circuit.
//!
//! Run with: `cargo run --example baseline_comparison`

use scald::gen::figures::case_analysis_circuit;
use scald::netlist::{Config, Conn, Netlist, NetlistBuilder};
use scald::paths::PathAnalysis;
use scald::sim::{primary_inputs, simulate, SimViolationKind, Stimulus};
use scald::verifier::{CaseSet, RunOptions, Verifier, ViolationKind};
use scald::wave::{DelayRange, Time};

/// A register fed through a mux whose `1` leg is too slow for the set-up
/// requirement.
fn slow_leg_circuit() -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P2-3 (0,0)").expect("valid");
    let sel = b.signal("SEL .S0-8").expect("valid");
    let fast = b.signal("FAST .S0-1").expect("valid");
    let slow_in = b.signal("SLOW IN").expect("valid");
    let slow = b.signal("SLOW").expect("valid");
    let m = b.signal("M").expect("valid");
    let q = b.signal("Q").expect("valid");
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    b.buf(
        "SLOW BUF",
        DelayRange::from_ns(11.0, 12.0),
        z(slow_in),
        slow,
    );
    b.mux2("MUX", DelayRange::ZERO, z(sel), z(fast), z(slow), m);
    b.reg("R", DelayRange::from_ns(1.5, 4.5), z(clk), z(m), q);
    b.setup_hold(
        "R CHK",
        Time::from_ns(2.5),
        Time::from_ns(0.5),
        z(m),
        z(clk),
    );
    b.finish().expect("circuit is well-formed")
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("=== Circuit: mux with a slow leg feeding a register ===\n");

    // 1. Timing Verifier: one pass over all cases at once.
    let mut v = Verifier::new(slow_leg_circuit());
    let r = v.run(&RunOptions::new())?.into_sole();
    println!(
        "Timing Verifier      : 1 symbolic pass, {} evaluations, setup errors: {}",
        r.evaluations,
        r.of_kind(ViolationKind::Setup).len()
    );

    // 2. Logic simulation: must enumerate concrete input patterns.
    let netlist = slow_leg_circuit();
    let inputs = primary_inputs(&netlist);
    let n = inputs.len();
    let mut trips = 0usize;
    let mut total_events = 0u64;
    for pattern in 0..(1u64 << n) {
        let result = simulate(&netlist, &Stimulus::from_pattern(&inputs, 1, pattern));
        total_events += result.events;
        if result.violations.iter().any(|x| {
            matches!(
                x.kind,
                SimViolationKind::Setup | SimViolationKind::AmbiguousData
            )
        }) {
            trips += 1;
        }
    }
    println!(
        "Logic simulation     : {} patterns (2^{n}) simulated, {} events total; \
         only {trips} pattern(s) expose the bug",
        1u64 << n,
        total_events
    );

    // 3. Path search: catches the slow leg but with no value awareness.
    let analysis = PathAnalysis::analyze(&netlist);
    println!(
        "Path search          : {} endpoint(s), {} violation(s)",
        analysis.reports().len(),
        analysis.violations().len()
    );

    println!("\n=== Circuit: Fig 2-6 (value-dependent false path) ===\n");
    let (netlist, (_, _, output)) = case_analysis_circuit();
    let analysis = PathAnalysis::analyze(&netlist);
    println!(
        "Path search          : claims OUTPUT settles at {} ns (phantom)",
        analysis.arrival(output).expect("reachable").max
    );
    let (netlist, (_, _, output)) = case_analysis_circuit();
    let mut v = Verifier::new(netlist);
    v.run(&RunOptions::new().cases(CaseSet::exhaustive(["CONTROL SIGNAL"])))?;
    let w = v.resolved(output);
    println!("Verifier with cases  : OUTPUT = {w} (true 30 ns path)");
    Ok(())
}
