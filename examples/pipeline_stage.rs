//! A typical S-1 Mark IIA arithmetic pipeline stage (Fig 3-12): 36-bit
//! ALU with output latch, function decoder and a gated status register.
//!
//! All interface signals carry assertions, so this stage verifies in
//! isolation — the modular, section-by-section verification that §2.5.2
//! calls "crucial to the real-world utility" of the approach.
//!
//! Run with: `cargo run --example pipeline_stage`

use scald::gen::figures::alu_stage;
use scald::verifier::{RunOptions, Verifier};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let (netlist, latched) = alu_stage();
    println!(
        "ALU stage: {} primitives / {} signals, avg vector width {:.1} bits",
        netlist.prims().len(),
        netlist.signals().len(),
        netlist.average_primitive_width()
    );

    let mut v = Verifier::new(netlist);
    let result = v.run(&RunOptions::new())?.into_sole();

    println!("\n--- Signal values over the 50 ns cycle ---");
    print!("{}", v.summary_listing());

    println!("\n--- Timing checks ---");
    if result.is_clean() {
        println!("stage is free of timing errors");
    } else {
        for violation in &result.violations {
            println!("{violation}");
        }
    }

    println!("\nlatched ALU result: {}", v.resolved(latched));
    println!(
        "events {} / evaluations {}",
        result.events, result.evaluations
    );
    Ok(())
}
