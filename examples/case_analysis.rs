//! Case analysis (§2.7, Fig 2-6): value-dependent timing that blind
//! analysis gets wrong.
//!
//! Two multiplexers with complementary selects surround 10 ns and 20 ns
//! paths, so the real delay is always 30 ns — but any analysis that does
//! not know the select's value sees a phantom 40 ns path. This example
//! shows all three tools on the same netlist:
//!
//! * the worst-case path searcher (GRASP/RAS baseline) reports 40 ns,
//! * the Timing Verifier without cases is equally pessimistic,
//! * the Timing Verifier with the two cases of §2.7.1 recovers 30 ns,
//!   re-evaluating only the affected cone for the second case.
//!
//! Run with: `cargo run --example case_analysis`

use scald::gen::figures::case_analysis_circuit;
use scald::paths::PathAnalysis;
use scald::verifier::{CaseSet, RunOptions, Verifier};
use scald::wave::Time;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Path-searching baseline: the phantom path.
    let (netlist, (_, _, output)) = case_analysis_circuit();
    let analysis = PathAnalysis::analyze(&netlist);
    let arrival = analysis.arrival(output).expect("output is reachable");
    println!(
        "path search         : OUTPUT settles by {} ns after INPUT (phantom 40 ns path)",
        arrival.max
    );

    // Verifier without case analysis: same pessimism.
    let (netlist, (_, _, output)) = case_analysis_circuit();
    let mut v = Verifier::new(netlist);
    let r = v.run(&RunOptions::new())?.into_sole();
    let w = v.resolved(output);
    println!("verifier, no cases  : OUTPUT = {w}   ({} events)", r.events);
    let pessimistic = w.value_at(Time::from_ns(36.0));
    println!("                      value at 36 ns: {pessimistic} (pessimistic)");

    // Verifier with the two cases of §2.7.1.
    let (netlist, (_, _, output)) = case_analysis_circuit();
    let mut v = Verifier::new(netlist);
    let cases = CaseSet::exhaustive(["CONTROL SIGNAL"]);
    let results = v.run(&RunOptions::new().cases(cases))?.cases;
    for r in &results {
        println!(
            "verifier, {:<24}: {} events, {} evaluations",
            r.name, r.events, r.evaluations
        );
    }
    let w = v.resolved(output);
    println!("                      OUTPUT = {w}");
    println!(
        "                      value at 36 ns: {} (true 30 ns path)",
        w.value_at(Time::from_ns(36.0))
    );
    println!(
        "\nincremental case cost: case 2 needed {} evaluations vs {} for case 1",
        results[1].evaluations, results[0].evaluations
    );
    Ok(())
}
