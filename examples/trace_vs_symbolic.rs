//! Visual soundness demo: a concrete min/max simulation trace rendered
//! beside the symbolic verification envelope.
//!
//! The symbolic waveform (one pass) must *contain* every concrete run;
//! this example picks one input pattern, simulates two cycles, and prints
//! cycle 2 of the concrete trace under the symbolic rows so the
//! containment is visible: concrete `_`/`~` always sits inside symbolic
//! `_`/`~`/`=`/`x` regions.
//!
//! Run with: `cargo run --example trace_vs_symbolic`

use scald::logic::Value;
use scald::netlist::{Config, Conn, NetlistBuilder};
use scald::sim::{primary_inputs, simulate, SimValue, Stimulus};
use scald::verifier::{RunOptions, Verifier};
use scald::wave::{DelayRange, Time};

fn sim_glyph(v: SimValue) -> char {
    match v {
        SimValue::Zero => '_',
        SimValue::One => '~',
        SimValue::X => '?',
        SimValue::Up => '/',
        SimValue::Down => '\\',
        SimValue::Spike => '!',
    }
}

fn sym_glyph(v: Value) -> char {
    match v {
        Value::Zero => '_',
        Value::One => '~',
        Value::Stable => '=',
        Value::Change => 'x',
        Value::Rise => '/',
        Value::Fall => '\\',
        Value::Unknown => '?',
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    let a = b.signal("A .S1.5-8")?;
    let c = b.signal("B .S1.5-8")?;
    let x = b.signal("X")?;
    let y = b.signal("Y")?;
    b.and2("G1", DelayRange::from_ns(3.0, 8.0), z(a), z(c), x);
    b.gate(
        "G2",
        scald::netlist::PrimKind::Xor,
        DelayRange::from_ns(2.0, 6.0),
        [z(x), z(c)],
        y,
    );
    let netlist = b.finish()?;

    let mut v = Verifier::new(netlist.clone());
    v.run(&RunOptions::new())?;

    let inputs = primary_inputs(&netlist);
    let pattern = 0b1101; // A: 1 then 0; B: 1 then 1 (bits per input x cycle)
    let sim = simulate(&netlist, &Stimulus::from_pattern(&inputs, 2, pattern));

    let period = Time::from_ns(50.0);
    let columns = 64usize;
    println!(
        "pattern {pattern:04b}: per signal, 'sym' is the one-pass symbolic \
         envelope, 'sim' is cycle 2 of this concrete run\n"
    );
    for (sid, sig) in netlist.iter_signals() {
        let wave = v.resolved(sid);
        let mut sym_row = String::new();
        let mut sim_row = String::new();
        for col in 0..columns {
            let off = Time::from_ps(period.as_ps() * (2 * col as i64 + 1) / (2 * columns as i64));
            sym_row.push(sym_glyph(wave.value_at(off)));
            sim_row.push(sim_glyph(sim.value_at(sid, period + off)));
        }
        println!("{:<4} sym  {sym_row}", sig.name);
        println!("{:<4} sim  {sim_row}\n", "");
    }
    println!("every concrete glyph lies inside the symbolic envelope above it.");
    Ok(())
}
