//! `scald-tv` — the SCALD Timing Verifier command-line tool.
//!
//! Reads a design — SCALD-style HDL, or synthesisable Verilog via the
//! `scald-rtl` frontend — expands/elaborates it, verifies all timing
//! constraints (running the design's `case` blocks if present), and
//! prints the error report. Exits non-zero when violations are found, so
//! it slots into CI the way the thesis' designers ran the verifier daily
//! (§3.3.1). Files ending in `.v`/`.sv` select the Verilog frontend
//! automatically; `--frontend` overrides the detection.
//!
//! ```text
//! USAGE:
//!     scald-tv [OPTIONS] <DESIGN.scald | DESIGN.v>
//!     scald-tv serve [--socket PATH] [--stdio] [--jobs N]
//!                    [--timeout-ms N] [--idle-cap N] [--no-eval-cache]
//!
//! OPTIONS:
//!     --frontend F     input language: scald or verilog (default: by
//!                      file extension — .v/.sv mean verilog)
//!     --summary        print the Fig 3-10 signal-value summary listing
//!     --diagram        print an ASCII timing diagram of all signals
//!     --slack          print per-checker timing margins (worst first)
//!     --paths          print the worst-case path analysis (GRASP-style)
//!     --prob RHO       run the probabilistic path analysis with
//!                      inter-path correlation RHO in [0, 1]: delay
//!                      ranges become ±3σ normal distributions, and the
//!                      report gains per-endpoint arrival/slack
//!                      distributions with violation probabilities (the
//!                      JSON document's v2 "probabilistic" section)
//!     --netlist        print the fully elaborated (flattened) design
//!     --xref           print the assumed-stable cross-reference listing
//!     --stats          print expansion/verification statistics (Table 3-1)
//!     --storage        print the storage breakdown (Table 3-3)
//!     --format FORMAT  output format: text (default) or json — json emits
//!                      one versioned document covering violations with
//!                      fan-in provenance, engine statistics and every
//!                      requested listing
//!     --trace FILE     stream engine trace events (one JSON object per
//!                      line) to FILE while verifying
//!     --no-cases       ignore the design's case blocks (single pass)
//!     --case-strategy S  case scheduling: auto (default; the engine
//!                      picks), tree (force the shared-prefix scheduler
//!                      with memoized checker/storage passes), or naive
//!                      (force independent full passes per case); the
//!                      resolved choice is echoed in the report JSON
//!     --no-eval-cache  disable the evaluation memo table (the A/B
//!                      baseline for benchmarking; results are
//!                      byte-identical with the cache on)
//!     --jobs N         worker budget, shared by the case-analysis
//!                      fan-out and the wave-parallel settle loop inside
//!                      each case (default: CPU cores; capped at the
//!                      machine's available parallelism)
//!     --watch          stay resident and re-verify DESIGN.scald on every
//!                      file change, warm-starting from the prior fixed
//!                      point and printing per-edit effort
//!     --watch-poll-ms N    watch-mode poll interval (default 200)
//!     --watch-max-edits N  exit after N re-verifications (default: run
//!                      until interrupted)
//!     --baseline OLD.scald report only the violations DESIGN.scald
//!                      introduces or fixes relative to OLD.scald
//!
//! SERVE MODE (scald-tv serve):
//!     --socket PATH    listen for clients on a Unix socket at PATH
//!     --stdio          speak the protocol on stdin/stdout (EOF begins
//!                      graceful shutdown); combinable with --socket
//!     --jobs N         daemon-wide worker budget, split across
//!                      concurrent requests (default: CPU cores)
//!     --timeout-ms N   per-request deadline for open/apply-delta/run
//!                      (default 30000)
//!     --idle-cap N     settled sessions kept pooled per design (default 4)
//!     --no-eval-cache  disable the cross-client evaluation cache
//!     --max-sweep-cases N  largest case count a client's `sweep` spec
//!                      may expand to server-side (default 65536)
//! ```
//!
//! Exit codes: 0 = no timing errors, 1 = violations found, 2 = usage or
//! compile/oscillation error. In `--baseline` mode the exit code is 1
//! exactly when the edit *introduced* violations; pre-existing ones do
//! not fail the run. In `--watch` mode the exit code follows the last
//! completed re-verification.

use scald::hdl;
use scald::incr::{report_diff, Delta, DesignInput, IncrStats, Session, SessionBuilder};
use scald::serve::{serve, ServeOptions};
use scald::trace::json::Json;
use scald::trace::JsonlSink;
use scald::verifier::{
    Case, CaseResult, CaseSet, CaseStrategy, RunOptions, Verifier, VerifierBuilder, VerifyError,
    Violation,
};
use std::process::ExitCode;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One optional report section, in the order the text renderer prints
/// them. `--format json` folds every requested section into the single
/// output document instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Listing {
    /// Fig 3-10 signal-value summary.
    Summary,
    /// ASCII timing diagram.
    Diagram,
    /// Per-checker timing margins.
    Slack,
    /// Worst-case path analysis (the value-blind baseline).
    Paths,
    /// The fully elaborated design.
    Netlist,
    /// The assumed-stable cross-reference (§2.5).
    Xref,
    /// Expansion and verification statistics.
    Stats,
    /// The Table 3-3 storage breakdown.
    Storage,
}

impl Listing {
    fn from_flag(flag: &str) -> Option<Listing> {
        Some(match flag {
            "--summary" => Listing::Summary,
            "--diagram" => Listing::Diagram,
            "--slack" => Listing::Slack,
            "--paths" => Listing::Paths,
            "--netlist" => Listing::Netlist,
            "--xref" => Listing::Xref,
            "--stats" => Listing::Stats,
            "--storage" => Listing::Storage,
            _ => return None,
        })
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
enum Format {
    #[default]
    Text,
    Json,
}

const USAGE: &str = "usage: scald-tv [--frontend scald|verilog] \
                     [--summary] [--diagram] [--slack] \
                     [--paths] [--prob RHO] [--netlist] [--xref] [--stats] [--storage] \
                     [--format text|json] [--trace FILE] \
                     [--no-cases] [--case-strategy auto|tree|naive] \
                     [--no-eval-cache] [--jobs N] \
                     [--watch] [--watch-poll-ms N] [--watch-max-edits N] \
                     [--baseline OLD.scald] <DESIGN.scald | DESIGN.v>\n\
                     \u{20}      scald-tv serve [--socket PATH] [--stdio] [--jobs N] \
                     [--timeout-ms N] [--idle-cap N] [--no-eval-cache] \
                     [--max-sweep-cases N]";

/// Which frontend parses the design file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FrontendKind {
    /// The SCALD-style HDL and its two-pass macro expander.
    Scald,
    /// The synthesisable-Verilog subset (`scald-rtl`).
    Verilog,
}

impl FrontendKind {
    /// Picks the frontend by file extension (`.v`/`.sv`, case-insensitive,
    /// mean Verilog; everything else is SCALD HDL).
    fn detect(path: &str) -> FrontendKind {
        let lower = path.to_ascii_lowercase();
        if lower.ends_with(".v") || lower.ends_with(".sv") {
            FrontendKind::Verilog
        } else {
            FrontendKind::Scald
        }
    }
}

struct Options {
    path: String,
    frontend: FrontendKind,
    listings: Vec<Listing>,
    format: Format,
    trace: Option<String>,
    no_cases: bool,
    case_strategy: CaseStrategy,
    no_eval_cache: bool,
    jobs: Option<usize>,
    watch: bool,
    watch_poll_ms: u64,
    watch_max_edits: Option<u64>,
    baseline: Option<String>,
    prob_rho: Option<f64>,
}

impl Options {
    fn wants(&self, l: Listing) -> bool {
        self.listings.contains(&l)
    }
}

fn parse_args() -> Result<Options, String> {
    let mut frontend: Option<FrontendKind> = None;
    let mut opts = Options {
        path: String::new(),
        frontend: FrontendKind::Scald,
        listings: Vec::new(),
        format: Format::Text,
        trace: None,
        no_cases: false,
        case_strategy: CaseStrategy::default(),
        no_eval_cache: false,
        jobs: None,
        watch: false,
        watch_poll_ms: 200,
        watch_max_edits: None,
        baseline: None,
        prob_rho: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if let Some(listing) = Listing::from_flag(&arg) {
            if !opts.listings.contains(&listing) {
                opts.listings.push(listing);
            }
            continue;
        }
        match arg.as_str() {
            "--no-cases" => opts.no_cases = true,
            "--case-strategy" => {
                opts.case_strategy = args
                    .next()
                    .ok_or_else(|| "--case-strategy expects auto, tree or naive".to_owned())?
                    .parse()?;
            }
            "--no-eval-cache" => opts.no_eval_cache = true,
            "--frontend" => {
                frontend = Some(match args.next().as_deref() {
                    Some("scald") => FrontendKind::Scald,
                    Some("verilog") => FrontendKind::Verilog,
                    _ => return Err("--frontend expects 'scald' or 'verilog'".to_owned()),
                });
            }
            "--format" => {
                opts.format = match args.next().as_deref() {
                    Some("text") => Format::Text,
                    Some("json") => Format::Json,
                    _ => return Err("--format expects 'text' or 'json'".to_owned()),
                };
            }
            "--trace" => {
                let file = args
                    .next()
                    .filter(|f| !f.is_empty())
                    .ok_or_else(|| "--trace expects a file path".to_owned())?;
                opts.trace = Some(file);
            }
            "--jobs" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--jobs expects a worker count >= 1".to_owned())?;
                opts.jobs = Some(n);
            }
            "--watch" => opts.watch = true,
            "--watch-poll-ms" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--watch-poll-ms expects a millisecond count >= 1".to_owned())?;
                opts.watch_poll_ms = n;
            }
            "--watch-max-edits" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<u64>().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--watch-max-edits expects an edit count >= 1".to_owned())?;
                opts.watch_max_edits = Some(n);
            }
            "--prob" => {
                let rho = args
                    .next()
                    .and_then(|s| s.parse::<f64>().ok())
                    .filter(|r| (0.0..=1.0).contains(r))
                    .ok_or_else(|| "--prob expects a correlation in [0, 1]".to_owned())?;
                opts.prob_rho = Some(rho);
            }
            "--baseline" => {
                let file = args
                    .next()
                    .filter(|f| !f.is_empty())
                    .ok_or_else(|| "--baseline expects a design file path".to_owned())?;
                opts.baseline = Some(file);
            }
            "--help" | "-h" => return Err(USAGE.to_owned()),
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try --help"))
            }
            path => {
                if !opts.path.is_empty() {
                    return Err("exactly one design file expected".to_owned());
                }
                opts.path = path.to_owned();
            }
        }
    }
    if opts.path.is_empty() {
        return Err("no design file given; try --help".to_owned());
    }
    opts.frontend = frontend.unwrap_or_else(|| FrontendKind::detect(&opts.path));
    if opts.watch && opts.baseline.is_some() {
        return Err("--watch and --baseline are mutually exclusive".to_owned());
    }
    if (opts.watch || opts.baseline.is_some()) && opts.format == Format::Json {
        return Err("--format json is not supported with --watch/--baseline".to_owned());
    }
    Ok(opts)
}

/// The shared per-pass effort summary for the incremental modes.
fn effort_line(stats: &IncrStats) -> String {
    format!(
        "{} events ({}), seeded {}/{} prims, cone {:.1}%, {:.1?}",
        stats.events,
        if stats.warm { "warm" } else { "cold" },
        stats.seeded_prims,
        stats.total_prims,
        100.0 * stats.cone_fraction(),
        stats.wall,
    )
}

/// Builds the incremental session shared by `--watch` and `--baseline`:
/// same trace/jobs plumbing as a plain run.
fn open_session(opts: &Options, src: &str) -> Result<Session, String> {
    let mut builder = SessionBuilder::new();
    if let Some(n) = opts.jobs {
        builder = builder.jobs(n);
    }
    if opts.no_eval_cache {
        builder = builder.eval_cache(false);
    }
    if let Some(file) = &opts.trace {
        let sink =
            JsonlSink::create(file).map_err(|e| format!("cannot create trace file {file}: {e}"))?;
        builder = builder.trace(Arc::new(sink));
    }
    let input = match opts.frontend {
        FrontendKind::Scald => DesignInput::source(src),
        FrontendKind::Verilog => DesignInput::verilog(src),
    };
    builder
        .open(input, opts.path.clone())
        .map_err(|e| e.to_string())
}

/// Wraps new source text in the delta variant matching the frontend.
fn source_delta(opts: &Options, src: String) -> Delta {
    match opts.frontend {
        FrontendKind::Scald => Delta::Source(src),
        FrontendKind::Verilog => Delta::Verilog(src),
    }
}

const SERVE_USAGE: &str = "usage: scald-tv serve [--socket PATH] [--stdio] \
                           [--jobs N] [--timeout-ms N] [--idle-cap N] \
                           [--no-eval-cache] [--max-sweep-cases N]  \
                           (at least one of --socket/--stdio)";

/// `scald-tv serve`: run the multi-client verification daemon until it
/// is asked to shut down (a `shutdown` request, or EOF in `--stdio`
/// mode).
fn run_serve(args: impl Iterator<Item = String>) -> ExitCode {
    let mut opts = ServeOptions::default();
    let mut args = args.peekable();
    let parse_err = |msg: String| -> ExitCode {
        eprintln!("scald-tv: {msg}");
        eprintln!("{SERVE_USAGE}");
        ExitCode::from(2)
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--socket" => match args.next().filter(|p| !p.is_empty()) {
                Some(path) => opts.socket = Some(path.into()),
                None => return parse_err("--socket expects a path".to_owned()),
            },
            "--stdio" => opts.stdio = true,
            "--jobs" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) if n >= 1 => opts.jobs = n,
                _ => return parse_err("--jobs expects a worker count >= 1".to_owned()),
            },
            "--timeout-ms" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.request_timeout = Duration::from_millis(n),
                _ => return parse_err("--timeout-ms expects a millisecond count >= 1".to_owned()),
            },
            "--idle-cap" => match args.next().and_then(|s| s.parse::<usize>().ok()) {
                Some(n) => opts.idle_cap = n,
                None => return parse_err("--idle-cap expects a session count".to_owned()),
            },
            "--no-eval-cache" => opts.eval_cache = false,
            "--max-sweep-cases" => match args.next().and_then(|s| s.parse::<u64>().ok()) {
                Some(n) if n >= 1 => opts.max_sweep_cases = n,
                _ => return parse_err("--max-sweep-cases expects a case count >= 1".to_owned()),
            },
            "--help" | "-h" => {
                eprintln!("{SERVE_USAGE}");
                return ExitCode::from(2);
            }
            other => return parse_err(format!("unknown serve option {other:?}")),
        }
    }
    if opts.socket.is_none() && !opts.stdio {
        return parse_err("serve needs --socket PATH, --stdio, or both".to_owned());
    }
    match serve(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("scald-tv: serve: {e}");
            ExitCode::from(2)
        }
    }
}

/// `--watch`: poll the design file, re-verifying each time its contents
/// change. Warm starts keep per-edit work proportional to the edited
/// cone, so the loop stays interactive even on large designs.
fn run_watch(opts: &Options) -> ExitCode {
    let mut last_src = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scald-tv: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };
    let mut session = match open_session(opts, &last_src) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scald-tv: {e}");
            return ExitCode::from(2);
        }
    };
    let mut violations = session.report().total_violations();
    println!(
        "[watch] {}: {violations} violation(s); {}",
        opts.path,
        effort_line(&session.outcome().stats)
    );
    let mut edits = 0u64;
    // Debounce for torn reads: a poll can catch an editor mid-write
    // (empty or partial file), which parses as a broken design. A failed
    // apply therefore never counts as an edit and never advances
    // `last_src` — the same bytes are simply re-read on the next poll,
    // by which time a torn write will have completed and the full save
    // is verified as one edit. Content that keeps failing is diagnosed
    // once (without consuming the edit budget) so a genuinely broken
    // save is still visible.
    let mut pending_bad: Option<(String, bool)> = None;
    while opts.watch_max_edits.is_none_or(|max| edits < max) {
        std::thread::sleep(Duration::from_millis(opts.watch_poll_ms));
        // A read can fail transiently while an editor replaces the file;
        // just poll again.
        let Ok(src) = std::fs::read_to_string(&opts.path) else {
            continue;
        };
        if src == last_src {
            pending_bad = None;
            continue;
        }
        match session.apply(source_delta(opts, src.clone())) {
            Ok(outcome) => {
                pending_bad = None;
                last_src = src;
                edits += 1;
                violations = outcome.report.total_violations();
                println!(
                    "[watch] edit {edits}: {violations} violation(s); {}",
                    effort_line(&outcome.stats)
                );
            }
            Err(e) => match &mut pending_bad {
                Some((bad, reported)) if *bad == src => {
                    // Identical bytes failing a second poll: no longer a
                    // torn write in flight. Diagnose it once and keep
                    // polling for a fixed save.
                    if !*reported {
                        *reported = true;
                        eprintln!("[watch] awaiting valid design: {e}");
                    }
                }
                _ => pending_bad = Some((src, false)),
            },
        }
    }
    if violations == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// One line per diffed violation: compact, grep-friendly.
fn diff_lines(heading: &str, violations: &[Violation]) {
    println!("{heading} ({}):", violations.len());
    for v in violations {
        println!("  {}: {} [{}]", v.kind, v.source, v.constraint);
    }
}

/// `--baseline OLD`: verify OLD, warm-apply the positional design as an
/// edit, and report only what the edit changed.
fn run_baseline(opts: &Options, old_path: &str) -> ExitCode {
    let read =
        |path: &str| std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"));
    let result = read(old_path).and_then(|old_src| {
        let new_src = read(&opts.path)?;
        let mut session = open_session(opts, &old_src)?;
        let before = session.report().clone();
        let outcome = session
            .apply(source_delta(opts, new_src))
            .map_err(|e| e.to_string())?;
        Ok((before, outcome))
    });
    let (before, outcome) = match result {
        Ok(pair) => pair,
        Err(e) => {
            eprintln!("scald-tv: {e}");
            return ExitCode::from(2);
        }
    };
    let diff = report_diff(&before, &outcome.report);
    println!("baseline {old_path} -> {}", opts.path);
    if diff.is_empty() {
        println!(
            "no violations introduced or fixed ({} in both).",
            outcome.report.total_violations()
        );
    } else {
        diff_lines("introduced", &diff.introduced);
        diff_lines("fixed", &diff.fixed);
    }
    println!("re-verified with {}", effort_line(&outcome.stats));
    if diff.introduced.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// The worst-case path listing, shared by the text and JSON renderers.
fn path_lines(netlist: &scald::netlist::Netlist) -> Vec<String> {
    let analysis = scald::paths::PathAnalysis::analyze(netlist);
    let mut lines: Vec<String> = analysis.reports().iter().map(ToString::to_string).collect();
    for group in analysis.loops() {
        lines.push(format!("LOOP NEEDS A BREAKPOINT: {}", group.join(", ")));
    }
    let slacks = analysis.signal_slacks(netlist);
    if !slacks.is_empty() {
        lines.push("critical region (worst signal slacks):".to_owned());
        for (sid, slack) in slacks.iter().take(8) {
            lines.push(format!("  {:<30} {slack}", netlist.signal(*sid).name));
        }
    }
    lines
}

/// Builds the report's v2 `probabilistic` section from the scald-stats
/// distribution analysis: every delay range becomes a ±3σ normal, and
/// each checked endpoint gets arrival/slack distributions plus its
/// probability of missing the deadline.
fn prob_section(netlist: &scald::netlist::Netlist, rho: f64) -> scald::verifier::ProbSection {
    let analysis = scald::stats::ProbPathAnalysis::analyze(netlist, rho);
    scald::verifier::ProbSection {
        rho,
        endpoints: analysis
            .reports()
            .iter()
            .map(|r| {
                let slack = r.slack();
                scald::verifier::ProbEndpoint {
                    endpoint: r.endpoint.clone(),
                    constraint_source: r.constraint_source.clone(),
                    arrival_mean_ns: r.arrival.mean,
                    arrival_sigma_ns: r.arrival.sigma,
                    slack_mean_ns: slack.mean,
                    slack_sigma_ns: slack.sigma,
                    deadline_ns: r.deadline_ns,
                    worst_case_ns: r.worst_case_ns,
                    violation_probability: r.violation_probability,
                }
            })
            .collect(),
    }
}

fn run_verifier(
    opts: &Options,
    verifier: &mut Verifier,
    cases: &[Case],
) -> Result<Vec<CaseResult>, VerifyError> {
    let mut options = RunOptions::new()
        .cases(CaseSet::list(cases.iter().cloned()))
        .strategy(opts.case_strategy);
    if let Some(n) = opts.jobs {
        // Default (no flag): the engine picks its own worker budget.
        options = options.jobs(n);
    }
    Ok(verifier.run(&options)?.cases)
}

fn main() -> ExitCode {
    let mut args = std::env::args().skip(1);
    if args.next().as_deref() == Some("serve") {
        return run_serve(args);
    }
    drop(args);

    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    if opts.watch {
        return run_watch(&opts);
    }
    if let Some(old_path) = opts.baseline.clone() {
        return run_baseline(&opts, &old_path);
    }

    let src = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scald-tv: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };

    // Each frontend reports its own expansion statistics; fold them into
    // one enum so the listing renderers below stay frontend-agnostic.
    enum ExpandInfo {
        Scald(hdl::ExpandStats),
        Rtl(scald::rtl::RtlStats),
    }

    let t = Instant::now();
    let (netlist, raw_cases, expand_stats) = match opts.frontend {
        FrontendKind::Scald => match hdl::compile(&src) {
            Ok(e) => (e.netlist, e.cases, ExpandInfo::Scald(e.stats)),
            Err(e) => {
                eprintln!("scald-tv: {e}");
                return ExitCode::from(2);
            }
        },
        FrontendKind::Verilog => match scald::rtl::compile(&src) {
            Ok(e) => (e.netlist, e.cases, ExpandInfo::Rtl(e.stats)),
            Err(e) => {
                eprintln!("scald-tv: {e}");
                return ExitCode::from(2);
            }
        },
    };
    let expand_time = t.elapsed();
    let text = opts.format == Format::Text;

    if text && opts.wants(Listing::Stats) {
        match &expand_stats {
            ExpandInfo::Scald(s) => eprintln!(
                "expanded {} macros / {} instances -> {} primitives, {} signals \
                 (pass1 {:?}, pass2 {:?}, total {expand_time:?})",
                s.macros_defined,
                s.instances_expanded,
                s.prims_emitted,
                s.signals,
                s.pass1,
                s.pass2
            ),
            ExpandInfo::Rtl(s) => eprintln!(
                "elaborated {} module(s) / {} instance(s) -> {} primitives, \
                 {} signals ({expand_time:?})",
                s.modules, s.instances_flattened, s.prims_emitted, s.signals
            ),
        }
    }

    // Sections that need the netlist before the verifier takes ownership.
    let netlist_listing = opts.wants(Listing::Netlist).then(|| netlist.listing());
    let paths_listing = opts.wants(Listing::Paths).then(|| path_lines(&netlist));
    let probabilistic = opts.prob_rho.map(|rho| prob_section(&netlist, rho));
    if text {
        if let Some(listing) = &netlist_listing {
            println!("--- fully elaborated design ---");
            print!("{listing}");
        }
        if let Some(lines) = &paths_listing {
            println!("--- worst-case path analysis (value-blind baseline) ---");
            for line in lines {
                println!("{line}");
            }
        }
    }

    let cases: Vec<Case> = if opts.no_cases || raw_cases.is_empty() {
        vec![Case::new()]
    } else {
        raw_cases
            .iter()
            .map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (s, v)| c.assign(s.clone(), *v))
            })
            .collect()
    };

    let mut builder = VerifierBuilder::new(netlist);
    if opts.no_eval_cache {
        builder = builder.eval_cache(false);
    }
    if let Some(file) = &opts.trace {
        match JsonlSink::create(file) {
            Ok(sink) => builder = builder.trace(Arc::new(sink)),
            Err(e) => {
                eprintln!("scald-tv: cannot create trace file {file}: {e}");
                return ExitCode::from(2);
            }
        }
    }
    let mut verifier = builder.build();

    let t = Instant::now();
    let results = match run_verifier(&opts, &mut verifier, &cases) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scald-tv: {e}");
            return ExitCode::from(2);
        }
    };
    let verify_time = t.elapsed();

    let mut report = verifier.report(&opts.path, &results);
    report.probabilistic = probabilistic;
    report.engine.verify_wall = Some(verify_time);
    if let Some(n) = opts.jobs {
        report.engine.jobs = n;
    }
    let total = report.total_violations();

    if text {
        for result in &results {
            if results.len() > 1 || !result.is_clean() {
                println!("{result}");
            }
        }
        if opts.wants(Listing::Stats) {
            eprintln!(
                "verified {} case(s) in {verify_time:?}, {} events total",
                results.len(),
                verifier.total_events()
            );
            if let Some(cache) = report.engine.eval_cache {
                eprintln!(
                    "eval cache: {} hits / {} misses ({:.1}% hit rate), {} entries",
                    cache.hits,
                    cache.misses,
                    100.0 * cache.hit_rate(),
                    cache.entries
                );
            }
        }
        if opts.wants(Listing::Summary) {
            println!("--- signal values over the cycle ---");
            print!("{}", report.summary_text());
        }
        if opts.wants(Listing::Diagram) {
            println!("--- timing diagram ---");
            print!("{}", report.diagram_text(64));
        }
        if opts.wants(Listing::Slack) {
            println!("--- timing margins (worst first) ---");
            print!("{}", report.slack_text());
        }
        if let Some(prob) = report.probabilistic_text() {
            println!("--- probabilistic timing (distribution-valued slack) ---");
            print!("{prob}");
        }
        if opts.wants(Listing::Xref) {
            print!("{}", report.xref_text());
        }
        if opts.wants(Listing::Storage) {
            print!("{}", report.storage_text());
        }
        if total == 0 {
            println!("no timing errors.");
        } else {
            println!("{total} timing violation(s).");
        }
    } else {
        // One versioned document; requested listings that are not already
        // part of the schema ride along as extra top-level sections.
        let Json::Obj(mut fields) = report.json_value() else {
            unreachable!("Report::json_value returns an object");
        };
        if let Some(listing) = &netlist_listing {
            fields.push((
                "netlist".to_owned(),
                Json::Arr(listing.lines().map(Json::str).collect()),
            ));
        }
        if let Some(lines) = &paths_listing {
            fields.push((
                "paths".to_owned(),
                Json::Arr(lines.iter().map(Json::str).collect()),
            ));
        }
        if opts.wants(Listing::Stats) {
            let wall = (
                "wall_ns".to_owned(),
                Json::from(u64::try_from(expand_time.as_nanos()).unwrap_or(u64::MAX)),
            );
            let expansion_fields = match &expand_stats {
                ExpandInfo::Scald(s) => vec![
                    (
                        "macros_defined".to_owned(),
                        Json::from(s.macros_defined as u64),
                    ),
                    (
                        "instances_expanded".to_owned(),
                        Json::from(s.instances_expanded as u64),
                    ),
                    (
                        "prims_emitted".to_owned(),
                        Json::from(s.prims_emitted as u64),
                    ),
                    ("signals".to_owned(), Json::from(s.signals as u64)),
                    wall,
                ],
                ExpandInfo::Rtl(s) => vec![
                    ("modules".to_owned(), Json::from(s.modules as u64)),
                    (
                        "instances_flattened".to_owned(),
                        Json::from(s.instances_flattened as u64),
                    ),
                    (
                        "prims_emitted".to_owned(),
                        Json::from(s.prims_emitted as u64),
                    ),
                    ("signals".to_owned(), Json::from(s.signals as u64)),
                    wall,
                ],
            };
            fields.push(("expansion".to_owned(), Json::Obj(expansion_fields)));
        }
        print!("{}", Json::Obj(fields).to_string_pretty());
    }

    if total == 0 {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
