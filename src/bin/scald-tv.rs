//! `scald-tv` — the SCALD Timing Verifier command-line tool.
//!
//! Reads a design in the SCALD-style HDL, expands its macros, verifies all
//! timing constraints (running the design's `case` blocks if present), and
//! prints the error report. Exits non-zero when violations are found, so
//! it slots into CI the way the thesis' designers ran the verifier daily
//! (§3.3.1).
//!
//! ```text
//! USAGE:
//!     scald-tv [OPTIONS] <DESIGN.scald>
//!
//! OPTIONS:
//!     --summary     print the Fig 3-10 signal-value summary listing
//!     --diagram     print an ASCII timing diagram of all signals
//!     --slack       print per-checker timing margins (worst first)
//!     --paths       print the worst-case path analysis (GRASP-style)
//!     --netlist     print the fully elaborated (flattened) design
//!     --xref        print the assumed-stable cross-reference listing
//!     --stats       print expansion/verification statistics (Table 3-1)
//!     --storage     print the storage breakdown (Table 3-3)
//!     --no-cases    ignore the design's case blocks (single pass)
//!     --jobs N      case-analysis worker count (default: CPU cores)
//! ```

use scald::hdl;
use scald::verifier::{Case, Verifier};
use std::process::ExitCode;
use std::time::Instant;

struct Options {
    path: String,
    summary: bool,
    diagram: bool,
    slack: bool,
    paths: bool,
    netlist: bool,
    xref: bool,
    stats: bool,
    storage: bool,
    no_cases: bool,
    jobs: Option<usize>,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        path: String::new(),
        summary: false,
        diagram: false,
        slack: false,
        paths: false,
        netlist: false,
        xref: false,
        stats: false,
        storage: false,
        no_cases: false,
        jobs: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--summary" => opts.summary = true,
            "--diagram" => opts.diagram = true,
            "--slack" => opts.slack = true,
            "--paths" => opts.paths = true,
            "--netlist" => opts.netlist = true,
            "--xref" => opts.xref = true,
            "--stats" => opts.stats = true,
            "--storage" => opts.storage = true,
            "--no-cases" => opts.no_cases = true,
            "--jobs" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|n| *n >= 1)
                    .ok_or_else(|| "--jobs expects a worker count >= 1".to_owned())?;
                opts.jobs = Some(n);
            }
            "--help" | "-h" => {
                return Err("usage: scald-tv [--summary] [--diagram] [--slack] \
                            [--paths] [--xref] [--stats] [--storage] \
                            [--no-cases] [--jobs N] <DESIGN.scald>"
                    .to_owned())
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}; try --help"))
            }
            path => {
                if !opts.path.is_empty() {
                    return Err("exactly one design file expected".to_owned());
                }
                opts.path = path.to_owned();
            }
        }
    }
    if opts.path.is_empty() {
        return Err("no design file given; try --help".to_owned());
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(2);
        }
    };

    let src = match std::fs::read_to_string(&opts.path) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("scald-tv: cannot read {}: {e}", opts.path);
            return ExitCode::from(2);
        }
    };

    let t = Instant::now();
    let expansion = match hdl::compile(&src) {
        Ok(e) => e,
        Err(e) => {
            eprintln!("scald-tv: {e}");
            return ExitCode::from(2);
        }
    };
    let expand_time = t.elapsed();

    if opts.stats {
        let s = expansion.stats;
        eprintln!(
            "expanded {} macros / {} instances -> {} primitives, {} signals \
             (pass1 {:?}, pass2 {:?}, total {expand_time:?})",
            s.macros_defined, s.instances_expanded, s.prims_emitted, s.signals, s.pass1, s.pass2
        );
    }

    if opts.netlist {
        println!("--- fully elaborated design ---");
        print!("{}", expansion.netlist.listing());
    }
    if opts.paths {
        println!("--- worst-case path analysis (value-blind baseline) ---");
        let analysis = scald::paths::PathAnalysis::analyze(&expansion.netlist);
        for report in analysis.reports() {
            println!("{report}");
        }
        for group in analysis.loops() {
            println!("LOOP NEEDS A BREAKPOINT: {}", group.join(", "));
        }
        let slacks = analysis.signal_slacks(&expansion.netlist);
        if !slacks.is_empty() {
            println!("critical region (worst signal slacks):");
            for (sid, slack) in slacks.iter().take(8) {
                println!("  {:<30} {slack}", expansion.netlist.signal(*sid).name);
            }
        }
    }

    let cases: Vec<Case> = if opts.no_cases || expansion.cases.is_empty() {
        vec![Case::new()]
    } else {
        expansion
            .cases
            .iter()
            .map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (s, v)| c.assign(s.clone(), *v))
            })
            .collect()
    };

    let t = Instant::now();
    let mut verifier = Verifier::new(expansion.netlist);
    let results = match opts.jobs {
        // Default: the parallel engine picks its own worker count.
        None => verifier.run_cases(&cases),
        Some(n) => verifier.run_cases_with_jobs(&cases, n),
    };
    let results = match results {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scald-tv: {e}");
            return ExitCode::from(2);
        }
    };
    let verify_time = t.elapsed();

    let mut total = 0usize;
    for result in &results {
        if results.len() > 1 || !result.is_clean() {
            println!("{result}");
        }
        total += result.violations.len();
    }
    if opts.stats {
        eprintln!(
            "verified {} case(s) in {verify_time:?}, {} events total",
            results.len(),
            verifier.total_events()
        );
    }
    if opts.summary {
        println!("--- signal values over the cycle ---");
        print!("{}", verifier.summary_listing());
    }
    if opts.diagram {
        println!("--- timing diagram ---");
        print!("{}", verifier.timing_diagram(64));
    }
    if opts.slack {
        println!("--- timing margins (worst first) ---");
        let fmt = |s: Option<scald::wave::Time>| {
            s.map_or_else(|| "     -".to_owned(), |t| format!("{t:>6}"))
        };
        println!(
            "{:<40} {:>8} {:>8} {:>8}",
            "CHECKER", "SETUP", "HOLD", "PULSE"
        );
        for m in verifier.slack_report() {
            println!(
                "{:<40} {:>8} {:>8} {:>8}",
                m.checker,
                fmt(m.setup_slack),
                fmt(m.hold_slack),
                fmt(m.pulse_slack)
            );
        }
    }
    if opts.xref {
        print!("{}", verifier.xref_listing());
    }
    if opts.storage {
        println!("{}", verifier.storage_report());
    }

    if total == 0 {
        println!("no timing errors.");
        ExitCode::SUCCESS
    } else {
        println!("{total} timing violation(s).");
        ExitCode::FAILURE
    }
}
