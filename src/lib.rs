//! **scald** — a from-scratch Rust reproduction of the SCALD Timing
//! Verifier (T. M. McWilliams, *Verification of Timing Constraints on
//! Large Digital Systems*, Stanford/LLNL, 1980; DAC 1980).
//!
//! The Timing Verifier introduced what became static timing analysis: it
//! simulates **one clock period** of a synchronous design symbolically,
//! representing most signals only as *stable* or *changing* (a seven-value
//! algebra `0 1 S C R F U`), and checks every set-up, hold, minimum-pulse
//! -width and gated-clock-hazard constraint in a single pass — work that a
//! conventional logic simulator needs exponentially many input patterns to
//! cover.
//!
//! # Crate map
//!
//! | module | contents |
//! |---|---|
//! | [`logic`] | the seven-value algebra (§2.4.1–2.4.2) |
//! | [`wave`] | periodic waveforms, spans, separated skew (§2.3, §2.8) |
//! | [`assertions`] | `.P`/`.C`/`.S` signal-name assertions (§2.5) |
//! | [`netlist`] | primitives, signals, the circuit graph (§2.4, §3.1) |
//! | [`hdl`] | SCALD-style HDL and the two-pass macro expander (§3.1) |
//! | [`rtl`] | synthesisable-Verilog frontend: parse, elaborate, lower to primitives |
//! | [`verifier`] | the Timing Verifier engine, checkers, case analysis (§2.6–2.9) |
//! | [`sim`] | baseline: min/max six-value logic simulator (§1.4.1.1) |
//! | [`paths`] | baseline: worst-case path search (§1.4.2) |
//! | [`stats`] | extension: probability-based analysis (§1.4.1.2, §4.2.4) |
//! | [`gen`] | the thesis' figure circuits and the S-1-like design generator |
//! | [`trace`] | engine observability: trace events, sinks, the JSON toolkit |
//! | [`incr`] | incremental re-verification: netlist deltas, warm-started sessions |
//! | [`serve`] | the multi-client verification daemon and its JSONL protocol v1 |
//!
//! # Quickstart
//!
//! Build the thesis' Fig 2-5 register-file circuit and verify it,
//! reproducing the two error groups of Fig 3-11:
//!
//! ```
//! use scald::gen::figures::register_file_circuit;
//! use scald::verifier::{RunOptions, Verifier, ViolationKind};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let (netlist, _signals) = register_file_circuit();
//! let mut verifier = Verifier::new(netlist);
//! let result = verifier.run(&RunOptions::new())?.into_sole();
//!
//! // The RAM address set-up (3.5 ns) and the output-register set-up
//! // (2.5 ns) are both violated, as in the thesis.
//! assert!(!result.of_kind(ViolationKind::Setup).is_empty());
//! println!("{result}");
//! # Ok(())
//! # }
//! ```
//!
//! Or compile the same circuit from SCALD-style HDL text:
//!
//! ```
//! use scald::gen::hdl_sources::register_file_example;
//! use scald::hdl::compile;
//! use scald::verifier::{RunOptions, Verifier};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let expansion = compile(&register_file_example())?;
//! let mut verifier = Verifier::new(expansion.netlist);
//! let result = verifier.run(&RunOptions::new())?.into_sole();
//! println!("{} violations", result.violations.len());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

pub use scald_assertions as assertions;
pub use scald_gen as gen;
pub use scald_hdl as hdl;
pub use scald_incr as incr;
pub use scald_logic as logic;
pub use scald_netlist as netlist;
pub use scald_paths as paths;
pub use scald_rtl as rtl;
pub use scald_serve as serve;
pub use scald_sim as sim;
pub use scald_stats as stats;
pub use scald_trace as trace;
pub use scald_verifier as verifier;
pub use scald_wave as wave;
