// The cascade race, ported to the Verilog frontend: two counters, one
// on the raw clock and one on a gated clock. The AND gate deriving
// `gclk` adds its combinational delay to the clock path, so cnt2's
// clock edge arrives late and wide — its add cone is still changing
// inside the skewed setup/hold window, while the identical cnt1 loop
// on the raw clock passes with margin to spare.
//
// Expected verdict: `scald-tv run designs/cascade_race.v` exits 1 with
// setup and hold violations at the cnt2 register whose CK INPUT is
// `gclk` and whose fan-in provenance walks back through the gated
// clock to `clk` and `en`.

// scald: period 50.0
// scald: clock_unit 6.25

module cascade_race(
  input  wire clk,
  input  wire rst,
  input  wire en,
  output wire [7:0] cnt1_out,
  output wire [7:0] cnt2_out
);
  // scald: input clk .P0-4(0,0)
  // scald: input rst .S0-8
  // scald: input en .S0-8
  // scald: ff delay=3.0:5.0 setup=2.5 hold=1.5
  // scald: comb delay=1.5:3.0

  wire gclk;
  reg [7:0] cnt1;
  reg [7:0] cnt2;

  // The derived clock: this gate IS the clock path the checker sees.
  assign gclk = clk & en;

  always_ff @(posedge clk or posedge rst) begin
    if (rst) cnt1 <= 8'd0;
    else     cnt1 <= cnt1 + 8'd1;
  end

  always_ff @(posedge gclk or posedge rst) begin
    if (rst) cnt2 <= 8'd0;
    else     cnt2 <= cnt2 + cnt1;
  end

  assign cnt1_out = cnt1;
  assign cnt2_out = cnt2;
endmodule
