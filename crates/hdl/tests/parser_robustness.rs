//! Parser robustness: arbitrary input must produce `Ok` or a structured
//! error — never a panic. (A verifier run daily on in-progress designs,
//! §3.3.1, sees a lot of malformed input.)

use proptest::prelude::*;
use scald_hdl::{compile, lex, parse};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// The lexer never panics on arbitrary text.
    #[test]
    fn lexer_never_panics(src in ".*") {
        let _ = lex(&src);
    }

    /// The parser never panics on arbitrary text.
    #[test]
    fn parser_never_panics(src in ".*") {
        let _ = parse(&src);
    }

    /// The parser never panics on token-soup built from the language's own
    /// vocabulary — much better coverage of deep parser states than raw
    /// bytes.
    #[test]
    fn parser_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "design", "period", "clock_unit", "macro", "top", "end",
                "use", "case", "signal", "wire_delay", "wired_or", "reg",
                "and", "mux", "setup_hold", "delay", "not", "const0",
                "50.0", "6.25", "1", "0", "SIZE", "A", "'X Y .S0-6'",
                "(", ")", "<", ">", ",", ";", ":", "=", "->", "-", "+",
                "&H", "/P", "/M",
            ]),
            0..60,
        )
    ) {
        let src = words.join(" ");
        let _ = parse(&src);
    }

    /// Full compilation (parse + expand + netlist validation) never panics
    /// on token soup either.
    #[test]
    fn compile_never_panics_on_token_soup(
        words in prop::collection::vec(
            prop::sample::select(vec![
                "design D ;", "period 50.0 ;", "clock_unit 6.25 ;",
                "top ;", "end ;",
                "macro M (SIZE=4) (A<0:SIZE-1>/P) -> (Q/P) ;",
                "buf (A) -> (Q) ;", "use M (X) -> (Y) ;",
                "reg delay=1.5:4.5 (CK, D) -> (Q) ;",
                "setup_hold setup=2.5 hold=1.5 (D, CK) ;",
                "case 'X' = 1 ;", "wired_or BUS ;",
                "wire_delay W 0.0 2.0 ;",
            ]),
            0..20,
        )
    ) {
        let src = words.join("\n");
        let _ = compile(&src);
    }
}
