//! Parser robustness: arbitrary input must produce `Ok` or a structured
//! error — never a panic. (A verifier run daily on in-progress designs,
//! §3.3.1, sees a lot of malformed input.) Seeded random fuzzing, std-only.

use scald_hdl::{compile, lex, parse};
use scald_rng::Rng;

const CASES: usize = 512;

/// Arbitrary text: a mix of random bytes-as-chars, printable ASCII and
/// multi-byte unicode, weighted toward characters the lexer actually
/// treats specially.
fn arbitrary_text(rng: &mut Rng) -> String {
    const SPICE: &[char] = &[
        '\'', '"', '(', ')', '<', '>', ',', ';', ':', '=', '-', '>', '&', '/', '.', '\n', '\t',
        '\u{0}', 'é', '→', '𝕏',
    ];
    let len = rng.range_usize(0, 80);
    (0..len)
        .map(|_| {
            if rng.bool_with(0.3) {
                *rng.choose(SPICE)
            } else {
                char::from_u32(rng.range_u32(1, 0x250)).unwrap_or('?')
            }
        })
        .collect()
}

/// The lexer never panics on arbitrary text.
#[test]
fn lexer_never_panics() {
    let mut rng = Rng::seed_from_u64(0xf121);
    for _ in 0..CASES {
        let src = arbitrary_text(&mut rng);
        let _ = lex(&src);
    }
}

/// The parser never panics on arbitrary text.
#[test]
fn parser_never_panics() {
    let mut rng = Rng::seed_from_u64(0xf122);
    for _ in 0..CASES {
        let src = arbitrary_text(&mut rng);
        let _ = parse(&src);
    }
}

/// The parser never panics on token-soup built from the language's own
/// vocabulary — much better coverage of deep parser states than raw
/// bytes.
#[test]
fn parser_never_panics_on_token_soup() {
    const WORDS: &[&str] = &[
        "design",
        "period",
        "clock_unit",
        "macro",
        "top",
        "end",
        "use",
        "case",
        "signal",
        "wire_delay",
        "wired_or",
        "reg",
        "and",
        "mux",
        "setup_hold",
        "delay",
        "not",
        "const0",
        "50.0",
        "6.25",
        "1",
        "0",
        "SIZE",
        "A",
        "'X Y .S0-6'",
        "(",
        ")",
        "<",
        ">",
        ",",
        ";",
        ":",
        "=",
        "->",
        "-",
        "+",
        "&H",
        "/P",
        "/M",
    ];
    let mut rng = Rng::seed_from_u64(0xf123);
    for _ in 0..CASES {
        let n = rng.range_usize(0, 60);
        let src: Vec<&str> = (0..n).map(|_| *rng.choose(WORDS)).collect();
        let _ = parse(&src.join(" "));
    }
}

/// Full compilation (parse + expand + netlist validation) never panics
/// on token soup either.
#[test]
fn compile_never_panics_on_token_soup() {
    const STMTS: &[&str] = &[
        "design D ;",
        "period 50.0 ;",
        "clock_unit 6.25 ;",
        "top ;",
        "end ;",
        "macro M (SIZE=4) (A<0:SIZE-1>/P) -> (Q/P) ;",
        "buf (A) -> (Q) ;",
        "use M (X) -> (Y) ;",
        "reg delay=1.5:4.5 (CK, D) -> (Q) ;",
        "setup_hold setup=2.5 hold=1.5 (D, CK) ;",
        "case 'X' = 1 ;",
        "wired_or BUS ;",
        "wire_delay W 0.0 2.0 ;",
    ];
    let mut rng = Rng::seed_from_u64(0xf124);
    for _ in 0..CASES {
        let n = rng.range_usize(0, 20);
        let src: Vec<&str> = (0..n).map(|_| *rng.choose(STMTS)).collect();
        let _ = compile(&src.join("\n"));
    }
}
