//! Randomized property tests (seeded, std-only): print → parse round
//! trips for randomly generated designs, and expansion determinism.

use scald_hdl::ast::{AttrVal, ConnExpr, Design, Expr, MacroDef, Port, ScopeMark, Stmt};
use scald_hdl::{expand, parse, print};
use scald_rng::Rng;

const CASES: usize = 128;

/// `[A-Z][A-Z0-9_]{0,6}`
fn ident(rng: &mut Rng) -> String {
    const FIRST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ";
    const REST: &[u8] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_";
    let mut s = String::new();
    s.push(*rng.choose(FIRST) as char);
    for _ in 0..rng.range_usize(0, 7) {
        s.push(*rng.choose(REST) as char);
    }
    s
}

/// Multi-word SCALD-style names that need quoting.
fn fancy_name(rng: &mut Rng) -> String {
    match rng.range_u32(0, 3) {
        0 => ident(rng),
        1 => format!("{} {}", ident(rng), ident(rng)),
        _ => {
            let a = ident(rng);
            let lo = rng.range_u32(0, 8);
            let w = rng.range_u32(1, 8);
            format!("{a} .S{lo}-{}", lo + w)
        }
    }
}

fn expr(rng: &mut Rng) -> Expr {
    match rng.range_u32(0, 3) {
        0 => Expr::Num(rng.range_i64(0, 64)),
        1 => Expr::Var("SIZE".to_owned()),
        _ => Expr::Sub(
            Box::new(Expr::Var("SIZE".to_owned())),
            Box::new(Expr::Num(rng.range_i64(1, 8))),
        ),
    }
}

fn directive(rng: &mut Rng) -> String {
    const LETTERS: &[u8] = b"EWZAH";
    (0..rng.range_usize(1, 4))
        .map(|_| *rng.choose(LETTERS) as char)
        .collect()
}

fn conn(rng: &mut Rng) -> ConnExpr {
    ConnExpr {
        invert: rng.bool(),
        name: fancy_name(rng),
        range: if rng.bool() {
            Some((expr(rng), expr(rng)))
        } else {
            None
        },
        scope: match rng.range_u32(0, 3) {
            0 => Some(ScopeMark::Local),
            1 => Some(ScopeMark::Parameter),
            _ => None,
        },
        directive: if rng.bool() {
            Some(directive(rng))
        } else {
            None
        },
    }
}

fn attr(rng: &mut Rng) -> (String, AttrVal) {
    let key = rng.choose(&["delay", "setup", "hold"]).to_string();
    let val = if rng.bool() {
        let a = rng.range_u32(0, 100);
        let b = rng.range_u32(0, 100);
        AttrVal::Range(f64::from(a) / 10.0, f64::from(a + b) / 10.0)
    } else {
        AttrVal::Num(f64::from(rng.range_u32(0, 100)) / 10.0)
    };
    (key, val)
}

fn prim_stmt(rng: &mut Rng) -> Stmt {
    let kind = rng.choose(&["and", "or", "buf", "chg"]).to_string();
    Stmt::Prim {
        kind,
        attrs: (0..rng.range_usize(0, 2)).map(|_| attr(rng)).collect(),
        inputs: (0..rng.range_usize(1, 3)).map(|_| conn(rng)).collect(),
        outputs: vec![conn(rng)],
        line: 0,
    }
}

/// A macro instantiation of the design's single `HELPER` macro.
fn use_stmt(rng: &mut Rng) -> Stmt {
    Stmt::Use {
        name: "HELPER".to_owned(),
        attrs: if rng.bool() {
            vec![(
                "SIZE".to_owned(),
                AttrVal::Num(f64::from(rng.range_u32(1, 9))),
            )]
        } else {
            Vec::new()
        },
        inputs: vec![conn(rng)],
        outputs: vec![conn(rng)],
        line: 0,
    }
}

/// The declaration-flavoured statements: signal widths, wired-OR marks,
/// per-signal wire-delay overrides.
fn decl_stmt(rng: &mut Rng) -> Stmt {
    match rng.range_u32(0, 3) {
        0 => Stmt::SignalDecl {
            conn: ConnExpr {
                invert: false,
                name: fancy_name(rng),
                range: if rng.bool() {
                    Some((Expr::Num(0), Expr::Num(rng.range_i64(1, 32))))
                } else {
                    None
                },
                scope: if rng.bool() {
                    Some(ScopeMark::Local)
                } else {
                    None
                },
                directive: None,
            },
            line: 0,
        },
        1 => Stmt::WiredOr {
            name: fancy_name(rng),
            line: 0,
        },
        _ => {
            let min = f64::from(rng.range_u32(0, 50)) / 10.0;
            Stmt::WireDelay {
                name: fancy_name(rng),
                min,
                max: min + f64::from(rng.range_u32(0, 50)) / 10.0,
                line: 0,
            }
        }
    }
}

/// Any top-level statement, weighted toward primitives.
fn stmt(rng: &mut Rng) -> Stmt {
    match rng.range_u32(0, 6) {
        0 => use_stmt(rng),
        1 => decl_stmt(rng),
        _ => prim_stmt(rng),
    }
}

fn design(rng: &mut Rng) -> Design {
    let name = ident(rng);
    let top: Vec<Stmt> = (0..rng.range_usize(1, 6)).map(|_| stmt(rng)).collect();
    // No `use` in the macro body: HELPER instantiating itself would only
    // exercise the recursion guard and starve the expansion property.
    let body: Vec<Stmt> = (0..rng.range_usize(0, 3))
        .map(|_| match rng.range_u32(0, 5) {
            0 => decl_stmt(rng),
            _ => prim_stmt(rng),
        })
        .collect();
    let cases: Vec<Vec<(String, bool)>> = (0..rng.range_usize(0, 2))
        .map(|_| {
            (0..rng.range_usize(1, 3))
                .map(|_| (fancy_name(rng), rng.bool()))
                .collect()
        })
        .collect();
    let mac = MacroDef {
        name: "HELPER".to_owned(),
        params: vec![("SIZE".to_owned(), Some(4))],
        inputs: vec![Port {
            name: "A".to_owned(),
            range: Some((
                Expr::Num(0),
                Expr::Sub(
                    Box::new(Expr::Var("SIZE".to_owned())),
                    Box::new(Expr::Num(1)),
                ),
            )),
        }],
        outputs: vec![Port {
            name: "Q".to_owned(),
            range: None,
        }],
        body,
        line: 0,
    };
    Design {
        name,
        period_ns: 50.0,
        clock_unit_ns: 6.25,
        wire_delay_ns: (0.0, 2.0),
        precision_skew_ns: (1.0, 1.0),
        clock_skew_ns: (5.0, 5.0),
        macros: vec![mac],
        top,
        cases,
    }
}

fn strip(design: &mut Design) {
    fn strip_stmt(s: &mut Stmt) {
        match s {
            Stmt::Prim { line, .. }
            | Stmt::Use { line, .. }
            | Stmt::SignalDecl { line, .. }
            | Stmt::WiredOr { line, .. }
            | Stmt::WireDelay { line, .. } => *line = 0,
        }
    }
    for m in &mut design.macros {
        m.line = 0;
        for s in &mut m.body {
            strip_stmt(s);
        }
    }
    for s in &mut design.top {
        strip_stmt(s);
    }
}

/// print -> parse reconstructs the AST exactly (modulo line numbers).
#[test]
fn print_parse_round_trip() {
    let mut rng = Rng::seed_from_u64(0x1d1_0001);
    for _ in 0..CASES {
        let d = design(&mut rng);
        let printed = print(&d);
        let mut parsed = match parse(&printed) {
            Ok(p) => p,
            Err(e) => panic!("printed text failed to parse: {e}\n{printed}"),
        };
        strip(&mut parsed);
        let mut original = d;
        strip(&mut original);
        // The macro body may be unused; still must round trip.
        assert_eq!(parsed, original, "printed:\n{printed}");
    }
}

/// If the design expands at all, a second expansion from the printed
/// text gives the same primitive and signal counts.
#[test]
fn expansion_agrees_across_round_trip() {
    let mut rng = Rng::seed_from_u64(0x1d1_0002);
    for _ in 0..CASES {
        let d = design(&mut rng);
        let Ok(a) = expand(&d) else { continue };
        let printed = print(&d);
        let reparsed = parse(&printed).expect("printed parses");
        let b = expand(&reparsed).expect("round-tripped design expands");
        assert_eq!(a.netlist.prims().len(), b.netlist.prims().len());
        assert_eq!(a.netlist.signals().len(), b.netlist.signals().len());
        assert_eq!(
            a.netlist.primitive_histogram(),
            b.netlist.primitive_histogram()
        );
    }
}

/// A buffer statement `buf (IN) -> (OUT)` over plain signal names.
fn buf_stmt(input: &str, output: &str, scope: Option<ScopeMark>) -> Stmt {
    let end = |name: &str| ConnExpr {
        invert: false,
        name: name.to_owned(),
        range: None,
        scope,
        directive: None,
    };
    Stmt::Prim {
        kind: "buf".to_owned(),
        attrs: Vec::new(),
        inputs: vec![end(input)],
        outputs: vec![end(output)],
        line: 0,
    }
}

/// A design with two macros (`HA`, `HB`) instantiated in a random
/// interleaving with top-level primitives.
fn two_macro_design(rng: &mut Rng) -> Design {
    let mac = |name: &str, extra: usize| MacroDef {
        name: name.to_owned(),
        params: Vec::new(),
        inputs: vec![Port {
            name: "A".to_owned(),
            range: None,
        }],
        outputs: vec![Port {
            name: "Q".to_owned(),
            range: None,
        }],
        body: {
            let mut body = vec![buf_stmt("A", "Q", None)];
            for k in 0..extra {
                body.push(buf_stmt("A", &format!("T{k}"), Some(ScopeMark::Local)));
            }
            body
        },
        line: 0,
    };
    let mut top = Vec::new();
    for i in 0..rng.range_usize(4, 9) {
        top.push(match rng.range_u32(0, 3) {
            0 => buf_stmt(&format!("IN{i}"), &format!("W{i}"), None),
            kind => Stmt::Use {
                name: if kind == 1 { "HA" } else { "HB" }.to_owned(),
                attrs: Vec::new(),
                inputs: vec![ConnExpr {
                    invert: false,
                    name: format!("IN{i}"),
                    range: None,
                    scope: None,
                    directive: None,
                }],
                outputs: vec![ConnExpr {
                    invert: false,
                    name: format!("W{i}"),
                    range: None,
                    scope: None,
                    directive: None,
                }],
                line: 0,
            },
        });
    }
    Design {
        name: "STABLE IDS".to_owned(),
        period_ns: 50.0,
        clock_unit_ns: 6.25,
        wire_delay_ns: (0.0, 2.0),
        precision_skew_ns: (1.0, 1.0),
        clock_skew_ns: (5.0, 5.0),
        macros: vec![mac("HA", 1), mac("HB", rng.range_usize(0, 3))],
        top,
        cases: Vec::new(),
    }
}

/// The guarantee `scald-incr` warm starts rest on: expanded instance
/// names are *stable* under macro-body edits. Growing `HB`'s body must
/// not rename any primitive outside the `HB` instances — with the old
/// global-ordinal naming, an extra statement inside one macro body
/// shifted the ordinals of every primitive expanded after it.
#[test]
fn macro_body_edit_keeps_outside_prim_names_stable() {
    use std::collections::BTreeSet;
    let mut rng = Rng::seed_from_u64(0x1d1_0003);
    for _ in 0..32 {
        let original = two_macro_design(&mut rng);
        let a = expand(&original).expect("original expands");

        let mut edited = original.clone();
        edited.macros[1]
            .body
            .push(buf_stmt("A", "PATCH", Some(ScopeMark::Local)));
        let b = expand(&edited).expect("edited design expands");

        let names = |e: &scald_hdl::Expansion| -> BTreeSet<String> {
            e.netlist.prims().iter().map(|p| p.name.clone()).collect()
        };
        let outside = |s: &BTreeSet<String>| -> BTreeSet<String> {
            s.iter().filter(|n| !n.contains("HB#")).cloned().collect()
        };
        let (before, after) = (names(&a), names(&b));
        assert_eq!(
            outside(&before),
            outside(&after),
            "names outside the edited macro must not move"
        );
        // The edit itself landed: one new primitive per HB instance.
        let hb_instances = before.iter().filter(|n| n.contains("HB#")).count() > 0;
        if hb_instances {
            assert!(after.len() > before.len(), "edited body grew the design");
        }
    }
}
