//! Property tests: print → parse round trips for randomly generated
//! designs, and expansion determinism.

use proptest::prelude::*;
use scald_hdl::ast::{AttrVal, ConnExpr, Design, Expr, MacroDef, Port, ScopeMark, Stmt};
use scald_hdl::{expand, parse, print};

fn ident() -> impl Strategy<Value = String> {
    "[A-Z][A-Z0-9_]{0,6}".prop_map(|s| s)
}

/// Multi-word SCALD-style names that need quoting.
fn fancy_name() -> impl Strategy<Value = String> {
    prop_oneof![
        ident(),
        (ident(), ident()).prop_map(|(a, b)| format!("{a} {b}")),
        (ident(), 0u8..8, 1u8..8).prop_map(|(a, lo, w)| format!("{a} .S{lo}-{}", lo + w)),
    ]
}

fn expr() -> impl Strategy<Value = Expr> {
    prop_oneof![
        (0i64..64).prop_map(Expr::Num),
        Just(Expr::Var("SIZE".to_owned())),
        (1i64..8).prop_map(|n| Expr::Sub(
            Box::new(Expr::Var("SIZE".to_owned())),
            Box::new(Expr::Num(n))
        )),
    ]
}

fn conn() -> impl Strategy<Value = ConnExpr> {
    (
        any::<bool>(),
        fancy_name(),
        prop::option::of((expr(), expr())),
        prop::option::of(prop_oneof![
            Just(ScopeMark::Local),
            Just(ScopeMark::Parameter)
        ]),
        prop::option::of("[EWZAH]{1,3}".prop_map(|s| s)),
    )
        .prop_map(|(invert, name, range, scope, directive)| ConnExpr {
            invert,
            name,
            range,
            scope,
            directive,
        })
}

fn attr() -> impl Strategy<Value = (String, AttrVal)> {
    (
        prop_oneof![
            Just("delay".to_owned()),
            Just("setup".to_owned()),
            Just("hold".to_owned())
        ],
        prop_oneof![
            (0u32..100, 0u32..100).prop_map(|(a, b)| AttrVal::Range(
                f64::from(a) / 10.0,
                f64::from(a + b) / 10.0
            )),
            (0i32..100).prop_map(|n| AttrVal::Num(f64::from(n) / 10.0)),
        ],
    )
}

fn prim_stmt() -> impl Strategy<Value = Stmt> {
    (
        prop_oneof![
            Just("and".to_owned()),
            Just("or".to_owned()),
            Just("buf".to_owned()),
            Just("chg".to_owned()),
        ],
        prop::collection::vec(attr(), 0..2),
        prop::collection::vec(conn(), 1..3),
        prop::collection::vec(conn(), 1..2),
    )
        .prop_map(|(kind, attrs, inputs, outputs)| Stmt::Prim {
            kind,
            attrs,
            inputs,
            outputs,
            line: 0,
        })
}

fn design() -> impl Strategy<Value = Design> {
    (
        ident(),
        prop::collection::vec(prim_stmt(), 1..5),
        prop::collection::vec(prim_stmt(), 0..3),
        prop::collection::vec(
            prop::collection::vec((fancy_name(), any::<bool>()), 1..3),
            0..2,
        ),
    )
        .prop_map(|(name, top, body, cases)| {
            let mac = MacroDef {
                name: "HELPER".to_owned(),
                params: vec![("SIZE".to_owned(), Some(4))],
                inputs: vec![Port {
                    name: "A".to_owned(),
                    range: Some((
                        Expr::Num(0),
                        Expr::Sub(Box::new(Expr::Var("SIZE".to_owned())), Box::new(Expr::Num(1))),
                    )),
                }],
                outputs: vec![Port {
                    name: "Q".to_owned(),
                    range: None,
                }],
                body,
                line: 0,
            };
            Design {
                name,
                period_ns: 50.0,
                clock_unit_ns: 6.25,
                wire_delay_ns: (0.0, 2.0),
                precision_skew_ns: (1.0, 1.0),
                clock_skew_ns: (5.0, 5.0),
                macros: vec![mac],
                top,
                cases,
            }
        })
}

fn strip(design: &mut Design) {
    fn strip_stmt(s: &mut Stmt) {
        match s {
            Stmt::Prim { line, .. }
            | Stmt::Use { line, .. }
            | Stmt::SignalDecl { line, .. }
            | Stmt::WiredOr { line, .. }
            | Stmt::WireDelay { line, .. } => *line = 0,
        }
    }
    for m in &mut design.macros {
        m.line = 0;
        for s in &mut m.body {
            strip_stmt(s);
        }
    }
    for s in &mut design.top {
        strip_stmt(s);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// print -> parse reconstructs the AST exactly (modulo line numbers).
    #[test]
    fn print_parse_round_trip(d in design()) {
        let printed = print(&d);
        let mut parsed = match parse(&printed) {
            Ok(p) => p,
            Err(e) => {
                return Err(TestCaseError::fail(format!(
                    "printed text failed to parse: {e}\n{printed}"
                )))
            }
        };
        strip(&mut parsed);
        let mut original = d;
        strip(&mut original);
        // The macro body may be unused; still must round trip.
        prop_assert_eq!(parsed, original, "printed:\n{}", printed);
    }

    /// If the design expands at all, a second expansion from the printed
    /// text gives the same primitive and signal counts.
    #[test]
    fn expansion_agrees_across_round_trip(d in design()) {
        let Ok(a) = expand(&d) else { return Ok(()) };
        let printed = print(&d);
        let reparsed = parse(&printed).expect("printed parses");
        let b = expand(&reparsed).expect("round-tripped design expands");
        prop_assert_eq!(a.netlist.prims().len(), b.netlist.prims().len());
        prop_assert_eq!(a.netlist.signals().len(), b.netlist.signals().len());
        prop_assert_eq!(
            a.netlist.primitive_histogram(),
            b.netlist.primitive_histogram()
        );
    }
}
