//! Error-path tests for the macro expander: the diagnostics a designer
//! actually hits.

use scald_hdl::{compile, HdlError};

fn head(src_body: &str) -> String {
    format!("design D; period 50.0; clock_unit 6.25;\n{src_body}")
}

fn expect_expand_error(src: &str, needle: &str) {
    match compile(src) {
        Err(HdlError::Expand { message, .. }) => {
            assert!(
                message.contains(needle),
                "expected {needle:?} in {message:?}"
            );
        }
        Err(other) => panic!("expected expansion error, got: {other}"),
        Ok(_) => panic!("expected expansion error, compiled fine"),
    }
}

#[test]
fn unknown_macro() {
    let src = head("top;\n  use NOPE (A) -> (B);\nend;\n");
    expect_expand_error(&src, "unknown macro");
}

#[test]
fn unknown_parameter() {
    let src = head(
        "macro M (SIZE=1) (A<0:SIZE-1>/P) -> (B<0:SIZE-1>/P);\n  buf (A) -> (B);\nend;\n\
         top;\n  use M WIDTH=8 (X) -> (Y);\nend;\n",
    );
    expect_expand_error(&src, "no parameter");
}

#[test]
fn missing_parameter_value() {
    // A parameter without a default (after one with, so the list is
    // recognized) must be supplied at every call site.
    let src = head(
        "macro M (SIZE=1, N) (A<0:SIZE-1>/P) -> (B<0:SIZE-1>/P);\n  buf (A) -> (B);\nend;\n\
         top;\n  use M (X) -> (Y);\nend;\n",
    );
    expect_expand_error(&src, "has no value");
}

#[test]
fn port_count_mismatch() {
    let src = head(
        "macro M (A/P, B/P) -> (Q/P);\n  and (A, B) -> (Q);\nend;\n\
         top;\n  use M (X) -> (Y);\nend;\n",
    );
    expect_expand_error(&src, "expects 2 input(s)");
}

#[test]
fn width_conflict_through_ports() {
    let src = head(
        "macro M8 (A<0:7>/P) -> (Q<0:7>/P);\n  buf (A) -> (Q);\nend;\n\
         macro M16 (A<0:15>/P) -> (Q<0:15>/P);\n  buf (A) -> (Q);\nend;\n\
         top;\n  use M8 (BUS) -> (Y8);\n  use M16 (BUS) -> (Y16);\nend;\n",
    );
    expect_expand_error(&src, "width");
}

#[test]
fn recursive_macro_detected() {
    let src = head(
        "macro LOOPY (A/P) -> (Q/P);\n  use LOOPY (A) -> (Q);\nend;\n\
         top;\n  use LOOPY (X) -> (Y);\nend;\n",
    );
    expect_expand_error(&src, "recursive");
}

#[test]
fn checker_with_output_rejected() {
    let src = head("top;\n  setup_hold setup=1.0 hold=1.0 (A, CK) -> (Q);\nend;\n");
    expect_expand_error(&src, "cannot drive an output");
}

#[test]
fn gate_without_output_rejected() {
    let src = head("top;\n  and (A, B);\nend;\n");
    expect_expand_error(&src, "exactly one output");
}

#[test]
fn complemented_output_rejected() {
    let src = head("top;\n  and (A, B) -> (-Q);\nend;\n");
    expect_expand_error(&src, "cannot be complemented");
}

#[test]
fn rise_fall_on_wrong_primitive() {
    let src = head("top;\n  and rise=1.0:2.0 (A, B) -> (Q);\nend;\n");
    expect_expand_error(&src, "only supported on not/buf");
}

#[test]
fn port_reference_with_assertion_rejected() {
    let src = head(
        "macro M (A/P) -> (Q/P);\n  buf ('A .S0-4') -> (Q);\nend;\n\
         top;\n  use M (X) -> (Y);\nend;\n",
    );
    expect_expand_error(&src, "cannot carry an assertion");
}

#[test]
fn multiple_drivers_caught_by_netlist_validation() {
    let src = head("top;\n  buf (A) -> (Q);\n  buf (B) -> (Q);\nend;\n");
    match compile(&src) {
        Err(HdlError::Netlist(e)) => {
            assert!(e.to_string().contains("driven by both"), "{e}");
        }
        other => panic!("expected netlist error, got {other:?}"),
    }
}

#[test]
fn error_messages_carry_line_numbers() {
    let src = head("top;\n  use NOPE (A) -> (B);\nend;\n");
    match compile(&src) {
        Err(e @ HdlError::Expand { line, .. }) => {
            assert_eq!(line, 3);
            assert!(e.to_string().contains("line 3"));
        }
        other => panic!("{other:?}"),
    }
}

#[test]
fn edge_delay_attrs_produce_asymmetric_primitive() {
    let src = head("top;\n  not rise=1.0:2.0 fall=3.0:5.0 ('A .P1.6-4.8 (0,0)') -> (B);\nend;\n");
    let expansion = compile(&src).expect("compiles");
    let prim = &expansion.netlist.prims()[0];
    let ed = prim.edge_delays.expect("asymmetric delays set");
    assert_eq!(ed.rise, scald_wave::DelayRange::from_ns(1.0, 2.0));
    assert_eq!(ed.fall, scald_wave::DelayRange::from_ns(3.0, 5.0));
    // The symmetric delay holds the conservative envelope.
    assert_eq!(prim.delay, scald_wave::DelayRange::from_ns(1.0, 5.0));
}
