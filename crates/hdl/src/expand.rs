//! The two-pass macro expander (§3.3.2, Table 3-1).
//!
//! Pass 1 walks the design hierarchy resolving names — binding actual
//! signals to macro ports, scoping `/M` locals to their instance path, and
//! unifying the bit widths of every reference to each signal (the
//! "synonym" resolution of the SCALD Macro Expander's first pass). Pass 2
//! walks again and emits the fully elaborated primitive netlist for the
//! Timing Verifier. The two passes are timed separately so the Table 3-1
//! statistics can be regenerated.

use scald_assertions::parse_signal_name;
use scald_logic::Value;
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, NetlistError, PrimKind, SignalId};
use scald_wave::{DelayRange, Skew, Time};
use std::collections::HashMap;
use std::fmt;
use std::time::{Duration, Instant};

use crate::ast::{range_width, AttrVal, ConnExpr, Design, Env, ScopeMark, Stmt};
use crate::parser::{parse, ParseError};

/// Maximum macro nesting depth before the expander assumes recursion.
const MAX_DEPTH: usize = 64;

/// Errors from parsing or expansion.
#[derive(Debug)]
pub enum HdlError {
    /// Lexical or syntactic error.
    Parse(ParseError),
    /// Semantic error during expansion.
    Expand {
        /// Explanation.
        message: String,
        /// Source line of the offending statement.
        line: u32,
    },
    /// The emitted netlist failed validation.
    Netlist(NetlistError),
}

impl fmt::Display for HdlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HdlError::Parse(e) => write!(f, "parse error: {e}"),
            HdlError::Expand { message, line } => {
                write!(f, "expansion error at line {line}: {message}")
            }
            HdlError::Netlist(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for HdlError {}

impl From<ParseError> for HdlError {
    fn from(e: ParseError) -> HdlError {
        HdlError::Parse(e)
    }
}

impl From<NetlistError> for HdlError {
    fn from(e: NetlistError) -> HdlError {
        HdlError::Netlist(e)
    }
}

/// Execution statistics for the expansion, mirroring the phases of
/// Table 3-1.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExpandStats {
    /// Macros defined in the library.
    pub macros_defined: usize,
    /// Macro instances expanded (all levels).
    pub instances_expanded: usize,
    /// Primitives emitted into the netlist.
    pub prims_emitted: usize,
    /// Distinct signals in the flattened design.
    pub signals: usize,
    /// Wall time of Pass 1 (name/width resolution).
    pub pass1: Duration,
    /// Wall time of Pass 2 (primitive emission).
    pub pass2: Duration,
}

/// A fully expanded design: the flat netlist plus the case-analysis
/// specifications and expansion statistics.
#[derive(Debug)]
pub struct Expansion {
    /// The validated flat netlist.
    pub netlist: Netlist,
    /// Case-analysis assignments from `case …;` statements (§2.7.1).
    pub cases: Vec<Vec<(String, bool)>>,
    /// Phase statistics (Table 3-1).
    pub stats: ExpandStats,
}

/// Parses and expands HDL source in one step.
///
/// # Errors
///
/// Returns the first parse, expansion or netlist-validation error.
pub fn compile(src: &str) -> Result<Expansion, HdlError> {
    let design = parse(src)?;
    expand(&design)
}

/// Expands a parsed [`Design`] into a flat netlist.
///
/// # Errors
///
/// Returns an [`HdlError::Expand`] for unknown macros/signals, width
/// conflicts, bad parameters or recursion; [`HdlError::Netlist`] if the
/// emitted netlist fails validation.
pub fn expand(design: &Design) -> Result<Expansion, HdlError> {
    let config = Config {
        timing: scald_assertions::TimingContext {
            period: Time::from_ns(design.period_ns),
            clock_unit: Time::from_ns(design.clock_unit_ns),
            precision_skew: Skew::from_ns(design.precision_skew_ns.0, design.precision_skew_ns.1),
            nonprecision_skew: Skew::from_ns(design.clock_skew_ns.0, design.clock_skew_ns.1),
        },
        default_wire_delay: DelayRange::from_ns(design.wire_delay_ns.0, design.wire_delay_ns.1),
    };

    // Pass 1: resolve names and unify widths.
    let t1 = Instant::now();
    let mut pass1 = Walker {
        design,
        widths: HashMap::new(),
        wire_delays: Vec::new(),
        wired_ors: Vec::new(),
        builder: None,
        instances: 0,
        prims: 0,
    };
    pass1.block(&design.top, &Env::new(), &HashMap::new(), "TOP", 0)?;
    let widths = pass1.widths;
    let wire_delays = pass1.wire_delays;
    let wired_ors = pass1.wired_ors;
    let instances = pass1.instances;
    let pass1_time = t1.elapsed();

    // Pass 2: emit primitives.
    let t2 = Instant::now();
    let mut builder = NetlistBuilder::new(config);
    let mut pass2 = Walker {
        design,
        widths,
        wire_delays: Vec::new(),
        wired_ors: Vec::new(),
        builder: Some(&mut builder),
        instances: 0,
        prims: 0,
    };
    pass2.block(&design.top, &Env::new(), &HashMap::new(), "TOP", 0)?;
    let prims = pass2.prims;
    // Apply per-signal wire-delay overrides (§2.5.3).
    for (name, min, max) in &wire_delays {
        let (base, _) = split(name, 0)?;
        let sid = match builder.find_signal(&base) {
            Some(sid) => sid,
            None => builder.signal(&base).map_err(HdlError::Netlist)?,
        };
        builder.set_wire_delay(sid, DelayRange::from_ns(*min, *max));
    }
    for name in &wired_ors {
        let (base, _) = split(name, 0)?;
        let sid = match builder.find_signal(&base) {
            Some(sid) => sid,
            None => builder.signal(&base).map_err(HdlError::Netlist)?,
        };
        builder.mark_wired_or(sid);
    }
    let netlist = builder.finish()?;
    let pass2_time = t2.elapsed();

    let stats = ExpandStats {
        macros_defined: design.macros.len(),
        instances_expanded: instances,
        prims_emitted: prims,
        signals: netlist.signals().len(),
        pass1: pass1_time,
        pass2: pass2_time,
    };
    Ok(Expansion {
        netlist,
        cases: design.cases.clone(),
        stats,
    })
}

/// A signal reference resolved to its flat name.
#[derive(Debug, Clone)]
struct Bound {
    /// Full flat name, including any assertion suffix.
    name: String,
    invert: bool,
    directive: Option<String>,
}

fn split(full: &str, line: u32) -> Result<(String, Option<String>), HdlError> {
    match parse_signal_name(full) {
        Ok((base, a)) => Ok((base, a.map(|a| a.to_string()))),
        Err(e) => Err(HdlError::Expand {
            message: e.to_string(),
            line,
        }),
    }
}

struct Walker<'a> {
    design: &'a Design,
    /// base name -> unified width (None = not yet constrained).
    widths: HashMap<String, Option<u32>>,
    wire_delays: Vec<(String, f64, f64)>,
    wired_ors: Vec<String>,
    builder: Option<&'a mut NetlistBuilder>,
    instances: usize,
    prims: usize,
}

impl<'a> Walker<'a> {
    fn err<T>(&self, line: u32, message: impl Into<String>) -> Result<T, HdlError> {
        Err(HdlError::Expand {
            message: message.into(),
            line,
        })
    }

    /// Resolves a connection reference in the current scope.
    fn resolve(
        &mut self,
        conn: &ConnExpr,
        env: &Env,
        bindings: &HashMap<String, Bound>,
        path: &str,
        line: u32,
    ) -> Result<Bound, HdlError> {
        let (base, assertion) = split(&conn.name, line)?;
        let width = match &conn.range {
            Some(_) => Some(
                range_width(&conn.range, env).map_err(|m| HdlError::Expand { message: m, line })?,
            ),
            None => None,
        };
        let bound = if let Some(actual) = bindings.get(&base) {
            if assertion.is_some() {
                return self.err(
                    line,
                    format!("macro port reference {base:?} cannot carry an assertion"),
                );
            }
            Bound {
                name: actual.name.clone(),
                invert: conn.invert ^ actual.invert,
                directive: conn.directive.clone().or_else(|| actual.directive.clone()),
            }
        } else {
            let flat_base = if conn.scope == Some(ScopeMark::Local) {
                format!("{path}/{base}")
            } else {
                base.clone()
            };
            let name = match &assertion {
                Some(a) => format!("{flat_base} {a}"),
                None => flat_base,
            };
            Bound {
                name,
                invert: conn.invert,
                directive: conn.directive.clone(),
            }
        };
        // Unify widths on the flat base name.
        let (flat_base, _) = split(&bound.name, line)?;
        let entry = self.widths.entry(flat_base.clone()).or_insert(None);
        match (*entry, width) {
            (None, w) => *entry = w,
            (Some(_), None) => {}
            (Some(a), Some(b)) if a == b => {}
            (Some(a), Some(b)) => {
                return self.err(
                    line,
                    format!("signal {flat_base:?} used with widths {a} and {b}"),
                )
            }
        }
        Ok(bound)
    }

    fn width_of(&self, bound: &Bound, line: u32) -> Result<u32, HdlError> {
        let (base, _) = split(&bound.name, line)?;
        Ok(self.widths.get(&base).copied().flatten().unwrap_or(1))
    }

    /// Declares the signal in the builder (pass 2 only) and returns a
    /// netlist connection.
    fn emit_conn(&mut self, bound: &Bound, line: u32) -> Result<Option<Conn>, HdlError> {
        let width = self.width_of(bound, line)?;
        let name = bound.name.clone();
        let Some(builder) = self.builder.as_deref_mut() else {
            return Ok(None);
        };
        let sid: SignalId = builder.signal_vec(&name, width)?;
        let mut conn = Conn::new(sid);
        if bound.invert {
            conn = conn.inverted();
        }
        if let Some(d) = &bound.directive {
            conn = conn.with_directive(d.clone());
        }
        Ok(Some(conn))
    }

    fn block(
        &mut self,
        stmts: &[Stmt],
        env: &Env,
        bindings: &HashMap<String, Bound>,
        path: &str,
        depth: usize,
    ) -> Result<(), HdlError> {
        if depth > MAX_DEPTH {
            return self.err(
                0,
                format!("macro nesting exceeds {MAX_DEPTH} levels; recursive macro?"),
            );
        }
        // Instance names are `{path}/{kind-or-macro}#{n}` where `n`
        // counts same-named statements *within this block only*. A
        // statement's generated name therefore depends only on the
        // statements above it in its own body — editing one macro body
        // never renames primitives expanded from another, which is what
        // lets incremental re-verification (`scald-incr`) match survivors
        // across a re-expansion.
        let mut ordinals: HashMap<&str, usize> = HashMap::new();
        fn next_ordinal<'k>(ordinals: &mut HashMap<&'k str, usize>, key: &'k str) -> usize {
            let n = ordinals.entry(key).or_insert(0);
            *n += 1;
            *n
        }
        for stmt in stmts {
            match stmt {
                Stmt::SignalDecl { conn, line } => {
                    self.resolve(conn, env, bindings, path, *line)?;
                }
                Stmt::WireDelay {
                    name,
                    min,
                    max,
                    line,
                } => {
                    let conn = ConnExpr {
                        invert: false,
                        name: name.clone(),
                        range: None,
                        scope: None,
                        directive: None,
                    };
                    let bound = self.resolve(&conn, env, bindings, path, *line)?;
                    self.wire_delays.push((bound.name, *min, *max));
                }
                Stmt::WiredOr { name, line } => {
                    let conn = ConnExpr {
                        invert: false,
                        name: name.clone(),
                        range: None,
                        scope: None,
                        directive: None,
                    };
                    let bound = self.resolve(&conn, env, bindings, path, *line)?;
                    self.wired_ors.push(bound.name);
                }
                Stmt::Prim {
                    kind,
                    attrs,
                    inputs,
                    outputs,
                    line,
                } => {
                    let n = next_ordinal(&mut ordinals, kind);
                    self.prim_stmt(kind, attrs, inputs, outputs, env, bindings, path, n, *line)?;
                }
                Stmt::Use {
                    name,
                    attrs,
                    inputs,
                    outputs,
                    line,
                } => {
                    let n = next_ordinal(&mut ordinals, name);
                    self.use_stmt(
                        name, attrs, inputs, outputs, env, bindings, path, depth, n, *line,
                    )?;
                }
            }
        }
        Ok(())
    }

    #[allow(clippy::too_many_arguments)]
    fn use_stmt(
        &mut self,
        name: &str,
        attrs: &[(String, AttrVal)],
        inputs: &[ConnExpr],
        outputs: &[ConnExpr],
        env: &Env,
        bindings: &HashMap<String, Bound>,
        path: &str,
        depth: usize,
        ordinal: usize,
        line: u32,
    ) -> Result<(), HdlError> {
        let mac = self
            .design
            .find_macro(name)
            .ok_or_else(|| HdlError::Expand {
                message: format!("unknown macro {name:?}"),
                line,
            })?;
        self.instances += 1;
        let inst_path = format!("{path}/{}#{ordinal}", mac.name);

        // Parameter environment: defaults, then call-site overrides.
        let mut callee_env = Env::new();
        for (p, default) in &mac.params {
            if let Some(d) = default {
                callee_env.insert(p.clone(), *d);
            }
        }
        for (key, val) in attrs {
            if !mac.params.iter().any(|(p, _)| p == key) {
                return self.err(line, format!("macro {name:?} has no parameter {key:?}"));
            }
            let AttrVal::Num(n) = val else {
                return self.err(line, format!("parameter {key:?} must be a number"));
            };
            if n.fract() != 0.0 {
                return self.err(line, format!("parameter {key:?} must be an integer"));
            }
            callee_env.insert(key.clone(), *n as i64);
        }
        for (p, _) in &mac.params {
            if !callee_env.contains_key(p) {
                return self.err(line, format!("macro {name:?} parameter {p:?} has no value"));
            }
        }

        if mac.inputs.len() != inputs.len() || mac.outputs.len() != outputs.len() {
            return self.err(
                line,
                format!(
                    "macro {name:?} expects {} input(s) and {} output(s), \
                     found {} and {}",
                    mac.inputs.len(),
                    mac.outputs.len(),
                    inputs.len(),
                    outputs.len()
                ),
            );
        }

        // Bind formals to resolved actuals, unifying the actual's width
        // with the formal port's declared width.
        let mut callee_bindings = HashMap::new();
        for (port, actual) in mac
            .inputs
            .iter()
            .chain(&mac.outputs)
            .zip(inputs.iter().chain(outputs))
        {
            let bound = self.resolve(actual, env, bindings, path, line)?;
            let port_width = range_width(&port.range, &callee_env)
                .map_err(|m| HdlError::Expand { message: m, line })?;
            let (flat_base, _) = split(&bound.name, line)?;
            let entry = self.widths.entry(flat_base.clone()).or_insert(None);
            match *entry {
                None => *entry = Some(port_width),
                Some(w) if w == port_width => {}
                Some(w) => {
                    return self.err(
                        line,
                        format!(
                            "signal {flat_base:?} (width {w}) connected to port \
                             {:?} of {name:?} (width {port_width})",
                            port.name
                        ),
                    )
                }
            }
            let (port_base, port_assertion) = split(&port.name, mac.line)?;
            if port_assertion.is_some() {
                return self.err(
                    mac.line,
                    format!("macro port {:?} cannot carry an assertion", port.name),
                );
            }
            callee_bindings.insert(port_base, bound);
        }

        self.block(
            &mac.body,
            &callee_env,
            &callee_bindings,
            &inst_path,
            depth + 1,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn prim_stmt(
        &mut self,
        kind: &str,
        attrs: &[(String, AttrVal)],
        inputs: &[ConnExpr],
        outputs: &[ConnExpr],
        env: &Env,
        bindings: &HashMap<String, Bound>,
        path: &str,
        ordinal: usize,
        line: u32,
    ) -> Result<(), HdlError> {
        let attr = |name: &str| -> Option<AttrVal> {
            attrs.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
        };
        let num_attr = |name: &str, default: f64| -> Result<f64, HdlError> {
            match attr(name) {
                None => Ok(default),
                Some(AttrVal::Num(n)) => Ok(n),
                Some(AttrVal::Range(..)) => Err(HdlError::Expand {
                    message: format!("attribute {name:?} must be a single number"),
                    line,
                }),
            }
        };
        let delay = match attr("delay") {
            None => DelayRange::ZERO,
            Some(AttrVal::Range(a, b)) => DelayRange::from_ns(a, b),
            Some(AttrVal::Num(n)) => DelayRange::from_ns(n, n),
        };
        // §4.2.2 extension: `rise=`/`fall=` on buffers and inverters give
        // separate edge delays.
        let range_attr = |name: &str| -> Result<Option<DelayRange>, HdlError> {
            match attr(name) {
                None => Ok(None),
                Some(AttrVal::Range(a, b)) => Ok(Some(DelayRange::from_ns(a, b))),
                Some(AttrVal::Num(n)) => Ok(Some(DelayRange::from_ns(n, n))),
            }
        };
        let edge_delays = match (range_attr("rise")?, range_attr("fall")?) {
            (None, None) => None,
            (rise, fall) => {
                if !matches!(kind, "not" | "buf") {
                    return self.err(
                        line,
                        format!("rise/fall delays are only supported on not/buf, not {kind:?}"),
                    );
                }
                let base = delay;
                Some(scald_netlist::EdgeDelays {
                    rise: rise.unwrap_or(base),
                    fall: fall.unwrap_or(base),
                })
            }
        };

        let prim_kind = match kind {
            "and" => PrimKind::And,
            "or" => PrimKind::Or,
            "nand" => PrimKind::Nand,
            "nor" => PrimKind::Nor,
            "xor" => PrimKind::Xor,
            "xnor" => PrimKind::Xnor,
            "not" => PrimKind::Not,
            "buf" => PrimKind::Buf,
            "chg" => PrimKind::Chg,
            "delay" => PrimKind::Delay,
            "const0" => PrimKind::Const(Value::Zero),
            "const1" => PrimKind::Const(Value::One),
            "mux" => PrimKind::Mux {
                data: u32::try_from(inputs.len().saturating_sub(1)).unwrap_or(0),
            },
            "reg" => PrimKind::Reg { set_reset: false },
            "reg_sr" => PrimKind::Reg { set_reset: true },
            "latch" => PrimKind::Latch { set_reset: false },
            "latch_sr" => PrimKind::Latch { set_reset: true },
            "setup_hold" => PrimKind::SetupHold {
                setup: Time::from_ns(num_attr("setup", 0.0)?),
                hold: Time::from_ns(num_attr("hold", 0.0)?),
            },
            "setup_rise_hold_fall" => PrimKind::SetupRiseHoldFall {
                setup: Time::from_ns(num_attr("setup", 0.0)?),
                hold: Time::from_ns(num_attr("hold", 0.0)?),
            },
            "min_pulse_width" => PrimKind::MinPulseWidth {
                high: Time::from_ns(num_attr("high", 0.0)?),
                low: Time::from_ns(num_attr("low", 0.0)?),
            },
            other => return self.err(line, format!("unknown primitive {other:?}")),
        };

        if prim_kind.has_output() && outputs.len() != 1 {
            return self.err(
                line,
                format!("primitive {kind:?} must drive exactly one output"),
            );
        }
        if !prim_kind.has_output() && !outputs.is_empty() {
            return self.err(line, format!("checker {kind:?} cannot drive an output"));
        }

        self.prims += 1;
        let inst_name = format!("{path}/{kind}#{ordinal}");

        let mut conns = Vec::with_capacity(inputs.len());
        for c in inputs {
            let bound = self.resolve(c, env, bindings, path, line)?;
            conns.push((bound, line));
        }
        let out_bound = match outputs.first() {
            Some(c) => Some(self.resolve(c, env, bindings, path, line)?),
            None => None,
        };
        if let Some(b) = &out_bound {
            if b.invert {
                return self.err(line, "outputs cannot be complemented; invert the input");
            }
        }

        if self.builder.is_some() {
            let mut netlist_conns = Vec::with_capacity(conns.len());
            for (bound, line) in &conns {
                let conn = self
                    .emit_conn(bound, *line)?
                    .expect("builder present in pass 2");
                netlist_conns.push(conn);
            }
            let out_sid = match &out_bound {
                Some(b) => {
                    let conn = self.emit_conn(b, line)?.expect("builder present");
                    Some(conn.signal)
                }
                None => None,
            };
            let builder = self.builder.as_deref_mut().expect("builder present");
            match edge_delays {
                Some(ed) if prim_kind == PrimKind::Not => {
                    let out = out_sid.expect("not has an output");
                    builder.not_asym(
                        inst_name,
                        ed.rise,
                        ed.fall,
                        netlist_conns.into_iter().next().expect("one input"),
                        out,
                    );
                }
                Some(ed) => {
                    let out = out_sid.expect("buf has an output");
                    builder.buf_asym(
                        inst_name,
                        ed.rise,
                        ed.fall,
                        netlist_conns.into_iter().next().expect("one input"),
                        out,
                    );
                }
                None => builder.prim(inst_name, prim_kind, delay, netlist_conns, out_sid),
            }
        }
        Ok(())
    }
}
