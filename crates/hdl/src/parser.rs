//! Recursive-descent parser for the SCALD-style HDL.
//!
//! File structure:
//!
//! ```text
//! design NAME;
//! period 50.0;              -- ns
//! clock_unit 6.25;          -- ns
//! wire_delay 0.0 2.0;       -- default interconnection delay (ns)
//! precision_skew 1.0 1.0;   -- .P default skew magnitudes (ns)
//! clock_skew 5.0 5.0;       -- .C default skew magnitudes (ns)
//!
//! macro 'REG 10176' (SIZE=1) ('CK', I<0:SIZE-1>/P) -> (Q<0:SIZE-1>/P);
//!   reg delay=1.5:4.5 (CK, I) -> (Q);
//!   setup_hold setup=2.5 hold=1.5 (I, CK);
//! end;
//!
//! top;
//!   use 'REG 10176' SIZE=32 ('CLK .P2-3', 'W DATA .S0-6') -> ('R OUT');
//! end;
//!
//! case 'CONTROL SIGNAL' = 0;
//! case 'CONTROL SIGNAL' = 1;
//! ```
//!
//! Primitive keywords: `and or nand nor xor xnor not buf chg mux reg
//! reg_sr latch latch_sr delay const0 const1 setup_hold
//! setup_rise_hold_fall min_pulse_width`.

use crate::ast::*;
use crate::token::{lex, Spanned, Token};
use std::fmt;

/// A parse (or lex) error with its source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Explanation.
    pub message: String,
    /// 1-based source line.
    pub line: u32,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for ParseError {}

/// The primitive keywords recognized in statement position.
pub const PRIM_KEYWORDS: &[&str] = &[
    "and",
    "or",
    "nand",
    "nor",
    "xor",
    "xnor",
    "not",
    "buf",
    "chg",
    "mux",
    "reg",
    "reg_sr",
    "latch",
    "latch_sr",
    "delay",
    "const0",
    "const1",
    "setup_hold",
    "setup_rise_hold_fall",
    "min_pulse_width",
];

/// Parses HDL source text into a [`Design`].
///
/// # Errors
///
/// Returns the first lexical or syntactic error with its line number.
pub fn parse(src: &str) -> Result<Design, ParseError> {
    let tokens = lex(src).map_err(|e| ParseError {
        message: e.message,
        line: e.line,
    })?;
    Parser { tokens, pos: 0 }.design()
}

struct Parser {
    tokens: Vec<Spanned>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|s| &s.token)
    }

    fn line(&self) -> u32 {
        self.tokens
            .get(self.pos.min(self.tokens.len().saturating_sub(1)))
            .map_or(0, |s| s.line)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|s| s.token.clone());
        self.pos += 1;
        t
    }

    fn err<T>(&self, msg: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: msg.into(),
            line: self.line(),
        })
    }

    fn expect(&mut self, want: &Token) -> Result<(), ParseError> {
        match self.peek() {
            Some(t) if t == want => {
                self.bump();
                Ok(())
            }
            other => {
                let found = other.map_or("end of file".to_owned(), ToString::to_string);
                self.err(format!("expected {want}, found {found}"))
            }
        }
    }

    fn ident(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Ident(_)) => {
                if let Some(Token::Ident(s)) = self.bump() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            other => {
                let found = other.map_or("end of file".to_owned(), ToString::to_string);
                self.err(format!("expected identifier, found {found}"))
            }
        }
    }

    /// A name: quoted string or bare identifier.
    fn name(&mut self) -> Result<String, ParseError> {
        match self.peek() {
            Some(Token::Quoted(_)) => {
                if let Some(Token::Quoted(s)) = self.bump() {
                    Ok(s)
                } else {
                    unreachable!()
                }
            }
            Some(Token::Ident(_)) => self.ident(),
            other => {
                let found = other.map_or("end of file".to_owned(), ToString::to_string);
                self.err(format!("expected a name, found {found}"))
            }
        }
    }

    fn number(&mut self) -> Result<f64, ParseError> {
        let neg = if self.peek() == Some(&Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        match self.bump() {
            Some(Token::Number(n)) => Ok(if neg { -n } else { n }),
            other => {
                let found = other.map_or("end of file".to_owned(), |t| t.to_string());
                self.err(format!("expected a number, found {found}"))
            }
        }
    }

    fn design(&mut self) -> Result<Design, ParseError> {
        let mut design = Design {
            name: String::new(),
            period_ns: 0.0,
            clock_unit_ns: 0.0,
            wire_delay_ns: (0.0, 2.0),
            precision_skew_ns: (1.0, 1.0),
            clock_skew_ns: (5.0, 5.0),
            macros: Vec::new(),
            top: Vec::new(),
            cases: Vec::new(),
        };
        let mut saw_top = false;
        while let Some(tok) = self.peek() {
            match tok {
                Token::Ident(kw) => match kw.as_str() {
                    "design" => {
                        self.bump();
                        design.name = self.name()?;
                        // Multi-word bare design names: keep consuming idents.
                        while let Some(Token::Ident(_)) = self.peek() {
                            let part = self.ident()?;
                            design.name.push(' ');
                            design.name.push_str(&part);
                        }
                        self.expect(&Token::Semi)?;
                    }
                    "period" => {
                        self.bump();
                        design.period_ns = self.number()?;
                        self.expect(&Token::Semi)?;
                    }
                    "clock_unit" => {
                        self.bump();
                        design.clock_unit_ns = self.number()?;
                        self.expect(&Token::Semi)?;
                    }
                    "wire_delay" => {
                        self.bump();
                        // `wire_delay a b;` (default) — the per-signal form
                        // lives inside `top`.
                        let a = self.number()?;
                        let b = self.number()?;
                        design.wire_delay_ns = (a, b);
                        self.expect(&Token::Semi)?;
                    }
                    "precision_skew" => {
                        self.bump();
                        let a = self.number()?.abs();
                        let b = self.number()?.abs();
                        design.precision_skew_ns = (a, b);
                        self.expect(&Token::Semi)?;
                    }
                    "clock_skew" => {
                        self.bump();
                        let a = self.number()?.abs();
                        let b = self.number()?.abs();
                        design.clock_skew_ns = (a, b);
                        self.expect(&Token::Semi)?;
                    }
                    "macro" => {
                        let m = self.macro_def()?;
                        design.macros.push(m);
                    }
                    "top" => {
                        self.bump();
                        self.expect(&Token::Semi)?;
                        design.top = self.stmt_block()?;
                        saw_top = true;
                    }
                    "case" => {
                        self.bump();
                        let mut assigns = Vec::new();
                        loop {
                            let name = self.name()?;
                            self.expect(&Token::Equals)?;
                            let v = self.number()?;
                            if v != 0.0 && v != 1.0 {
                                return self.err("case values must be 0 or 1");
                            }
                            assigns.push((name, v == 1.0));
                            if self.peek() == Some(&Token::Comma) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                        self.expect(&Token::Semi)?;
                        design.cases.push(assigns);
                    }
                    other => {
                        return self.err(format!("unexpected {other:?} at file level"));
                    }
                },
                other => {
                    let other = other.clone();
                    return self.err(format!("unexpected {other} at file level"));
                }
            }
        }
        if design.period_ns <= 0.0 {
            return self.err("design must specify a positive `period`");
        }
        if design.clock_unit_ns <= 0.0 {
            return self.err("design must specify a positive `clock_unit`");
        }
        if !saw_top {
            return self.err("design has no `top;` block");
        }
        Ok(design)
    }

    fn macro_def(&mut self) -> Result<MacroDef, ParseError> {
        let line = self.line();
        self.expect(&Token::Ident("macro".to_owned()))?;
        let mut name = self.name()?;
        // Multi-word bare macro names (e.g. `macro REG 10176 (...)`).
        while let Some(Token::Ident(_)) = self.peek() {
            let part = self.ident()?;
            name.push(' ');
            name.push_str(&part);
        }
        // Optional parameter list: (SIZE=1, N=4) — detected by lookahead
        // for IDENT '=' inside the parens.
        let mut params = Vec::new();
        if self.peek() == Some(&Token::LParen) && self.looks_like_params() {
            self.bump();
            loop {
                let p = self.ident()?;
                let default = if self.peek() == Some(&Token::Equals) {
                    self.bump();
                    Some(self.number()? as i64)
                } else {
                    None
                };
                params.push((p, default));
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
            self.expect(&Token::RParen)?;
        }
        let inputs = self.port_list()?;
        self.expect(&Token::Arrow)?;
        let outputs = self.port_list()?;
        self.expect(&Token::Semi)?;
        let body = self.stmt_block()?;
        Ok(MacroDef {
            name,
            params,
            inputs,
            outputs,
            body,
            line,
        })
    }

    /// Lookahead: does the upcoming paren group contain `IDENT =`?
    fn looks_like_params(&self) -> bool {
        matches!(
            (
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                self.tokens.get(self.pos + 2).map(|s| &s.token),
            ),
            (Some(Token::Ident(_)), Some(Token::Equals))
        )
    }

    fn port_list(&mut self) -> Result<Vec<Port>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut ports = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                let conn = self.conn()?;
                ports.push(Port {
                    name: conn.name,
                    range: conn.range,
                });
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(ports)
    }

    fn stmt_block(&mut self) -> Result<Vec<Stmt>, ParseError> {
        let mut stmts = Vec::new();
        loop {
            match self.peek() {
                Some(Token::Ident(kw)) if kw == "end" => {
                    self.bump();
                    self.expect(&Token::Semi)?;
                    return Ok(stmts);
                }
                Some(_) => stmts.push(self.stmt()?),
                None => return self.err("unexpected end of file; missing `end;`"),
            }
        }
    }

    fn stmt(&mut self) -> Result<Stmt, ParseError> {
        let line = self.line();
        let kw = match self.peek() {
            Some(Token::Ident(s)) => s.clone(),
            other => {
                let found = other.map_or("end of file".to_owned(), ToString::to_string);
                return self.err(format!("expected a statement, found {found}"));
            }
        };
        match kw.as_str() {
            "use" => {
                self.bump();
                let name = self.name()?;
                let attrs = self.attrs()?;
                let (inputs, outputs) = self.conn_groups()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Use {
                    name,
                    attrs,
                    inputs,
                    outputs,
                    line,
                })
            }
            "signal" => {
                self.bump();
                let conn = self.conn()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::SignalDecl { conn, line })
            }
            "wire_delay" => {
                self.bump();
                let name = self.name()?;
                let min = self.number()?;
                let max = self.number()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::WireDelay {
                    name,
                    min,
                    max,
                    line,
                })
            }
            "wired_or" => {
                self.bump();
                let name = self.name()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::WiredOr { name, line })
            }
            k if PRIM_KEYWORDS.contains(&k) => {
                self.bump();
                let attrs = self.attrs()?;
                let (inputs, outputs) = self.conn_groups()?;
                self.expect(&Token::Semi)?;
                Ok(Stmt::Prim {
                    kind: kw,
                    attrs,
                    inputs,
                    outputs,
                    line,
                })
            }
            other => self.err(format!(
                "unknown statement {other:?} (expected a primitive keyword, `use`, \
                 `signal`, `wire_delay` or `end`)"
            )),
        }
    }

    fn attrs(&mut self) -> Result<Vec<(String, AttrVal)>, ParseError> {
        let mut attrs = Vec::new();
        while let Some(Token::Ident(_)) = self.peek() {
            // IDENT '=' value
            if !matches!(
                self.tokens.get(self.pos + 1).map(|s| &s.token),
                Some(Token::Equals)
            ) {
                break;
            }
            let key = self.ident()?;
            self.expect(&Token::Equals)?;
            let a = self.number()?;
            let val = if self.peek() == Some(&Token::Colon) {
                self.bump();
                let b = self.number()?;
                AttrVal::Range(a, b)
            } else {
                AttrVal::Num(a)
            };
            attrs.push((key, val));
        }
        Ok(attrs)
    }

    fn conn_groups(&mut self) -> Result<(Vec<ConnExpr>, Vec<ConnExpr>), ParseError> {
        let inputs = self.conn_list()?;
        let outputs = if self.peek() == Some(&Token::Arrow) {
            self.bump();
            self.conn_list()?
        } else {
            Vec::new()
        };
        Ok((inputs, outputs))
    }

    fn conn_list(&mut self) -> Result<Vec<ConnExpr>, ParseError> {
        self.expect(&Token::LParen)?;
        let mut conns = Vec::new();
        if self.peek() != Some(&Token::RParen) {
            loop {
                conns.push(self.conn()?);
                if self.peek() == Some(&Token::Comma) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect(&Token::RParen)?;
        Ok(conns)
    }

    /// `[-] name [<expr:expr>] [/P|/M] [&DIRS]`
    fn conn(&mut self) -> Result<ConnExpr, ParseError> {
        let invert = if self.peek() == Some(&Token::Minus) {
            self.bump();
            true
        } else {
            false
        };
        let name = self.name()?;
        let range = if self.peek() == Some(&Token::LAngle) {
            self.bump();
            let a = self.expr()?;
            self.expect(&Token::Colon)?;
            let b = self.expr()?;
            self.expect(&Token::RAngle)?;
            Some((a, b))
        } else {
            None
        };
        let scope = if self.peek() == Some(&Token::Slash) {
            self.bump();
            match self.ident()?.as_str() {
                "P" => Some(ScopeMark::Parameter),
                "M" => Some(ScopeMark::Local),
                other => return self.err(format!("expected /P or /M, found /{other}")),
            }
        } else {
            None
        };
        let directive = if let Some(Token::Directive(_)) = self.peek() {
            if let Some(Token::Directive(d)) = self.bump() {
                Some(d)
            } else {
                unreachable!()
            }
        } else {
            None
        };
        Ok(ConnExpr {
            invert,
            name,
            range,
            scope,
            directive,
        })
    }

    /// Additive/multiplicative expression over parameters and integers.
    fn expr(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.term()?;
        loop {
            match self.peek() {
                Some(Token::Plus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = Expr::Add(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Minus) => {
                    self.bump();
                    let rhs = self.term()?;
                    lhs = Expr::Sub(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn term(&mut self) -> Result<Expr, ParseError> {
        let mut lhs = self.factor()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = Expr::Mul(Box::new(lhs), Box::new(rhs));
                }
                Some(Token::Slash) => {
                    // `/P` scope marks also start with a slash: only treat
                    // as division when followed by a factor-shaped token
                    // that is not P or M.
                    if let Some(Token::Ident(next)) =
                        self.tokens.get(self.pos + 1).map(|s| &s.token)
                    {
                        if next == "P" || next == "M" {
                            return Ok(lhs);
                        }
                    }
                    self.bump();
                    let rhs = self.factor()?;
                    lhs = Expr::Div(Box::new(lhs), Box::new(rhs));
                }
                _ => return Ok(lhs),
            }
        }
    }

    fn factor(&mut self) -> Result<Expr, ParseError> {
        match self.bump() {
            Some(Token::Number(n)) => {
                if n.fract() != 0.0 {
                    self.err("bit-range expressions must be integers")
                } else {
                    Ok(Expr::Num(n as i64))
                }
            }
            Some(Token::Ident(v)) => Ok(Expr::Var(v)),
            Some(Token::LParen) => {
                let e = self.expr()?;
                self.expect(&Token::RParen)?;
                Ok(e)
            }
            other => {
                let found = other.map_or("end of file".to_owned(), |t| t.to_string());
                self.err(format!("expected a range expression, found {found}"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const MINI: &str = r"
design MINI;
period 50.0;
clock_unit 6.25;

macro 'REG 10176' (SIZE=1) (CK, I<0:SIZE-1>/P) -> (Q<0:SIZE-1>/P);
  reg delay=1.5:4.5 (CK, I) -> (Q);
  setup_hold setup=2.5 hold=1.5 (I, CK);
end;

top;
  use 'REG 10176' SIZE=32 ('CLK .P2-3', 'W DATA .S0-6') -> ('R OUT');
end;
";

    #[test]
    fn parses_mini_design() {
        let d = parse(MINI).unwrap();
        assert_eq!(d.name, "MINI");
        assert_eq!(d.period_ns, 50.0);
        assert_eq!(d.clock_unit_ns, 6.25);
        assert_eq!(d.macros.len(), 1);
        let m = &d.macros[0];
        assert_eq!(m.name, "REG 10176");
        assert_eq!(m.params, vec![("SIZE".to_owned(), Some(1))]);
        assert_eq!(m.inputs.len(), 2);
        assert_eq!(m.outputs.len(), 1);
        assert_eq!(m.body.len(), 2);
        assert_eq!(d.top.len(), 1);
        match &d.top[0] {
            Stmt::Use {
                name,
                attrs,
                inputs,
                outputs,
                ..
            } => {
                assert_eq!(name, "REG 10176");
                assert_eq!(attrs[0], ("SIZE".to_owned(), AttrVal::Num(32.0)));
                assert_eq!(inputs[0].name, "CLK .P2-3");
                assert_eq!(outputs[0].name, "R OUT");
            }
            other => panic!("expected Use, got {other:?}"),
        }
    }

    #[test]
    fn parses_directives_and_inversion() {
        let src = r"
design D; period 50.0; clock_unit 6.25;
top;
  and delay=1.0:2.0 ('CK .P2-3 L' &HZ, -WRITE) -> (WE);
end;
";
        let d = parse(src).unwrap();
        match &d.top[0] {
            Stmt::Prim { kind, inputs, .. } => {
                assert_eq!(kind, "and");
                assert_eq!(inputs[0].directive.as_deref(), Some("HZ"));
                assert_eq!(inputs[0].name, "CK .P2-3 L");
                assert!(inputs[1].invert);
                assert_eq!(inputs[1].name, "WRITE");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_cases_and_wire_delays() {
        let src = r"
design D; period 50.0; clock_unit 6.25;
top;
  wire_delay 'ADR' 0.0 6.0;
  buf (A) -> (B);
end;
case 'CONTROL SIGNAL' = 0;
case 'CONTROL SIGNAL' = 1, OTHER = 0;
";
        let d = parse(src).unwrap();
        assert_eq!(d.cases.len(), 2);
        assert_eq!(d.cases[1].len(), 2);
        assert!(matches!(&d.top[0], Stmt::WireDelay { name, .. } if name == "ADR"));
    }

    #[test]
    fn parses_range_arithmetic() {
        let src = r"
design D; period 50.0; clock_unit 6.25;
macro M (N=4) (A<0:2*N-1>/P) -> (B<0:N/2>/P);
  buf (A) -> (B);
end;
top;
  use M N=8 (X) -> (Y);
end;
";
        let d = parse(src).unwrap();
        let m = &d.macros[0];
        let mut env = Env::new();
        env.insert("N".to_owned(), 8);
        assert_eq!(range_width(&m.inputs[0].range, &env).unwrap(), 16);
        assert_eq!(range_width(&m.outputs[0].range, &env).unwrap(), 5);
    }

    #[test]
    fn negative_attr_values() {
        // The thesis' register file uses a hold time of -1.0 ns.
        let src = r"
design D; period 50.0; clock_unit 6.25;
top;
  setup_hold setup=4.5 hold=-1.0 (I, -WE);
end;
";
        let d = parse(src).unwrap();
        match &d.top[0] {
            Stmt::Prim { attrs, .. } => {
                assert_eq!(attrs[1], ("hold".to_owned(), AttrVal::Num(-1.0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn rise_fall_attrs_parse() {
        let src = r"
design D; period 50.0; clock_unit 6.25;
top;
  not rise=1.0:2.0 fall=3.0:5.0 (A) -> (B);
end;
";
        let d = parse(src).unwrap();
        match &d.top[0] {
            Stmt::Prim { attrs, .. } => {
                assert_eq!(attrs[0], ("rise".to_owned(), AttrVal::Range(1.0, 2.0)));
                assert_eq!(attrs[1], ("fall".to_owned(), AttrVal::Range(3.0, 5.0)));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors_carry_line_numbers() {
        let src = "design D; period 50.0;\nclock_unit 6.25;\nbogus;\n";
        let e = parse(src).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }

    #[test]
    fn missing_config_rejected() {
        assert!(parse("design D; top; end;").is_err());
        assert!(parse("design D; period 50.0; clock_unit 6.25;").is_err());
    }
}
