//! Lexer for the SCALD-style hardware description language.
//!
//! The textual HDL stands in for SCALD's graphics-based macro drawings
//! (§3.1): the same semantic content — hierarchical macros with `SIZE`
//! parameters, bit-vector ports, signal names carrying assertions, and
//! `&`-directives — in a line-oriented syntax. Comments run from `--` to
//! the end of the line. Multi-word SCALD names (`'16W RAM 10145A'`,
//! `'CLK .P2-3 L'`) are single-quoted.

use std::fmt;

/// A lexical token.
#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    /// Bare identifier or keyword (`macro`, `reg`, `CK`, `SIZE`).
    Ident(String),
    /// Single-quoted string: a (possibly multi-word) signal or macro name,
    /// including any assertion suffix.
    Quoted(String),
    /// Integer or decimal number.
    Number(f64),
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `<`
    LAngle,
    /// `>`
    RAngle,
    /// `,`
    Comma,
    /// `;`
    Semi,
    /// `:`
    Colon,
    /// `=`
    Equals,
    /// `->`
    Arrow,
    /// `-` (unary minus / complement marker)
    Minus,
    /// `+`
    Plus,
    /// `*`
    Star,
    /// `/`
    Slash,
    /// `&` followed by directive letters, e.g. `&HZ`.
    Directive(String),
}

impl fmt::Display for Token {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Token::Ident(s) => write!(f, "{s}"),
            Token::Quoted(s) => write!(f, "'{s}'"),
            Token::Number(n) => write!(f, "{n}"),
            Token::LParen => write!(f, "("),
            Token::RParen => write!(f, ")"),
            Token::LAngle => write!(f, "<"),
            Token::RAngle => write!(f, ">"),
            Token::Comma => write!(f, ","),
            Token::Semi => write!(f, ";"),
            Token::Colon => write!(f, ":"),
            Token::Equals => write!(f, "="),
            Token::Arrow => write!(f, "->"),
            Token::Minus => write!(f, "-"),
            Token::Plus => write!(f, "+"),
            Token::Star => write!(f, "*"),
            Token::Slash => write!(f, "/"),
            Token::Directive(s) => write!(f, "&{s}"),
        }
    }
}

/// A token plus its 1-based source line, for error messages.
#[derive(Debug, Clone, PartialEq)]
pub struct Spanned {
    /// The token.
    pub token: Token,
    /// 1-based line number in the source text.
    pub line: u32,
}

/// A lexing error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// Explanation.
    pub message: String,
    /// 1-based line number.
    pub line: u32,
}

impl fmt::Display for LexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for LexError {}

/// Tokenizes HDL source text.
///
/// # Errors
///
/// Returns an error for unterminated quotes or unexpected characters.
pub fn lex(src: &str) -> Result<Vec<Spanned>, LexError> {
    let mut out = Vec::new();
    let mut line: u32 = 1;
    let mut chars = src.chars().peekable();
    while let Some(&c) = chars.peek() {
        match c {
            '\n' => {
                line += 1;
                chars.next();
            }
            c if c.is_whitespace() => {
                chars.next();
            }
            '-' => {
                chars.next();
                match chars.peek() {
                    Some('-') => {
                        // Comment to end of line.
                        for c in chars.by_ref() {
                            if c == '\n' {
                                line += 1;
                                break;
                            }
                        }
                    }
                    Some('>') => {
                        chars.next();
                        out.push(Spanned {
                            token: Token::Arrow,
                            line,
                        });
                    }
                    _ => out.push(Spanned {
                        token: Token::Minus,
                        line,
                    }),
                }
            }
            '\'' => {
                chars.next();
                let mut s = String::new();
                let mut closed = false;
                for c in chars.by_ref() {
                    if c == '\'' {
                        closed = true;
                        break;
                    }
                    if c == '\n' {
                        return Err(LexError {
                            message: "unterminated quoted name".to_owned(),
                            line,
                        });
                    }
                    s.push(c);
                }
                if !closed {
                    return Err(LexError {
                        message: "unterminated quoted name".to_owned(),
                        line,
                    });
                }
                out.push(Spanned {
                    token: Token::Quoted(s),
                    line,
                });
            }
            '&' => {
                chars.next();
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_uppercase() {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                if s.is_empty() {
                    return Err(LexError {
                        message: "'&' must be followed by directive letters".to_owned(),
                        line,
                    });
                }
                out.push(Spanned {
                    token: Token::Directive(s),
                    line,
                });
            }
            '(' | ')' | '<' | '>' | ',' | ';' | ':' | '=' | '+' | '*' | '/' => {
                chars.next();
                let token = match c {
                    '(' => Token::LParen,
                    ')' => Token::RParen,
                    '<' => Token::LAngle,
                    '>' => Token::RAngle,
                    ',' => Token::Comma,
                    ';' => Token::Semi,
                    ':' => Token::Colon,
                    '=' => Token::Equals,
                    '+' => Token::Plus,
                    '*' => Token::Star,
                    _ => Token::Slash,
                };
                out.push(Spanned { token, line });
            }
            c if c.is_ascii_digit() => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_ascii_digit() || c == '.' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                let n: f64 = s.parse().map_err(|_| LexError {
                    message: format!("invalid number {s:?}"),
                    line,
                })?;
                out.push(Spanned {
                    token: Token::Number(n),
                    line,
                });
            }
            c if c.is_alphanumeric() || c == '_' => {
                let mut s = String::new();
                while let Some(&c) = chars.peek() {
                    if c.is_alphanumeric() || c == '_' {
                        s.push(c);
                        chars.next();
                    } else {
                        break;
                    }
                }
                out.push(Spanned {
                    token: Token::Ident(s),
                    line,
                });
            }
            other => {
                return Err(LexError {
                    message: format!("unexpected character {other:?}"),
                    line,
                })
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lex(src).unwrap().into_iter().map(|s| s.token).collect()
    }

    #[test]
    fn basic_tokens() {
        assert_eq!(
            toks("macro FOO (A) -> (Q);"),
            vec![
                Token::Ident("macro".into()),
                Token::Ident("FOO".into()),
                Token::LParen,
                Token::Ident("A".into()),
                Token::RParen,
                Token::Arrow,
                Token::LParen,
                Token::Ident("Q".into()),
                Token::RParen,
                Token::Semi,
            ]
        );
    }

    #[test]
    fn quoted_names_and_directives() {
        assert_eq!(
            toks("'CLK .P2-3 L' &HZ"),
            vec![
                Token::Quoted("CLK .P2-3 L".into()),
                Token::Directive("HZ".into()),
            ]
        );
    }

    #[test]
    fn numbers_and_ranges() {
        assert_eq!(
            toks("delay=1.5:4.5 I<0:SIZE-1>"),
            vec![
                Token::Ident("delay".into()),
                Token::Equals,
                Token::Number(1.5),
                Token::Colon,
                Token::Number(4.5),
                Token::Ident("I".into()),
                Token::LAngle,
                Token::Number(0.0),
                Token::Colon,
                Token::Ident("SIZE".into()),
                Token::Minus,
                Token::Number(1.0),
                Token::RAngle,
            ]
        );
    }

    #[test]
    fn comments_are_skipped() {
        assert_eq!(
            toks("period 50.0; -- the cycle time\nclock_unit 6.25;"),
            vec![
                Token::Ident("period".into()),
                Token::Number(50.0),
                Token::Semi,
                Token::Ident("clock_unit".into()),
                Token::Number(6.25),
                Token::Semi,
            ]
        );
    }

    #[test]
    fn line_numbers_track() {
        let spanned = lex("a\nb\nc").unwrap();
        assert_eq!(
            spanned.iter().map(|s| s.line).collect::<Vec<_>>(),
            vec![1, 2, 3]
        );
    }

    #[test]
    fn errors() {
        assert!(lex("'unterminated").is_err());
        assert!(lex("& x").is_err());
        assert!(lex("1.2.3").is_err());
        let e = lex("\n\n@").unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.to_string().contains("line 3"));
    }
}
