//! SCALD-style hardware description language: parser and two-pass macro
//! expander.
//!
//! SCALD described designs as graphics-based hierarchical macro drawings
//! (§3.1); this crate provides a text-format equivalent with the same
//! semantic features:
//!
//! * hierarchical **macros** with integer parameters (`SIZE=32`) and
//!   bit-vector ports (`I<0:SIZE-1>`),
//! * **signal names that carry assertions** (`'CLK .P2-3'`,
//!   `'W DATA .S0-6'`, §2.5) so every reference agrees on timing,
//! * `/P` parameter and `/M` macro-local scope markers,
//! * complemented connections (`-WE`) and `&`-directive strings (`&HZ`,
//!   §2.6),
//! * per-signal wire-delay overrides and **case-analysis** blocks (§2.7.1).
//!
//! [`compile`] parses and expands in one call; [`parse`] and [`expand`]
//! expose the two phases so the Table 3-1 statistics (read / Pass 1 /
//! Pass 2) can be measured separately.
//!
//! ```
//! let src = r"
//! design MINI; period 50.0; clock_unit 6.25;
//! macro DFF (SIZE=1) (CK, I<0:SIZE-1>/P) -> (Q<0:SIZE-1>/P);
//!   reg delay=1.5:4.5 (CK, I) -> (Q);
//!   setup_hold setup=2.5 hold=1.5 (I, CK);
//! end;
//! top;
//!   use DFF SIZE=32 ('CLK .P2-3', 'W DATA .S0-6') -> ('R OUT');
//! end;
//! ";
//! let expansion = scald_hdl::compile(src)?;
//! assert_eq!(expansion.netlist.prims().len(), 2);
//! assert_eq!(expansion.stats.instances_expanded, 1);
//! # Ok::<(), scald_hdl::HdlError>(())
//! ```

#![warn(missing_docs)]

pub mod ast;
mod expand;
mod parser;
mod printer;
mod token;

pub use expand::{compile, expand, ExpandStats, Expansion, HdlError};
pub use parser::{parse, ParseError, PRIM_KEYWORDS};
pub use printer::print;
pub use token::{lex, LexError, Spanned, Token};
