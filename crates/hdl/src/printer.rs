//! Pretty-printer: renders a parsed [`Design`] back to canonical HDL text.
//!
//! `parse(print(design))` reconstructs an identical AST (up to number
//! formatting), which the round-trip property tests verify. Useful for
//! emitting machine-generated designs (the S-1-like generator), for
//! normalizing hand-written sources, and as a debugging aid.

use crate::ast::{AttrVal, ConnExpr, Design, Expr, MacroDef, Port, ScopeMark, Stmt};
use std::fmt::Write;

/// Renders a design to canonical HDL source text.
#[must_use]
pub fn print(design: &Design) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "design {};", name_token(&design.name));
    let _ = writeln!(out, "period {};", fmt_num(design.period_ns));
    let _ = writeln!(out, "clock_unit {};", fmt_num(design.clock_unit_ns));
    let _ = writeln!(
        out,
        "wire_delay {} {};",
        fmt_num(design.wire_delay_ns.0),
        fmt_num(design.wire_delay_ns.1)
    );
    let _ = writeln!(
        out,
        "precision_skew {} {};",
        fmt_num(design.precision_skew_ns.0),
        fmt_num(design.precision_skew_ns.1)
    );
    let _ = writeln!(
        out,
        "clock_skew {} {};",
        fmt_num(design.clock_skew_ns.0),
        fmt_num(design.clock_skew_ns.1)
    );
    for m in &design.macros {
        out.push('\n');
        print_macro(&mut out, m);
    }
    out.push_str("\ntop;\n");
    for s in &design.top {
        print_stmt(&mut out, s);
    }
    out.push_str("end;\n");
    for case in &design.cases {
        let assigns: Vec<String> = case
            .iter()
            .map(|(s, v)| format!("{} = {}", name_token(s), u8::from(*v)))
            .collect();
        let _ = writeln!(out, "case {};", assigns.join(", "));
    }
    out
}

fn fmt_num(x: f64) -> String {
    if x.fract() == 0.0 && x.abs() < 1e15 {
        format!("{:.1}", x)
    } else {
        format!("{x}")
    }
}

/// Quotes a name unless it is a single bare identifier.
fn name_token(name: &str) -> String {
    let bare = !name.is_empty()
        && name.chars().all(|c| c.is_alphanumeric() || c == '_')
        && !name.chars().next().is_some_and(|c| c.is_ascii_digit());
    if bare {
        name.to_owned()
    } else {
        format!("'{name}'")
    }
}

fn print_expr(e: &Expr) -> String {
    match e {
        Expr::Num(n) => n.to_string(),
        Expr::Var(v) => v.clone(),
        Expr::Add(a, b) => format!("({}+{})", print_expr(a), print_expr(b)),
        Expr::Sub(a, b) => format!("({}-{})", print_expr(a), print_expr(b)),
        Expr::Mul(a, b) => format!("({}*{})", print_expr(a), print_expr(b)),
        Expr::Div(a, b) => format!("({}/{})", print_expr(a), print_expr(b)),
    }
}

fn print_port(p: &Port) -> String {
    let mut s = name_token(&p.name);
    if let Some((a, b)) = &p.range {
        let _ = write!(s, "<{}:{}>", print_expr(a), print_expr(b));
    }
    s
}

fn print_conn(c: &ConnExpr) -> String {
    let mut s = String::new();
    if c.invert {
        s.push('-');
    }
    s.push_str(&name_token(&c.name));
    if let Some((a, b)) = &c.range {
        let _ = write!(s, "<{}:{}>", print_expr(a), print_expr(b));
    }
    match c.scope {
        Some(ScopeMark::Parameter) => s.push_str("/P"),
        Some(ScopeMark::Local) => s.push_str("/M"),
        None => {}
    }
    if let Some(d) = &c.directive {
        let _ = write!(s, " &{d}");
    }
    s
}

fn print_attr(key: &str, val: &AttrVal) -> String {
    match val {
        AttrVal::Num(n) => format!("{key}={}", fmt_num(*n)),
        AttrVal::Range(a, b) => format!("{key}={}:{}", fmt_num(*a), fmt_num(*b)),
    }
}

fn print_conn_groups(out: &mut String, inputs: &[ConnExpr], outputs: &[ConnExpr]) {
    let ins: Vec<String> = inputs.iter().map(print_conn).collect();
    let _ = write!(out, "({})", ins.join(", "));
    if !outputs.is_empty() {
        let outs: Vec<String> = outputs.iter().map(print_conn).collect();
        let _ = write!(out, " -> ({})", outs.join(", "));
    }
}

fn print_stmt(out: &mut String, s: &Stmt) {
    match s {
        Stmt::Prim {
            kind,
            attrs,
            inputs,
            outputs,
            ..
        } => {
            let _ = write!(out, "  {kind}");
            for (k, v) in attrs {
                let _ = write!(out, " {}", print_attr(k, v));
            }
            out.push(' ');
            print_conn_groups(out, inputs, outputs);
            out.push_str(";\n");
        }
        Stmt::Use {
            name,
            attrs,
            inputs,
            outputs,
            ..
        } => {
            let _ = write!(out, "  use {}", name_token(name));
            for (k, v) in attrs {
                let _ = write!(out, " {}", print_attr(k, v));
            }
            out.push(' ');
            print_conn_groups(out, inputs, outputs);
            out.push_str(";\n");
        }
        Stmt::SignalDecl { conn, .. } => {
            let _ = writeln!(out, "  signal {};", print_conn(conn));
        }
        Stmt::WiredOr { name, .. } => {
            let _ = writeln!(out, "  wired_or {};", name_token(name));
        }
        Stmt::WireDelay { name, min, max, .. } => {
            let _ = writeln!(
                out,
                "  wire_delay {} {} {};",
                name_token(name),
                fmt_num(*min),
                fmt_num(*max)
            );
        }
    }
}

fn print_macro(out: &mut String, m: &MacroDef) {
    let _ = write!(out, "macro {}", name_token(&m.name));
    if !m.params.is_empty() {
        let params: Vec<String> = m
            .params
            .iter()
            .map(|(p, d)| match d {
                Some(d) => format!("{p}={d}"),
                None => p.clone(),
            })
            .collect();
        let _ = write!(out, " ({})", params.join(", "));
    }
    let ins: Vec<String> = m.inputs.iter().map(print_port).collect();
    let outs: Vec<String> = m.outputs.iter().map(print_port).collect();
    let _ = writeln!(out, " ({}) -> ({});", ins.join(", "), outs.join(", "));
    for s in &m.body {
        print_stmt(out, s);
    }
    out.push_str("end;\n");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    /// Strips source-line fields so ASTs can be compared structurally.
    fn strip(design: &mut Design) {
        fn strip_stmt(s: &mut Stmt) {
            match s {
                Stmt::Prim { line, .. }
                | Stmt::Use { line, .. }
                | Stmt::SignalDecl { line, .. }
                | Stmt::WiredOr { line, .. }
                | Stmt::WireDelay { line, .. } => *line = 0,
            }
        }
        for m in &mut design.macros {
            m.line = 0;
            for s in &mut m.body {
                strip_stmt(s);
            }
        }
        for s in &mut design.top {
            strip_stmt(s);
        }
    }

    #[test]
    fn round_trip_register_file() {
        let src = r"
design REGFILE; period 50.0; clock_unit 6.25;
macro 'REG 10176' (SIZE=1) (CK, I<0:SIZE-1>/P) -> (Q<0:SIZE-1>/P);
  reg delay=1.5:4.5 (CK, I) -> (Q);
  setup_hold setup=2.5 hold=-1.0 (I, -CK);
end;
top;
  wire_delay 'ADR' 0.0 6.0;
  and delay=1.0:2.9 (-'CK .P2-3 L' &HZ, X) -> (WE);
  use 'REG 10176' SIZE=32 ('CLK .P2-3', 'W DATA .S0-6') -> ('R OUT');
end;
case 'CONTROL' = 0;
case 'CONTROL' = 1, OTHER = 0;
";
        let mut first = parse(src).unwrap();
        let printed = print(&first);
        let mut second = parse(&printed)
            .unwrap_or_else(|e| panic!("printed text failed to parse: {e}\n{printed}"));
        strip(&mut first);
        strip(&mut second);
        assert_eq!(first, second, "printed:\n{printed}");
    }

    #[test]
    fn round_trip_preserves_range_arithmetic() {
        let src = r"
design D; period 50.0; clock_unit 6.25;
macro M (N=4) (A<0:2*N-1>/P) -> (B<0:N/2>/P);
  buf (A) -> (B);
end;
top;
  use M N=8 (X) -> (Y);
end;
";
        let mut first = parse(src).unwrap();
        let printed = print(&first);
        let mut second = parse(&printed).unwrap();
        strip(&mut first);
        strip(&mut second);
        assert_eq!(first, second, "printed:\n{printed}");
    }

    #[test]
    fn names_quote_only_when_needed() {
        assert_eq!(name_token("CK"), "CK");
        assert_eq!(name_token("W DATA .S0-6"), "'W DATA .S0-6'");
        assert_eq!(name_token("2OR"), "'2OR'");
    }
}
