//! Abstract syntax for the SCALD-style HDL.

/// An integer expression over macro parameters, as used in bit ranges:
/// `I<0:SIZE-1>` (§3.1).
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// Integer literal.
    Num(i64),
    /// Parameter reference (`SIZE`).
    Var(String),
    /// Sum.
    Add(Box<Expr>, Box<Expr>),
    /// Difference.
    Sub(Box<Expr>, Box<Expr>),
    /// Product.
    Mul(Box<Expr>, Box<Expr>),
    /// Integer quotient.
    Div(Box<Expr>, Box<Expr>),
}

/// Signal scope marker: `/P` parameter, `/M` macro-local (§3.1). Unmarked
/// signals are global.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScopeMark {
    /// `/P`: the signal is a parameter of the enclosing macro.
    Parameter,
    /// `/M`: the signal is local to the macro instance.
    Local,
}

/// A macro port: name, optional bit range and scope marker.
#[derive(Debug, Clone, PartialEq)]
pub struct Port {
    /// Base name.
    pub name: String,
    /// Bit range `<hi:lo>` (either order); `None` for scalars.
    pub range: Option<(Expr, Expr)>,
}

/// A signal reference in a statement: optional complement (`-`), the full
/// name text (which may include an assertion suffix), optional bit range,
/// scope mark and directive string.
#[derive(Debug, Clone, PartialEq)]
pub struct ConnExpr {
    /// Leading `-`: use the complement (Fig 3-5's `- WE`).
    pub invert: bool,
    /// Full name text as written, possibly with an assertion suffix.
    pub name: String,
    /// Bit range, used for width consistency checks.
    pub range: Option<(Expr, Expr)>,
    /// `/P` or `/M` scope marker.
    pub scope: Option<ScopeMark>,
    /// `&`-directive string (§2.6).
    pub directive: Option<String>,
}

/// An attribute value: `delay=1.5:4.5` is a range, `setup=2.5` a number.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AttrVal {
    /// Single number.
    Num(f64),
    /// `min:max` pair.
    Range(f64, f64),
}

/// One body statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Stmt {
    /// A built-in primitive instantiation.
    Prim {
        /// Primitive keyword (`reg`, `or`, `setup_hold`, …).
        kind: String,
        /// Attributes (`delay=…`, `setup=…`).
        attrs: Vec<(String, AttrVal)>,
        /// Input connections.
        inputs: Vec<ConnExpr>,
        /// Output connections (empty for checkers).
        outputs: Vec<ConnExpr>,
        /// Source line.
        line: u32,
    },
    /// A macro instantiation: `use 'REG 10176' SIZE=32 (…) -> (…);`.
    Use {
        /// Macro name.
        name: String,
        /// Parameter assignments.
        attrs: Vec<(String, AttrVal)>,
        /// Actual input connections.
        inputs: Vec<ConnExpr>,
        /// Actual output connections.
        outputs: Vec<ConnExpr>,
        /// Source line.
        line: u32,
    },
    /// A width declaration: `signal TMP<0:31>/M;`.
    SignalDecl {
        /// The declared connection (name, range, scope).
        conn: ConnExpr,
        /// Source line.
        line: u32,
    },
    /// Marks a signal as a wired-OR bus: `wired_or 'READ BUS';` (the ECL
    /// memory-expansion idiom of Fig 3-1).
    WiredOr {
        /// Signal name.
        name: String,
        /// Source line.
        line: u32,
    },
    /// A per-signal wire delay override: `wire_delay 'ADR' 0.0 6.0;`
    /// (§2.5.3).
    WireDelay {
        /// Signal name.
        name: String,
        /// Minimum delay in ns.
        min: f64,
        /// Maximum delay in ns.
        max: f64,
        /// Source line.
        line: u32,
    },
}

/// A macro definition (§3.1, Fig 3-5).
#[derive(Debug, Clone, PartialEq)]
pub struct MacroDef {
    /// Macro name (may contain spaces, like `16W RAM 10145A`).
    pub name: String,
    /// Parameters with optional defaults (`SIZE=1`).
    pub params: Vec<(String, Option<i64>)>,
    /// Input ports.
    pub inputs: Vec<Port>,
    /// Output ports.
    pub outputs: Vec<Port>,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Source line of the definition.
    pub line: u32,
}

/// A parsed design file: configuration, macro library, top-level
/// statements and case-analysis specifications.
#[derive(Debug, Clone, PartialEq)]
pub struct Design {
    /// Design name.
    pub name: String,
    /// Clock period in ns (§2.2).
    pub period_ns: f64,
    /// Clock unit in ns (§2.3).
    pub clock_unit_ns: f64,
    /// Default wire delay `(min, max)` in ns (§2.5.3).
    pub wire_delay_ns: (f64, f64),
    /// Default precision-clock skew magnitudes `(minus, plus)` in ns.
    pub precision_skew_ns: (f64, f64),
    /// Default non-precision-clock skew magnitudes in ns.
    pub clock_skew_ns: (f64, f64),
    /// Macro library, in definition order.
    pub macros: Vec<MacroDef>,
    /// Top-level statements.
    pub top: Vec<Stmt>,
    /// Case-analysis specifications (§2.7.1): each case is a list of
    /// `signal = 0/1` assignments.
    pub cases: Vec<Vec<(String, bool)>>,
}

impl Design {
    /// Looks up a macro by name.
    #[must_use]
    pub fn find_macro(&self, name: &str) -> Option<&MacroDef> {
        self.macros.iter().find(|m| m.name == name)
    }
}

/// Evaluation environment for [`Expr`]: macro parameter values.
pub type Env = std::collections::HashMap<String, i64>;

impl Expr {
    /// Evaluates the expression under the given parameter bindings.
    ///
    /// # Errors
    ///
    /// Returns the name of an unbound variable, or a division-by-zero
    /// message.
    pub fn eval(&self, env: &Env) -> Result<i64, String> {
        match self {
            Expr::Num(n) => Ok(*n),
            Expr::Var(v) => env
                .get(v)
                .copied()
                .ok_or_else(|| format!("unbound parameter {v:?}")),
            Expr::Add(a, b) => Ok(a.eval(env)? + b.eval(env)?),
            Expr::Sub(a, b) => Ok(a.eval(env)? - b.eval(env)?),
            Expr::Mul(a, b) => Ok(a.eval(env)? * b.eval(env)?),
            Expr::Div(a, b) => {
                let d = b.eval(env)?;
                if d == 0 {
                    Err("division by zero in range expression".to_owned())
                } else {
                    Ok(a.eval(env)? / d)
                }
            }
        }
    }
}

/// Width of an optional bit range under `env`: `|hi - lo| + 1`, or 1 for
/// scalars.
///
/// # Errors
///
/// Propagates [`Expr::eval`] errors.
pub fn range_width(range: &Option<(Expr, Expr)>, env: &Env) -> Result<u32, String> {
    match range {
        None => Ok(1),
        Some((a, b)) => {
            let a = a.eval(env)?;
            let b = b.eval(env)?;
            Ok(u32::try_from((a - b).abs() + 1).expect("width fits in u32"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn expr_eval() {
        let mut env = Env::new();
        env.insert("SIZE".to_owned(), 32);
        let e = Expr::Sub(
            Box::new(Expr::Var("SIZE".to_owned())),
            Box::new(Expr::Num(1)),
        );
        assert_eq!(e.eval(&env).unwrap(), 31);
        assert!(Expr::Var("NOPE".to_owned()).eval(&env).is_err());
        let div = Expr::Div(Box::new(Expr::Num(8)), Box::new(Expr::Num(0)));
        assert!(div.eval(&env).is_err());
    }

    #[test]
    fn range_widths() {
        let mut env = Env::new();
        env.insert("SIZE".to_owned(), 32);
        assert_eq!(range_width(&None, &env).unwrap(), 1);
        let r = Some((
            Expr::Num(0),
            Expr::Sub(
                Box::new(Expr::Var("SIZE".to_owned())),
                Box::new(Expr::Num(1)),
            ),
        ));
        assert_eq!(range_width(&r, &env).unwrap(), 32);
        // Descending ranges have the same width.
        let r = Some((Expr::Num(31), Expr::Num(0)));
        assert_eq!(range_width(&r, &env).unwrap(), 32);
    }
}
