//! Circular time intervals within one clock period.
//!
//! All assertions and signal values in the Timing Verifier are periodic
//! (§2.1), so an interval like "stable from time 4 to time 9" on an 8-unit
//! cycle wraps around the end of the period (§3.2). [`Span`] captures such
//! intervals: a start instant in `[0, period)` plus a width in
//! `[0, period]`.

use crate::Time;

/// A circular interval within a clock period: `[start, start + width)`,
/// with all instants taken modulo the period.
///
/// A zero-width span represents an instant (e.g. an ideal clock edge with
/// no skew). A span whose width equals the period covers the whole cycle.
///
/// ```
/// use scald_wave::{Span, Time};
/// let period = Time::from_ns(50.0);
/// // "Stable from 25 to 55" wraps: it covers 25..50 and 0..5.
/// let s = Span::wrapping(Time::from_ns(25.0), Time::from_ns(55.0), period);
/// assert!(s.contains(Time::from_ns(40.0), period));
/// assert!(s.contains(Time::from_ns(2.0), period));
/// assert!(!s.contains(Time::from_ns(10.0), period));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Span {
    start: Time,
    width: Time,
}

impl Span {
    /// Creates a span from a start instant and width.
    ///
    /// The start is wrapped into `[0, period)`; the width is clamped to at
    /// most one full period (an interval can never cover more than the
    /// whole cycle).
    ///
    /// # Panics
    ///
    /// Panics if `width` is negative or `period` is not positive.
    #[must_use]
    pub fn new(start: Time, width: Time, period: Time) -> Span {
        assert!(!width.is_negative(), "span width must be non-negative");
        Span {
            start: start.rem_period(period),
            width: width.min(period),
        }
    }

    /// Creates a span from a start and *end* instant, where the end may be
    /// numerically before the start (the interval then wraps around the
    /// period) or beyond it.
    ///
    /// If `start == end` (mod period) the span is empty (width 0), matching
    /// the convention that `.S4-4` asserts stability at a single instant.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    #[must_use]
    pub fn wrapping(start: Time, end: Time, period: Time) -> Span {
        let s = start.rem_period(period);
        let e = end.rem_period(period);
        let width = (e - s).rem_period(period);
        Span { start: s, width }
    }

    /// A span covering the entire period.
    #[must_use]
    pub fn full(period: Time) -> Span {
        Span {
            start: Time::ZERO,
            width: period,
        }
    }

    /// A zero-width span marking a single instant.
    #[must_use]
    pub fn instant(at: Time, period: Time) -> Span {
        Span {
            start: at.rem_period(period),
            width: Time::ZERO,
        }
    }

    /// The start instant, in `[0, period)`.
    #[must_use]
    pub fn start(self) -> Time {
        self.start
    }

    /// The width of the interval.
    #[must_use]
    pub fn width(self) -> Time {
        self.width
    }

    /// The end instant, wrapped into `[0, period)`. For a full-period span
    /// the end equals the start.
    #[must_use]
    pub fn end(self, period: Time) -> Time {
        (self.start + self.width).rem_period(period)
    }

    /// `true` if the span has zero width.
    #[must_use]
    pub fn is_empty(self) -> bool {
        self.width == Time::ZERO
    }

    /// `true` if the span covers the whole period.
    #[must_use]
    pub fn is_full(self, period: Time) -> bool {
        self.width == period
    }

    /// Whether the instant `t` (mod period) lies within the span.
    ///
    /// A zero-width span contains exactly its start instant; a full-period
    /// span contains everything.
    #[must_use]
    pub fn contains(self, t: Time, period: Time) -> bool {
        if self.is_full(period) {
            return true;
        }
        let rel = (t.rem_period(period) - self.start).rem_period(period);
        rel < self.width || (self.is_empty() && rel == Time::ZERO)
    }

    /// Grows the span by `before` on the early side and `after` on the late
    /// side, clamping to at most the full period.
    ///
    /// This is how a set-up/hold requirement turns a clock-edge window into
    /// the interval over which the data input must be quiescent: the edge
    /// window expanded by the set-up time before and the hold time after
    /// (§2.4.4).
    ///
    /// # Panics
    ///
    /// Panics if `before` or `after` is negative.
    #[must_use]
    pub fn expanded(self, before: Time, after: Time, period: Time) -> Span {
        assert!(
            !before.is_negative() && !after.is_negative(),
            "expansion amounts must be non-negative"
        );
        let width = self.width + before + after;
        Span::new(self.start - before, width, period)
    }

    /// Splits a circular span into one or two non-wrapping `(start, end)`
    /// pieces with `start <= end`, both within `[0, period]`.
    ///
    /// Zero-width spans produce a single degenerate piece.
    #[must_use]
    pub fn linear_pieces(self, period: Time) -> Vec<(Time, Time)> {
        let end = self.start + self.width;
        if end <= period {
            vec![(self.start, end)]
        } else {
            vec![(self.start, period), (Time::ZERO, end.rem_period(period))]
        }
    }

    /// Whether two spans overlap (share at least one instant; touching
    /// endpoints do not count, but a zero-width span overlapping the
    /// interior of another does).
    #[must_use]
    pub fn overlaps(self, other: Span, period: Time) -> bool {
        if self.is_empty() {
            return other.contains(self.start, period);
        }
        if other.is_empty() {
            return self.contains(other.start, period);
        }
        for (a0, a1) in self.linear_pieces(period) {
            for (b0, b1) in other.linear_pieces(period) {
                if a0 < b1 && b0 < a1 {
                    return true;
                }
            }
        }
        false
    }
}

impl std::fmt::Display for Span {
    /// Formats as `start..start+width` in nanoseconds; note the end is not
    /// wrapped so the reader sees the width at a glance.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}..{}", self.start, self.start + self.width)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P: Time = Time::from_ps(50_000); // 50 ns

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn contains_basic() {
        let s = Span::new(ns(10.0), ns(5.0), P);
        assert!(s.contains(ns(10.0), P));
        assert!(s.contains(ns(14.9), P));
        assert!(!s.contains(ns(15.0), P)); // half-open
        assert!(!s.contains(ns(9.9), P));
    }

    #[test]
    fn contains_wrapping() {
        let s = Span::wrapping(ns(45.0), ns(5.0), P);
        assert_eq!(s.width(), ns(10.0));
        assert!(s.contains(ns(47.0), P));
        assert!(s.contains(ns(0.0), P));
        assert!(s.contains(ns(4.9), P));
        assert!(!s.contains(ns(5.0), P));
        assert!(!s.contains(ns(20.0), P));
    }

    #[test]
    fn instant_span() {
        let s = Span::instant(ns(20.0), P);
        assert!(s.is_empty());
        assert!(s.contains(ns(20.0), P));
        assert!(!s.contains(ns(20.001), P));
    }

    #[test]
    fn full_span_contains_everything() {
        let s = Span::full(P);
        assert!(s.is_full(P));
        for t in [0.0, 10.0, 49.999] {
            assert!(s.contains(ns(t), P));
        }
    }

    #[test]
    fn wrapping_same_start_end_is_empty() {
        let s = Span::wrapping(ns(4.0), ns(4.0), P);
        assert!(s.is_empty());
    }

    #[test]
    fn expanded_applies_setup_hold() {
        // A clock edge window at 25..26 with 3.5 ns set-up and 1.0 ns hold
        // requires stability over 21.5..27.
        let edge = Span::new(ns(25.0), ns(1.0), P);
        let req = edge.expanded(ns(3.5), ns(1.0), P);
        assert_eq!(req.start(), ns(21.5));
        assert_eq!(req.width(), ns(5.5));
    }

    #[test]
    fn expanded_clamps_to_period() {
        let s = Span::new(ns(10.0), ns(5.0), P);
        let big = s.expanded(ns(40.0), ns(40.0), P);
        assert!(big.is_full(P));
    }

    #[test]
    fn linear_pieces_non_wrapping() {
        let s = Span::new(ns(10.0), ns(5.0), P);
        assert_eq!(s.linear_pieces(P), vec![(ns(10.0), ns(15.0))]);
    }

    #[test]
    fn linear_pieces_wrapping() {
        let s = Span::wrapping(ns(45.0), ns(5.0), P);
        assert_eq!(
            s.linear_pieces(P),
            vec![(ns(45.0), ns(50.0)), (ns(0.0), ns(5.0))]
        );
    }

    #[test]
    fn overlap_detection() {
        let a = Span::new(ns(10.0), ns(10.0), P);
        let b = Span::new(ns(15.0), ns(10.0), P);
        let c = Span::new(ns(20.0), ns(5.0), P);
        assert!(a.overlaps(b, P));
        assert!(!a.overlaps(c, P)); // touching at 20 only
        let wrap = Span::wrapping(ns(48.0), ns(2.0), P);
        assert!(wrap.overlaps(Span::new(ns(0.0), ns(1.0), P), P));
        assert!(wrap.overlaps(Span::new(ns(49.0), ns(1.0), P), P));
        assert!(!wrap.overlaps(Span::new(ns(2.0), ns(40.0), P), P));
    }

    #[test]
    fn zero_width_overlap() {
        let edge = Span::instant(ns(12.0), P);
        let win = Span::new(ns(10.0), ns(5.0), P);
        assert!(edge.overlaps(win, P));
        assert!(win.overlaps(edge, P));
        assert!(!Span::instant(ns(30.0), P).overlaps(win, P));
    }

    #[test]
    fn display_shows_unwrapped_end() {
        let s = Span::new(ns(45.0), ns(10.0), P);
        assert_eq!(s.to_string(), "45.0..55.0");
    }
}
