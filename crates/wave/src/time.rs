//! Time quantities, delay ranges and skew.
//!
//! The thesis expresses component timing in nanoseconds with one decimal
//! (e.g. a gate with a 1.5/3.0 ns delay) and design timing in *clock units*
//! that scale with the period (§2.3). To keep all interval arithmetic exact
//! we represent time as an integer count of picoseconds.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Neg, Sub, SubAssign};

/// An exact time quantity in integer picoseconds.
///
/// `Time` is used both for instants within a clock period and for durations
/// (delays, set-up times, pulse widths). All the thesis' example values
/// (0.5 ns, 6.25 ns clock units, …) are exactly representable.
///
/// ```
/// use scald_wave::Time;
/// let t = Time::from_ns(6.25);
/// assert_eq!(t.as_ps(), 6_250);
/// assert_eq!((t + t).to_string(), "12.5");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Time(i64);

impl Time {
    /// Zero picoseconds.
    pub const ZERO: Time = Time(0);

    /// Constructs a time from an integer number of picoseconds.
    #[must_use]
    pub const fn from_ps(ps: i64) -> Time {
        Time(ps)
    }

    /// Constructs a time from a (possibly fractional) number of
    /// nanoseconds, rounding to the nearest picosecond.
    #[must_use]
    pub fn from_ns(ns: f64) -> Time {
        Time((ns * 1_000.0).round() as i64)
    }

    /// The number of picoseconds.
    #[must_use]
    pub const fn as_ps(self) -> i64 {
        self.0
    }

    /// The value in nanoseconds (may be fractional).
    #[must_use]
    pub fn as_ns(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Euclidean remainder, used to wrap instants into `[0, period)`.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    #[must_use]
    pub fn rem_period(self, period: Time) -> Time {
        assert!(period > Time::ZERO, "period must be positive");
        Time(self.0.rem_euclid(period.0))
    }

    /// Returns the larger of two times.
    #[must_use]
    pub fn max(self, other: Time) -> Time {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the smaller of two times.
    #[must_use]
    pub fn min(self, other: Time) -> Time {
        if self <= other {
            self
        } else {
            other
        }
    }

    /// `true` if this time is negative.
    #[must_use]
    pub const fn is_negative(self) -> bool {
        self.0 < 0
    }
}

impl Add for Time {
    type Output = Time;
    fn add(self, rhs: Time) -> Time {
        Time(self.0 + rhs.0)
    }
}

impl AddAssign for Time {
    fn add_assign(&mut self, rhs: Time) {
        self.0 += rhs.0;
    }
}

impl Sub for Time {
    type Output = Time;
    fn sub(self, rhs: Time) -> Time {
        Time(self.0 - rhs.0)
    }
}

impl SubAssign for Time {
    fn sub_assign(&mut self, rhs: Time) {
        self.0 -= rhs.0;
    }
}

impl Neg for Time {
    type Output = Time;
    fn neg(self) -> Time {
        Time(-self.0)
    }
}

impl Mul<i64> for Time {
    type Output = Time;
    fn mul(self, rhs: i64) -> Time {
        Time(self.0 * rhs)
    }
}

impl fmt::Display for Time {
    /// Formats in nanoseconds the way the thesis' listings do
    /// (`11.5`, `0.0`, `6.25`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let ns = self.as_ns();
        if (ns * 10.0).fract().abs() < 1e-9 {
            write!(f, "{ns:.1}")
        } else {
            write!(f, "{ns}")
        }
    }
}

/// A closed min/max propagation-delay range (§1.4.1.1).
///
/// All component and interconnection delays in the verifier are specified
/// as a minimum and maximum possible value; the verification then holds for
/// every combination of real delays within the ranges.
///
/// ```
/// use scald_wave::{DelayRange, Time};
/// let d = DelayRange::from_ns(1.5, 3.0);
/// assert_eq!(d.spread(), Time::from_ns(1.5));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct DelayRange {
    /// Minimum possible delay.
    pub min: Time,
    /// Maximum possible delay.
    pub max: Time,
}

impl DelayRange {
    /// A zero-delay range.
    pub const ZERO: DelayRange = DelayRange {
        min: Time::ZERO,
        max: Time::ZERO,
    };

    /// Creates a delay range.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is negative.
    #[must_use]
    pub fn new(min: Time, max: Time) -> DelayRange {
        assert!(
            !min.is_negative() && min <= max,
            "invalid delay range [{min}, {max}]"
        );
        DelayRange { min, max }
    }

    /// Creates a delay range from nanosecond bounds.
    ///
    /// # Panics
    ///
    /// Panics if `min > max` or either bound is negative.
    #[must_use]
    pub fn from_ns(min: f64, max: f64) -> DelayRange {
        DelayRange::new(Time::from_ns(min), Time::from_ns(max))
    }

    /// The uncertainty this delay adds: `max - min`.
    #[must_use]
    pub fn spread(self) -> Time {
        self.max - self.min
    }

    /// Series composition: the delay of passing through `self` then `rhs`.
    #[must_use]
    pub fn then(self, rhs: DelayRange) -> DelayRange {
        DelayRange {
            min: self.min + rhs.min,
            max: self.max + rhs.max,
        }
    }
}

impl fmt::Display for DelayRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.min, self.max)
    }
}

/// A process/operating corner selecting how [`DelayRange`]s are read
/// (§1.4.1.2, §4.2).
///
/// The verifier's default analysis keeps the full `[min, max]` range so
/// one run covers every combination of real delays. Corner analysis
/// instead collapses every range to a single point — the fastest
/// possible parts, a typical part, or the slowest — which is how
/// multi-corner sign-off sweeps (min/typ/max) are expressed as case
/// axes.
///
/// ```
/// use scald_wave::{DelayCorner, DelayRange, Time};
/// let d = DelayRange::from_ns(1.0, 3.0);
/// assert_eq!(DelayCorner::Worst.collapse(d), d);
/// assert_eq!(DelayCorner::Min.collapse(d).max, Time::from_ns(1.0));
/// assert_eq!(DelayCorner::Typ.collapse(d).min, Time::from_ns(2.0));
/// assert_eq!(DelayCorner::Max.collapse(d).min, Time::from_ns(3.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub enum DelayCorner {
    /// Keep the full `[min, max]` range (the verifier's default: the
    /// result holds for every real delay inside every range).
    #[default]
    Worst,
    /// Every delay at its minimum: the fast corner.
    Min,
    /// Every delay at the midpoint of its range: the typical corner.
    Typ,
    /// Every delay at its maximum: the slow corner.
    Max,
}

impl DelayCorner {
    /// All corners, in sweep order.
    pub const ALL: [DelayCorner; 4] = [
        DelayCorner::Worst,
        DelayCorner::Min,
        DelayCorner::Typ,
        DelayCorner::Max,
    ];

    /// Collapses a delay range to this corner's point value (identity
    /// for [`DelayCorner::Worst`]).
    #[must_use]
    pub fn collapse(self, range: DelayRange) -> DelayRange {
        let point = match self {
            DelayCorner::Worst => return range,
            DelayCorner::Min => range.min,
            DelayCorner::Typ => Time::from_ps((range.min.as_ps() + range.max.as_ps()) / 2),
            DelayCorner::Max => range.max,
        };
        DelayRange {
            min: point,
            max: point,
        }
    }

    /// The lower-case token used in labels, sweep specs and reports
    /// (`worst` / `min` / `typ` / `max`).
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            DelayCorner::Worst => "worst",
            DelayCorner::Min => "min",
            DelayCorner::Typ => "typ",
            DelayCorner::Max => "max",
        }
    }

    /// Parses a corner token as produced by [`DelayCorner::token`].
    #[must_use]
    pub fn from_token(token: &str) -> Option<DelayCorner> {
        match token {
            "worst" => Some(DelayCorner::Worst),
            "min" => Some(DelayCorner::Min),
            "typ" => Some(DelayCorner::Typ),
            "max" => Some(DelayCorner::Max),
            _ => None,
        }
    }
}

impl fmt::Display for DelayCorner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.token())
    }
}

/// Timing skew: the uncertainty in *when* a signal transitions, kept
/// separate from the signal's value list (§2.8).
///
/// A signal with skew `(minus, plus)` may transition anywhere from `minus`
/// earlier to `plus` later than the nominal times in its waveform — with
/// the *same* displacement applied to every transition, which is what
/// preserves pulse-width information (Fig 2-8).
///
/// ```
/// use scald_wave::{Skew, Time};
/// let clock_skew = Skew::from_ns(1.0, 1.0); // the thesis' precision clocks
/// assert_eq!(clock_skew.width(), Time::from_ns(2.0));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Skew {
    /// How much earlier than nominal the signal may transition (magnitude).
    pub minus: Time,
    /// How much later than nominal the signal may transition.
    pub plus: Time,
}

impl Skew {
    /// No skew at all.
    pub const ZERO: Skew = Skew {
        minus: Time::ZERO,
        plus: Time::ZERO,
    };

    /// Creates a skew from non-negative early/late magnitudes.
    ///
    /// # Panics
    ///
    /// Panics if either magnitude is negative.
    #[must_use]
    pub fn new(minus: Time, plus: Time) -> Skew {
        assert!(
            !minus.is_negative() && !plus.is_negative(),
            "skew magnitudes must be non-negative: (-{minus}, +{plus})"
        );
        Skew { minus, plus }
    }

    /// Creates a skew from nanosecond magnitudes, e.g. `Skew::from_ns(1.0,
    /// 1.0)` for the thesis' ±1 ns precision clocks.
    ///
    /// # Panics
    ///
    /// Panics if either magnitude is negative.
    #[must_use]
    pub fn from_ns(minus: f64, plus: f64) -> Skew {
        Skew::new(Time::from_ns(minus), Time::from_ns(plus))
    }

    /// Total width of the uncertainty window.
    #[must_use]
    pub fn width(self) -> Time {
        self.minus + self.plus
    }

    /// `true` if there is no uncertainty.
    #[must_use]
    pub fn is_zero(self) -> bool {
        self == Skew::ZERO
    }

    /// Accumulates the uncertainty of a variable delay: delaying a signal
    /// by `[min, max]` shifts its waveform by `min` and widens the late
    /// side of its skew by `max - min` (§2.8, Fig 2-8).
    #[must_use]
    pub fn after_delay(self, delay: DelayRange) -> Skew {
        Skew {
            minus: self.minus,
            plus: self.plus + delay.spread(),
        }
    }
}

impl fmt::Display for Skew {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(-{},+{})", self.minus, self.plus)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_conversion_is_exact_for_tenths() {
        assert_eq!(Time::from_ns(1.5).as_ps(), 1_500);
        assert_eq!(Time::from_ns(6.25).as_ps(), 6_250);
        assert_eq!(Time::from_ns(0.0), Time::ZERO);
        assert_eq!(Time::from_ns(-2.0).as_ps(), -2_000);
    }

    #[test]
    fn display_matches_listing_style() {
        assert_eq!(Time::from_ns(11.5).to_string(), "11.5");
        assert_eq!(Time::from_ns(50.0).to_string(), "50.0");
        assert_eq!(Time::from_ns(6.25).to_string(), "6.25");
    }

    #[test]
    fn rem_period_wraps_negatives() {
        let p = Time::from_ns(50.0);
        assert_eq!(Time::from_ns(-1.0).rem_period(p), Time::from_ns(49.0));
        assert_eq!(Time::from_ns(51.0).rem_period(p), Time::from_ns(1.0));
        assert_eq!(Time::from_ns(50.0).rem_period(p), Time::ZERO);
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rem_period_rejects_zero_period() {
        let _ = Time::from_ns(1.0).rem_period(Time::ZERO);
    }

    #[test]
    fn arithmetic() {
        let a = Time::from_ns(3.0);
        let b = Time::from_ns(1.5);
        assert_eq!(a + b, Time::from_ns(4.5));
        assert_eq!(a - b, Time::from_ns(1.5));
        assert_eq!(-b, Time::from_ns(-1.5));
        assert_eq!(b * 4, Time::from_ns(6.0));
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn delay_range_composition() {
        let gate = DelayRange::from_ns(1.0, 2.9);
        let wire = DelayRange::from_ns(0.0, 2.0);
        let total = gate.then(wire);
        assert_eq!(total, DelayRange::from_ns(1.0, 4.9));
        assert_eq!(total.spread(), Time::from_ns(3.9));
    }

    #[test]
    #[should_panic(expected = "invalid delay range")]
    fn delay_range_rejects_inverted_bounds() {
        let _ = DelayRange::from_ns(3.0, 1.0);
    }

    #[test]
    fn corners_collapse_ranges() {
        let d = DelayRange::from_ns(1.0, 3.0);
        assert_eq!(DelayCorner::Worst.collapse(d), d);
        assert_eq!(DelayCorner::Min.collapse(d), DelayRange::from_ns(1.0, 1.0));
        assert_eq!(DelayCorner::Typ.collapse(d), DelayRange::from_ns(2.0, 2.0));
        assert_eq!(DelayCorner::Max.collapse(d), DelayRange::from_ns(3.0, 3.0));
        for c in DelayCorner::ALL {
            assert_eq!(DelayCorner::from_token(c.token()), Some(c));
        }
        assert_eq!(DelayCorner::from_token("slow"), None);
    }

    #[test]
    fn skew_accumulates_delay_spread() {
        let s = Skew::ZERO.after_delay(DelayRange::from_ns(5.0, 10.0));
        assert_eq!(s, Skew::from_ns(0.0, 5.0));
        let s2 = s.after_delay(DelayRange::from_ns(1.0, 2.0));
        assert_eq!(s2, Skew::from_ns(0.0, 6.0));
    }

    #[test]
    #[should_panic(expected = "skew magnitudes must be non-negative")]
    fn skew_rejects_negative_magnitudes() {
        let _ = Skew::new(Time::from_ns(-1.0), Time::ZERO);
    }
}
