//! Hash-consed waveform interning: one canonical copy per distinct
//! transition list, compact handles, O(1) equality.
//!
//! The thesis' engine keeps every signal's value list in a shared value
//! area (§3.2, Table 3-3); structurally identical lists are common —
//! constants, clock phases, and the repeated sub-waveforms of regular
//! datapaths. A [`WaveStore`] deduplicates them: [`intern`] returns a
//! [`WaveRef`] handle whose equality test is an id compare whenever both
//! sides come from the same store, and the canonical [`Waveform`] is
//! shared behind an [`Arc`] instead of deep-cloned.
//!
//! The store is sharded: reads (hits) take a shard read-lock only, so
//! concurrent evaluation workers deduplicate against it without
//! serializing on a single mutex. Misses take the shard write-lock and
//! double-check before inserting.
//!
//! [`intern`]: WaveStore::intern

use crate::Waveform;
use std::collections::HashMap;
use std::fmt;
use std::hash::{BuildHasher, RandomState};
use std::ops::Deref;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// log2 of the shard count: 16 shards comfortably cover the engine's
/// worker-pool widths while keeping the store footprint small.
const SHARD_BITS: u32 = 4;
const SHARDS: usize = 1 << SHARD_BITS;

/// Compact handle to an interned waveform: the shard in the low bits,
/// the slot within the shard above them. Only meaningful together with
/// the store that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WaveId(u32);

impl WaveId {
    fn new(shard: usize, slot: usize) -> WaveId {
        let slot = u32::try_from(slot).expect("wave store slot fits in 28 bits");
        assert!(slot < (1 << (32 - SHARD_BITS)), "wave store shard overflow");
        WaveId((slot << SHARD_BITS) | shard as u32)
    }

    fn shard(self) -> usize {
        (self.0 & (SHARDS as u32 - 1)) as usize
    }

    fn slot(self) -> usize {
        (self.0 >> SHARD_BITS) as usize
    }

    /// The raw packed index (stable for the lifetime of the store).
    #[must_use]
    pub fn index(self) -> u32 {
        self.0
    }
}

/// A shared, canonical waveform plus the identity the issuing store gave
/// it.
///
/// Dereferences to [`Waveform`], so read-only call sites are unchanged;
/// cloning is a reference-count bump. Equality compares ids when both
/// handles come from the same store (the hash-consing invariant makes
/// that exact) and falls back to structural comparison otherwise, so
/// mixing stores is safe, just slower. `Debug`/`Display` delegate to the
/// waveform — handles are transparent in all rendered output.
#[derive(Clone)]
pub struct WaveRef {
    store: u32,
    id: WaveId,
    wave: Arc<Waveform>,
}

impl WaveRef {
    /// The interned waveform.
    #[must_use]
    pub fn as_wave(&self) -> &Waveform {
        &self.wave
    }

    /// An owned copy of the waveform (for APIs that hand out owned
    /// [`Waveform`]s).
    #[must_use]
    pub fn to_waveform(&self) -> Waveform {
        (*self.wave).clone()
    }

    /// The handle within the issuing store.
    #[must_use]
    pub fn id(&self) -> WaveId {
        self.id
    }

    /// The issuing store's tag (process-unique).
    #[must_use]
    pub fn store_tag(&self) -> u32 {
        self.store
    }
}

impl Deref for WaveRef {
    type Target = Waveform;
    fn deref(&self) -> &Waveform {
        &self.wave
    }
}

impl PartialEq for WaveRef {
    fn eq(&self, other: &WaveRef) -> bool {
        if self.store == other.store {
            // Hash-consing invariant: one id per distinct waveform.
            self.id == other.id
        } else {
            *self.wave == *other.wave
        }
    }
}

impl Eq for WaveRef {}

// No `Hash` impl on purpose: equal refs from *different* stores would
// need equal hashes, which ids cannot guarantee. Hash the waveform, or
// key on `(store_tag, id)` where a single store is guaranteed.

impl fmt::Debug for WaveRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.wave.fmt(f)
    }
}

impl fmt::Display for WaveRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.wave.fmt(f)
    }
}

impl From<Waveform> for WaveRef {
    /// Interns into the process-global store.
    fn from(wave: Waveform) -> WaveRef {
        WaveStore::global().intern(wave)
    }
}

#[derive(Default)]
struct Shard {
    map: HashMap<Arc<Waveform>, u32>,
    slots: Vec<Arc<Waveform>>,
}

/// A hash-consed arena of waveforms.
///
/// ```
/// use scald_logic::Value;
/// use scald_wave::{Time, WaveStore, Waveform};
///
/// let store = WaveStore::new();
/// let p = Time::from_ns(50.0);
/// let a = store.intern(Waveform::constant(p, Value::Zero));
/// let b = store.intern(Waveform::constant(p, Value::Zero));
/// assert_eq!(a.id(), b.id()); // one canonical copy
/// assert_eq!(store.len(), 1);
/// ```
pub struct WaveStore {
    tag: u32,
    hasher: RandomState,
    shards: [RwLock<Shard>; SHARDS],
    interns: AtomicU64,
    hits: AtomicU64,
}

/// Effort counters for a [`WaveStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Total [`WaveStore::intern`] calls.
    pub interns: u64,
    /// Calls that found an existing canonical copy.
    pub hits: u64,
    /// Distinct waveforms currently interned.
    pub unique: usize,
}

impl WaveStore {
    /// An empty store with a fresh process-unique tag.
    #[must_use]
    pub fn new() -> WaveStore {
        static NEXT_TAG: AtomicU32 = AtomicU32::new(0);
        WaveStore {
            tag: NEXT_TAG.fetch_add(1, Ordering::Relaxed),
            hasher: RandomState::new(),
            shards: std::array::from_fn(|_| RwLock::new(Shard::default())),
            interns: AtomicU64::new(0),
            hits: AtomicU64::new(0),
        }
    }

    /// The process-global store the engine interns through.
    #[must_use]
    pub fn global() -> &'static WaveStore {
        static GLOBAL: OnceLock<WaveStore> = OnceLock::new();
        GLOBAL.get_or_init(WaveStore::new)
    }

    /// This store's process-unique tag.
    #[must_use]
    pub fn tag(&self) -> u32 {
        self.tag
    }

    fn shard_of(&self, wave: &Waveform) -> usize {
        (self.hasher.hash_one(wave) as usize) & (SHARDS - 1)
    }

    /// Interns `wave`, returning the canonical shared handle. Repeated
    /// interns of equal waveforms return handles with equal [`WaveId`]s
    /// and never store a second copy.
    ///
    /// # Panics
    ///
    /// Panics if a single shard exceeds 2^28 distinct waveforms.
    pub fn intern(&self, wave: Waveform) -> WaveRef {
        self.interns.fetch_add(1, Ordering::Relaxed);
        let shard = self.shard_of(&wave);
        {
            let inner = self.shards[shard].read().expect("wave store poisoned");
            if let Some(&slot) = inner.map.get(&wave) {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return WaveRef {
                    store: self.tag,
                    id: WaveId::new(shard, slot as usize),
                    wave: Arc::clone(&inner.slots[slot as usize]),
                };
            }
        }
        let mut inner = self.shards[shard].write().expect("wave store poisoned");
        // Double-check: another worker may have interned it between the
        // read unlock and the write lock.
        if let Some(&slot) = inner.map.get(&wave) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return WaveRef {
                store: self.tag,
                id: WaveId::new(shard, slot as usize),
                wave: Arc::clone(&inner.slots[slot as usize]),
            };
        }
        let slot = inner.slots.len();
        let arc = Arc::new(wave);
        inner.slots.push(Arc::clone(&arc));
        let id = WaveId::new(shard, slot);
        inner.map.insert(Arc::clone(&arc), slot as u32);
        WaveRef {
            store: self.tag,
            id,
            wave: arc,
        }
    }

    /// The handle for a previously issued id.
    ///
    /// # Panics
    ///
    /// Panics if `id` was not issued by this store.
    #[must_use]
    pub fn get(&self, id: WaveId) -> WaveRef {
        let inner = self.shards[id.shard()].read().expect("wave store poisoned");
        WaveRef {
            store: self.tag,
            id,
            wave: Arc::clone(&inner.slots[id.slot()]),
        }
    }

    /// Distinct waveforms currently interned.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.read().expect("wave store poisoned").slots.len())
            .sum()
    }

    /// `true` if nothing has been interned yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of the effort counters.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            interns: self.interns.load(Ordering::Relaxed),
            hits: self.hits.load(Ordering::Relaxed),
            unique: self.len(),
        }
    }
}

impl Default for WaveStore {
    fn default() -> WaveStore {
        WaveStore::new()
    }
}

impl fmt::Debug for WaveStore {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let stats = self.stats();
        f.debug_struct("WaveStore")
            .field("tag", &self.tag)
            .field("unique", &stats.unique)
            .field("interns", &stats.interns)
            .field("hits", &stats.hits)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Time;
    use scald_logic::Value;

    const P: Time = Time::from_ps(50_000);

    fn clock() -> Waveform {
        Waveform::from_intervals(
            P,
            Value::Zero,
            [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
        )
    }

    #[test]
    fn equal_waveforms_share_one_slot() {
        let store = WaveStore::new();
        let a = store.intern(clock());
        let b = store.intern(clock());
        assert_eq!(a, b);
        assert_eq!(a.id(), b.id());
        assert_eq!(store.len(), 1);
        let stats = store.stats();
        assert_eq!((stats.interns, stats.hits, stats.unique), (2, 1, 1));
    }

    #[test]
    fn distinct_waveforms_get_distinct_ids() {
        let store = WaveStore::new();
        let a = store.intern(clock());
        let b = store.intern(Waveform::constant(P, Value::Stable));
        assert_ne!(a, b);
        assert_ne!(a.id(), b.id());
        assert_eq!(store.len(), 2);
    }

    #[test]
    fn get_round_trips_ids() {
        let store = WaveStore::new();
        let a = store.intern(clock());
        let again = store.get(a.id());
        assert_eq!(a, again);
        assert_eq!(*again, clock());
    }

    #[test]
    fn cross_store_equality_is_structural() {
        let s1 = WaveStore::new();
        let s2 = WaveStore::new();
        assert_ne!(s1.tag(), s2.tag());
        let a = s1.intern(clock());
        let b = s2.intern(clock());
        assert_eq!(a, b, "same waveform, different stores");
        assert_ne!(a, s2.intern(Waveform::constant(P, Value::Zero)));
    }

    #[test]
    fn debug_and_display_are_transparent() {
        let r = WaveStore::new().intern(clock());
        assert_eq!(format!("{r:?}"), format!("{:?}", clock()));
        assert_eq!(r.to_string(), clock().to_string());
    }

    #[test]
    fn deref_exposes_waveform_api() {
        let r = WaveStore::new().intern(clock());
        assert_eq!(r.value_at(Time::from_ns(15.0)), Value::One);
        assert_eq!(r.period(), P);
        assert_eq!(r.to_waveform(), clock());
    }
}
