//! Periodic waveforms, time arithmetic and skew for the SCALD Timing
//! Verifier.
//!
//! This crate implements the signal-value representation of §2.8 of
//! McWilliams' thesis: a signal's behaviour over one clock period is a
//! run-length list of seven-value segments ([`Waveform`]), with the
//! uncertainty in *when* transitions occur kept in a separate [`Skew`]
//! field so that pulse widths are preserved through variable delays
//! (Fig 2-8). When signals are combined the skew is folded back into the
//! value list as `R`/`F`/`C` windows ([`Waveform::with_skew_applied`],
//! Fig 2-9).
//!
//! Time is exact integer picoseconds ([`Time`]); intervals within the
//! period are circular [`Span`]s, because assertions and signal values are
//! periodic (§2.1) and wrap modulo the cycle time (§3.2).
//!
//! # Example: the skew handling of Figs 2-8 and 2-9
//!
//! ```
//! use scald_logic::Value;
//! use scald_wave::{DelayRange, Skew, Time, Waveform};
//!
//! let period = Time::from_ns(50.0);
//! let input = Waveform::from_intervals(
//!     period,
//!     Value::Zero,
//!     [(Time::from_ns(5.0), Time::from_ns(15.0), Value::One)],
//! );
//!
//! // An OR gate with 5.0/10.0 ns delay: combine at zero delay, shift by
//! // the minimum, and accumulate the spread as separated skew.
//! let gate = DelayRange::from_ns(5.0, 10.0);
//! let output = input.delayed(gate.min);
//! let skew = Skew::ZERO.after_delay(gate);
//! assert_eq!(skew, Skew::from_ns(0.0, 5.0));
//!
//! // The 10 ns pulse width is intact in the delayed waveform...
//! assert_eq!(output.value_at(Time::from_ns(12.0)), Value::One);
//!
//! // ...and folding the skew produces the R/F windows of Fig 2-9.
//! let folded = output.with_skew_applied(skew);
//! assert_eq!(folded.value_at(Time::from_ns(12.0)), Value::Rise);
//! assert_eq!(folded.value_at(Time::from_ns(16.0)), Value::One);
//! assert_eq!(folded.value_at(Time::from_ns(22.0)), Value::Fall);
//! ```

#![warn(missing_docs)]

mod edges;
mod span;
mod store;
mod time;
mod waveform;

pub use edges::{edge_windows, pulses, Edge, EdgeWindow, Pulse};
pub use span::Span;
pub use store::{StoreStats, WaveId, WaveRef, WaveStore};
pub use time::{DelayCorner, DelayRange, Skew, Time};
pub use waveform::{SegmentError, Waveform};
