//! Clock-edge and pulse extraction from waveforms.
//!
//! The checker primitives (§2.4.4–2.4.5) need to know *where a clock could
//! transition*: set-up/hold checks are anchored on rising-edge windows,
//! `SETUP RISE HOLD FALL` checks additionally on falling-edge windows, and
//! minimum-pulse-width checks on the narrowest pulse the signal could
//! produce. This module derives those from a [`Waveform`], conservatively:
//! any behaviour the seven-value waveform admits is covered.

use crate::{Span, Time, Waveform};
use scald_logic::Value;

/// Direction of a clock transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Edge {
    /// A zero-to-one transition.
    Rising,
    /// A one-to-zero transition.
    Falling,
}

impl Edge {
    /// Could a signal holding `v` contain a transition in this direction?
    ///
    /// `C` and `U` could contain either; `R` only a rise; `F` only a fall;
    /// quiescent values none.
    #[must_use]
    pub fn possible_within(self, v: Value) -> bool {
        match self {
            Edge::Rising => matches!(v, Value::Rise | Value::Change | Value::Unknown),
            Edge::Falling => matches!(v, Value::Fall | Value::Change | Value::Unknown),
        }
    }

    /// Could a transition in this direction occur exactly at a boundary
    /// from value `a` to value `b`?
    ///
    /// A rise needs the signal to possibly be low before and possibly high
    /// after; dually for a fall. This is what catches the hazard of
    /// Fig 1-5, where a `0 → F` boundary marks the instant a spurious
    /// clock pulse could begin.
    #[must_use]
    pub fn possible_at_boundary(self, a: Value, b: Value) -> bool {
        match self {
            Edge::Rising => a.could_be_low() && b.could_be_high(),
            Edge::Falling => a.could_be_high() && b.could_be_low(),
        }
    }
}

/// A window of time over which a clock transition could occur.
///
/// With no skew an ideal clock produces zero-width windows at its edges;
/// skew and gate-delay spreads widen them. `certain` distinguishes edges
/// that definitely happen (a `0 … 1` crossing) from ones that merely might
/// (hazards, `C` regions).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeWindow {
    /// When the transition could occur.
    pub span: Span,
    /// `true` if the transition is guaranteed to occur somewhere in the
    /// window (the signal is definitely low on one side and definitely
    /// high on the other).
    pub certain: bool,
}

/// A possible pulse on a signal, used by minimum-pulse-width checking
/// (§2.4.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pulse {
    /// The maximal span over which the signal could be at the pulse level.
    pub possible: Span,
    /// The narrowest the pulse could be: the width of the shortest
    /// guaranteed-at-level run inside the span, or zero if the signal is
    /// never guaranteed at the level (a potential glitch that might be
    /// arbitrarily narrow).
    pub min_possible_width: Time,
    /// `true` if a pulse definitely occurs (the signal is guaranteed at the
    /// level at some point in the span).
    pub certain: bool,
}

/// Finds all windows over which `wave` could make a transition in the
/// direction `edge`.
///
/// A window is a maximal run of values that could contain the transition
/// ([`Edge::possible_within`]), possibly zero-width when the transition can
/// only occur at an instantaneous boundary (e.g. `0 → 1` for a rise).
/// Windows are returned in order of their start time. A constant signal has
/// no edges. A signal whose every segment could contain the transition
/// (e.g. all `C`) yields one full-period window.
#[must_use]
pub fn edge_windows(wave: &Waveform, edge: Edge) -> Vec<EdgeWindow> {
    if wave.is_constant() {
        return Vec::new();
    }
    let period = wave.period();
    let segs = wave.segments();
    let n = segs.len();

    // Per-segment "could contain the edge" flags.
    let within: Vec<bool> = segs
        .iter()
        .map(|&(_, v, _)| edge.possible_within(v))
        .collect();

    if within.iter().all(|&w| w) {
        return vec![EdgeWindow {
            span: Span::full(period),
            certain: false,
        }];
    }

    // A window is a maximal run of `within` segments, extended to include
    // instantaneous boundary edges at its ends; an isolated boundary edge
    // (e.g. a direct 0 -> 1 transition) is a zero-width window.
    //
    // Work in "boundary space": boundary i sits between segment i-1 and
    // segment i (circularly).
    let seg_val = |i: usize| segs[i % n].1;
    let boundary_edge = |i: usize| {
        // Only a real transition can host an instantaneous edge; the
        // artificial segment split at the period wrap (equal values on
        // both sides) is not one. And only when neither neighbouring
        // segment already could contain the edge (else the run covers it).
        seg_val(i + n - 1) != seg_val(i)
            && edge.possible_at_boundary(seg_val(i + n - 1), seg_val(i))
            && !within[(i + n - 1) % n]
            && !within[i % n]
    };

    let mut windows = Vec::new();
    let mut i = 0;
    while i < n {
        if within[i] && (i > 0 || !within[n - 1]) {
            // Maximal run starting at segment i.
            let start = segs[i].0;
            let mut width = Time::ZERO;
            let mut j = i;
            while within[j % n] {
                width += segs[j % n].2;
                j += 1;
                if j % n == i {
                    break;
                }
            }
            // Certainty: the value before the run is definitely on the
            // "from" side and the value after definitely on the "to" side.
            let before = seg_val(i + n - 1);
            let after = seg_val(j);
            let certain = match edge {
                Edge::Rising => !before.could_be_high() && !after.could_be_low(),
                Edge::Falling => !before.could_be_low() && !after.could_be_high(),
            };
            windows.push(EdgeWindow {
                span: Span::new(start, width, period),
                certain,
            });
            i = j.min(n);
        } else {
            if boundary_edge(i) {
                let (a, b) = (seg_val(i + n - 1), seg_val(i));
                let certain = match edge {
                    Edge::Rising => !a.could_be_high() && !b.could_be_low(),
                    Edge::Falling => !a.could_be_low() && !b.could_be_high(),
                };
                windows.push(EdgeWindow {
                    span: Span::instant(segs[i].0, period),
                    certain,
                });
            }
            i += 1;
        }
    }
    windows.sort_by_key(|w| w.span.start());
    windows
}

/// Finds all possible pulses at the given `level` (`true` = high pulses,
/// `false` = low pulses) for minimum-pulse-width checking.
///
/// A pulse span is a maximal circular run of values that *could* be at the
/// level, bounded on both sides by values that cannot be. The
/// `min_possible_width` is the narrowest contiguous run of values
/// *guaranteed* at the level within the span (`1` segments for high
/// pulses), or zero when there is none — a potential glitch like the 5 ns
/// spurious clock pulse of Fig 1-5.
///
/// If the signal could be at the level for the entire period no pulse is
/// reported (there is no bounded pulse to measure).
#[must_use]
pub fn pulses(wave: &Waveform, level: bool) -> Vec<Pulse> {
    let period = wave.period();
    let could = |v: Value| {
        if level {
            v.could_be_high()
        } else {
            v.could_be_low()
        }
    };
    let guaranteed = |v: Value| {
        if level {
            v == Value::One
        } else {
            v == Value::Zero
        }
    };

    let segs = wave.segments();
    let n = segs.len();
    let could_flags: Vec<bool> = segs.iter().map(|&(_, v, _)| could(v)).collect();
    if could_flags.iter().all(|&c| c) {
        return Vec::new();
    }

    let mut out = Vec::new();
    let mut i = 0;
    while i < n {
        if could_flags[i] && (i > 0 || !could_flags[n - 1]) {
            let start = segs[i].0;
            let mut width = Time::ZERO;
            let mut j = i;
            // Track guaranteed runs inside the pulse.
            let mut min_guaranteed: Option<Time> = None;
            let mut run: Option<Time> = None;
            let mut certain = false;
            while could_flags[j % n] {
                let (_, v, w) = segs[j % n];
                width += w;
                if guaranteed(v) {
                    certain = true;
                    run = Some(run.unwrap_or(Time::ZERO) + w);
                } else if let Some(r) = run.take() {
                    min_guaranteed = Some(min_guaranteed.map_or(r, |m| m.min(r)));
                }
                j += 1;
                if j % n == i {
                    break;
                }
            }
            if let Some(r) = run {
                min_guaranteed = Some(min_guaranteed.map_or(r, |m| m.min(r)));
            }
            out.push(Pulse {
                possible: Span::new(start, width, period),
                min_possible_width: min_guaranteed.unwrap_or(Time::ZERO),
                certain,
            });
            i = j.min(n);
        } else {
            i += 1;
        }
    }
    out.sort_by_key(|p| p.possible.start());
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value::*;

    const P: Time = Time::from_ps(50_000);

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn ideal_clock_has_instant_edges() {
        let clk = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)]);
        let rising = edge_windows(&clk, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span, Span::instant(ns(10.0), P));
        assert!(rising[0].certain);
        let falling = edge_windows(&clk, Edge::Falling);
        assert_eq!(falling.len(), 1);
        assert_eq!(falling[0].span, Span::instant(ns(20.0), P));
        assert!(falling[0].certain);
    }

    #[test]
    fn skewed_clock_has_window_edges() {
        let clk = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)])
            .with_skew_applied(crate::Skew::from_ns(1.0, 1.0));
        let rising = edge_windows(&clk, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span.start(), ns(9.0));
        assert_eq!(rising[0].span.width(), ns(2.0));
        assert!(rising[0].certain);
    }

    #[test]
    fn constant_signal_has_no_edges() {
        for v in [Zero, One, Stable, Change] {
            let w = Waveform::constant(P, v);
            assert!(edge_windows(&w, Edge::Rising).is_empty());
            assert!(edge_windows(&w, Edge::Falling).is_empty());
        }
    }

    #[test]
    fn hazard_pulse_yields_uncertain_rising_edge() {
        // Fig 1-5: REG CLOCK is 0 except for a possible glitch 20..25 (F:
        // it rose iff the enable was still high, then falls).
        let w = Waveform::from_intervals(P, Zero, [(ns(20.0), ns(25.0), Fall)]);
        let rising = edge_windows(&w, Edge::Rising);
        assert_eq!(rising.len(), 1, "the spurious clock edge must be found");
        assert_eq!(rising[0].span, Span::instant(ns(20.0), P));
        assert!(!rising[0].certain);
        // And the glitch also admits a falling edge within the F run.
        let falling = edge_windows(&w, Edge::Falling);
        assert_eq!(falling.len(), 1);
        assert_eq!(falling[0].span.start(), ns(20.0));
        assert_eq!(falling[0].span.width(), ns(5.0));
    }

    #[test]
    fn change_region_between_levels_is_one_window() {
        let w = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(14.0), Change)])
            .overwrite(Span::new(ns(14.0), ns(6.0), P), One);
        let rising = edge_windows(&w, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span.start(), ns(10.0));
        assert_eq!(rising[0].span.width(), ns(4.0));
        assert!(rising[0].certain, "0 .. C .. 1 must cross");
    }

    #[test]
    fn falling_region_hosts_no_rise_within_it() {
        // 1 (0..10), F (10..14), 0 (14..50): the fall can only happen in
        // the F window; the only possible rise is the instantaneous 0 -> 1
        // at the period wrap (the clock is periodic, so it must come back
        // up at t = 0).
        let w = Waveform::from_intervals(
            P,
            One,
            [(ns(10.0), ns(14.0), Fall), (ns(14.0), ns(50.0), Zero)],
        );
        let falling = edge_windows(&w, Edge::Falling);
        assert_eq!(falling.len(), 1);
        assert_eq!(falling[0].span.start(), ns(10.0));
        assert_eq!(falling[0].span.width(), ns(4.0));
        assert!(falling[0].certain);
        let rising = edge_windows(&w, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span, Span::instant(ns(0.0), P));
        assert!(rising[0].certain);
    }

    #[test]
    fn wrapping_edge_window() {
        // R run that wraps: R from 48..50 and 0..2, 1 after, 0 before.
        let w = Waveform::from_intervals(P, Zero, [(ns(30.0), ns(48.0), Zero)])
            .overwrite(Span::wrapping(ns(48.0), ns(2.0), P), Rise)
            .overwrite(Span::new(ns(2.0), ns(20.0), P), One);
        let rising = edge_windows(&w, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span.start(), ns(48.0));
        assert_eq!(rising[0].span.width(), ns(4.0));
        assert!(rising[0].certain);
    }

    #[test]
    fn all_change_is_full_period_window() {
        let w = Waveform::from_intervals(P, Change, [(ns(0.0), ns(1.0), Change)]);
        assert!(w.is_constant());
        assert!(
            edge_windows(&w, Edge::Rising).is_empty(),
            "constant C: no anchor"
        );
        // But a C period with a single 1 segment: rest is one wrapping window.
        let w = Waveform::from_intervals(P, Change, [(ns(10.0), ns(12.0), One)]);
        let rising = edge_windows(&w, Edge::Rising);
        assert_eq!(rising.len(), 1);
        assert_eq!(rising[0].span.start(), ns(12.0));
        assert_eq!(rising[0].span.width(), ns(48.0));
    }

    #[test]
    fn clean_pulse_width() {
        let w = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)]);
        let high = pulses(&w, true);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].min_possible_width, ns(10.0));
        assert!(high[0].certain);
        let low = pulses(&w, false);
        assert_eq!(low.len(), 1);
        assert_eq!(low[0].min_possible_width, ns(40.0));
        assert_eq!(low[0].possible.start(), ns(20.0));
    }

    #[test]
    fn skewed_pulse_min_width_is_guaranteed_run() {
        // R 9..11, 1 11..19, F 19..21: narrowest possible pulse is 8 ns.
        let w = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)])
            .with_skew_applied(crate::Skew::from_ns(1.0, 1.0));
        let high = pulses(&w, true);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].possible.start(), ns(9.0));
        assert_eq!(high[0].possible.width(), ns(12.0));
        assert_eq!(high[0].min_possible_width, ns(8.0));
        assert!(high[0].certain);
    }

    #[test]
    fn glitch_has_zero_min_width() {
        let w = Waveform::from_intervals(P, Zero, [(ns(20.0), ns(25.0), Fall)]);
        let high = pulses(&w, true);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].min_possible_width, Time::ZERO);
        assert!(!high[0].certain);
    }

    #[test]
    fn interrupted_high_reports_narrowest_segment() {
        // 1 for 10, C for 2, 1 for 3: pulse could break during C, so the
        // narrowest possible pulse is the 3 ns run.
        let w = Waveform::from_intervals(
            P,
            Zero,
            [
                (ns(10.0), ns(20.0), One),
                (ns(20.0), ns(22.0), Change),
                (ns(22.0), ns(25.0), One),
            ],
        );
        let high = pulses(&w, true);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].possible.width(), ns(15.0));
        assert_eq!(high[0].min_possible_width, ns(3.0));
    }

    #[test]
    fn always_possibly_high_has_no_pulses() {
        let w = Waveform::constant(P, Stable);
        assert!(pulses(&w, true).is_empty());
        assert!(pulses(&w, false).is_empty());
    }

    #[test]
    fn wrapping_pulse() {
        let w = Waveform::from_intervals(P, One, [(ns(10.0), ns(40.0), Zero)]);
        let high = pulses(&w, true);
        assert_eq!(high.len(), 1);
        assert_eq!(high[0].possible.start(), ns(40.0));
        assert_eq!(high[0].possible.width(), ns(20.0));
        assert_eq!(high[0].min_possible_width, ns(20.0));
    }
}

#[cfg(test)]
mod wrap_regression {
    use super::*;
    use scald_logic::Value::*;

    const P: Time = Time::from_ps(50_000);

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    /// Regression: a transitioning run crossing the period wrap is split
    /// into two segments by `segments()`; the artificial boundary between
    /// the equal-valued halves must not be mistaken for an instantaneous
    /// edge of the opposite polarity.
    #[test]
    fn wrap_split_is_not_a_phantom_edge() {
        // F spanning 49..2.5 (wraps), 0 until 42.75, a real pulse after.
        let w = Waveform::from_transitions(
            P,
            vec![
                (ns(49.0), Fall),
                (ns(2.5), Zero),
                (ns(42.75), Rise),
                (ns(46.25), One),
            ],
        );
        let rising = edge_windows(&w, Edge::Rising);
        // Exactly one rising window: the real one at 42.75..46.25. No
        // phantom zero-width edge at the wrap instant 0.
        assert_eq!(rising.len(), 1, "{rising:?}");
        assert_eq!(rising[0].span.start(), ns(42.75));
        assert_eq!(rising[0].span.width(), ns(3.5));
    }
}
