//! Periodic signal values: the Timing Verifier's linked-list-of-values,
//! rebuilt as a canonical transition list (§2.8, Fig 2-7).
//!
//! A [`Waveform`] records a signal's seven-value behaviour over exactly one
//! clock period. The thesis stores a linked list of `(value, width)` nodes
//! whose widths must sum exactly to the period; we store the equivalent
//! canonical list of `(time, value)` transitions, which makes the modular
//! arithmetic of delays and assertions direct.

use crate::{Span, Time};
use scald_logic::Value;
use std::fmt;

/// The seven-value behaviour of a signal over one clock period.
///
/// Internally a sorted list of `(time, value)` transitions within
/// `[0, period)`; the value at an instant `t` is that of the latest
/// transition at or before `t`, wrapping circularly. The representation is
/// canonical: times strictly increase, circularly adjacent values differ,
/// and a constant signal is a single transition at time 0 — so `==` is
/// semantic equality.
///
/// ```
/// use scald_logic::Value;
/// use scald_wave::{Time, Waveform};
///
/// let period = Time::from_ns(50.0);
/// // A clock high from 10 ns to 20 ns.
/// let clock = Waveform::from_intervals(
///     period,
///     Value::Zero,
///     [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
/// );
/// assert_eq!(clock.value_at(Time::from_ns(15.0)), Value::One);
/// assert_eq!(clock.value_at(Time::from_ns(25.0)), Value::Zero);
/// // Instants wrap modulo the period.
/// assert_eq!(clock.value_at(Time::from_ns(65.0)), Value::One);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Waveform {
    period: Time,
    /// Canonical transition list; see type-level docs.
    trans: Vec<(Time, Value)>,
}

impl Waveform {
    /// A signal holding one value for the whole period.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    #[must_use]
    pub fn constant(period: Time, value: Value) -> Waveform {
        assert!(period > Time::ZERO, "period must be positive");
        Waveform {
            period,
            trans: vec![(Time::ZERO, value)],
        }
    }

    /// Builds a waveform that holds `base` everywhere except over the given
    /// `(start, end, value)` intervals (ends exclusive, times wrapped
    /// modulo the period). Later intervals overwrite earlier ones.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive.
    #[must_use]
    pub fn from_intervals<I>(period: Time, base: Value, intervals: I) -> Waveform
    where
        I: IntoIterator<Item = (Time, Time, Value)>,
    {
        let mut w = Waveform::constant(period, base);
        for (start, end, value) in intervals {
            // An interval at least one period long covers the whole cycle;
            // Span::wrapping would fold it to an empty span (e.g. `.S0-8`
            // on an 8-unit cycle means "always stable", not "never").
            let span = if end - start >= period {
                Span::full(period)
            } else {
                Span::wrapping(start, end, period)
            };
            w = w.overwrite(span, value);
        }
        w
    }

    /// Builds a waveform from the thesis' run-length form: a list of
    /// `(value, width)` segments starting at time 0.
    ///
    /// # Errors
    ///
    /// Returns an error if any width is non-positive or the widths do not
    /// sum exactly to `period` (the consistency rule of §2.8).
    pub fn from_segments<I>(period: Time, segments: I) -> Result<Waveform, SegmentError>
    where
        I: IntoIterator<Item = (Value, Time)>,
    {
        assert!(period > Time::ZERO, "period must be positive");
        let mut trans = Vec::new();
        let mut at = Time::ZERO;
        for (value, width) in segments {
            if width <= Time::ZERO {
                return Err(SegmentError::NonPositiveWidth { at, width });
            }
            trans.push((at, value));
            at += width;
        }
        if at != period {
            return Err(SegmentError::WidthSumMismatch { sum: at, period });
        }
        Ok(Waveform::from_transitions(period, trans))
    }

    /// Builds a waveform from raw `(time, value)` transitions, wrapping
    /// times into the period and canonicalizing. When two transitions land
    /// on the same instant the later one in the input wins.
    ///
    /// # Panics
    ///
    /// Panics if `period` is not positive or `trans` is empty.
    #[must_use]
    pub fn from_transitions(period: Time, trans: Vec<(Time, Value)>) -> Waveform {
        assert!(period > Time::ZERO, "period must be positive");
        assert!(!trans.is_empty(), "waveform needs at least one value");
        let mut wrapped: Vec<(Time, Value)> = trans
            .into_iter()
            .map(|(t, v)| (t.rem_period(period), v))
            .collect();
        // Stable sort preserves input order among equal times, so "later
        // in the input wins" is implemented by keeping the last duplicate.
        wrapped.sort_by_key(|(t, _)| *t);
        wrapped.dedup_by(|later, earlier| {
            if later.0 == earlier.0 {
                earlier.1 = later.1;
                true
            } else {
                false
            }
        });
        let mut w = Waveform {
            period,
            trans: wrapped,
        };
        w.canonicalize();
        w
    }

    fn canonicalize(&mut self) {
        // Merge adjacent equal values.
        self.trans.dedup_by_key(|(_, v)| *v);
        // Merge across the wrap point.
        while self.trans.len() > 1
            && self.trans.first().map(|e| e.1) == self.trans.last().map(|e| e.1)
        {
            self.trans.remove(0);
        }
        if self.trans.len() == 1 {
            self.trans[0].0 = Time::ZERO;
        }
    }

    /// The clock period this waveform spans.
    #[must_use]
    pub fn period(&self) -> Time {
        self.period
    }

    /// `true` if the signal holds a single value all period.
    #[must_use]
    pub fn is_constant(&self) -> bool {
        self.trans.len() == 1
    }

    /// The canonical transition list: `(time, value)` pairs with strictly
    /// increasing times in `[0, period)` and circularly distinct values.
    #[must_use]
    pub fn transitions(&self) -> &[(Time, Value)] {
        &self.trans
    }

    /// The number of value records needed to store this waveform in the
    /// thesis' run-length representation (used for the Table 3-3 storage
    /// statistics).
    #[must_use]
    pub fn value_record_count(&self) -> usize {
        if self.is_constant() {
            1
        } else if self.trans[0].0 == Time::ZERO {
            self.trans.len()
        } else {
            // The run containing time 0 is split into two records.
            self.trans.len() + 1
        }
    }

    /// The value of the signal at instant `t` (taken modulo the period).
    #[must_use]
    pub fn value_at(&self, t: Time) -> Value {
        let t = t.rem_period(self.period);
        match self.trans.partition_point(|(tt, _)| *tt <= t) {
            0 => self.trans.last().expect("waveform is non-empty").1,
            i => self.trans[i - 1].1,
        }
    }

    /// Run-length segments starting at time 0: `(start, value, width)`
    /// triples covering the period exactly — the form the thesis' summary
    /// listings print (Fig 3-10).
    #[must_use]
    pub fn segments(&self) -> Vec<(Time, Value, Time)> {
        let mut out = Vec::with_capacity(self.trans.len() + 1);
        if self.is_constant() {
            return vec![(Time::ZERO, self.trans[0].1, self.period)];
        }
        let first_t = self.trans[0].0;
        if first_t > Time::ZERO {
            // The wrapped tail of the last run.
            let last_v = self.trans.last().expect("non-empty").1;
            out.push((Time::ZERO, last_v, first_t));
        }
        for (i, &(t, v)) in self.trans.iter().enumerate() {
            let end = self
                .trans
                .get(i + 1)
                .map_or(self.period, |&(t_next, _)| t_next);
            out.push((t, v, end - t));
        }
        out
    }

    /// Replaces the signal's value with `value` over `span`.
    #[must_use]
    pub fn overwrite(&self, span: Span, value: Value) -> Waveform {
        if span.is_empty() {
            return self.clone();
        }
        if span.is_full(self.period) {
            return Waveform::constant(self.period, value);
        }
        let start = span.start();
        let end = span.end(self.period);
        let resume = self.value_at(end);
        let mut trans: Vec<(Time, Value)> = Vec::with_capacity(self.trans.len() + 2);
        for &(t, v) in &self.trans {
            if !span.contains(t, self.period) {
                trans.push((t, v));
            }
        }
        trans.push((start, value));
        trans.push((end, resume));
        Waveform::from_transitions(self.period, trans)
    }

    /// Transforms every value pointwise (e.g. with [`Value::not`] for an
    /// inverter with zero delay).
    #[must_use]
    pub fn map(&self, f: impl Fn(Value) -> Value) -> Waveform {
        let trans = self.trans.iter().map(|&(t, v)| (t, f(v))).collect();
        Waveform::from_transitions(self.period, trans)
    }

    /// Shifts the whole waveform later by `d` (modulo the period). Negative
    /// `d` shifts earlier. Pulse widths are preserved exactly — this is the
    /// "delay by the minimum" half of the separated-skew scheme (§2.8).
    #[must_use]
    pub fn delayed(&self, d: Time) -> Waveform {
        if self.is_constant() {
            return self.clone();
        }
        let trans = self.trans.iter().map(|&(t, v)| (t + d, v)).collect();
        Waveform::from_transitions(self.period, trans)
    }

    /// Combines two waveforms pointwise with `f` (the gate-evaluation
    /// primitive: `f` is one of the worst-case functions of §2.4.2).
    ///
    /// # Panics
    ///
    /// Panics if the waveforms have different periods.
    #[must_use]
    pub fn combine(&self, other: &Waveform, f: impl Fn(Value, Value) -> Value) -> Waveform {
        assert_eq!(
            self.period, other.period,
            "cannot combine waveforms with different periods"
        );
        let mut times: Vec<Time> = self
            .trans
            .iter()
            .chain(other.trans.iter())
            .map(|&(t, _)| t)
            .collect();
        times.sort();
        times.dedup();
        let trans = times
            .into_iter()
            .map(|t| (t, f(self.value_at(t), other.value_at(t))))
            .collect();
        Waveform::from_transitions(self.period, trans)
    }

    /// Combines any number of waveforms pointwise with an n-ary function.
    ///
    /// # Panics
    ///
    /// Panics if `waves` is empty or the periods differ.
    #[must_use]
    pub fn combine_many(waves: &[&Waveform], f: impl Fn(&[Value]) -> Value) -> Waveform {
        assert!(
            !waves.is_empty(),
            "combine_many requires at least one input"
        );
        let period = waves[0].period;
        assert!(
            waves.iter().all(|w| w.period == period),
            "cannot combine waveforms with different periods"
        );
        let mut times: Vec<Time> = waves
            .iter()
            .flat_map(|w| w.trans.iter().map(|&(t, _)| t))
            .collect();
        times.sort();
        times.dedup();
        let mut vals = Vec::with_capacity(waves.len());
        let trans = times
            .into_iter()
            .map(|t| {
                vals.clear();
                vals.extend(waves.iter().map(|w| w.value_at(t)));
                (t, f(&vals))
            })
            .collect();
        Waveform::from_transitions(period, trans)
    }

    /// Maximal circular spans over which `pred` holds for the signal value.
    ///
    /// If `pred` holds everywhere a single full-period span is returned;
    /// if nowhere, the result is empty. Spans are reported in order of
    /// their start time.
    #[must_use]
    pub fn spans_where(&self, pred: impl Fn(Value) -> bool) -> Vec<Span> {
        let segs = self.segments();
        let matches: Vec<bool> = segs.iter().map(|&(_, v, _)| pred(v)).collect();
        if matches.iter().all(|&m| m) {
            return vec![Span::full(self.period)];
        }
        if !matches.iter().any(|&m| m) {
            return Vec::new();
        }
        let n = segs.len();
        let mut spans = Vec::new();
        let mut i = 0;
        while i < n {
            if matches[i] && (i > 0 || !matches[n - 1]) {
                // Start of a run (runs beginning at segment 0 that continue
                // from the end of the period are handled from their true
                // start at the tail).
                let start = segs[i].0;
                let mut width = Time::ZERO;
                let mut j = i;
                while matches[j % n] {
                    width += segs[j % n].2;
                    j += 1;
                    if j % n == i {
                        break;
                    }
                }
                spans.push(Span::new(start, width, self.period));
                if j <= n {
                    i = j;
                } else {
                    break; // wrapped past the end; done
                }
            } else {
                i += 1;
            }
        }
        spans
    }

    /// `true` if the signal is guaranteed quiescent (`0`, `1` or `S`)
    /// throughout `span`, the test applied by set-up/hold checkers and
    /// `&A` directives.
    ///
    /// A zero-width span tests the single instant at its start.
    #[must_use]
    pub fn quiescent_throughout(&self, span: Span) -> bool {
        if span.is_empty() {
            return self.value_at(span.start()).is_quiescent();
        }
        if span.is_full(self.period) {
            return self.trans.iter().all(|&(_, v)| v.is_quiescent());
        }
        for (a, b) in span.linear_pieces(self.period) {
            if a == b {
                continue;
            }
            for &(t, v, w) in &self.segments() {
                // Segment [t, t+w) overlaps piece [a, b)?
                if t < b && a < t + w && !v.is_quiescent() {
                    return false;
                }
            }
        }
        true
    }

    /// Folds separated skew back into the value list (§2.8, Fig 2-9).
    ///
    /// Every transition instant `t` becomes an uncertainty window
    /// `[t - minus, t + plus)` holding the transition's
    /// [`edge value`](Value::edge_to); overlapping windows collapse with
    /// [`Value::join`]. Use this before combining a skewed signal with
    /// another signal, and in checkers that need the worst-case picture.
    #[must_use]
    pub fn with_skew_applied(&self, skew: crate::Skew) -> Waveform {
        if skew.is_zero() || self.is_constant() {
            return self.clone();
        }
        // Edge windows: (span, window value) per transition.
        let n = self.trans.len();
        let mut windows = Vec::with_capacity(n);
        for (i, &(t, v_new)) in self.trans.iter().enumerate() {
            let v_old = self.trans[(i + n - 1) % n].1;
            let span = Span::new(t - skew.minus, skew.width(), self.period);
            windows.push((span, v_old.edge_to(v_new)));
        }
        // Evaluate on the elementary intervals between all boundaries.
        let mut bounds: Vec<Time> = Vec::with_capacity(3 * n);
        for &(t, _) in &self.trans {
            bounds.push(t);
            bounds.push((t - skew.minus).rem_period(self.period));
            bounds.push((t + skew.plus).rem_period(self.period));
        }
        bounds.sort();
        bounds.dedup();
        let trans = bounds
            .into_iter()
            .map(|b| {
                let mut v = self.value_at(b);
                for &(span, wv) in &windows {
                    if span.contains(b, self.period) {
                        v = v.join(wv);
                    }
                }
                (b, v)
            })
            .collect();
        Waveform::from_transitions(self.period, trans)
    }
}

impl fmt::Display for Waveform {
    /// Formats as the summary-listing style of Fig 3-10: alternating value
    /// mnemonics and the times (in ns) at which the value starts.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for (i, (start, v, _)) in self.segments().into_iter().enumerate() {
            if i > 0 {
                write!(f, " ")?;
            }
            write!(f, "{v} {start}")?;
        }
        Ok(())
    }
}

/// Error from [`Waveform::from_segments`]: the run-length list violated the
/// consistency rule of §2.8.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentError {
    /// A segment had a zero or negative width.
    NonPositiveWidth {
        /// Offset of the offending segment from the start of the period.
        at: Time,
        /// The invalid width.
        width: Time,
    },
    /// The widths did not sum exactly to the period.
    WidthSumMismatch {
        /// Sum of the given widths.
        sum: Time,
        /// The required period.
        period: Time,
    },
}

impl fmt::Display for SegmentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SegmentError::NonPositiveWidth { at, width } => {
                write!(f, "segment at offset {at} has non-positive width {width}")
            }
            SegmentError::WidthSumMismatch { sum, period } => {
                write!(f, "segment widths sum to {sum} but the period is {period}")
            }
        }
    }
}

impl std::error::Error for SegmentError {}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value::*;

    const P: Time = Time::from_ps(50_000);

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    fn clock_10_20() -> Waveform {
        Waveform::from_intervals(P, Zero, [(ns(10.0), ns(20.0), One)])
    }

    #[test]
    fn constant_waveform() {
        let w = Waveform::constant(P, Stable);
        assert!(w.is_constant());
        assert_eq!(w.value_at(ns(0.0)), Stable);
        assert_eq!(w.value_at(ns(49.9)), Stable);
        assert_eq!(w.segments(), vec![(Time::ZERO, Stable, P)]);
        assert_eq!(w.value_record_count(), 1);
    }

    #[test]
    fn value_at_wraps() {
        let w = clock_10_20();
        assert_eq!(w.value_at(ns(9.9)), Zero);
        assert_eq!(w.value_at(ns(10.0)), One);
        assert_eq!(w.value_at(ns(19.9)), One);
        assert_eq!(w.value_at(ns(20.0)), Zero);
        assert_eq!(w.value_at(ns(60.0)), One); // 60 mod 50 = 10
        assert_eq!(w.value_at(ns(-45.0)), Zero); // -45 mod 50 = 5
    }

    #[test]
    fn from_segments_round_trip() {
        let w = Waveform::from_segments(P, [(Zero, ns(10.0)), (One, ns(10.0)), (Zero, ns(30.0))])
            .unwrap();
        assert_eq!(w, clock_10_20());
    }

    #[test]
    fn from_segments_rejects_bad_sum() {
        let err = Waveform::from_segments(P, [(Zero, ns(10.0))]).unwrap_err();
        assert!(matches!(err, SegmentError::WidthSumMismatch { .. }));
        assert!(err.to_string().contains("sum to 10.0"));
    }

    #[test]
    fn from_segments_rejects_zero_width() {
        let err = Waveform::from_segments(P, [(Zero, Time::ZERO), (One, P)]).unwrap_err();
        assert!(matches!(err, SegmentError::NonPositiveWidth { .. }));
    }

    #[test]
    fn canonicalization_merges_adjacent_and_wraparound() {
        let w = Waveform::from_transitions(
            P,
            vec![
                (ns(0.0), Zero),
                (ns(10.0), Zero),
                (ns(20.0), One),
                (ns(30.0), Zero),
            ],
        );
        // 0..20 Zero merges; trailing Zero merges with leading Zero.
        assert_eq!(w.transitions(), &[(ns(20.0), One), (ns(30.0), Zero)]);
        assert_eq!(w.value_at(ns(5.0)), Zero);
    }

    #[test]
    fn all_equal_collapses_to_constant() {
        let w = Waveform::from_transitions(P, vec![(ns(7.0), Stable), (ns(30.0), Stable)]);
        assert!(w.is_constant());
        assert_eq!(w.transitions(), &[(Time::ZERO, Stable)]);
    }

    #[test]
    fn duplicate_times_last_wins() {
        let w = Waveform::from_transitions(P, vec![(ns(10.0), One), (ns(10.0), Stable)]);
        assert_eq!(w.value_at(ns(10.0)), Stable);
    }

    #[test]
    fn segments_cover_period_exactly() {
        let w = clock_10_20();
        let segs = w.segments();
        let total: Time = segs
            .iter()
            .fold(Time::ZERO, |acc, &(_, _, width)| acc + width);
        assert_eq!(total, P);
        assert_eq!(segs[0], (Time::ZERO, Zero, ns(10.0)));
        assert_eq!(segs[1], (ns(10.0), One, ns(10.0)));
        assert_eq!(segs[2], (ns(20.0), Zero, ns(30.0)));
    }

    #[test]
    fn value_record_count_counts_split_wrap_run() {
        // Clock whose low run wraps: records = high run + two split low runs.
        let w = clock_10_20();
        assert_eq!(w.value_record_count(), 3); // 0..10 Zero, 10..20 One, 20..50 Zero
        let w2 = Waveform::from_intervals(P, Zero, [(ns(0.0), ns(20.0), One)]);
        assert_eq!(w2.value_record_count(), 2);
    }

    #[test]
    fn delayed_rotates_preserving_pulse_width() {
        let w = clock_10_20().delayed(ns(35.0));
        // High from 45..55 -> wraps to 45..50 and 0..5.
        assert_eq!(w.value_at(ns(47.0)), One);
        assert_eq!(w.value_at(ns(3.0)), One);
        assert_eq!(w.value_at(ns(5.0)), Zero);
        assert_eq!(w.value_at(ns(44.9)), Zero);
        // Total high time still 10 ns.
        let high: Time = w
            .segments()
            .iter()
            .filter(|&&(_, v, _)| v == One)
            .fold(Time::ZERO, |acc, &(_, _, width)| acc + width);
        assert_eq!(high, ns(10.0));
    }

    #[test]
    fn delayed_by_period_is_identity() {
        let w = clock_10_20();
        assert_eq!(w.delayed(P), w);
        assert_eq!(w.delayed(-P), w);
        assert_eq!(w.delayed(ns(15.0)).delayed(ns(35.0)), w);
    }

    #[test]
    fn map_not_flips_clock() {
        let w = clock_10_20().map(Value::not);
        assert_eq!(w.value_at(ns(15.0)), Zero);
        assert_eq!(w.value_at(ns(5.0)), One);
    }

    #[test]
    fn combine_or_of_two_clocks() {
        let a = clock_10_20();
        let b = Waveform::from_intervals(P, Zero, [(ns(15.0), ns(30.0), One)]);
        let o = a.combine(&b, Value::or);
        assert_eq!(o.value_at(ns(5.0)), Zero);
        assert_eq!(o.value_at(ns(12.0)), One);
        assert_eq!(o.value_at(ns(25.0)), One);
        assert_eq!(o.value_at(ns(35.0)), Zero);
        // Exactly one high run 10..30.
        assert_eq!(
            o,
            Waveform::from_intervals(P, Zero, [(ns(10.0), ns(30.0), One)])
        );
    }

    #[test]
    fn combine_many_matches_pairwise() {
        let a = clock_10_20();
        let b = Waveform::from_intervals(P, Zero, [(ns(15.0), ns(30.0), One)]);
        let c = Waveform::constant(P, Stable);
        let many =
            Waveform::combine_many(&[&a, &b, &c], |vs| vs.iter().copied().fold(Zero, Value::or));
        let pair = a.combine(&b, Value::or).combine(&c, Value::or);
        assert_eq!(many, pair);
    }

    #[test]
    #[should_panic(expected = "different periods")]
    fn combine_rejects_period_mismatch() {
        let a = clock_10_20();
        let b = Waveform::constant(ns(25.0), Zero);
        let _ = a.combine(&b, Value::or);
    }

    #[test]
    fn overwrite_wrapping_span() {
        let w =
            Waveform::constant(P, Stable).overwrite(Span::wrapping(ns(45.0), ns(5.0), P), Change);
        assert_eq!(w.value_at(ns(47.0)), Change);
        assert_eq!(w.value_at(ns(2.0)), Change);
        assert_eq!(w.value_at(ns(5.0)), Stable);
        assert_eq!(w.value_at(ns(44.0)), Stable);
    }

    #[test]
    fn spans_where_finds_wrapping_run() {
        let w = Waveform::from_intervals(P, Stable, [(ns(45.0), ns(5.0), Change)]);
        let spans = w.spans_where(|v| v == Change);
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].start(), ns(45.0));
        assert_eq!(spans[0].width(), ns(10.0));
    }

    #[test]
    fn spans_where_all_or_nothing() {
        let w = Waveform::constant(P, Stable);
        assert_eq!(w.spans_where(|v| v == Stable), vec![Span::full(P)]);
        assert!(w.spans_where(|v| v == Change).is_empty());
    }

    #[test]
    fn spans_where_multiple_runs() {
        let w = Waveform::from_intervals(
            P,
            Stable,
            [(ns(5.0), ns(10.0), Change), (ns(20.0), ns(22.0), Change)],
        );
        let spans = w.spans_where(Value::is_transitioning);
        assert_eq!(spans.len(), 2);
        assert_eq!((spans[0].start(), spans[0].width()), (ns(5.0), ns(5.0)));
        assert_eq!((spans[1].start(), spans[1].width()), (ns(20.0), ns(2.0)));
    }

    #[test]
    fn quiescent_throughout_checks() {
        let w = Waveform::from_intervals(P, Stable, [(ns(10.0), ns(15.0), Change)]);
        assert!(w.quiescent_throughout(Span::new(ns(20.0), ns(10.0), P)));
        assert!(!w.quiescent_throughout(Span::new(ns(5.0), ns(10.0), P)));
        assert!(!w.quiescent_throughout(Span::full(P)));
        // Wrapping span that misses the change.
        assert!(w.quiescent_throughout(Span::wrapping(ns(40.0), ns(10.0), P)));
        // Instants.
        assert!(w.quiescent_throughout(Span::instant(ns(9.9), P)));
        assert!(!w.quiescent_throughout(Span::instant(ns(10.0), P)));
    }

    #[test]
    fn skew_fold_reproduces_fig_2_9() {
        // Fig 2-8/2-9: an output Z transitions 0->1 at 10 and 1->0 at 20
        // after the minimum gate delay; the gate's 5 ns delay spread is the
        // skew. Folding yields R over [10,15), F over [20,25).
        let z = clock_10_20();
        let folded = z.with_skew_applied(crate::Skew::from_ns(0.0, 5.0));
        assert_eq!(folded.value_at(ns(9.9)), Zero);
        assert_eq!(folded.value_at(ns(10.0)), Rise);
        assert_eq!(folded.value_at(ns(14.9)), Rise);
        assert_eq!(folded.value_at(ns(15.0)), One);
        assert_eq!(folded.value_at(ns(20.0)), Fall);
        assert_eq!(folded.value_at(ns(24.9)), Fall);
        assert_eq!(folded.value_at(ns(25.0)), Zero);
    }

    #[test]
    fn skew_fold_with_minus_side() {
        // Precision-clock style +-1 ns skew: windows straddle the nominal edges.
        let folded = clock_10_20().with_skew_applied(crate::Skew::from_ns(1.0, 1.0));
        assert_eq!(folded.value_at(ns(8.9)), Zero);
        assert_eq!(folded.value_at(ns(9.0)), Rise);
        assert_eq!(folded.value_at(ns(10.9)), Rise);
        assert_eq!(folded.value_at(ns(11.0)), One);
        assert_eq!(folded.value_at(ns(19.0)), Fall);
        assert_eq!(folded.value_at(ns(21.0)), Zero);
    }

    #[test]
    fn skew_fold_overlapping_windows_join_to_change() {
        // A 2 ns pulse with 5 ns of skew: rise and fall windows overlap.
        let w = Waveform::from_intervals(P, Zero, [(ns(10.0), ns(12.0), One)]);
        let folded = w.with_skew_applied(crate::Skew::from_ns(0.0, 5.0));
        // In [12, 15) both the rise window [10,15) and fall window [12,17)
        // apply: R join F = C.
        assert_eq!(folded.value_at(ns(11.0)), Rise);
        assert_eq!(folded.value_at(ns(13.0)), Change);
        assert_eq!(folded.value_at(ns(16.0)), Fall);
        assert_eq!(folded.value_at(ns(17.0)), Zero);
    }

    #[test]
    fn skew_fold_zero_skew_is_identity() {
        let w = clock_10_20();
        assert_eq!(w.with_skew_applied(crate::Skew::ZERO), w);
    }

    #[test]
    fn display_is_listing_style() {
        let w = clock_10_20();
        assert_eq!(w.to_string(), "0 0.0 1 10.0 0 20.0");
    }
}
