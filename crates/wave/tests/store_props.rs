//! Seeded property suite for the hash-consed [`WaveStore`]: interning
//! coincides exactly with structural equality, equal-but-differently-
//! built waveforms canonicalize to one handle, and the store's growth is
//! bounded by the number of *distinct* waveforms, not by intern traffic.

use scald_logic::{Value, ALL_VALUES};
use scald_rng::Rng;
use scald_wave::{Time, WaveRef, WaveStore, Waveform};

const P: Time = Time::from_ps(50_000);

/// A random canonical waveform: 1–5 raw transitions at arbitrary
/// instants (canonicalization may merge them down).
fn random_wave(rng: &mut Rng) -> Waveform {
    let n = rng.range_usize(1, 6);
    let trans = (0..n)
        .map(|_| {
            (
                Time::from_ps(rng.range_i64(0, 50_000)),
                *rng.choose(&ALL_VALUES),
            )
        })
        .collect();
    Waveform::from_transitions(P, trans)
}

/// `intern(w) == intern(w')` iff `w == w'` — checked pairwise over 50
/// seeded batches against everything interned so far, for both the
/// [`WaveId`] and the [`WaveRef`] equality relations.
///
/// [`WaveId`]: scald_wave::WaveId
#[test]
fn intern_identity_coincides_with_structural_equality() {
    let store = WaveStore::new();
    let mut seen: Vec<(Waveform, WaveRef)> = Vec::new();
    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(0x1d_c0de ^ seed);
        for _ in 0..8 {
            let w = random_wave(&mut rng);
            let r = store.intern(w.clone());
            assert_eq!(*r.as_wave(), w, "the canonical copy is the waveform");
            for (other_w, other_r) in &seen {
                let structurally_equal = w == *other_w;
                assert_eq!(
                    r.id() == other_r.id(),
                    structurally_equal,
                    "seed {seed}: id identity diverged for {w} vs {other_w}"
                );
                assert_eq!(r == *other_r, structurally_equal);
            }
            seen.push((w, r));
        }
    }
    // Hash-consing stored exactly one slot per distinct waveform.
    let mut distinct: Vec<&Waveform> = Vec::new();
    for (w, _) in &seen {
        if !distinct.contains(&w) {
            distinct.push(w);
        }
    }
    assert_eq!(store.len(), distinct.len());
}

/// Equal waveforms built along different construction paths — shuffled
/// `from_intervals` order, split intervals, raw transitions — are one
/// interned handle. (Semantic canonicalization is what makes the store's
/// id compare exact.)
#[test]
fn differently_built_equal_waveforms_share_a_handle() {
    let store = WaveStore::new();
    for seed in 0..50u64 {
        let mut rng = Rng::seed_from_u64(0xca11 ^ (seed << 8));
        // A partition of the period into 2–4 disjoint runs.
        let mut cuts: Vec<i64> = (0..rng.range_usize(1, 4))
            .map(|_| rng.range_i64(1, 50_000))
            .collect();
        cuts.sort_unstable();
        cuts.dedup();
        let mut bounds = vec![0i64];
        bounds.extend(&cuts);
        bounds.push(50_000);
        let runs: Vec<(Time, Time, Value)> = bounds
            .windows(2)
            .map(|w| {
                (
                    Time::from_ps(w[0]),
                    Time::from_ps(w[1]),
                    *rng.choose(&ALL_VALUES),
                )
            })
            .collect();

        // Path 1: intervals in layout order over an arbitrary base.
        let base = *rng.choose(&ALL_VALUES);
        let in_order = Waveform::from_intervals(P, base, runs.iter().copied());
        // Path 2: the same disjoint intervals applied in shuffled order.
        let mut shuffled = runs.clone();
        rng.shuffle(&mut shuffled);
        let out_of_order = Waveform::from_intervals(P, base, shuffled);
        // Path 3: the widest run split at an interior point, overwritten
        // in two adjacent pieces (run-length merging must rejoin them).
        let (s, e, v) = *runs
            .iter()
            .max_by_key(|(start, end, _)| *end - *start)
            .unwrap();
        let mid = Time::from_ps((s.as_ps() + e.as_ps()) / 2);
        let split = Waveform::from_intervals(
            P,
            base,
            runs.iter().copied().flat_map(|r| {
                if r == (s, e, v) && mid > s {
                    vec![(s, mid, v), (mid, e, v)]
                } else {
                    vec![r]
                }
            }),
        );
        // Path 4: the run-length list as raw transitions.
        let raw = Waveform::from_transitions(
            P,
            runs.iter()
                .map(|&(start, _, value)| (start, value))
                .collect(),
        );

        assert_eq!(in_order, out_of_order, "seed {seed}");
        assert_eq!(in_order, split, "seed {seed}");
        assert_eq!(in_order, raw, "seed {seed}");
        let ids: Vec<_> = [in_order, out_of_order, split, raw]
            .into_iter()
            .map(|w| store.intern(w).id())
            .collect();
        assert!(
            ids.windows(2).all(|p| p[0] == p[1]),
            "seed {seed}: construction path leaked into identity: {ids:?}"
        );
    }
}

/// Overlap order *does* matter when values differ — and the store keeps
/// the two outcomes distinct while canonicalizing each side.
#[test]
fn overlapping_intervals_canonicalize_by_last_writer() {
    let store = WaveStore::new();
    let (a, b, c) = (
        Time::from_ps(10_000),
        Time::from_ps(20_000),
        Time::from_ps(30_000),
    );
    // One covered on [a,c), then Stable overwrites its tail [b,c)...
    let tail_wins =
        Waveform::from_intervals(P, Value::Zero, [(a, c, Value::One), (b, c, Value::Stable)]);
    // ...equals the direct two-run build, handle-for-handle.
    let direct =
        Waveform::from_intervals(P, Value::Zero, [(a, b, Value::One), (b, c, Value::Stable)]);
    let direct_id = store.intern(direct).id();
    assert_eq!(store.intern(tail_wins).id(), direct_id);
    // Applying the same intervals in the opposite order lets One win the
    // overlap — a different waveform, hence a different slot.
    let head_wins =
        Waveform::from_intervals(P, Value::Zero, [(b, c, Value::Stable), (a, c, Value::One)]);
    assert_ne!(store.intern(head_wins).id(), direct_id);
    assert_eq!(store.len(), 2);
}

/// Store growth is bounded by the distinct-waveform population: hammering
/// the store with thousands of interns drawn from a small pool neither
/// grows it past the pool nor misses an available canonical copy.
#[test]
fn growth_is_bounded_by_the_distinct_population() {
    let store = WaveStore::new();
    let mut rng = Rng::seed_from_u64(0xb0b);
    let pool: Vec<Waveform> = (0..32).map(|_| random_wave(&mut rng)).collect();
    let mut distinct: Vec<&Waveform> = Vec::new();
    for w in &pool {
        if !distinct.contains(&w) {
            distinct.push(w);
        }
    }
    for _ in 0..5_000 {
        let w = rng.choose(&pool).clone();
        store.intern(w);
    }
    let stats = store.stats();
    assert_eq!(stats.unique, distinct.len(), "no duplicate slots, ever");
    assert_eq!(stats.interns, 5_000);
    assert_eq!(
        stats.hits,
        stats.interns - distinct.len() as u64,
        "every intern after the first of each waveform is a hit"
    );
}
