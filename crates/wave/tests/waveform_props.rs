//! Randomized property tests for waveform invariants (seeded, std-only).
//!
//! These exercise the consistency rules of §2.8: segment widths sum to the
//! period, canonicalization is idempotent, delays compose and rotate
//! losslessly, and the separated-skew fold is a sound widening of the
//! original waveform. Each property runs over a deterministic stream of
//! random waveforms from [`scald_rng`], so failures reproduce exactly.

use scald_logic::{Value, ALL_VALUES};
use scald_rng::Rng;
use scald_wave::{edge_windows, pulses, Edge, Skew, Span, Time, Waveform};

const PERIOD_PS: i64 = 50_000;
const CASES: usize = 512;

fn period() -> Time {
    Time::from_ps(PERIOD_PS)
}

fn any_value(rng: &mut Rng) -> Value {
    *rng.choose(&ALL_VALUES)
}

/// A waveform built from up to 8 raw transitions at arbitrary instants.
fn any_waveform(rng: &mut Rng) -> Waveform {
    let n = rng.range_usize(1, 8);
    let raw: Vec<(Time, Value)> = (0..n)
        .map(|_| (Time::from_ps(rng.range_i64(0, PERIOD_PS)), any_value(rng)))
        .collect();
    Waveform::from_transitions(period(), raw)
}

/// The thesis' consistency rule: segment widths sum exactly to the period.
#[test]
fn segments_cover_period() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0001);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let total = w
            .segments()
            .iter()
            .fold(Time::ZERO, |acc, &(_, _, width)| acc + width);
        assert_eq!(total, period(), "waveform {w}");
    }
}

/// Round-tripping through the run-length representation is lossless.
#[test]
fn segments_round_trip() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0002);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let rebuilt = Waveform::from_segments(
            period(),
            w.segments().into_iter().map(|(_, v, width)| (v, width)),
        )
        .unwrap();
        assert_eq!(rebuilt, w);
    }
}

/// Canonical representation: rebuilding from transitions is identity.
#[test]
fn canonicalization_idempotent() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0003);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let again = Waveform::from_transitions(period(), w.transitions().to_vec());
        assert_eq!(again, w);
    }
}

/// Delay by the period (either direction) is the identity; delays add.
#[test]
fn delay_rotates() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0004);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let a = rng.range_i64(0, PERIOD_PS);
        let b = rng.range_i64(0, PERIOD_PS);
        assert_eq!(w.delayed(period()), w.clone());
        assert_eq!(w.delayed(-period()), w.clone());
        let split = w.delayed(Time::from_ps(a)).delayed(Time::from_ps(b));
        let joined = w.delayed(Time::from_ps(a + b));
        assert_eq!(split, joined, "waveform {w}, delays {a} + {b}");
    }
}

/// value_at agrees with the segment covering the instant.
#[test]
fn value_at_matches_segments() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0005);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let t = Time::from_ps(rng.range_i64(0, PERIOD_PS));
        let from_segs = w
            .segments()
            .into_iter()
            .find(|&(start, _, width)| start <= t && t < start + width)
            .map(|(_, v, _)| v)
            .expect("segments cover the period");
        assert_eq!(w.value_at(t), from_segs, "waveform {w} at {t}");
    }
}

/// The skew fold only widens: wherever the original was quiescent and
/// the folded is too, values agree; and the folded waveform covers the
/// original at every instant (covering = join absorbs it).
#[test]
fn skew_fold_is_a_widening() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0006);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let minus = rng.range_i64(0, 5_000);
        let plus = rng.range_i64(0, 5_000);
        let folded = w.with_skew_applied(Skew::new(Time::from_ps(minus), Time::from_ps(plus)));
        for t in (0..PERIOD_PS).step_by(977) {
            let t = Time::from_ps(t);
            let orig = w.value_at(t);
            let fold = folded.value_at(t);
            assert_eq!(
                fold.join(orig),
                fold,
                "at {t}: folded {fold} does not cover original {orig} (waveform {w})"
            );
        }
    }
}

/// Zero skew is the identity fold.
#[test]
fn zero_skew_fold_identity() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0007);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        assert_eq!(w.with_skew_applied(Skew::ZERO), w);
    }
}

/// combine is pointwise: sampling agrees with combining samples.
#[test]
fn combine_is_pointwise() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0008);
    for _ in 0..CASES {
        let a = any_waveform(&mut rng);
        let b = any_waveform(&mut rng);
        let t = Time::from_ps(rng.range_i64(0, PERIOD_PS));
        let c = a.combine(&b, Value::or);
        assert_eq!(c.value_at(t), a.value_at(t).or(b.value_at(t)));
    }
}

/// spans_where returns exactly the instants satisfying the predicate.
#[test]
fn spans_where_partition() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d0009);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let t = Time::from_ps(rng.range_i64(0, PERIOD_PS));
        let spans = w.spans_where(Value::is_transitioning);
        let in_span = spans.iter().any(|s| s.contains(t, period()));
        assert_eq!(
            in_span,
            w.value_at(t).is_transitioning(),
            "waveform {w} at {t}"
        );
    }
}

/// Every guaranteed `1` instant lies inside some reported high pulse
/// (unless the signal can be high all period, when no pulse exists).
#[test]
fn pulses_cover_guaranteed_levels() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d000a);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let t = Time::from_ps(rng.range_i64(0, PERIOD_PS));
        let ps = pulses(&w, true);
        if w.value_at(t) == Value::One && !ps.is_empty() {
            assert!(
                ps.iter().any(|p| p.possible.contains(t, period())),
                "instant {t} is high but outside every pulse of {w}"
            );
        }
    }
}

/// Any instant where the value admits a rising transition is covered by
/// a rising edge window (conservatism of the checker anchors).
#[test]
fn edge_windows_cover_transitioning_instants() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d000b);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let t = Time::from_ps(rng.range_i64(0, PERIOD_PS));
        let v = w.value_at(t);
        if matches!(v, Value::Rise | Value::Change | Value::Unknown) && !w.is_constant() {
            let wins = edge_windows(&w, Edge::Rising);
            assert!(
                wins.iter().any(|e| e.span.contains(t, period())),
                "instant {t} ({v}) admits a rise but no window covers it in {w}"
            );
        }
    }
}

/// Span queries: a span always contains its start (if non-empty or
/// zero-width by convention) and linear pieces reassemble its width.
#[test]
fn span_pieces_reassemble() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d000c);
    for _ in 0..CASES {
        let start = rng.range_i64(0, PERIOD_PS);
        let width = rng.range_i64(0, PERIOD_PS + 1);
        let s = Span::new(Time::from_ps(start), Time::from_ps(width), period());
        assert!(s.contains(Time::from_ps(start), period()));
        let total: Time = s
            .linear_pieces(period())
            .into_iter()
            .fold(Time::ZERO, |acc, (a, b)| acc + (b - a));
        assert_eq!(total, s.width());
    }
}

/// Cross-check `pulses` against an independent reference: the minimum
/// possible high-pulse width of a pulse equals the narrowest
/// guaranteed-One run inside its span, where the One runs come from
/// the independently-tested `spans_where`.
#[test]
fn pulse_min_width_matches_reference_scan() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d000d);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let ps = pulses(&w, true);
        let one_runs = w.spans_where(|v| v == Value::One);
        for p in &ps {
            let reference = one_runs
                .iter()
                .filter(|s| p.possible.contains(s.start(), period()))
                .map(|s| s.width())
                .min()
                .unwrap_or(Time::ZERO);
            assert_eq!(p.min_possible_width, reference, "pulse {p:?} in {w}");
        }
    }
}

/// Edge windows and pulses agree: every *certain* high pulse is
/// bracketed by a rising window before (or at) its start and a falling
/// window at (or after) its end.
#[test]
fn certain_pulses_are_bracketed_by_edges() {
    let mut rng = Rng::seed_from_u64(0x5ca1_d000e);
    for _ in 0..CASES {
        let w = any_waveform(&mut rng);
        let high = pulses(&w, true);
        let rising = edge_windows(&w, Edge::Rising);
        let falling = edge_windows(&w, Edge::Falling);
        for p in high.iter().filter(|p| p.certain) {
            assert!(
                !rising.is_empty(),
                "certain pulse {p:?} but no rising edges in {w}"
            );
            assert!(
                !falling.is_empty(),
                "certain pulse {p:?} but no falling edges in {w}"
            );
        }
    }
}
