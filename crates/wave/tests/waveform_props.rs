//! Property-based tests for waveform invariants.
//!
//! These exercise the consistency rules of §2.8: segment widths sum to the
//! period, canonicalization is idempotent, delays compose and rotate
//! losslessly, and the separated-skew fold is a sound widening of the
//! original waveform.

use proptest::prelude::*;
use scald_logic::{Value, ALL_VALUES};
use scald_wave::{edge_windows, pulses, Edge, Skew, Span, Time, Waveform};

const PERIOD_PS: i64 = 50_000;

fn period() -> Time {
    Time::from_ps(PERIOD_PS)
}

fn any_value() -> impl Strategy<Value = Value> {
    prop::sample::select(ALL_VALUES.to_vec())
}

/// A waveform built from up to 8 raw transitions at arbitrary instants.
fn any_waveform() -> impl Strategy<Value = Waveform> {
    prop::collection::vec((0..PERIOD_PS, any_value()), 1..8).prop_map(|raw| {
        Waveform::from_transitions(
            period(),
            raw.into_iter().map(|(t, v)| (Time::from_ps(t), v)).collect(),
        )
    })
}

proptest! {
    /// The thesis' consistency rule: segment widths sum exactly to the
    /// period.
    #[test]
    fn segments_cover_period(w in any_waveform()) {
        let total = w
            .segments()
            .iter()
            .fold(Time::ZERO, |acc, &(_, _, width)| acc + width);
        prop_assert_eq!(total, period());
    }

    /// Round-tripping through the run-length representation is lossless.
    #[test]
    fn segments_round_trip(w in any_waveform()) {
        let rebuilt = Waveform::from_segments(
            period(),
            w.segments().into_iter().map(|(_, v, width)| (v, width)),
        ).unwrap();
        prop_assert_eq!(rebuilt, w);
    }

    /// Canonical representation: rebuilding from transitions is identity.
    #[test]
    fn canonicalization_idempotent(w in any_waveform()) {
        let again = Waveform::from_transitions(period(), w.transitions().to_vec());
        prop_assert_eq!(again, w);
    }

    /// Delay by the period (either direction) is the identity; delays add.
    #[test]
    fn delay_rotates(w in any_waveform(), a in 0..PERIOD_PS, b in 0..PERIOD_PS) {
        prop_assert_eq!(w.delayed(period()), w.clone());
        prop_assert_eq!(w.delayed(-period()), w.clone());
        let split = w.delayed(Time::from_ps(a)).delayed(Time::from_ps(b));
        let joined = w.delayed(Time::from_ps(a + b));
        prop_assert_eq!(split, joined);
    }

    /// value_at agrees with the segment covering the instant.
    #[test]
    fn value_at_matches_segments(w in any_waveform(), t in 0..PERIOD_PS) {
        let t = Time::from_ps(t);
        let from_segs = w
            .segments()
            .into_iter()
            .find(|&(start, _, width)| start <= t && t < start + width)
            .map(|(_, v, _)| v)
            .expect("segments cover the period");
        prop_assert_eq!(w.value_at(t), from_segs);
    }

    /// The skew fold only widens: wherever the original was quiescent and
    /// the folded is too, values agree; and the folded waveform covers the
    /// original at every instant (covering = join absorbs it).
    #[test]
    fn skew_fold_is_a_widening(
        w in any_waveform(),
        minus in 0..5_000i64,
        plus in 0..5_000i64,
    ) {
        let folded = w.with_skew_applied(Skew::new(
            Time::from_ps(minus),
            Time::from_ps(plus),
        ));
        for t in (0..PERIOD_PS).step_by(977) {
            let t = Time::from_ps(t);
            let orig = w.value_at(t);
            let fold = folded.value_at(t);
            prop_assert_eq!(
                fold.join(orig), fold,
                "at {}: folded {} does not cover original {}", t, fold, orig
            );
        }
    }

    /// Zero skew is the identity fold.
    #[test]
    fn zero_skew_fold_identity(w in any_waveform()) {
        prop_assert_eq!(w.with_skew_applied(Skew::ZERO), w);
    }

    /// combine is pointwise: sampling agrees with combining samples.
    #[test]
    fn combine_is_pointwise(a in any_waveform(), b in any_waveform(), t in 0..PERIOD_PS) {
        let t = Time::from_ps(t);
        let c = a.combine(&b, Value::or);
        prop_assert_eq!(c.value_at(t), a.value_at(t).or(b.value_at(t)));
    }

    /// spans_where returns exactly the instants satisfying the predicate.
    #[test]
    fn spans_where_partition(w in any_waveform(), t in 0..PERIOD_PS) {
        let t = Time::from_ps(t);
        let spans = w.spans_where(Value::is_transitioning);
        let in_span = spans.iter().any(|s| s.contains(t, period()));
        prop_assert_eq!(in_span, w.value_at(t).is_transitioning());
    }

    /// Every guaranteed `1` instant lies inside some reported high pulse
    /// (unless the signal can be high all period, when no pulse exists).
    #[test]
    fn pulses_cover_guaranteed_levels(w in any_waveform(), t in 0..PERIOD_PS) {
        let t = Time::from_ps(t);
        let ps = pulses(&w, true);
        if w.value_at(t) == Value::One && !ps.is_empty() {
            prop_assert!(
                ps.iter().any(|p| p.possible.contains(t, period())),
                "instant {} is high but outside every pulse", t
            );
        }
    }

    /// Any instant where the value admits a rising transition is covered by
    /// a rising edge window (conservatism of the checker anchors).
    #[test]
    fn edge_windows_cover_transitioning_instants(w in any_waveform(), t in 0..PERIOD_PS) {
        let t = Time::from_ps(t);
        let v = w.value_at(t);
        if matches!(v, Value::Rise | Value::Change | Value::Unknown) && !w.is_constant() {
            let wins = edge_windows(&w, Edge::Rising);
            prop_assert!(
                wins.iter().any(|e| e.span.contains(t, period())),
                "instant {} ({}) admits a rise but no window covers it", t, v
            );
        }
    }

    /// Span queries: a span always contains its start (if non-empty or
    /// zero-width by convention) and linear pieces reassemble its width.
    #[test]
    fn span_pieces_reassemble(start in 0..PERIOD_PS, width in 0..=PERIOD_PS) {
        let s = Span::new(Time::from_ps(start), Time::from_ps(width), period());
        prop_assert!(s.contains(Time::from_ps(start), period()));
        let total: Time = s
            .linear_pieces(period())
            .into_iter()
            .fold(Time::ZERO, |acc, (a, b)| acc + (b - a));
        prop_assert_eq!(total, s.width());
    }
}

proptest! {
    /// Cross-check `pulses` against an independent reference: the minimum
    /// possible high-pulse width of a pulse equals the narrowest
    /// guaranteed-One run inside its span, where the One runs come from
    /// the independently-tested `spans_where`.
    #[test]
    fn pulse_min_width_matches_reference_scan(w in any_waveform()) {
        let ps = pulses(&w, true);
        let one_runs = w.spans_where(|v| v == Value::One);
        for p in &ps {
            let reference = one_runs
                .iter()
                .filter(|s| p.possible.contains(s.start(), period()))
                .map(|s| s.width())
                .min()
                .unwrap_or(Time::ZERO);
            prop_assert_eq!(
                p.min_possible_width, reference,
                "pulse {:?} in {}", p, w
            );
        }
    }

    /// Edge windows and pulses agree: every *certain* high pulse is
    /// bracketed by a rising window before (or at) its start and a falling
    /// window at (or after) its end.
    #[test]
    fn certain_pulses_are_bracketed_by_edges(w in any_waveform()) {
        let high = pulses(&w, true);
        let rising = edge_windows(&w, Edge::Rising);
        let falling = edge_windows(&w, Edge::Falling);
        for p in high.iter().filter(|p| p.certain) {
            prop_assert!(
                !rising.is_empty(),
                "certain pulse {:?} but no rising edges in {}", p, w
            );
            prop_assert!(
                !falling.is_empty(),
                "certain pulse {:?} but no falling edges in {}", p, w
            );
        }
    }
}
