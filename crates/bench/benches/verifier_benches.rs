//! Criterion benches for the Timing Verifier: one bench group per
//! table/figure experiment (see DESIGN.md §3), plus the verifier-vs-
//! baselines comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scald_gen::figures::{
    alu_stage, case_analysis_circuit, correlation_circuit, hazard_circuit,
    register_file_circuit,
};
use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_paths::PathAnalysis;
use scald_sim::{primary_inputs, simulate, Stimulus};
use scald_verifier::{Case, Verifier};
use scald_wave::{DelayRange, Time};

/// Fig 2-5 / Fig 3-11: verify the register-file circuit.
fn fig_3_10_3_11(c: &mut Criterion) {
    c.bench_function("fig_3_11/register_file_verify", |b| {
        b.iter_batched(
            || register_file_circuit().0,
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run().expect("settles")
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Fig 1-5: hazard detection via the &A directive.
fn fig_1_5(c: &mut Criterion) {
    c.bench_function("fig_1_5/hazard_verify", |b| {
        b.iter_batched(
            || hazard_circuit(true),
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run().expect("settles")
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Fig 2-6: two-case analysis, showing the incremental second case.
fn fig_2_6(c: &mut Criterion) {
    c.bench_function("fig_2_6/two_cases", |b| {
        b.iter_batched(
            || case_analysis_circuit().0,
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run_cases(&[
                    Case::new().assign("CONTROL SIGNAL", false),
                    Case::new().assign("CONTROL SIGNAL", true),
                ])
                .expect("settles")
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Fig 3-12 and Fig 4-1: the remaining figure circuits.
fn other_figures(c: &mut Criterion) {
    c.bench_function("fig_3_12/alu_stage_verify", |b| {
        b.iter_batched(
            || alu_stage().0,
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run().expect("settles")
            },
            criterion::BatchSize::SmallInput,
        );
    });
    c.bench_function("fig_4_1/correlation_verify", |b| {
        b.iter_batched(
            || correlation_circuit(false),
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run().expect("settles")
            },
            criterion::BatchSize::SmallInput,
        );
    });
}

/// Table 3-1: full verification passes over S-1-like designs of
/// increasing size (chip counts scaled down for bench time; the table
/// binary runs the full 6357).
fn table_3_1_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("table_3_1/verify_s1_like");
    for chips in [100usize, 400, 1600] {
        let (netlist, _) = s1_like_netlist(S1Options {
            chips,
            ..S1Options::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(chips), &netlist, |b, n| {
            b.iter_batched(
                || n.clone(),
                |netlist| {
                    let mut v = Verifier::new(netlist);
                    v.run().expect("settles")
                },
                criterion::BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn muxed_paths_circuit(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P6-7 (0,0)").expect("valid");
    let z = |s: SignalId| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    for i in 0..n {
        let sel = b.signal(&format!("SEL{i}")).expect("valid");
        let fast = b.signal(&format!("FAST{i} .S0-1")).expect("valid");
        let slow_in = b.signal(&format!("SLOWIN{i} .S0-1")).expect("valid");
        let slow = b.signal(&format!("SLOW{i}")).expect("valid");
        let m = b.signal(&format!("M{i}")).expect("valid");
        let q = b.signal(&format!("Q{i}")).expect("valid");
        b.buf(format!("SB{i}"), DelayRange::from_ns(33.0, 36.0), z(slow_in), slow);
        b.mux2(format!("MX{i}"), DelayRange::from_ns(1.2, 3.3), z(sel), z(fast), z(slow), m);
        b.reg(format!("R{i}"), DelayRange::from_ns(1.5, 4.5), z(clk), z(m), q);
        b.setup_hold(
            format!("C{i}"),
            Time::from_ns(2.5),
            Time::from_ns(1.5),
            z(m),
            z(clk),
        );
    }
    b.finish().expect("well-formed")
}

/// The headline comparison: one symbolic pass vs 2^n simulated patterns.
fn verifier_vs_sim(c: &mut Criterion) {
    let mut group = c.benchmark_group("scaling/verifier_vs_sim");
    for n in [2usize, 4, 6] {
        let netlist = muxed_paths_circuit(n);
        group.bench_with_input(BenchmarkId::new("verifier_one_pass", n), &netlist, |b, nl| {
            b.iter_batched(
                || nl.clone(),
                |netlist| {
                    let mut v = Verifier::new(netlist);
                    v.run().expect("settles")
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_with_input(
            BenchmarkId::new("sim_exhaustive", n),
            &netlist,
            |b, nl| {
                let sweep: Vec<SignalId> = primary_inputs(nl)
                    .into_iter()
                    .filter(|s| nl.signal(*s).assertion.is_none())
                    .collect();
                b.iter(|| {
                    let mut total = 0u64;
                    for p in 0..(1u64 << sweep.len()) {
                        let stim = Stimulus::from_pattern(&sweep, 1, p);
                        total += simulate(nl, &stim).events;
                    }
                    total
                });
            },
        );
        group.bench_with_input(BenchmarkId::new("path_search", n), &netlist, |b, nl| {
            b.iter(|| PathAnalysis::analyze(nl).violations().len());
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    fig_3_10_3_11,
    fig_1_5,
    fig_2_6,
    other_figures,
    table_3_1_scaling,
    verifier_vs_sim
);
criterion_main!(benches);
