//! Benches for the Timing Verifier: one group per table/figure
//! experiment (see DESIGN.md §3), plus the verifier-vs-baselines
//! comparison. Std-only harness — run with `cargo bench`, filter by
//! substring: `cargo bench --bench verifier_benches -- fig_2_6`.

use scald_bench::harness::Bench;
use scald_gen::figures::{
    alu_stage, case_analysis_circuit, correlation_circuit, hazard_circuit, register_file_circuit,
};
use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_incr::{Delta, DesignInput, NetlistDelta, Session, SessionBuilder};
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_paths::PathAnalysis;
use scald_sim::{primary_inputs, simulate, Stimulus};
use scald_trace::CounterSink;
use scald_verifier::{Case, CaseSet, RunOptions, Verifier, VerifierBuilder};
use scald_wave::{DelayRange, Time};
use std::sync::Arc;

/// Fig 2-5 / Fig 3-11: verify the register-file circuit.
fn fig_3_10_3_11(b: &Bench) {
    b.bench_with_setup(
        "fig_3_11/register_file_verify",
        || register_file_circuit().0,
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
}

/// Fig 1-5: hazard detection via the &A directive.
fn fig_1_5(b: &Bench) {
    b.bench_with_setup(
        "fig_1_5/hazard_verify",
        || hazard_circuit(true),
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
}

/// Fig 2-6: two-case analysis, showing the incremental second case.
fn fig_2_6(b: &Bench) {
    b.bench_with_setup(
        "fig_2_6/two_cases",
        || case_analysis_circuit().0,
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new().cases(CaseSet::exhaustive(["CONTROL SIGNAL"])))
                .expect("settles")
        },
    );
}

/// Fig 3-12 and Fig 4-1: the remaining figure circuits.
fn other_figures(b: &Bench) {
    b.bench_with_setup(
        "fig_3_12/alu_stage_verify",
        || alu_stage().0,
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
    b.bench_with_setup(
        "fig_4_1/correlation_verify",
        || correlation_circuit(false),
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
}

/// Table 3-1: full verification passes over S-1-like designs of
/// increasing size (chip counts scaled down for bench time; the table
/// binary runs the full 6357).
fn table_3_1_scaling(b: &Bench) {
    for chips in [100usize, 400, 1600] {
        let (netlist, _) = s1_like_netlist(S1Options {
            chips,
            ..S1Options::default()
        });
        b.bench_with_setup(
            &format!("table_3_1/verify_s1_like/{chips}"),
            || netlist.clone(),
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run(&RunOptions::new()).expect("settles").into_sole()
            },
        );
    }
}

/// §2.7 at scale: many-case analysis over an S-1-like design, serial vs
/// the worker pool — the experiment behind the `--jobs` flag.
fn par_cases(b: &Bench) {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        ..S1Options::default()
    });
    // 16 cases, each flipping three of the generator's global controls so
    // every case dirties a sizeable cone. The engine is pre-settled in the
    // untimed setup, so the timed region is exactly the case sweep — the
    // part the worker pool parallelizes.
    let cases: CaseSet = (0..16)
        .map(|i| {
            Case::new()
                .assign(format!("CTL {i}"), i % 2 == 0)
                .assign(format!("CTL {}", (i + 5) % 24), i % 3 == 0)
                .assign(format!("CTL {}", (i + 11) % 24), i % 2 == 1)
        })
        .collect();
    let settled = || {
        let mut v = Verifier::new(netlist.clone());
        v.run(&RunOptions::new()).expect("settles");
        v
    };
    b.bench_with_setup(
        &format!("par_cases/serial/{}", cases.len()),
        settled,
        |mut v| {
            v.run(&RunOptions::new().cases(cases.clone()).jobs(1))
                .expect("settles")
        },
    );
    for jobs in [2usize, 4] {
        b.bench_with_setup(
            &format!("par_cases/jobs{jobs}/{}", cases.len()),
            settled,
            |mut v| {
                v.run(&RunOptions::new().cases(cases.clone()).jobs(jobs))
                    .expect("settles")
            },
        );
    }
}

/// The wave engine *inside* one settle: the cold base fixed point of a
/// 400-chip design evaluated serially vs across 2/4/8 wave workers.
/// A single implicit case, so none of the parallelism comes from the
/// case fan-out — this times `--jobs` for the intra-run settle path.
fn par_settle(b: &Bench) {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        ..S1Options::default()
    });
    for jobs in [1usize, 2, 4, 8] {
        let label = if jobs == 1 {
            "serial".to_owned()
        } else {
            format!("jobs{jobs}")
        };
        b.bench_with_setup(
            &format!("par_settle/{label}"),
            || netlist.clone(),
            |n| {
                let mut v = Verifier::new(n);
                v.run(&RunOptions::new().jobs(jobs))
                    .expect("settles")
                    .into_sole()
            },
        );
    }
}

/// Observability cost: the same full verification pass with tracing
/// disabled (`Verifier::new`, the `Option<Arc<dyn TraceSink>>` is
/// `None`) and with a live counter sink attached. The disabled run is
/// the ≤ 2 % overhead claim: compare `trace_overhead/disabled/400`
/// against `table_3_1/verify_s1_like/400` from the same bench run.
fn trace_overhead(b: &Bench) {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        ..S1Options::default()
    });
    b.bench_with_setup(
        "trace_overhead/disabled/400",
        || netlist.clone(),
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
    b.bench_with_setup(
        "trace_overhead/counter_sink/400",
        || netlist.clone(),
        |netlist| {
            let mut v = VerifierBuilder::new(netlist)
                .trace(Arc::new(CounterSink::new()))
                .build();
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
}

/// Incremental re-verification (`scald-incr`): a full cold pass over the
/// 400-chip design vs a warm [`Session::apply`] of a one-primitive ECO
/// retime. The warm routine alternates between two delay values so every
/// iteration is a genuine edit (same dirty cone each time); it includes
/// the netlist rebuild, hashing and verifier-clone overhead, so the
/// measured gap is what a `--watch` user actually sees per edit.
///
/// [`Session::apply`]: scald_incr::Session::apply
fn incr_vs_full(b: &Bench) {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        ..S1Options::default()
    });
    b.bench_with_setup(
        "incr_vs_full/full_verify/400",
        || netlist.clone(),
        |netlist| {
            let mut v = Verifier::new(netlist);
            v.run(&RunOptions::new()).expect("settles").into_sole()
        },
    );
    let target = netlist
        .prims()
        .iter()
        .find(|p| p.name.ends_with("/LOGIC"))
        .expect("generated design has datapath slices")
        .name
        .clone();
    let mut session = Session::open(
        DesignInput::netlist(netlist.clone(), vec![Case::new()]),
        "bench",
    )
    .expect("settles");
    let delays = [DelayRange::from_ns(2.0, 6.0), DelayRange::from_ns(2.5, 7.0)];
    let mut flip = 0usize;
    b.bench("incr_vs_full/warm_retime/400", move || {
        let mut delta = NetlistDelta::new();
        delta.retime(target.clone(), delays[flip % delays.len()]);
        flip += 1;
        session
            .apply(Delta::Netlist(delta))
            .expect("retime applies")
            .stats
            .events
    });
}

/// The evaluation memo table A/B: the same three workloads with the
/// cache on (the default) and off (`--no-eval-cache`). `base_settle` is
/// the cache's worst case — a cold run of a fresh verifier where every
/// lookup misses; `cases8` repeats evaluations across case cones; the
/// session replay alternates one retime back and forth, so half the
/// edits re-enter a previously cached design state.
fn eval_cache(b: &Bench) {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 400,
        ..S1Options::default()
    });
    let cases: CaseSet = (0..8)
        .map(|i| Case::new().assign(format!("CTL {i}"), i % 2 == 0))
        .collect();
    for cached in [false, true] {
        let mode = if cached { "cached" } else { "uncached" };
        b.bench_with_setup(
            &format!("eval_cache/base_settle/{mode}"),
            || netlist.clone(),
            |n| {
                let mut v = VerifierBuilder::new(n).eval_cache(cached).build();
                v.run(&RunOptions::new()).expect("settles").into_sole()
            },
        );
        b.bench_with_setup(
            &format!("eval_cache/cases8/{mode}"),
            || netlist.clone(),
            |n| {
                let mut v = VerifierBuilder::new(n).eval_cache(cached).build();
                v.run(&RunOptions::new().cases(cases.clone()).jobs(1))
                    .expect("settles")
            },
        );
        let target = netlist
            .prims()
            .iter()
            .find(|p| p.name.ends_with("/LOGIC"))
            .expect("generated design has datapath slices")
            .name
            .clone();
        let original = netlist
            .prims()
            .iter()
            .find(|p| p.name == target)
            .expect("target exists")
            .delay;
        let mut session = SessionBuilder::new()
            .eval_cache(cached)
            .open(
                DesignInput::netlist(netlist.clone(), vec![Case::new()]),
                "bench",
            )
            .expect("settles");
        b.bench(&format!("eval_cache/session_replay10/{mode}"), move || {
            let mut events = 0u64;
            for edit in 0..10 {
                let delay = if edit % 2 == 0 {
                    DelayRange::from_ns(2.0, 6.5)
                } else {
                    original
                };
                let mut delta = NetlistDelta::new();
                delta.retime(target.clone(), delay);
                events += session
                    .apply(Delta::Netlist(delta))
                    .expect("retime applies")
                    .stats
                    .events;
            }
            events
        });
    }
}

fn muxed_paths_circuit(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P6-7 (0,0)").expect("valid");
    let z = |s: SignalId| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    for i in 0..n {
        let sel = b.signal(&format!("SEL{i}")).expect("valid");
        let fast = b.signal(&format!("FAST{i} .S0-1")).expect("valid");
        let slow_in = b.signal(&format!("SLOWIN{i} .S0-1")).expect("valid");
        let slow = b.signal(&format!("SLOW{i}")).expect("valid");
        let m = b.signal(&format!("M{i}")).expect("valid");
        let q = b.signal(&format!("Q{i}")).expect("valid");
        b.buf(
            format!("SB{i}"),
            DelayRange::from_ns(33.0, 36.0),
            z(slow_in),
            slow,
        );
        b.mux2(
            format!("MX{i}"),
            DelayRange::from_ns(1.2, 3.3),
            z(sel),
            z(fast),
            z(slow),
            m,
        );
        b.reg(
            format!("R{i}"),
            DelayRange::from_ns(1.5, 4.5),
            z(clk),
            z(m),
            q,
        );
        b.setup_hold(
            format!("C{i}"),
            Time::from_ns(2.5),
            Time::from_ns(1.5),
            z(m),
            z(clk),
        );
    }
    b.finish().expect("well-formed")
}

/// The headline comparison: one symbolic pass vs 2^n simulated patterns.
fn verifier_vs_sim(b: &Bench) {
    for n in [2usize, 4, 6] {
        let netlist = muxed_paths_circuit(n);
        b.bench_with_setup(
            &format!("scaling/verifier_one_pass/{n}"),
            || netlist.clone(),
            |netlist| {
                let mut v = Verifier::new(netlist);
                v.run(&RunOptions::new()).expect("settles").into_sole()
            },
        );
        let sweep: Vec<SignalId> = primary_inputs(&netlist)
            .into_iter()
            .filter(|s| netlist.signal(*s).assertion.is_none())
            .collect();
        b.bench(&format!("scaling/sim_exhaustive/{n}"), || {
            let mut total = 0u64;
            for p in 0..(1u64 << sweep.len()) {
                let stim = Stimulus::from_pattern(&sweep, 1, p);
                total += simulate(&netlist, &stim).events;
            }
            total
        });
        b.bench(&format!("scaling/path_search/{n}"), || {
            PathAnalysis::analyze(&netlist).violations().len()
        });
    }
}

fn main() {
    let b = Bench::from_args();
    fig_3_10_3_11(&b);
    fig_1_5(&b);
    fig_2_6(&b);
    other_figures(&b);
    table_3_1_scaling(&b);
    par_cases(&b);
    par_settle(&b);
    trace_overhead(&b);
    incr_vs_full(&b);
    eval_cache(&b);
    verifier_vs_sim(&b);
}
