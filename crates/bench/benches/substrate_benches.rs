//! Criterion benches for the substrates: waveform algebra, skew folding,
//! assertion parsing, HDL expansion (the Table 3-1 macro-expander phases)
//! and the probabilistic extension.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use scald_assertions::parse_signal_name;
use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_logic::Value;
use scald_stats::DelayDist;
use scald_wave::{DelayRange, Skew, Time, Waveform};

fn waveform_ops(c: &mut Criterion) {
    let period = Time::from_ns(50.0);
    let mut group = c.benchmark_group("wave");
    // A busy waveform with many segments.
    let busy = Waveform::from_intervals(
        period,
        Value::Stable,
        (0..10).map(|i| {
            (
                Time::from_ns(f64::from(i) * 5.0),
                Time::from_ns(f64::from(i) * 5.0 + 2.0),
                if i % 2 == 0 { Value::Change } else { Value::One },
            )
        }),
    );
    let clock = Waveform::from_intervals(
        period,
        Value::Zero,
        [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
    );
    group.bench_function("combine_or", |b| {
        b.iter(|| busy.combine(&clock, Value::or));
    });
    group.bench_function("skew_fold", |b| {
        b.iter(|| busy.with_skew_applied(Skew::from_ns(1.0, 1.0)));
    });
    group.bench_function("delay_rotate", |b| {
        b.iter(|| busy.delayed(Time::from_ns(13.7)));
    });
    group.bench_function("edge_windows", |b| {
        let skewed = clock.with_skew_applied(Skew::from_ns(1.0, 1.0));
        b.iter(|| scald_wave::edge_windows(&skewed, scald_wave::Edge::Rising));
    });
    group.finish();
}

fn assertion_parsing(c: &mut Criterion) {
    c.bench_function("assertions/parse", |b| {
        b.iter(|| {
            parse_signal_name("MEM WRITE STROBE .C2-3,5-6 (-0.5,0.5) L").expect("parses")
        });
    });
}

fn hdl_expansion(c: &mut Criterion) {
    let mut group = c.benchmark_group("hdl/compile_s1_like");
    group.sample_size(10);
    for chips in [60usize, 300] {
        let src = s1_like_hdl(S1Options {
            chips,
            ..S1Options::default()
        });
        group.bench_with_input(BenchmarkId::from_parameter(chips), &src, |b, src| {
            b.iter(|| scald_hdl::compile(src).expect("compiles"));
        });
    }
    group.finish();
}

fn probabilistic(c: &mut Criterion) {
    c.bench_function("stats/clark_max_chain", |b| {
        let stage = DelayDist::from_range(DelayRange::from_ns(1.0, 4.0));
        b.iter(|| {
            let mut acc = DelayDist::exact(0.0);
            for _ in 0..32 {
                let a = acc.then(stage);
                let bb = acc.then(stage).then(stage);
                acc = a.max(bb, 0.3);
            }
            acc
        });
    });
}

criterion_group!(
    benches,
    waveform_ops,
    assertion_parsing,
    hdl_expansion,
    probabilistic
);
criterion_main!(benches);
