//! Benches for the substrates: waveform algebra, skew folding,
//! assertion parsing, HDL expansion (the Table 3-1 macro-expander
//! phases) and the probabilistic extension. Std-only harness.

use scald_assertions::parse_signal_name;
use scald_bench::harness::Bench;
use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_logic::Value;
use scald_stats::DelayDist;
use scald_wave::{DelayRange, Skew, Time, Waveform};

fn waveform_ops(b: &Bench) {
    let period = Time::from_ns(50.0);
    // A busy waveform with many segments.
    let busy = Waveform::from_intervals(
        period,
        Value::Stable,
        (0..10).map(|i| {
            (
                Time::from_ns(f64::from(i) * 5.0),
                Time::from_ns(f64::from(i) * 5.0 + 2.0),
                if i % 2 == 0 {
                    Value::Change
                } else {
                    Value::One
                },
            )
        }),
    );
    let clock = Waveform::from_intervals(
        period,
        Value::Zero,
        [(Time::from_ns(10.0), Time::from_ns(20.0), Value::One)],
    );
    b.bench("wave/combine_or", || busy.combine(&clock, Value::or));
    b.bench("wave/skew_fold", || {
        busy.with_skew_applied(Skew::from_ns(1.0, 1.0))
    });
    b.bench("wave/delay_rotate", || busy.delayed(Time::from_ns(13.7)));
    let skewed = clock.with_skew_applied(Skew::from_ns(1.0, 1.0));
    b.bench("wave/edge_windows", || {
        scald_wave::edge_windows(&skewed, scald_wave::Edge::Rising)
    });
}

fn assertion_parsing(b: &Bench) {
    b.bench("assertions/parse", || {
        parse_signal_name("MEM WRITE STROBE .C2-3,5-6 (-0.5,0.5) L").expect("parses")
    });
}

fn hdl_expansion(b: &Bench) {
    for chips in [60usize, 300] {
        let src = s1_like_hdl(S1Options {
            chips,
            ..S1Options::default()
        });
        b.bench(&format!("hdl/compile_s1_like/{chips}"), || {
            scald_hdl::compile(&src).expect("compiles")
        });
    }
}

fn probabilistic(b: &Bench) {
    let stage = DelayDist::from_range(DelayRange::from_ns(1.0, 4.0));
    b.bench("stats/clark_max_chain", || {
        let mut acc = DelayDist::exact(0.0);
        for _ in 0..32 {
            let a = acc.then(stage);
            let bb = acc.then(stage).then(stage);
            acc = a.max(bb, 0.3);
        }
        acc
    });
}

fn main() {
    let b = Bench::from_args();
    waveform_ops(&b);
    assertion_parsing(&b);
    hdl_expansion(&b);
    probabilistic(&b);
}
