//! Intra-run settle scaling: the cold base fixed point of the S-1-like
//! design, settled serially and across widening wave-worker pools.
//!
//! Unlike `par_cases` (which parallelizes *across* cases), this measures
//! the level-synchronized wave engine inside a single settle loop — the
//! part of `--jobs` that helps even a one-case run. Records per-width
//! wall clocks, the (worker-independent) evaluation trajectory and the
//! wave shape to `BENCH_settle.json` in the current directory.
//!
//! Usage: `cargo run -p scald-bench --bin settle_scaling --release`
//! (`--chips N` for the design size, default 400; `--workers N` for the
//! widest pool, default 8 — widths measured are 1 and the powers of two
//! up to `N`; `--out FILE` to redirect the JSON record, as the CI smoke
//! run does to avoid clobbering the committed 400-chip snapshot).

use std::time::Instant;

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_trace::json::Json;
use scald_trace::CounterSink;
use scald_verifier::{RunOptions, Verifier, VerifierBuilder};

/// Repetitions per width. The *median* wall clock is the headline
/// number (`wall_ns`): a single lucky rep can make a min look better
/// than the machine ever sustains, while the median survives one
/// outlier in either direction. The min is still recorded (`min_ns`)
/// as the best-case floor.
const REPS: usize = 3;

/// Median of the collected wall clocks (odd `REPS` makes this exact).
fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn usize_arg(flag: &str, default: usize) -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        }
    }
    default
}

fn out_arg() -> String {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--out" {
            if let Some(path) = args.next() {
                return path;
            }
        }
    }
    "BENCH_settle.json".to_owned()
}

fn main() {
    let chips = usize_arg("--chips", 400);
    let max_workers = usize_arg("--workers", 8).max(1);
    let out = out_arg();
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });
    println!(
        "design: {} chips, {} primitives, {} signals",
        stats.chips, stats.prims, stats.signals
    );

    // The wave shape of this settle, from a traced warm-up run: every
    // width replays the identical trajectory, so one look suffices.
    let counters = std::sync::Arc::new(CounterSink::new());
    let mut traced = VerifierBuilder::new(netlist.clone())
        .trace(counters.clone())
        .build();
    traced.run(&RunOptions::new().jobs(1)).expect("settles");
    let shape = counters.snapshot();
    println!(
        "settle shape: {} evaluations over {} waves (widest: {})",
        shape.evaluations, shape.waves, shape.max_wave
    );

    let mut widths = vec![1usize];
    let mut w = 2;
    while w <= max_workers {
        widths.push(w);
        w *= 2;
    }

    let mut runs = Vec::new();
    let mut serial_ns = 0u64;
    let mut serial_evals = 0u64;
    for &jobs in &widths {
        let mut samples = Vec::with_capacity(REPS);
        let mut evaluations = 0u64;
        let mut events = 0u64;
        for _ in 0..REPS {
            let mut v = Verifier::new(netlist.clone());
            let started = Instant::now();
            let outcome = v.run(&RunOptions::new().jobs(jobs)).expect("settles");
            samples.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let sole = outcome.into_sole();
            evaluations = sole.evaluations;
            events = sole.events;
        }
        let min_ns = *samples.iter().min().expect("REPS >= 1");
        let median_ns = median(&mut samples);
        if jobs == 1 {
            serial_ns = median_ns;
            serial_evals = evaluations;
        }
        assert_eq!(
            evaluations, serial_evals,
            "the wave trajectory must be identical for every width"
        );
        let speedup = serial_ns as f64 / median_ns as f64;
        println!(
            "jobs {jobs:>2}: {median_ns:>12} ns median ({min_ns:>12} ns min, {speedup:.2}x vs serial)"
        );
        runs.push(Json::Obj(vec![
            ("jobs".to_owned(), Json::from(jobs as u64)),
            ("wall_ns".to_owned(), Json::from(median_ns)),
            ("min_ns".to_owned(), Json::from(min_ns)),
            ("events".to_owned(), Json::from(events)),
            ("evaluations".to_owned(), Json::from(evaluations)),
            ("speedup".to_owned(), Json::from(speedup)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".to_owned(), Json::str("scald-bench-settle")),
        // v2: `wall_ns` is the median over `reps` (was the min); the min
        // moved to `min_ns`.
        ("version".to_owned(), Json::from(2u64)),
        ("reps".to_owned(), Json::from(REPS as u64)),
        ("chips".to_owned(), Json::from(chips as u64)),
        ("prims".to_owned(), Json::from(stats.prims as u64)),
        ("waves".to_owned(), Json::from(shape.waves)),
        ("max_wave".to_owned(), Json::from(shape.max_wave as u64)),
        ("runs".to_owned(), Json::Arr(runs)),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write the JSON record");
    println!("recorded {out}");
}
