//! Load test for the `scald-serve` daemon: N concurrent clients over a
//! Unix socket, measuring per-request latency (p50/p99) and what the
//! cross-client shared evaluation cache buys.
//!
//! Two phases:
//!
//! - **shared** — every client opens *the same* design. The first open
//!   is cold; the rest verify through the already-warm shared table, so
//!   the per-design cache hit rate is the headline number.
//! - **distinct** — every client opens its own seeded design: the
//!   no-sharing baseline the shared phase is compared against.
//!
//! Records everything to `BENCH_serve.json` in the current directory.
//!
//! Usage: `cargo run -p scald-bench --bin loadtest --release`
//! (`--clients N`, `--chips N`, `--rounds N`, `--out PATH` to override.)

use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_serve::{serve, Client, Response, ServeOptions};
use scald_trace::json::Json;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread;
use std::time::{Duration, Instant};

struct Args {
    clients: usize,
    chips: usize,
    rounds: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        clients: 4,
        chips: 400,
        rounds: 3,
        out: "BENCH_serve.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--clients" => {
                if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                    parsed.clients = n;
                }
            }
            "--chips" => {
                if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                    parsed.chips = n;
                }
            }
            "--rounds" => {
                if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                    parsed.rounds = n;
                }
            }
            "--out" => {
                if let Some(p) = args.next() {
                    parsed.out = p;
                }
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    parsed
}

/// Latencies of every request one client issued, in nanoseconds.
struct ClientRun {
    latencies: Vec<u64>,
    reused_session: bool,
    shared_cache: bool,
}

/// One client's workload: open, `rounds` run/report pairs, close. Every
/// request's wall clock lands in `latencies`.
fn drive_client(path: &PathBuf, src: &str, label: &str, rounds: usize) -> ClientRun {
    let mut client = Client::connect_unix(path).expect("connects");
    let mut latencies = Vec::new();
    let mut timed = |f: &mut dyn FnMut(&mut Client) -> Response| {
        let t = Instant::now();
        let response = f(&mut client);
        latencies.push(u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX));
        response
    };

    let (session, reused_session, shared_cache) =
        match timed(&mut |c| c.open_source(src, label).expect("opens")) {
            Response::Opened {
                session,
                reused_session,
                shared_cache,
                ..
            } => (session, reused_session, shared_cache),
            other => panic!("expected opened, got {other:?}"),
        };
    for _ in 0..rounds {
        let s = session.clone();
        assert!(matches!(
            timed(&mut |c| c.run(&s).expect("runs")),
            Response::Ran { .. }
        ));
        let s = session.clone();
        assert!(matches!(
            timed(&mut |c| c.report(&s, false).expect("reports")),
            Response::Report { .. }
        ));
    }
    let s = session;
    assert!(matches!(
        timed(&mut |c| c.close(&s).expect("closes")),
        Response::Closed { .. }
    ));
    ClientRun {
        latencies,
        reused_session,
        shared_cache,
    }
}

fn percentile(sorted: &[u64], p: f64) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let rank = (p * (sorted.len() - 1) as f64).round() as usize;
    sorted[rank.min(sorted.len() - 1)]
}

/// Latency digest + sharing counters for one phase.
struct PhaseResult {
    requests: usize,
    wall: Duration,
    p50_ns: u64,
    p99_ns: u64,
    max_ns: u64,
    reused_sessions: usize,
    shared_cache_opens: usize,
    cache_hits: u64,
    cache_misses: u64,
}

impl PhaseResult {
    fn digest(runs: Vec<ClientRun>, wall: Duration, hits: u64, misses: u64) -> PhaseResult {
        let mut latencies: Vec<u64> = runs.iter().flat_map(|r| r.latencies.clone()).collect();
        latencies.sort_unstable();
        PhaseResult {
            requests: latencies.len(),
            wall,
            p50_ns: percentile(&latencies, 0.50),
            p99_ns: percentile(&latencies, 0.99),
            max_ns: latencies.last().copied().unwrap_or(0),
            reused_sessions: runs.iter().filter(|r| r.reused_session).count(),
            shared_cache_opens: runs.iter().filter(|r| r.shared_cache).count(),
            cache_hits: hits,
            cache_misses: misses,
        }
    }

    fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    fn json(&self) -> Json {
        Json::Obj(vec![
            ("requests".into(), Json::from(self.requests as u64)),
            (
                "wall_ns".into(),
                Json::from(u64::try_from(self.wall.as_nanos()).unwrap_or(u64::MAX)),
            ),
            ("p50_ns".into(), Json::from(self.p50_ns)),
            ("p99_ns".into(), Json::from(self.p99_ns)),
            ("max_ns".into(), Json::from(self.max_ns)),
            (
                "reused_sessions".into(),
                Json::from(self.reused_sessions as u64),
            ),
            (
                "shared_cache_opens".into(),
                Json::from(self.shared_cache_opens as u64),
            ),
            ("cache_hits".into(), Json::from(self.cache_hits)),
            ("cache_misses".into(), Json::from(self.cache_misses)),
            ("cache_hit_rate".into(), Json::from(self.hit_rate())),
        ])
    }
}

/// Sums cache traffic over every design the daemon currently tracks.
fn cache_totals(client: &mut Client) -> (u64, u64) {
    let Response::Stats { stats, .. } = client.stats().expect("stats") else {
        panic!("expected stats");
    };
    stats
        .designs
        .iter()
        .fold((0, 0), |(h, m), d| (h + d.cache_hits, m + d.cache_misses))
}

fn main() {
    let args = parse_args();
    let path = std::env::temp_dir().join(format!("scald-loadtest-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    let daemon = {
        let opts = ServeOptions {
            socket: Some(path.clone()),
            ..ServeOptions::default()
        };
        thread::spawn(move || serve(&opts).expect("daemon runs"))
    };
    while UnixStream::connect(&path).is_err() {
        thread::sleep(Duration::from_millis(5));
    }

    // Phase 1 — N clients hammer ONE design. Warm the pool with a cold
    // open first so the concurrent clients measure the shared-cache
    // path, not a thundering herd of colds.
    let shared_src = s1_like_hdl(S1Options {
        chips: args.chips,
        seed: 0x10ad,
    });
    let warmup = drive_client(&path, &shared_src, "loadtest-shared", 1);
    assert!(!warmup.reused_session && !warmup.shared_cache);
    let mut probe = Client::connect_unix(&path).expect("connects");
    let (base_hits, base_misses) = cache_totals(&mut probe);

    let t = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|_| {
            let path = path.clone();
            let src = shared_src.clone();
            let rounds = args.rounds;
            thread::spawn(move || drive_client(&path, &src, "loadtest-shared", rounds))
        })
        .collect();
    let runs: Vec<ClientRun> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let shared_wall = t.elapsed();
    let (hits, misses) = cache_totals(&mut probe);
    let shared = PhaseResult::digest(runs, shared_wall, hits - base_hits, misses - base_misses);

    // Phase 2 — N clients, N distinct designs: nothing to share.
    let t = Instant::now();
    let handles: Vec<_> = (0..args.clients)
        .map(|i| {
            let path = path.clone();
            let src = s1_like_hdl(S1Options {
                chips: args.chips,
                seed: 0xd157 + i as u64,
            });
            let rounds = args.rounds;
            thread::spawn(move || {
                drive_client(&path, &src, &format!("loadtest-distinct-{i}"), rounds)
            })
        })
        .collect();
    let runs: Vec<ClientRun> = handles
        .into_iter()
        .map(|h| h.join().expect("client"))
        .collect();
    let distinct_wall = t.elapsed();
    let (hits2, misses2) = cache_totals(&mut probe);
    let distinct = PhaseResult::digest(runs, distinct_wall, hits2 - hits, misses2 - misses);

    probe.shutdown().expect("shutdown");
    drop(probe);
    daemon.join().expect("daemon drains");

    println!(
        "shared:   {} requests, p50 {:.3} ms, p99 {:.3} ms, cache hit rate {:.1}% \
         ({} reused sessions, {} warm-cache opens)",
        shared.requests,
        shared.p50_ns as f64 / 1e6,
        shared.p99_ns as f64 / 1e6,
        100.0 * shared.hit_rate(),
        shared.reused_sessions,
        shared.shared_cache_opens,
    );
    println!(
        "distinct: {} requests, p50 {:.3} ms, p99 {:.3} ms, cache hit rate {:.1}%",
        distinct.requests,
        distinct.p50_ns as f64 / 1e6,
        distinct.p99_ns as f64 / 1e6,
        100.0 * distinct.hit_rate(),
    );

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("scald-bench-serve")),
        ("version".into(), Json::from(1u64)),
        ("clients".into(), Json::from(args.clients as u64)),
        ("chips".into(), Json::from(args.chips as u64)),
        ("rounds".into(), Json::from(args.rounds as u64)),
        ("shared".into(), shared.json()),
        ("distinct".into(), distinct.json()),
    ]);
    std::fs::write(&args.out, doc.to_string_pretty()).expect("writes the JSON report");
    println!("wrote {}", args.out);
}
