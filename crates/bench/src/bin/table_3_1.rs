//! Regenerates **Table 3-1**: macro-expansion and timing-verification
//! execution statistics for the S-1-like design.
//!
//! The thesis measured, for 6357 chips on the S-1 Mark I (≈ IBM 370/168):
//!
//! ```text
//! MACRO EXPANSION                          minutes
//!   reading input files + data structures    1.92
//!   pass 1                                   8.42
//!   pass 2                                   6.18
//! TIMING VERIFIER
//!   reading input + building structures      4.45
//!   cross reference listings                 0.72
//!   verifying circuit                        6.75   (20 052 events,
//!   timing summary listing                   0.22    ≈49 ms/primitive,
//!                                                    ≈20 ms/event)
//! ```
//!
//! Usage: `cargo run -p scald-bench --bin table_3_1 --release [--chips N]`

use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_verifier::{RunOptions, Verifier};
use std::time::Instant;

fn main() {
    let chips = scald_bench::chips_arg();
    let opts = S1Options {
        chips,
        ..S1Options::default()
    };

    println!("TABLE 3-1 — execution statistics ({chips} chips)\n");

    // --- Macro expansion phases ---
    let t = Instant::now();
    let src = s1_like_hdl(opts);
    let gen_time = t.elapsed();

    let t = Instant::now();
    let design = scald_hdl::parse(&src).expect("generated HDL parses");
    let read_time = t.elapsed();

    let expansion = scald_hdl::expand(&design).expect("generated HDL expands");
    let stats = expansion.stats;

    println!("MACRO EXPANSION EXECUTION STATISTICS        measured      paper (min, 1980 hw)");
    println!(
        "  generating source text                    {:>9.3?}     (n/a — synthetic)",
        gen_time
    );
    println!(
        "  reading input files, building structures  {:>9.3?}     1.92",
        read_time
    );
    println!(
        "  pass 1 of macro expansion                  {:>9.3?}     8.42",
        stats.pass1
    );
    println!(
        "  pass 2 of macro expansion                  {:>9.3?}     6.18",
        stats.pass2
    );
    println!(
        "  -> {} macro instances expanded into {} primitives / {} signals\n",
        stats.instances_expanded, stats.prims_emitted, stats.signals
    );

    // --- Timing Verifier phases ---
    let netlist = expansion.netlist;
    let n_prims = netlist.prims().len();

    let t = Instant::now();
    let mut verifier = Verifier::new(netlist);
    let build_time = t.elapsed();

    let t = Instant::now();
    let xref = verifier.xref_listing();
    let xref_time = t.elapsed();

    let t = Instant::now();
    let result = verifier
        .run(&RunOptions::new())
        .expect("design settles")
        .into_sole();
    let verify_time = t.elapsed();

    let t = Instant::now();
    let summary = verifier.summary_listing();
    let summary_time = t.elapsed();

    println!("TIMING VERIFIER EXECUTION STATISTICS        measured      paper");
    println!(
        "  reading input, building data structures   {:>9.3?}     4.45",
        build_time
    );
    println!(
        "  generating cross reference listings       {:>9.3?}     0.72",
        xref_time
    );
    println!(
        "  verifying circuit                          {:>9.3?}     6.75",
        verify_time
    );
    println!(
        "  generating timing summary listing         {:>9.3?}     0.22\n",
        summary_time
    );

    let events = result.events;
    let us_per_prim = verify_time.as_micros() as f64 / n_prims.max(1) as f64;
    let us_per_event = verify_time.as_micros() as f64 / events.max(1) as f64;
    println!("  events processed          {events:>10}      (paper: 20 052)");
    println!("  evaluations               {:>10}", result.evaluations);
    println!("  time per primitive        {us_per_prim:>10.1} us  (paper: 49 ms)");
    println!("  time per event            {us_per_event:>10.1} us  (paper: 20 ms)");
    println!(
        "  violations found          {:>10}",
        result.violations.len()
    );
    println!(
        "  xref / summary sizes      {:>10} / {} bytes",
        xref.len(),
        summary.len()
    );
}
