//! Incremental vs full re-verification on the S-1-like design: how much
//! settling work does a warm-started [`Session`] save on a
//! single-primitive ECO retime?
//!
//! Measures one cold open (the full fixed-point settle) and one warm
//! [`Session::apply`] of a retime delta, then records the event counts,
//! wall clocks and dirty-cone size to `BENCH_incr.json` in the current
//! directory.
//!
//! Usage: `cargo run -p scald-bench --bin incr_vs_full --release`
//! (`--chips N` to override the default 400-chip design).
//!
//! [`Session`]: scald_incr::Session
//! [`Session::apply`]: scald_incr::Session::apply

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_incr::{Case, Delta, DesignInput, NetlistDelta, Session};
use scald_trace::json::Json;
use scald_wave::DelayRange;

fn chips_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--chips" {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        }
    }
    400
}

fn main() {
    let chips = chips_arg();
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });
    println!(
        "design: {} chips, {} primitives, {} signals",
        stats.chips, stats.prims, stats.signals
    );

    let mut session = Session::open(
        DesignInput::netlist(netlist, vec![Case::new()]),
        "incr_vs_full",
    )
    .expect("settles");
    let full = session.outcome().stats;
    println!(
        "full verification:  {:>8} events in {:.2?}",
        full.events, full.wall
    );

    let target = session
        .netlist()
        .prims()
        .iter()
        .find(|p| p.name.ends_with("/LOGIC"))
        .expect("generated design has datapath slices")
        .name
        .clone();
    let mut delta = NetlistDelta::new();
    delta.retime(target.clone(), DelayRange::from_ns(2.0, 6.5));
    let warm = session
        .apply(Delta::Netlist(delta))
        .expect("retime applies")
        .stats;
    let ratio = warm.events as f64 / full.events as f64;
    println!(
        "warm retime ({target}): {:>4} events in {:.2?} — {:.2}% of the full run, \
         cone {}/{} prims ({:.1}%)",
        warm.events,
        warm.wall,
        100.0 * ratio,
        warm.cone_prims,
        warm.total_prims,
        100.0 * warm.cone_fraction()
    );

    let wall_ns = |d: std::time::Duration| u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
    let doc = Json::Obj(vec![
        ("schema".to_owned(), Json::str("scald-bench-incr")),
        ("version".to_owned(), Json::from(1u64)),
        ("chips".to_owned(), Json::from(chips as u64)),
        ("retimed_prim".to_owned(), Json::str(target)),
        (
            "full".to_owned(),
            Json::Obj(vec![
                ("events".to_owned(), Json::from(full.events)),
                ("wall_ns".to_owned(), Json::from(wall_ns(full.wall))),
                ("prims".to_owned(), Json::from(full.total_prims as u64)),
            ]),
        ),
        (
            "warm_retime".to_owned(),
            Json::Obj(vec![
                ("events".to_owned(), Json::from(warm.events)),
                ("wall_ns".to_owned(), Json::from(wall_ns(warm.wall))),
                (
                    "seeded_prims".to_owned(),
                    Json::from(warm.seeded_prims as u64),
                ),
                ("cone_prims".to_owned(), Json::from(warm.cone_prims as u64)),
                ("cone_fraction".to_owned(), Json::from(warm.cone_fraction())),
                ("event_ratio".to_owned(), Json::from(ratio)),
            ]),
        ),
    ]);
    std::fs::write("BENCH_incr.json", doc.to_string_pretty() + "\n")
        .expect("write BENCH_incr.json");
    println!("recorded BENCH_incr.json");

    // The subsystem's headline claim: a one-primitive ECO re-verifies
    // with a small fraction of the full run's settling work.
    assert!(
        ratio < 0.10,
        "warm retime used {:.2}% of the full run's events (budget: 10%)",
        100.0 * ratio
    );
}
