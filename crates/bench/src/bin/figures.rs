//! Regenerates the figure-level results in one run: Fig 1-5 (hazard),
//! Fig 2-5/3-10/3-11 (register file), Fig 2-6 (case analysis), Fig 2-8/2-9
//! (skew), Fig 3-12 (ALU stage), Fig 4-1/4-2 (correlation).
//!
//! Usage: `cargo run -p scald-bench --bin figures --release`

use scald_gen::figures::{
    alu_stage, case_analysis_circuit, correlation_circuit, hazard_circuit, register_file_circuit,
};
use scald_logic::Value;
use scald_verifier::{CaseSet, RunOptions, Verifier, ViolationKind};
use scald_wave::{DelayRange, Skew, Time, Waveform};

fn ns(x: f64) -> Time {
    Time::from_ns(x)
}

fn main() {
    println!("== Fig 1-5: gated-clock hazard ==");
    let mut v = Verifier::new(hazard_circuit(true));
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    println!(
        "  with &A directive : {} hazard violation(s)  [paper: the class of error the directive exists for]",
        r.of_kind(ViolationKind::Hazard).len()
    );
    let mut v = Verifier::new(hazard_circuit(false));
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    println!(
        "  without directive : {} potential-runt-pulse violation(s) (5 ns spurious pulse)",
        r.of_kind(ViolationKind::MinPulseHigh).len()
    );

    println!("\n== Fig 2-5 / 3-10 / 3-11: register file ==");
    let (netlist, handles) = register_file_circuit();
    let mut v = Verifier::new(netlist);
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    let setups = r.of_kind(ViolationKind::Setup);
    println!(
        "  violations: {} (paper: 2 setup-error groups)",
        r.violations.len()
    );
    for s in &setups {
        println!(
            "    {} missed by {}",
            s.source,
            s.missed_by.map_or_else(|| "?".into(), |m| m.to_string())
        );
    }
    println!("  ADR over the cycle: {}", v.resolved(handles.adr));
    println!("  paper (Fig 3-10) : S 0.0 C 0.5 S 5.5 C 25.5 S 30.5");

    println!("\n== Fig 2-6: case analysis ==");
    let (netlist, (_, _, out)) = case_analysis_circuit();
    let mut v = Verifier::new(netlist);
    v.run(&RunOptions::new()).expect("settles");
    let blind = v.resolved(out);
    let (netlist, (_, _, out)) = case_analysis_circuit();
    let mut v = Verifier::new(netlist);
    let results = v
        .run(&RunOptions::new().cases(CaseSet::exhaustive(["CONTROL SIGNAL"])))
        .expect("settles")
        .cases;
    let cased = v.resolved(out);
    println!("  without cases: OUTPUT = {blind}   (40 ns phantom path)");
    println!("  with cases   : OUTPUT = {cased}   (true 30 ns path, both cases)");
    println!(
        "  incremental  : case 2 took {} evaluations vs {} for case 1",
        results[1].evaluations, results[0].evaluations
    );

    println!("\n== Fig 2-8 / 2-9: separated skew ==");
    let period = ns(50.0);
    let input = Waveform::from_intervals(period, Value::Zero, [(ns(5.0), ns(15.0), Value::One)]);
    let gate = DelayRange::from_ns(5.0, 10.0);
    let delayed = input.delayed(gate.min);
    let skew = Skew::ZERO.after_delay(gate);
    println!("  Z delayed by min, skew separate : {delayed}  skew {skew}");
    println!(
        "  Z with skew folded (Fig 2-9)    : {}",
        delayed.with_skew_applied(skew)
    );

    println!("\n== Fig 3-12: ALU pipeline stage ==");
    let (netlist, latched) = alu_stage();
    let mut v = Verifier::new(netlist);
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    println!(
        "  {} violations (stage verifies in isolation via interface assertions)",
        r.violations.len()
    );
    println!("  ALU LATCHED: {}", v.resolved(latched));

    println!("\n== Fig 4-1 / 4-2: correlation false error ==");
    let mut v = Verifier::new(correlation_circuit(false));
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    println!(
        "  without CORR: {} hold violation(s) — FALSE error from ignored correlation",
        r.of_kind(ViolationKind::Hold).len()
    );
    let mut v = Verifier::new(correlation_circuit(true));
    let r = v.run(&RunOptions::new()).expect("settles").into_sole();
    println!(
        "  with CORR   : {} hold violation(s) — suppressed by the fictitious delay",
        r.of_kind(ViolationKind::Hold).len()
    );
}
