//! Scheduler + memoization benchmark: per-leaf *fixed* cost of a wide
//! sweep under the dependency-release scheduler, vs. the naive
//! independent path.
//!
//! PR 9's case tree amortized the settle effort; what remained linear
//! was the per-leaf fixed work — a full checker pass and a full
//! `StorageReport::measure` per case. The scheduler memoizes both on the
//! prefix nodes, so a leaf re-checks only the units in its dirty cone
//! and inherits the rest. This harness records, per case count and per
//! strategy: wall clock, per-leaf checker evaluations, storage
//! measurements, and the cache hit rate — into `BENCH_sched.json`. The
//! acceptance signal is the *per-leaf fixed-work drop*: checker + storage
//! evaluations per leaf must fall ≥ 5x against the independent path,
//! with byte-identical reports (property tested in
//! `crates/verifier/tests/case_tree.rs`).
//!
//! Usage: `cargo run -p scald-bench --bin case_sched --release`
//! (`--counts 10,100,1000` for the sweep sizes, `--master N` /
//! `--block N` for slice counts, `--jobs N` for the worker pool, and
//! `--out FILE` to redirect the record, as the CI smoke run does.)

use std::time::Instant;

use scald_gen::sweep::{sweep_netlist, SweepOptions};
use scald_trace::json::Json;
use scald_verifier::{CaseSet, CaseStrategy, MemoStats, RunOptions, Verifier};

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// One measured sweep on a warm engine (the base settle is paid before
/// the clock starts).
struct Measured {
    wall_ns: u64,
    cases: u64,
    memo: MemoStats,
    prefix_nodes: usize,
    violations: usize,
}

impl Measured {
    /// Checker evaluations + storage measurements actually executed per
    /// leaf — the fixed work the memoization attacks. Node passes count
    /// against the whole sweep, amortized here over the leaves.
    fn fixed_work_per_leaf(&self) -> f64 {
        let evals =
            self.memo.leaf_check_evals + self.memo.leaf_storage_evals + self.memo.node_check_evals;
        evals as f64 / self.cases.max(1) as f64
    }
}

fn measure(
    netlist: &scald_netlist::Netlist,
    cases: &CaseSet,
    strategy: CaseStrategy,
    jobs: usize,
) -> Measured {
    let mut v = Verifier::new(netlist.clone());
    v.run(&RunOptions::new().jobs(jobs)).expect("base settles");
    let t = Instant::now();
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(cases.clone())
                .jobs(jobs)
                .strategy(strategy),
        )
        .expect("sweep settles");
    let wall_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Measured {
        wall_ns,
        cases: outcome.cases.len() as u64,
        memo: outcome.memo,
        prefix_nodes: outcome.prefix.nodes,
        violations: outcome.cases.iter().map(|c| c.violations.len()).sum(),
    }
}

fn measured_json(m: &Measured) -> Json {
    Json::Obj(vec![
        ("wall_ns".into(), Json::from(m.wall_ns)),
        ("prefix_nodes".into(), Json::from(m.prefix_nodes as u64)),
        ("node_passes".into(), Json::from(m.memo.node_passes)),
        (
            "node_check_evals".into(),
            Json::from(m.memo.node_check_evals),
        ),
        (
            "leaf_check_evals".into(),
            Json::from(m.memo.leaf_check_evals),
        ),
        ("leaf_check_hits".into(), Json::from(m.memo.leaf_check_hits)),
        (
            "leaf_storage_evals".into(),
            Json::from(m.memo.leaf_storage_evals),
        ),
        (
            "leaf_storage_hits".into(),
            Json::from(m.memo.leaf_storage_hits),
        ),
        ("leaf_hit_rate".into(), Json::from(m.memo.leaf_hit_rate())),
        (
            "fixed_work_per_leaf".into(),
            Json::from(m.fixed_work_per_leaf()),
        ),
        ("violations".into(), Json::from(m.violations as u64)),
    ])
}

fn main() {
    let counts: Vec<usize> = flag_value("--counts")
        .unwrap_or_else(|| "10,100,1000".to_owned())
        .split(',')
        .map(|s| s.trim().parse().expect("--counts takes case counts"))
        .collect();
    let opts = SweepOptions {
        master_slices: flag_value("--master").map_or(1500, |s| s.parse().expect("--master N")),
        block_slices: flag_value("--block").map_or(10, |s| s.parse().expect("--block N")),
        ..SweepOptions::default()
    };
    let jobs = flag_value("--jobs")
        .map_or_else(scald_bench::default_jobs, |s| s.parse().expect("--jobs N"));
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_sched.json".to_owned());

    let (netlist, stats) = sweep_netlist(&opts);
    let full = CaseSet::exhaustive(stats.mode_bits.iter().cloned());
    println!(
        "CASE-SCHED SWEEP — {} prims, {} mode bits ({} exhaustive cases), {jobs} jobs\n",
        stats.prims,
        stats.mode_bits.len(),
        full.len()
    );
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12} {:>9} {:>8}",
        "CASES", "NAIVE WALL", "SCHED WALL", "NAIVE /LEAF", "SCHED /LEAF", "HIT RATE", "DROP"
    );

    let mut steps = Vec::new();
    for &count in &counts {
        let count = count.min(full.len());
        let cases = CaseSet::list(full.cases()[..count].iter().cloned());
        let naive = measure(&netlist, &cases, CaseStrategy::Independent, jobs);
        let sched = measure(&netlist, &cases, CaseStrategy::Tree, jobs);
        assert_eq!(
            naive.violations, sched.violations,
            "strategies must agree on violations"
        );
        let drop = naive.fixed_work_per_leaf() / sched.fixed_work_per_leaf().max(1e-9);
        println!(
            "{:>7} {:>12.2?}ms {:>12.2?}ms {:>12.1} {:>12.1} {:>8.1}% {:>7.1}x",
            count,
            naive.wall_ns as f64 / 1e6,
            sched.wall_ns as f64 / 1e6,
            naive.fixed_work_per_leaf(),
            sched.fixed_work_per_leaf(),
            100.0 * sched.memo.leaf_hit_rate(),
            drop,
        );
        steps.push(Json::Obj(vec![
            ("cases".into(), Json::from(count as u64)),
            ("naive".into(), measured_json(&naive)),
            ("sched".into(), measured_json(&sched)),
            ("fixed_work_drop".into(), Json::from(drop)),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("scald-bench-sched")),
        ("version".into(), Json::from(1u64)),
        ("jobs".into(), Json::from(jobs as u64)),
        (
            "design".into(),
            Json::Obj(vec![
                ("prims".into(), Json::from(stats.prims as u64)),
                ("signals".into(), Json::from(stats.signals as u64)),
                (
                    "mode_bits".into(),
                    Json::Arr(stats.mode_bits.iter().map(Json::str).collect()),
                ),
                (
                    "master_slices".into(),
                    Json::from(opts.master_slices as u64),
                ),
                ("block_slices".into(), Json::from(opts.block_slices as u64)),
            ]),
        ),
        ("steps".into(), Json::Arr(steps)),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write the JSON record");
    println!("\nwrote {out}");
}
