//! Incremental case-analysis cost (§2.7, §3.3.2).
//!
//! The thesis: "The amount of time required to analyze an additional case
//! is proportional to the number of events which have to be processed for
//! that case. In general, only those signals which are affected by the
//! case analysis need to be recalculated."
//!
//! This harness builds an S-1-like design, adds per-slice control signals,
//! and runs a sequence of cases each touching one control — measuring the
//! per-case evaluation counts against the full first pass.
//!
//! Usage: `cargo run -p scald-bench --bin case_cost --release [--chips N]`

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_verifier::{Case, CaseSet, RunOptions, Verifier};
use std::time::Instant;

fn main() {
    let chips = {
        let n = scald_bench::chips_arg();
        if n == 6357 {
            2000
        } else {
            n
        }
    };
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });
    println!(
        "INCREMENTAL CASE COST — {} chips, {} primitives\n",
        stats.chips, stats.prims
    );

    // Case 0: no overrides (the full pass). Cases 1..: flip one global
    // control signal each, alternating polarity.
    let mut cases = vec![Case::new()];
    for i in 0..8 {
        cases.push(Case::new().assign(format!("CTL {i}"), i % 2 == 0));
    }

    let mut v = Verifier::new(netlist);
    let t = Instant::now();
    let results = v
        .run(&RunOptions::new().cases(CaseSet::list(cases.iter().cloned())))
        .expect("design settles")
        .cases;
    let total = t.elapsed();

    println!(
        "{:<34} {:>12} {:>10} {:>12}",
        "CASE", "EVALUATIONS", "EVENTS", "% OF FULL"
    );
    let full = results[0].evaluations.max(1);
    for r in &results {
        println!(
            "{:<34} {:>12} {:>10} {:>11.1}%",
            r.name,
            r.evaluations,
            r.events,
            100.0 * r.evaluations as f64 / full as f64
        );
    }
    let incremental: u64 = results[1..].iter().map(|r| r.evaluations).sum();
    println!(
        "\n8 additional cases cost {incremental} evaluations total \
         ({:.1}% of one full pass each, on average)",
        100.0 * incremental as f64 / 8.0 / full as f64
    );
    println!(
        "total wall time for all {} cases: {total:.2?}",
        results.len()
    );

    // Serial vs. parallel wall-clock for the same case sweep, on fresh
    // engines so both paths pay the same base settle.
    println!("\nSERIAL VS PARALLEL WALL-CLOCK (same cases, fresh engine each)");
    println!("{:<10} {:>14} {:>10}", "JOBS", "WALL", "SPEEDUP");
    let time_with = |jobs: Option<usize>| {
        let (netlist, _) = s1_like_netlist(S1Options {
            chips,
            ..S1Options::default()
        });
        let mut v = Verifier::new(netlist);
        let t = Instant::now();
        let jobs = jobs.unwrap_or(1);
        v.run(
            &RunOptions::new()
                .cases(CaseSet::list(cases.iter().cloned()))
                .jobs(jobs),
        )
        .expect("design settles");
        t.elapsed()
    };
    let serial = time_with(None);
    println!("{:<10} {:>14.2?} {:>9.2}x", "serial", serial, 1.0);
    for jobs in [2, 4, scald_bench::default_jobs()] {
        let par = time_with(Some(jobs));
        println!(
            "{:<10} {:>14.2?} {:>9.2}x",
            jobs,
            par,
            serial.as_secs_f64() / par.as_secs_f64()
        );
    }
    println!(
        "\npaper (§3.3.2): the cost of an additional case is proportional \
         to the events its overrides trigger — not to design size."
    );
}
