//! The headline claim (§2.1, §4.1): symbolic verification costs one
//! symbolic cycle, while exhaustive timing coverage by logic simulation
//! costs exponentially many concrete cycles.
//!
//! For a parameterized circuit with `n` independent control inputs, this
//! harness measures:
//!
//! * one Timing Verifier pass (which covers all value combinations), vs
//! * min/max logic simulation of all `2^n` input patterns (what §1.4.1
//!   calls exercising "all possible cases which have distinct timing
//!   paths"), vs
//! * one worst-case path search (cheap, but value-blind).
//!
//! The wall-clock ratio grows as 2^n: the thesis' "savings ... clearly of
//! factorial (i.e., exponential) order".
//!
//! Usage: `cargo run -p scald-bench --bin scaling --release`

use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, SignalId};
use scald_paths::PathAnalysis;
use scald_sim::{primary_inputs, simulate, Stimulus};
use scald_verifier::{RunOptions, Verifier};
use scald_wave::{DelayRange, Time};
use std::time::Instant;

/// A register bank fed by `n` mux-selected paths: each select input
/// doubles the number of distinct timing paths.
fn muxed_paths_circuit(n: usize) -> Netlist {
    let mut b = NetlistBuilder::new(Config::s1_example());
    let clk = b.signal("CK .P6-7 (0,0)").expect("valid");
    let z = |s: SignalId| Conn::new(s).with_wire_delay(DelayRange::ZERO);
    for i in 0..n {
        let sel = b.signal(&format!("SEL{i}")).expect("valid");
        let fast = b.signal(&format!("FAST{i} .S0-1")).expect("valid");
        let slow_in = b.signal(&format!("SLOWIN{i} .S0-1")).expect("valid");
        let slow = b.signal(&format!("SLOW{i}")).expect("valid");
        let m = b.signal(&format!("M{i}")).expect("valid");
        let q = b.signal(&format!("Q{i}")).expect("valid");
        b.buf(
            format!("SLOWBUF{i}"),
            DelayRange::from_ns(33.0, 36.0),
            z(slow_in),
            slow,
        );
        b.mux2(
            format!("MUX{i}"),
            DelayRange::from_ns(1.2, 3.3),
            z(sel),
            z(fast),
            z(slow),
            m,
        );
        b.reg(
            format!("R{i}"),
            DelayRange::from_ns(1.5, 4.5),
            z(clk),
            z(m),
            q,
        );
        b.setup_hold(
            format!("R{i} CHK"),
            Time::from_ns(2.5),
            Time::from_ns(1.5),
            z(m),
            z(clk),
        );
    }
    b.finish().expect("circuit is well-formed")
}

fn main() {
    println!(
        "{:>3} {:>10} {:>14} {:>14} {:>14} {:>10}",
        "n", "patterns", "verifier", "simulation", "path search", "ratio"
    );
    for n in [1usize, 2, 4, 6, 8, 10, 12] {
        let netlist = muxed_paths_circuit(n);

        let t = Instant::now();
        let mut v = Verifier::new(netlist.clone());
        let result = v.run(&RunOptions::new()).expect("settles").into_sole();
        let verifier_time = t.elapsed();
        let found = result.violations.len();

        let inputs = primary_inputs(&netlist);
        // The mux selects carry the value-dependence; the data inputs are
        // driven with a fixed toggling stimulus so the slow path actually
        // transitions. Two cycles: cycle 1 initializes, cycle 2 is
        // observed — the cost of simulation per pattern is 2 concrete
        // cycles vs the verifier's single symbolic one.
        let sweep = inputs
            .iter()
            .filter(|s| netlist.signal(**s).assertion.is_none())
            .copied()
            .collect::<Vec<_>>();
        let data_inputs: Vec<_> = inputs
            .iter()
            .filter(|s| netlist.signal(**s).assertion.is_some())
            .copied()
            .collect();
        let patterns = 1u64 << sweep.len();
        let t = Instant::now();
        let mut sim_violations = 0usize;
        for p in 0..patterns {
            let mut stim = Stimulus {
                cycles: 2,
                inputs: Default::default(),
            };
            for (i, sel) in sweep.iter().enumerate() {
                let v = (p >> i) & 1 == 1;
                stim.inputs.insert(*sel, vec![v, v]);
            }
            for (i, d) in data_inputs.iter().enumerate() {
                // Alternate values so every data input toggles at cycle 2.
                stim.inputs.insert(*d, vec![i % 2 == 0, i % 2 != 0]);
            }
            let r = simulate(&netlist, &stim);
            sim_violations += r.violations.len();
        }
        let sim_time = t.elapsed();

        let t = Instant::now();
        let analysis = PathAnalysis::analyze(&netlist);
        let path_time = t.elapsed();
        let _ = analysis.violations();

        let ratio = sim_time.as_secs_f64() / verifier_time.as_secs_f64().max(1e-9);
        println!(
            "{n:>3} {patterns:>10} {verifier_time:>14.3?} {sim_time:>14.3?} {path_time:>14.3?} {ratio:>9.1}x   (verifier found {found}, sim saw {sim_violations} across patterns)"
        );
    }
    println!(
        "\nOne symbolic pass replaces 2^n concrete passes: the exponential \
         saving of §2.1."
    );
}
