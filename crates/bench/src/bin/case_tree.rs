//! Case-tree benchmark: naive independent cases vs. the shared-prefix
//! trie, at 10/100/1000 cases of one exhaustive mode sweep.
//!
//! The [`scald_gen::sweep`] design has one heavy master mode bit and
//! many light block bits, so every case of the exhaustive sweep pays
//! the master's cone under the naive engine while the case tree settles
//! it once per root branch. This harness records, per case count and
//! per strategy: wall clock, settle effort (prefix + per-case events
//! and evaluations), and the trie shape — into `BENCH_cases.json`. The
//! acceptance signal is the *settle-event growth*: naive effort grows
//! linearly with the case count; tree effort grows sublinearly because
//! the shared master cone amortizes.
//!
//! Both strategies produce byte-identical stripped reports (property
//! tested in `crates/verifier/tests/case_tree.rs`); this harness
//! measures only cost, but still cross-checks violations counts.
//!
//! Usage: `cargo run -p scald-bench --bin case_tree --release`
//! (`--counts 10,100,1000` for the sweep sizes, `--master N` /
//! `--block N` for slice counts, `--jobs N` for the worker pool, and
//! `--out FILE` to redirect the record, as the CI smoke run does.)

use std::time::Instant;

use scald_gen::sweep::{sweep_netlist, SweepOptions};
use scald_trace::json::Json;
use scald_verifier::{CaseSet, CaseStrategy, RunOptions, Verifier};

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

/// One measured run: the sweep applied on a warm engine (the base
/// settle is paid before the clock starts, so per-case counters hold
/// only sweep effort).
struct Measured {
    wall_ns: u64,
    events: u64,
    evaluations: u64,
    prefix_nodes: usize,
    violations: usize,
}

fn measure(
    netlist: &scald_netlist::Netlist,
    cases: &CaseSet,
    strategy: CaseStrategy,
    jobs: usize,
) -> Measured {
    let mut v = Verifier::new(netlist.clone());
    v.run(&RunOptions::new().jobs(jobs)).expect("base settles");
    let t = Instant::now();
    let outcome = v
        .run(
            &RunOptions::new()
                .cases(cases.clone())
                .jobs(jobs)
                .strategy(strategy),
        )
        .expect("sweep settles");
    let wall_ns = u64::try_from(t.elapsed().as_nanos()).unwrap_or(u64::MAX);
    Measured {
        wall_ns,
        events: outcome.prefix.events + outcome.cases.iter().map(|c| c.events).sum::<u64>(),
        evaluations: outcome.prefix.evaluations
            + outcome.cases.iter().map(|c| c.evaluations).sum::<u64>(),
        prefix_nodes: outcome.prefix.nodes,
        violations: outcome.cases.iter().map(|c| c.violations.len()).sum(),
    }
}

fn measured_json(m: &Measured) -> Json {
    Json::Obj(vec![
        ("wall_ns".into(), Json::from(m.wall_ns)),
        ("settle_events".into(), Json::from(m.events)),
        ("settle_evaluations".into(), Json::from(m.evaluations)),
        ("prefix_nodes".into(), Json::from(m.prefix_nodes as u64)),
        ("violations".into(), Json::from(m.violations as u64)),
    ])
}

fn main() {
    let counts: Vec<usize> = flag_value("--counts")
        .unwrap_or_else(|| "10,100,1000".to_owned())
        .split(',')
        .map(|s| s.trim().parse().expect("--counts takes case counts"))
        .collect();
    let opts = SweepOptions {
        master_slices: flag_value("--master").map_or(1500, |s| s.parse().expect("--master N")),
        block_slices: flag_value("--block").map_or(10, |s| s.parse().expect("--block N")),
        ..SweepOptions::default()
    };
    let jobs = flag_value("--jobs")
        .map_or_else(scald_bench::default_jobs, |s| s.parse().expect("--jobs N"));
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_cases.json".to_owned());

    let (netlist, stats) = sweep_netlist(&opts);
    let full = CaseSet::exhaustive(stats.mode_bits.iter().cloned());
    println!(
        "CASE-TREE SWEEP — {} prims, {} mode bits ({} exhaustive cases), {jobs} jobs\n",
        stats.prims,
        stats.mode_bits.len(),
        full.len()
    );
    println!(
        "{:>7} {:>14} {:>14} {:>12} {:>12} {:>8} {:>8}",
        "CASES", "NAIVE WALL", "TREE WALL", "NAIVE EVAL", "TREE EVAL", "NODES", "RATIO"
    );

    let mut steps = Vec::new();
    for &count in &counts {
        let count = count.min(full.len());
        let cases = CaseSet::list(full.cases()[..count].iter().cloned());
        let naive = measure(&netlist, &cases, CaseStrategy::Independent, jobs);
        let tree = measure(&netlist, &cases, CaseStrategy::Tree, jobs);
        assert_eq!(
            naive.violations, tree.violations,
            "strategies must agree on violations"
        );
        println!(
            "{:>7} {:>12.2?}ms {:>12.2?}ms {:>12} {:>12} {:>8} {:>7.1}x",
            count,
            naive.wall_ns as f64 / 1e6,
            tree.wall_ns as f64 / 1e6,
            naive.evaluations,
            tree.evaluations,
            tree.prefix_nodes,
            naive.evaluations as f64 / tree.evaluations.max(1) as f64,
        );
        steps.push(Json::Obj(vec![
            ("cases".into(), Json::from(count as u64)),
            ("naive".into(), measured_json(&naive)),
            ("tree".into(), measured_json(&tree)),
            (
                "evaluations_ratio".into(),
                Json::from(naive.evaluations as f64 / tree.evaluations.max(1) as f64),
            ),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".into(), Json::str("scald-bench-cases")),
        ("version".into(), Json::from(1u64)),
        ("jobs".into(), Json::from(jobs as u64)),
        (
            "design".into(),
            Json::Obj(vec![
                ("prims".into(), Json::from(stats.prims as u64)),
                ("signals".into(), Json::from(stats.signals as u64)),
                (
                    "mode_bits".into(),
                    Json::Arr(stats.mode_bits.iter().map(Json::str).collect()),
                ),
                (
                    "master_slices".into(),
                    Json::from(opts.master_slices as u64),
                ),
                ("block_slices".into(), Json::from(opts.block_slices as u64)),
            ]),
        ),
        ("steps".into(), Json::Arr(steps)),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write the JSON record");
    println!("\nwrote {out}");
}
