//! Evaluation-cache A/B on the S-1-like design: wall clock and hit rate
//! with and without the memo table, for the three workloads the cache
//! targets — a multi-case analysis (repeated evaluations across case
//! cones), a warm re-verification of an identical design through a
//! shared table (the `scald-incr` session mechanism), and a 10-edit
//! incremental session replay.
//!
//! Records everything to `BENCH_cache.json` in the current directory.
//!
//! Usage: `cargo run -p scald-bench --bin cache_stats --release`
//! (`--chips N` to override the default 400-chip design, `--out PATH`
//! to redirect the JSON.)

use std::sync::Arc;
use std::time::{Duration, Instant};

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_incr::{Delta, DesignInput, NetlistDelta, Session, SessionBuilder};
use scald_netlist::Netlist;
use scald_trace::json::Json;
use scald_verifier::{Case, CaseSet, EvalCache, RunOptions, VerifierBuilder};
use scald_wave::DelayRange;

struct Args {
    chips: usize,
    out: String,
}

fn parse_args() -> Args {
    let mut parsed = Args {
        chips: 400,
        out: "BENCH_cache.json".to_owned(),
    };
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--chips" => {
                if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                    parsed.chips = n;
                }
            }
            "--out" => {
                if let Some(p) = args.next() {
                    parsed.out = p;
                }
            }
            other => panic!("unknown argument: {other}"),
        }
    }
    parsed
}

/// Eight single-assignment cases over the generated design's global
/// control signals.
fn cases() -> Vec<Case> {
    (0..8)
        .map(|i| Case::new().assign(format!("CTL {i}"), i % 2 == 0))
        .collect()
}

fn timed<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let value = f();
    (value, start.elapsed())
}

fn wall_ns(d: Duration) -> u64 {
    u64::try_from(d.as_nanos()).unwrap_or(u64::MAX)
}

fn run_cases(
    netlist: &Netlist,
    cached: bool,
) -> (Duration, Option<scald_verifier::EvalCacheStats>) {
    let mut v = VerifierBuilder::new(netlist.clone())
        .eval_cache(cached)
        .build();
    let (_, wall) = timed(|| {
        v.run(&RunOptions::new().cases(CaseSet::list(cases())).jobs(1))
            .expect("design settles")
    });
    (wall, v.eval_cache_stats())
}

/// A 10-edit session: one datapath primitive retimed back and forth five
/// times, so every second edit replays a previously seen design state.
fn replay_session(mut session: Session, target: &str, original: DelayRange) -> Duration {
    let mut wall = Duration::ZERO;
    for edit in 0..10 {
        let delay = if edit % 2 == 0 {
            DelayRange::from_ns(2.0, 6.5)
        } else {
            original
        };
        let mut delta = NetlistDelta::new();
        delta.retime(target.to_owned(), delay);
        let outcome = session
            .apply(Delta::Netlist(delta))
            .expect("retime applies");
        wall += outcome.stats.wall;
    }
    wall
}

fn main() {
    let args = parse_args();
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips: args.chips,
        ..S1Options::default()
    });
    println!(
        "design: {} chips, {} primitives, {} signals",
        stats.chips, stats.prims, stats.signals
    );

    // A. Multi-case analysis, cache off vs on.
    let (case_off, _) = run_cases(&netlist, false);
    let (case_on, case_stats) = run_cases(&netlist, true);
    let case_stats = case_stats.expect("cache was enabled");
    let case_speedup = case_off.as_secs_f64() / case_on.as_secs_f64().max(1e-9);
    println!(
        "multi-case (8 cases): {case_off:.2?} uncached, {case_on:.2?} cached \
         ({case_speedup:.2}x, {:.1}% hit rate)",
        100.0 * case_stats.hit_rate()
    );

    // B. Cold vs warm full verification through one shared table — the
    // cross-session reuse scald-incr leans on.
    let cache = Arc::new(EvalCache::new());
    let mut cold = VerifierBuilder::new(netlist.clone())
        .shared_eval_cache(Arc::clone(&cache))
        .build();
    let (_, cold_wall) = timed(|| cold.run(&RunOptions::new()).expect("design settles"));
    let cold_stats = cache.stats();
    let mut uncached = VerifierBuilder::new(netlist.clone())
        .eval_cache(false)
        .build();
    let (_, uncached_wall) = timed(|| uncached.run(&RunOptions::new()).expect("design settles"));
    let mut warm = VerifierBuilder::new(netlist.clone())
        .shared_eval_cache(Arc::clone(&cache))
        .build();
    let (_, warm_wall) = timed(|| warm.run(&RunOptions::new()).expect("design settles"));
    let warm_hits = cache.stats().hits - cold_stats.hits;
    let warm_misses = cache.stats().misses - cold_stats.misses;
    let warm_rate = warm_hits as f64 / ((warm_hits + warm_misses) as f64).max(1.0);
    let warm_speedup = uncached_wall.as_secs_f64() / warm_wall.as_secs_f64().max(1e-9);
    println!(
        "warm replay: {uncached_wall:.2?} uncached vs {warm_wall:.2?} through the shared \
         table ({warm_speedup:.2}x, {:.1}% hit rate)",
        100.0 * warm_rate
    );

    // C. A 10-edit incremental session replay, cache off vs on.
    let open = |cached: bool| {
        SessionBuilder::new()
            .eval_cache(cached)
            .open(
                DesignInput::netlist(netlist.clone(), vec![Case::new()]),
                "cache_stats",
            )
            .expect("session opens")
    };
    let session_off = open(false);
    let session_on = open(true);
    let target = session_on
        .netlist()
        .prims()
        .iter()
        .find(|p| p.name.ends_with("/LOGIC"))
        .expect("generated design has datapath slices")
        .name
        .clone();
    let original = session_on
        .netlist()
        .prims()
        .iter()
        .find(|p| p.name == target)
        .unwrap()
        .delay;
    let incr_off = replay_session(session_off, &target, original);
    let incr_on = replay_session(session_on, &target, original);
    let incr_speedup = incr_off.as_secs_f64() / incr_on.as_secs_f64().max(1e-9);
    println!(
        "incr session (10 edits on {target}): {incr_off:.2?} uncached, {incr_on:.2?} cached \
         ({incr_speedup:.2}x)"
    );

    let doc = Json::Obj(vec![
        ("schema".to_owned(), Json::str("scald-bench-cache")),
        ("version".to_owned(), Json::from(1u64)),
        ("chips".to_owned(), Json::from(args.chips as u64)),
        (
            "multi_case".to_owned(),
            Json::Obj(vec![
                ("cases".to_owned(), Json::from(8u64)),
                ("uncached_wall_ns".to_owned(), Json::from(wall_ns(case_off))),
                ("cached_wall_ns".to_owned(), Json::from(wall_ns(case_on))),
                ("speedup".to_owned(), Json::from(case_speedup)),
                ("hits".to_owned(), Json::from(case_stats.hits)),
                ("misses".to_owned(), Json::from(case_stats.misses)),
                ("hit_rate".to_owned(), Json::from(case_stats.hit_rate())),
                ("entries".to_owned(), Json::from(case_stats.entries as u64)),
            ]),
        ),
        (
            "warm_replay".to_owned(),
            Json::Obj(vec![
                ("cold_wall_ns".to_owned(), Json::from(wall_ns(cold_wall))),
                (
                    "uncached_wall_ns".to_owned(),
                    Json::from(wall_ns(uncached_wall)),
                ),
                ("warm_wall_ns".to_owned(), Json::from(wall_ns(warm_wall))),
                ("speedup".to_owned(), Json::from(warm_speedup)),
                ("hits".to_owned(), Json::from(warm_hits)),
                ("misses".to_owned(), Json::from(warm_misses)),
                ("hit_rate".to_owned(), Json::from(warm_rate)),
            ]),
        ),
        (
            "incr_session".to_owned(),
            Json::Obj(vec![
                ("edits".to_owned(), Json::from(10u64)),
                ("retimed_prim".to_owned(), Json::str(target)),
                ("uncached_wall_ns".to_owned(), Json::from(wall_ns(incr_off))),
                ("cached_wall_ns".to_owned(), Json::from(wall_ns(incr_on))),
                ("speedup".to_owned(), Json::from(incr_speedup)),
            ]),
        ),
    ]);
    std::fs::write(&args.out, doc.to_string_pretty() + "\n").expect("write BENCH_cache.json");
    println!("recorded {}", args.out);

    // The cache's headline invariant on any box, regardless of size or
    // core count: replaying an unchanged design through a shared table
    // is served almost entirely from cache.
    assert!(
        warm_rate >= 0.60,
        "warm replay hit rate {:.1}% below the 60% floor",
        100.0 * warm_rate
    );
}
