//! Regenerates **Table 3-2**: the primitive-type histogram of the
//! S-1-like design.
//!
//! The thesis reports 22 primitive types, 8 282 primitives total for 6357
//! chips (≈1.3 primitives per chip), an average vector width of 6.5 bits,
//! and notes that 53 833 primitives would have been needed without the
//! vector-width symmetry.
//!
//! Usage: `cargo run -p scald-bench --bin table_3_2 --release [--chips N]`

use scald_gen::s1::{s1_like_netlist, S1Options};

fn main() {
    let chips = scald_bench::chips_arg();
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });

    println!(
        "TABLE 3-2 — primitive definitions generated ({} chips)\n",
        stats.chips
    );
    println!("{:<28} {:>8}", "PRIMITIVE TYPE", "COUNT");
    let hist = netlist.primitive_histogram();
    for (name, count) in &hist {
        println!("{name:<28} {count:>8}");
    }
    let total: usize = hist.iter().map(|(_, c)| c).sum();
    println!("{:-<37}", "");
    println!("{:<28} {total:>8}", format!("TOTAL ({} types)", hist.len()));

    // Derived statistics the thesis quotes (§3.3.2).
    let per_chip = total as f64 / stats.chips as f64;
    let avg_width = netlist.average_primitive_width();
    let bit_blasted: u64 = netlist
        .prims()
        .iter()
        .map(|p| {
            p.output
                .map_or(1, |out| u64::from(netlist.signal(out).width.max(1)))
        })
        .sum();
    println!("\n{:<38} measured      paper", "STATISTIC");
    println!("{:<38} {per_chip:>8.2}      1.30", "primitives per chip");
    println!(
        "{:<38} {avg_width:>8.2}      6.5",
        "average primitive width (bits)"
    );
    println!(
        "{:<38} {bit_blasted:>8}      53 833",
        "bit-blasted primitive equivalent"
    );
    let bit_lists: u64 = netlist.signals().iter().map(|s| u64::from(s.width)).sum();
    println!(
        "{:<38} {:>8}      33 152",
        "signal value lists (per-bit)", bit_lists
    );
    println!(
        "{:<38} {:>8}      (vector nets)",
        "signal vectors",
        netlist.signals().len()
    );
}
