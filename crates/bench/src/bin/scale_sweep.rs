//! The scale sweep: how verification cost grows from 10^3 to 10^6
//! primitives, with the Table 3-3 storage breakdown at every step.
//!
//! The thesis reports one data point — 8 282 primitives verified in
//! 210 s of KL10 CPU time (Table 3-1) inside a 1.1 MB image (Table 3-3).
//! This harness sweeps the [`scald_gen::scale`] generator across decades
//! of that size and records, per step: generation and settle wall clocks
//! (median over `--reps`, min kept honest alongside), the
//! worker-count-independent event/evaluation trajectory, and the same
//! storage categories Table 3-3 itemizes, into `BENCH_scale.json`.
//!
//! Usage: `cargo run -p scald-bench --bin scale_sweep --release`
//! (`--steps 1000,10000,100000` to choose sizes, `--reps N` per-step
//! repetitions — sizes of 100k+ default to a single rep — `--jobs N`
//! for the wave-worker pool, and `--out FILE` to redirect the record, as
//! the CI smoke run does to avoid clobbering the committed sweep).

use std::time::Instant;

use scald_gen::scale::{scale_netlist, ScaleOptions};
use scald_trace::json::Json;
use scald_verifier::{RunOptions, Verifier};

fn flag_value(flag: &str) -> Option<String> {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == flag {
            return args.next();
        }
    }
    None
}

fn median(samples: &mut [u64]) -> u64 {
    samples.sort_unstable();
    samples[samples.len() / 2]
}

fn main() {
    let steps: Vec<usize> = flag_value("--steps")
        .map(|s| {
            s.split(',')
                .map(|n| {
                    n.trim()
                        .parse()
                        .expect("--steps takes sizes like 1000,10000")
                })
                .collect()
        })
        .unwrap_or_else(|| vec![1_000, 10_000, 100_000]);
    let reps: usize = flag_value("--reps")
        .map(|s| s.parse().expect("--reps takes a count"))
        .unwrap_or(3)
        .max(1);
    let jobs: usize = flag_value("--jobs")
        .map(|s| s.parse().expect("--jobs takes a worker count"))
        .unwrap_or(1)
        .max(1);
    let out = flag_value("--out").unwrap_or_else(|| "BENCH_scale.json".to_owned());

    let mut records = Vec::new();
    for &target in &steps {
        let opts = ScaleOptions::prims(target);
        let started = Instant::now();
        let (netlist, stats) = scale_netlist(&opts);
        let gen_ns = u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX);
        println!(
            "target {target:>8}: {} prims, {} signals, {} chains (max depth {}), {} hubs, generated in {:.2}s",
            stats.prims,
            stats.signals,
            stats.chains,
            stats.max_depth,
            stats.hubs,
            gen_ns as f64 / 1e9
        );

        // Large designs get a single rep: at 100k+ primitives the settle
        // runs long enough that scheduler noise is amortized away.
        let step_reps = if target >= 100_000 { 1 } else { reps };
        let mut samples = Vec::with_capacity(step_reps);
        let mut events = 0u64;
        let mut evaluations = 0u64;
        let mut violations = 0u64;
        let mut storage: Option<scald_verifier::StorageReport> = None;
        for _ in 0..step_reps {
            let mut v = Verifier::new(netlist.clone());
            let started = Instant::now();
            let outcome = v.run(&RunOptions::new().jobs(jobs)).expect("settles");
            samples.push(u64::try_from(started.elapsed().as_nanos()).unwrap_or(u64::MAX));
            let sole = outcome.into_sole();
            events = sole.events;
            evaluations = sole.evaluations;
            violations = sole.violations.len() as u64;
            storage = Some(v.storage_report());
        }
        let min_ns = *samples.iter().min().expect("reps >= 1");
        let wall_ns = median(&mut samples);
        let storage = storage.expect("at least one rep ran");
        println!(
            "  settle: {:.3}s median ({:.3}s min, {step_reps} reps), {events} events, {evaluations} evaluations, {violations} violations",
            wall_ns as f64 / 1e9,
            min_ns as f64 / 1e9,
        );
        println!(
            "  storage: {} bytes total, {:.2} value records/signal",
            storage.total(),
            storage.value_records_per_signal()
        );

        // The Table 3-3 categories, bytes per storage area.
        let table_3_3 = Json::Obj(
            storage
                .rows()
                .into_iter()
                .map(|(name, bytes, _)| (name.to_owned(), Json::from(bytes as u64)))
                .chain([
                    ("TOTAL".to_owned(), Json::from(storage.total() as u64)),
                    (
                        "value_records_per_signal".to_owned(),
                        Json::from(storage.value_records_per_signal()),
                    ),
                ])
                .collect(),
        );
        records.push(Json::Obj(vec![
            ("target_prims".to_owned(), Json::from(target as u64)),
            ("prims".to_owned(), Json::from(stats.prims as u64)),
            ("signals".to_owned(), Json::from(stats.signals as u64)),
            ("chains".to_owned(), Json::from(stats.chains as u64)),
            ("max_depth".to_owned(), Json::from(stats.max_depth as u64)),
            ("hubs".to_owned(), Json::from(stats.hubs as u64)),
            ("gen_ns".to_owned(), Json::from(gen_ns)),
            ("reps".to_owned(), Json::from(step_reps as u64)),
            ("wall_ns".to_owned(), Json::from(wall_ns)),
            ("min_ns".to_owned(), Json::from(min_ns)),
            ("events".to_owned(), Json::from(events)),
            ("evaluations".to_owned(), Json::from(evaluations)),
            ("violations".to_owned(), Json::from(violations)),
            ("table_3_3".to_owned(), table_3_3),
        ]));
    }

    let doc = Json::Obj(vec![
        ("schema".to_owned(), Json::str("scald-bench-scale")),
        ("version".to_owned(), Json::from(1u64)),
        ("jobs".to_owned(), Json::from(jobs as u64)),
        ("steps".to_owned(), Json::Arr(records)),
    ]);
    std::fs::write(&out, doc.to_string_pretty() + "\n").expect("write the JSON record");
    println!("recorded {out}");
}
