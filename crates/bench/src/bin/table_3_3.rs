//! Regenerates **Table 3-3**: storage required by the Timing Verifier,
//! by data-structure category.
//!
//! The thesis reports, for the 6357-chip design (S-1 Mark I PASCAL, no
//! record packing): circuit description 37.8%, signal names 11.6%, string
//! space 10.6%, call list array 6.9%, miscellaneous 0.7% (signal values
//! making up the bulk of the rest), with an average of 2.97 value records
//! per signal and ≈260 bytes per primitive of circuit description.
//!
//! Usage: `cargo run -p scald-bench --bin table_3_3 --release [--chips N]`

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_verifier::{RunOptions, Verifier};

fn main() {
    let chips = scald_bench::chips_arg();
    let (netlist, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });
    let n_prims = netlist.prims().len();

    let mut verifier = Verifier::new(netlist);
    verifier.run(&RunOptions::new()).expect("design settles");
    let report = verifier.storage_report();

    println!(
        "TABLE 3-3 — storage required by the Timing Verifier ({} chips)\n",
        stats.chips
    );
    println!(
        "{:<22} {:>12} {:>9}   PAPER",
        "STORAGE AREA", "BYTES", "MEASURED"
    );
    let paper = [
        ("CIRCUIT DESCRIPTION", Some(37.8)),
        ("SIGNAL VALUES", None), // the thesis calls it "next largest"
        ("SIGNAL NAMES", Some(11.6)),
        ("STRING SPACE", Some(10.6)),
        ("CALL LIST ARRAY", Some(6.9)),
        ("MISCELLANEOUS", Some(0.7)),
    ];
    for ((name, bytes, pct), (_, paper_pct)) in report.rows().iter().zip(paper) {
        match paper_pct {
            Some(p) => println!("{name:<22} {bytes:>12} {pct:>8.1}%   {p:.1}%"),
            None => println!("{name:<22} {bytes:>12} {pct:>8.1}%   (largest remainder)"),
        }
    }
    println!("{:-<50}", "");
    println!("{:<22} {:>12}", "TOTAL", report.total());

    println!("\n{:<40} measured      paper", "STATISTIC");
    println!(
        "{:<40} {:>8.2}      2.97",
        "value records per signal",
        report.value_records_per_signal()
    );
    println!(
        "{:<40} {:>8.1}      260",
        "circuit-description bytes per primitive",
        report.circuit_description as f64 / n_prims.max(1) as f64
    );
}
