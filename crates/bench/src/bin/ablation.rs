//! Ablation of the vector-width symmetry (§3.3.2).
//!
//! The thesis: "If this symmetry had not been exploited, then 53,833
//! rather than 8,282 primitives would have been used to represent the
//! circuit" — a 6.5× representation saving that carries through to events
//! and runtime. This harness measures it: verify the S-1-like design as
//! vector primitives, then bit-blast it and verify again.
//!
//! Usage: `cargo run -p scald-bench --bin ablation --release [--chips N]`

use scald_gen::ablation::bit_blast;
use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_verifier::{RunOptions, Verifier};
use std::time::Instant;

fn main() {
    let chips = {
        // Default smaller than the tables: the blasted design is ~7x
        // bigger.
        let n = scald_bench::chips_arg();
        if n == 6357 {
            1500
        } else {
            n
        }
    };
    let (vector, stats) = s1_like_netlist(S1Options {
        chips,
        ..S1Options::default()
    });
    println!("ABLATION — vector-width symmetry ({} chips)\n", stats.chips);

    let t = Instant::now();
    let blasted = bit_blast(&vector);
    let blast_time = t.elapsed();

    let run = |netlist: scald_netlist::Netlist| {
        let t = Instant::now();
        let mut v = Verifier::new(netlist);
        let r = v
            .run(&RunOptions::new())
            .expect("design settles")
            .into_sole();
        (t.elapsed(), r.events, r.evaluations, r.violations.len())
    };

    let vec_prims = vector.prims().len();
    let vec_signals = vector.signals().len();
    let (vec_time, vec_events, vec_evals, vec_viols) = run(vector);
    let blast_prims = blasted.prims().len();
    let blast_signals = blasted.signals().len();
    let (blast_time_v, blast_events, blast_evals, blast_viols) = run(blasted);

    println!(
        "{:<26} {:>12} {:>12} {:>8}",
        "", "VECTOR", "BIT-BLASTED", "RATIO"
    );
    let row = |name: &str, a: f64, b: f64| {
        println!("{name:<26} {a:>12.0} {b:>12.0} {:>7.1}x", b / a.max(1.0));
    };
    row("primitives", vec_prims as f64, blast_prims as f64);
    row("signals", vec_signals as f64, blast_signals as f64);
    row("events", vec_events as f64, blast_events as f64);
    row("evaluations", vec_evals as f64, blast_evals as f64);
    println!(
        "{:<26} {:>12.2?} {:>12.2?} {:>7.1}x",
        "verify wall time",
        vec_time,
        blast_time_v,
        blast_time_v.as_secs_f64() / vec_time.as_secs_f64().max(1e-9)
    );
    println!("{:<26} {vec_viols:>12} {blast_viols:>12}", "violations");
    println!("\n(bit-blast transform itself took {blast_time:.2?})");
    println!(
        "paper: 8 282 vector primitives vs 53 833 bit-blasted — a 6.5x \
         representation saving (§3.3.2)."
    );
}
