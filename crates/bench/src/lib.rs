//! Shared helpers for the table-regeneration binaries and Criterion
//! benches. The binaries (one per thesis table or figure) live in
//! `src/bin/`; see DESIGN.md §3 for the experiment index.

#![warn(missing_docs)]

/// Parses an optional `--chips N` argument (default: the thesis' 6357).
#[must_use]
pub fn chips_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--chips" {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        }
    }
    6357
}
