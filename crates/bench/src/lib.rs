//! Shared helpers for the table-regeneration binaries and the std-only
//! benches. The binaries (one per thesis table or figure) live in
//! `src/bin/`; see DESIGN.md §3 for the experiment index.

#![warn(missing_docs)]

pub mod harness;

/// The machine's available parallelism — the `Verifier::run` default worker
/// count, used by benches comparing serial vs. parallel case analysis.
#[must_use]
pub fn default_jobs() -> usize {
    std::thread::available_parallelism().map_or(1, usize::from)
}

/// Parses an optional `--chips N` argument (default: the thesis' 6357).
#[must_use]
pub fn chips_arg() -> usize {
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        if a == "--chips" {
            if let Some(n) = args.next().and_then(|s| s.parse().ok()) {
                return n;
            }
        }
    }
    6357
}
