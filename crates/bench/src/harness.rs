//! A minimal wall-clock bench harness (std only, no external crates).
//!
//! `cargo bench` runs each `[[bench]]` target's `main()` with
//! `harness = false`; this module supplies the measurement loop those
//! targets share. Each benchmark is auto-calibrated to a target batch
//! time, run for a fixed number of batches, and reported as
//! `min / median / mean` nanoseconds per iteration. Substring filters
//! passed on the command line (`cargo bench -- skew`) select benchmarks
//! by name.

use std::time::{Duration, Instant};

/// Re-export so bench targets don't need to name `std::hint` themselves.
pub use std::hint::black_box;

/// Target wall-clock time per measured batch.
const BATCH_TARGET: Duration = Duration::from_millis(40);
/// Measured batches per benchmark (excluding warm-up).
const BATCHES: usize = 7;

/// Bench runner: owns the name filter and prints one line per benchmark.
pub struct Bench {
    filters: Vec<String>,
}

impl Bench {
    /// Builds a runner from `std::env::args`, treating every non-flag
    /// argument as a substring filter on benchmark names. (`cargo bench`
    /// also passes `--bench`, which is ignored.)
    #[must_use]
    pub fn from_args() -> Self {
        let filters = std::env::args()
            .skip(1)
            .filter(|a| !a.starts_with('-'))
            .collect();
        Bench { filters }
    }

    fn selected(&self, name: &str) -> bool {
        self.filters.is_empty() || self.filters.iter().any(|f| name.contains(f))
    }

    /// Benchmarks `routine`, timing the whole closure.
    pub fn bench<T>(&self, name: &str, mut routine: impl FnMut() -> T) {
        self.bench_with_setup(name, || (), |()| routine());
    }

    /// Benchmarks `routine` with a fresh, untimed `setup` product per
    /// iteration — the equivalent of batched benching for routines that
    /// consume their input (e.g. `Verifier::new(netlist)`).
    pub fn bench_with_setup<S, T>(
        &self,
        name: &str,
        mut setup: impl FnMut() -> S,
        mut routine: impl FnMut(S) -> T,
    ) {
        if !self.selected(name) {
            return;
        }

        // Calibrate: how many iterations fill one batch?
        let mut iters = 1u64;
        loop {
            let elapsed = run_batch(iters, &mut setup, &mut routine);
            if elapsed >= BATCH_TARGET || iters >= 1 << 20 {
                break;
            }
            // Grow geometrically toward the target, at least doubling.
            let scale = BATCH_TARGET.as_secs_f64() / elapsed.as_secs_f64().max(1e-9);
            iters = (iters.saturating_mul(scale.ceil() as u64)).max(iters * 2);
        }

        let mut per_iter: Vec<f64> = (0..BATCHES)
            .map(|_| {
                let elapsed = run_batch(iters, &mut setup, &mut routine);
                elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter.sort_by(f64::total_cmp);
        let min = per_iter[0];
        let median = per_iter[per_iter.len() / 2];
        let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;
        println!(
            "{name:<44} {:>12} /iter  (min {}, mean {}, {iters} iters x {BATCHES})",
            fmt_ns(median),
            fmt_ns(min),
            fmt_ns(mean),
        );
    }
}

/// Runs one timed batch: `iters` iterations, setup excluded from timing.
fn run_batch<S, T>(
    iters: u64,
    setup: &mut impl FnMut() -> S,
    routine: &mut impl FnMut(S) -> T,
) -> Duration {
    let mut total = Duration::ZERO;
    for _ in 0..iters {
        let input = setup();
        let start = Instant::now();
        let out = routine(input);
        total += start.elapsed();
        black_box(out);
    }
    total
}

/// Formats nanoseconds with a human unit, e.g. `12.3 µs`.
#[must_use]
pub fn fmt_ns(ns: f64) -> String {
    if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::fmt_ns;

    #[test]
    fn formats_scale_units() {
        assert_eq!(fmt_ns(12.34), "12.3 ns");
        assert_eq!(fmt_ns(12_340.0), "12.34 µs");
        assert_eq!(fmt_ns(12_340_000.0), "12.34 ms");
        assert_eq!(fmt_ns(2_500_000_000.0), "2.500 s");
    }
}
