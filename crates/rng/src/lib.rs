//! Deterministic, dependency-free pseudo-random numbers.
//!
//! The repo must build and test with **no external crates** (the tier-1
//! verify runs offline), so the workload generators and randomized tests
//! use this tiny module instead of `rand`. Two layers:
//!
//! * [`SplitMix64`] — the 64-bit finalizer-based generator of Steele,
//!   Lea & Flood (2014). Streams well from any seed, including 0, and is
//!   the standard seeding routine for larger-state generators.
//! * [`Rng`] — xoshiro256** (Blackman & Vigna), seeded via SplitMix64,
//!   with the small set of helpers the repo needs: integer ranges,
//!   floats, booleans, selection and shuffling.
//!
//! Everything is reproducible: the same seed always yields the same
//! sequence, on every platform (the arithmetic is exact wrapping integer
//! math; floats are derived from the high mantissa bits).

#![warn(missing_docs)]

/// SplitMix64: a tiny, high-quality 64-bit generator used directly for
/// simple streams and to seed [`Rng`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed (any value is fine, including 0).
    #[must_use]
    pub fn new(seed: u64) -> SplitMix64 {
        SplitMix64 { state: seed }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// The repo's general-purpose generator: xoshiro256** seeded from
/// [`SplitMix64`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    s: [u64; 4],
}

impl Rng {
    /// Creates a generator whose full 256-bit state is expanded from
    /// `seed` with SplitMix64 (the seeding scheme Vigna recommends).
    #[must_use]
    pub fn seed_from_u64(seed: u64) -> Rng {
        let mut sm = SplitMix64::new(seed);
        Rng {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// The next 64 pseudo-random bits.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// The next 32 pseudo-random bits (the high half, which mixes best).
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[0, bound)` by widening multiply (Lemire's
    /// nearly-divisionless method without the rejection step — the tiny
    /// bias is irrelevant for test and workload generation).
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "Rng::below(0)");
        ((u128::from(self.next_u64()) * u128::from(bound)) >> 64) as u64
    }

    /// Uniform `u64` in the half-open range `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.below(hi - lo)
    }

    /// Uniform `u32` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(u64::from(lo), u64::from(hi)) as u32
    }

    /// Uniform `usize` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `i64` in `lo..hi`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn range_i64(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo.wrapping_add(self.below(hi.wrapping_sub(lo) as u64) as i64)
    }

    /// Uniform `f64` in `[0, 1)`, from the top 53 bits.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform `f64` in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        lo + self.f64() * (hi - lo)
    }

    /// A fair coin flip.
    pub fn bool(&mut self) -> bool {
        self.next_u64() & 1 == 1
    }

    /// `true` with probability `p`.
    pub fn bool_with(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// A uniformly chosen element of a non-empty slice.
    ///
    /// # Panics
    ///
    /// Panics if the slice is empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        assert!(!items.is_empty(), "Rng::choose on empty slice");
        &items[self.range_usize(0, items.len())]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range_usize(0, i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn splitmix_reference_vector() {
        // Reference values for seed 1234567 from the public-domain
        // splitmix64.c by Sebastiano Vigna.
        let mut sm = SplitMix64::new(1_234_567);
        assert_eq!(sm.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(sm.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn deterministic_across_clones() {
        let mut a = Rng::seed_from_u64(42);
        let mut b = a.clone();
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng::seed_from_u64(7);
        let mut b = Rng::seed_from_u64(7);
        let va: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        assert_eq!(va, vb);
        let mut c = Rng::seed_from_u64(8);
        assert_ne!(va[0], c.next_u64());
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = Rng::seed_from_u64(99);
        for _ in 0..10_000 {
            let x = rng.range_u32(5, 17);
            assert!((5..17).contains(&x));
            let y = rng.range_i64(-50, -3);
            assert!((-50..-3).contains(&y));
            let f = rng.range_f64(1.5, 2.5);
            assert!((1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn range_hits_all_values_of_small_domain() {
        let mut rng = Rng::seed_from_u64(3);
        let mut seen = [false; 6];
        for _ in 0..1_000 {
            seen[rng.range_usize(0, 6)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn bool_with_probability_is_roughly_calibrated() {
        let mut rng = Rng::seed_from_u64(11);
        let hits = (0..100_000).filter(|_| rng.bool_with(0.25)).count();
        assert!((23_000..27_000).contains(&hits), "hits = {hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..64).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..64).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle left the slice sorted");
    }
}
