//! The central correctness property of `scald-incr`: a warm-started
//! [`Session::apply`] produces a report **byte-identical** (modulo effort
//! counters) to a cold verification of the edited design.
//!
//! Designs are generated S-1-like netlists; edits are seeded scripts of
//! retimes, removals, buffer splices, assertion changes and case-set
//! swaps, applied in sequence so later edits see earlier ones.

use scald_gen::s1::{s1_like_netlist, S1Options};
use scald_incr::{Case, Delta, DeltaConn, DesignInput, NetlistDelta, PrimSpec, Session};
use scald_netlist::{Netlist, PrimKind};
use scald_rng::Rng;
use scald_verifier::{CaseSet, RunOptions, Verifier};
use scald_wave::DelayRange;

/// Cold-verifies `netlist` against `cases` exactly as a fresh run would.
fn cold_report(netlist: &Netlist, cases: &[Case]) -> String {
    let mut v = Verifier::new(netlist.clone());
    let results = v
        .run(&RunOptions::new().cases(CaseSet::list(cases.iter().cloned())))
        .expect("cold run settles")
        .cases;
    v.report("prop", &results).strip_effort().to_json()
}

/// One seeded edit: either a structural [`NetlistDelta`] or a case swap.
enum Edit {
    Structural(NetlistDelta),
    Cases(Vec<Case>),
}

/// Draws an edit against the *current* state of the design so scripts
/// stay valid as they accumulate.
fn draw_edit(rng: &mut Rng, netlist: &Netlist, tag: String) -> Edit {
    let prims = netlist.prims();
    match rng.range_u32(0, 5) {
        0 => {
            // ECO retime of a random primitive.
            let p = rng.range_usize(0, prims.len());
            let lo = rng.range_f64(0.5, 4.0);
            let hi = lo + rng.range_f64(0.0, 6.0);
            let mut d = NetlistDelta::new();
            d.retime(prims[p].name.clone(), DelayRange::from_ns(lo, hi));
            Edit::Structural(d)
        }
        1 => {
            // Remove a random primitive; its output goes undriven.
            let p = rng.range_usize(0, prims.len());
            let mut d = NetlistDelta::new();
            d.remove_prim(prims[p].name.clone());
            Edit::Structural(d)
        }
        2 => {
            // Splice a buffer off a scalar control signal.
            let ctl = rng.range_u32(0, 24);
            let mut d = NetlistDelta::new();
            d.add_prim(PrimSpec {
                name: format!("ECO/{tag}"),
                kind: PrimKind::Buf,
                delay: DelayRange::from_ns(0.5, 2.5),
                inputs: vec![DeltaConn::new(format!("CTL {ctl}"))],
                output: Some(format!("ECO/{tag} OUT")),
            });
            Edit::Structural(d)
        }
        3 => {
            // Change (or drop) a random signal's assertion.
            let sigs = netlist.signals();
            let s = rng.range_usize(0, sigs.len());
            let assertion = if rng.bool() {
                let lo = ["2", "2.5", "3"][rng.range_usize(0, 3)];
                Some(format!(".S{lo}-8"))
            } else {
                None
            };
            let mut d = NetlistDelta::new();
            d.set_assertion(sigs[s].name.clone(), assertion);
            Edit::Structural(d)
        }
        _ => {
            // Swap the case set: pin one or two control signals.
            let mut cases = Vec::new();
            for _ in 0..rng.range_u32(1, 3) {
                let mut case = Case::new();
                for _ in 0..rng.range_u32(1, 3) {
                    let ctl = rng.range_u32(0, 24);
                    case = case.assign(format!("CTL {ctl}"), rng.bool());
                }
                cases.push(case);
            }
            Edit::Cases(cases)
        }
    }
}

#[test]
fn warm_apply_matches_cold_run_over_seeded_edit_scripts() {
    const DESIGNS: usize = 12;
    const EDITS: usize = 9;
    let mut pairs = 0usize;
    let mut warm_passes = 0usize;

    for design in 0..DESIGNS {
        let opts = S1Options {
            chips: 8 + 2 * design,
            seed: 0xec0_0000 + design as u64,
        };
        let (netlist, _) = s1_like_netlist(opts);
        let mut rng = Rng::seed_from_u64(0x5eed_0000 + design as u64);
        let mut current = netlist.clone();
        let mut cases = vec![Case::new()];
        let mut session = Session::open(DesignInput::netlist(netlist, cases.clone()), "prop")
            .expect("opens cold");
        assert!(!session.outcome().stats.warm, "initial open is cold");
        assert_eq!(
            session.report().strip_effort().to_json(),
            cold_report(&current, &cases),
            "design {design}: the opening run is itself a plain cold run"
        );

        for edit in 0..EDITS {
            let delta = match draw_edit(&mut rng, &current, format!("{design}_{edit}")) {
                Edit::Structural(d) => {
                    current = d.apply(&current).expect("edit applies");
                    Delta::Netlist(d)
                }
                Edit::Cases(c) => {
                    cases = c.clone();
                    Delta::Cases(c)
                }
            };
            let outcome = session.apply(delta).expect("warm apply settles");
            assert!(
                outcome.stats.warm,
                "design {design} edit {edit}: same config must warm-start"
            );
            assert_eq!(
                outcome.report.strip_effort().to_json(),
                cold_report(&current, &cases),
                "design {design} edit {edit}: warm report differs from cold"
            );
            pairs += 1;
            if outcome.stats.warm {
                warm_passes += 1;
            }
        }
    }

    assert!(pairs >= 100, "property needs >=100 pairs, got {pairs}");
    assert_eq!(warm_passes, pairs, "every apply after open must be warm");
}

#[test]
fn single_retime_touches_a_small_cone() {
    let (netlist, _) = s1_like_netlist(S1Options {
        chips: 60,
        seed: 0x5ca1d,
    });
    let target = netlist
        .prims()
        .iter()
        .find(|p| p.name.ends_with("/LOGIC") || p.name.ends_with("/MUX"))
        .expect("generated design has datapath slices")
        .name
        .clone();
    let mut session =
        Session::open(DesignInput::netlist(netlist, vec![Case::new()]), "cone").expect("opens");
    let cold_events = session.outcome().stats.events;

    let mut d = NetlistDelta::new();
    d.retime(target, DelayRange::from_ns(2.0, 7.0));
    let outcome = session.apply(Delta::Netlist(d)).expect("applies");
    assert!(outcome.stats.warm);
    assert!(
        outcome.stats.cone_prims < outcome.stats.total_prims / 2,
        "one retime should dirty a minority cone: {}/{} prims",
        outcome.stats.cone_prims,
        outcome.stats.total_prims
    );
    assert!(
        outcome.stats.events < cold_events,
        "warm settle ({} events) should beat the cold run ({cold_events})",
        outcome.stats.events
    );
}

#[test]
fn identical_source_reapply_is_all_clean() {
    let (netlist, _) = s1_like_netlist(S1Options { chips: 20, seed: 7 });
    let mut session = Session::open(
        DesignInput::netlist(netlist.clone(), vec![Case::new()]),
        "noop",
    )
    .expect("opens");
    let outcome = session
        .apply(Delta::Netlist(NetlistDelta::new()))
        .expect("empty delta applies");
    assert!(outcome.stats.warm);
    assert_eq!(outcome.stats.dirty_prims, 0, "nothing changed");
    assert_eq!(outcome.stats.seeded_prims, 0);
    assert_eq!(
        outcome.report.strip_effort().to_json(),
        session.report().strip_effort().to_json()
    );
}
