//! The [`Session`] type: a settled verifier plus content hashes, and the
//! warm-start re-verification pipeline behind [`Session::apply`].

use scald_netlist::{DeltaError, Netlist, NetlistDelta, PrimId, SignalId};
use scald_trace::TraceSink;
use scald_verifier::{
    Case, CaseSet, CheckpointPolicy, EvalCache, MemoStats, PrefixStats, Report, RunOptions,
    Verifier, VerifierBuilder, VerifyError,
};
use std::collections::hash_map::DefaultHasher;
use std::collections::{BTreeMap, BTreeSet};
use std::hash::{Hash, Hasher};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A design to open a [`Session`] on — the one input type shared by the
/// CLI, the `scald-serve` daemon and library callers, so every consumer
/// constructs sessions identically ([`SessionBuilder::open`]).
#[derive(Debug, Clone)]
// Consumed by value the moment a session opens — the size gap between
// the variants never sits in long-lived storage, so boxing would only
// tax every construction site.
#[allow(clippy::large_enum_variant)]
pub enum DesignInput {
    /// HDL source text; the design's `case` blocks become the session's
    /// case set (one empty base case when it declares none).
    Source(String),
    /// Verilog source text, compiled through the `scald-rtl` frontend;
    /// the design's `// scald: case` pragmas become the session's case
    /// set (one empty base case when it declares none).
    Verilog(String),
    /// An already-built netlist plus an explicit case set (pass
    /// `vec![Case::new()]` for a single base case).
    Netlist {
        /// The elaborated design.
        netlist: Netlist,
        /// The cases to analyse on every verification.
        cases: Vec<Case>,
    },
}

impl DesignInput {
    /// Source-text input (convenience over the variant).
    pub fn source(src: impl Into<String>) -> DesignInput {
        DesignInput::Source(src.into())
    }

    /// Verilog-source input (convenience over the variant).
    pub fn verilog(src: impl Into<String>) -> DesignInput {
        DesignInput::Verilog(src.into())
    }

    /// Netlist input (convenience over the variant).
    #[must_use]
    pub fn netlist(netlist: Netlist, cases: Vec<Case>) -> DesignInput {
        DesignInput::Netlist { netlist, cases }
    }
}

/// An edit to re-verify against a [`Session`].
#[derive(Debug, Clone)]
pub enum Delta {
    /// Replace the whole design from HDL source text. The source is
    /// re-expanded by `scald-hdl`; because expanded instance names are
    /// stable across re-expansion (per-block ordinals), primitives whose
    /// definition did not change hash identically and stay warm. The
    /// design's `case` blocks replace the session's case set.
    Source(String),
    /// Replace the whole design from Verilog source text, re-compiled
    /// through the `scald-rtl` frontend. Lowered primitive names are
    /// stable across re-compilation (per-body ordinals mirroring the
    /// expander), so unchanged logic hashes identically and stays warm.
    /// The design's `// scald: case` pragmas replace the case set.
    Verilog(String),
    /// Apply structural edits ([`NetlistDelta`]) to the current netlist:
    /// add/remove/retime primitives, change assertions. The case set is
    /// kept.
    Netlist(NetlistDelta),
    /// Replace the case set only; the netlist (and its settled base
    /// fixed point) carries over untouched.
    Cases(Vec<Case>),
}

/// Effort accounting for one [`Session::apply`] (or initial open).
#[derive(Debug, Clone, Copy)]
pub struct IncrStats {
    /// `false` when the session fell back to a cold run (initial open,
    /// or a design-configuration change).
    pub warm: bool,
    /// Primitives whose content hash changed (or that are new).
    pub dirty_prims: usize,
    /// Primitives seeded into the worklist (the dirty frontier).
    pub seeded_prims: usize,
    /// Size of the structurally affected cone
    /// ([`Netlist::affected_cone`]): the upper bound on what re-settling
    /// may touch.
    pub cone_prims: usize,
    /// Total primitives in the (edited) design.
    pub total_prims: usize,
    /// Signal-change events this re-verification processed (base settle
    /// plus all cases).
    pub events: u64,
    /// Primitive evaluations this re-verification processed.
    pub evaluations: u64,
    /// Shared-prefix settle effort, when the run scheduled its cases as
    /// a tree (zero under the independent path).
    pub prefix: PrefixStats,
    /// Checker/storage memoization counters of the sweep scheduler
    /// (zero under the independent path).
    pub memo: MemoStats,
    /// Wall-clock time of the re-verification.
    pub wall: Duration,
}

impl IncrStats {
    /// The affected cone as a fraction of the design, in `[0, 1]`.
    #[must_use]
    pub fn cone_fraction(&self) -> f64 {
        if self.total_prims == 0 {
            0.0
        } else {
            self.cone_prims as f64 / self.total_prims as f64
        }
    }
}

/// What one verification pass produced: the full [`Report`] plus the
/// incremental-effort statistics.
#[derive(Debug, Clone)]
pub struct SessionOutcome {
    /// The report, exactly as a cold run of the same design would
    /// produce it (modulo effort counters; see [`Report::strip_effort`]).
    pub report: Report,
    /// How much of the design the pass actually touched.
    pub stats: IncrStats,
}

/// Errors from opening a session or applying a delta.
#[derive(Debug)]
pub enum SessionError {
    /// The HDL source failed to compile.
    Compile(scald_hdl::HdlError),
    /// The Verilog source failed to compile.
    Rtl(scald_rtl::RtlError),
    /// A [`NetlistDelta`] failed to apply.
    Delta(DeltaError),
    /// Verification failed (oscillation, unknown case signal).
    Verify(VerifyError),
}

impl std::fmt::Display for SessionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SessionError::Compile(e) => write!(f, "{e}"),
            SessionError::Rtl(e) => write!(f, "{e}"),
            SessionError::Delta(e) => write!(f, "{e}"),
            SessionError::Verify(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for SessionError {}

impl From<scald_hdl::HdlError> for SessionError {
    fn from(e: scald_hdl::HdlError) -> SessionError {
        SessionError::Compile(e)
    }
}

impl From<scald_rtl::RtlError> for SessionError {
    fn from(e: scald_rtl::RtlError) -> SessionError {
        SessionError::Rtl(e)
    }
}

impl From<DeltaError> for SessionError {
    fn from(e: DeltaError) -> SessionError {
        SessionError::Delta(e)
    }
}

impl From<VerifyError> for SessionError {
    fn from(e: VerifyError) -> SessionError {
        SessionError::Verify(e)
    }
}

/// Configures and opens a [`Session`].
#[derive(Default)]
pub struct SessionBuilder {
    jobs: Option<usize>,
    trace: Option<Arc<dyn TraceSink>>,
    /// Inverted so `Default` means "cache on".
    no_eval_cache: bool,
    /// A caller-supplied memo table; overrides `no_eval_cache`.
    shared_cache: Option<Arc<EvalCache>>,
}

impl SessionBuilder {
    /// A builder with defaults: worker count chosen by the engine, no
    /// trace sink.
    #[must_use]
    pub fn new() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// Case-analysis worker count for every verification this session
    /// runs.
    #[must_use]
    pub fn jobs(mut self, jobs: usize) -> SessionBuilder {
        self.jobs = Some(jobs.max(1));
        self
    }

    /// Attaches a trace sink to every verifier the session builds. The
    /// sink outlives individual passes, so per-session counters (e.g. a
    /// `CounterSink`, or the JSONL stream behind `scald-tv --watch
    /// --trace`) accumulate across edits; warm starts are marked with a
    /// `warm_start` event.
    #[must_use]
    pub fn trace(mut self, sink: Arc<dyn TraceSink>) -> SessionBuilder {
        self.trace = Some(sink);
        self
    }

    /// Enables or disables the shared evaluation memo table (on by
    /// default). When enabled, one [`EvalCache`] spans every
    /// re-verification of the session, so evaluations in regions an edit
    /// did not touch replay from the table; results are byte-identical
    /// either way.
    #[must_use]
    pub fn eval_cache(mut self, enabled: bool) -> SessionBuilder {
        self.no_eval_cache = !enabled;
        self
    }

    /// Uses a caller-owned [`EvalCache`] instead of a private one, so
    /// several sessions (e.g. every `scald-serve` client of one popular
    /// design) share a single memo table: evaluations one session
    /// performed replay in every other. Overrides
    /// [`eval_cache`](Self::eval_cache).
    #[must_use]
    pub fn shared_eval_cache(mut self, cache: Arc<EvalCache>) -> SessionBuilder {
        self.shared_cache = Some(cache);
        self
    }

    /// Opens a session on a [`DesignInput`] — the single constructor the
    /// CLI, the `scald-serve` daemon and library callers all use.
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if source input fails to compile or
    /// the initial cold verification fails.
    pub fn open(
        self,
        input: DesignInput,
        label: impl Into<String>,
    ) -> Result<Session, SessionError> {
        let (netlist, cases) = match input {
            DesignInput::Source(src) => compile(&src)?,
            DesignInput::Verilog(src) => compile_rtl(&src)?,
            DesignInput::Netlist { netlist, cases } => (netlist, cases),
        };
        let eval_cache = match &self.shared_cache {
            Some(cache) => Some(Arc::clone(cache)),
            None => (!self.no_eval_cache).then(|| Arc::new(EvalCache::new())),
        };
        let mut session = Session {
            // Placeholder until the first verify() snapshot replaces it;
            // it never evaluates, so skip building it a cache.
            settled: VerifierBuilder::new(netlist.clone())
                .eval_cache(false)
                .build(),
            sigs: BTreeMap::new(),
            prims: BTreeMap::new(),
            cases,
            label: label.into(),
            jobs: self.jobs,
            trace: self.trace,
            eval_cache,
            last: None,
        };
        let outcome = session.verify(netlist, None)?;
        session.last = Some(outcome);
        Ok(session)
    }
}

/// An incremental re-verification session. See the [crate docs](crate).
pub struct Session {
    /// Verifier snapshotted at its settled base fixed point — the
    /// `prior` of the next warm start. Never holds a case overlay.
    settled: Verifier,
    /// Signal base name -> (id, content hash) in `settled`'s netlist.
    sigs: BTreeMap<String, (SignalId, u64)>,
    /// Primitive name -> (id, content hash); ambiguous (duplicate) names
    /// are excluded and therefore always re-verify dirty.
    prims: BTreeMap<String, (PrimId, u64)>,
    cases: Vec<Case>,
    label: String,
    jobs: Option<usize>,
    trace: Option<Arc<dyn TraceSink>>,
    /// One memo table across every re-verification of this session
    /// (`None` when disabled): unchanged regions of an edited design
    /// replay their evaluations instead of re-running the kernels.
    eval_cache: Option<Arc<EvalCache>>,
    last: Option<SessionOutcome>,
}

impl std::fmt::Debug for Session {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Session")
            .field("label", &self.label)
            .field("signals", &self.sigs.len())
            .field("prims", &self.prims.len())
            .field("cases", &self.cases.len())
            .finish_non_exhaustive()
    }
}

impl Session {
    /// [`SessionBuilder::open`] with default options.
    ///
    /// # Errors
    ///
    /// As for [`SessionBuilder::open`].
    pub fn open(input: DesignInput, label: impl Into<String>) -> Result<Session, SessionError> {
        SessionBuilder::new().open(input, label)
    }

    /// The current (edited-to-date) netlist.
    #[must_use]
    pub fn netlist(&self) -> &Netlist {
        self.settled.netlist()
    }

    /// The current case set.
    #[must_use]
    pub fn cases(&self) -> &[Case] {
        &self.cases
    }

    /// The session's design label.
    #[must_use]
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Overrides the worker budget for every subsequent verification
    /// (`None` lets the engine choose). `scald-serve` uses this to split
    /// one daemon-wide `--jobs` budget across concurrent clients;
    /// results are byte-identical for any value.
    pub fn set_jobs(&mut self, jobs: Option<usize>) {
        self.jobs = jobs.map(|j| j.max(1));
    }

    /// The shared evaluation memo table, when caching is enabled.
    #[must_use]
    pub fn eval_cache(&self) -> Option<&Arc<EvalCache>> {
        self.eval_cache.as_ref()
    }

    /// Cumulative hit/miss/entry counters of the session's memo table
    /// (`None` when caching is disabled). For a shared table
    /// ([`SessionBuilder::shared_eval_cache`]) the counters span every
    /// session on it.
    #[must_use]
    pub fn cache_stats(&self) -> Option<scald_verifier::EvalCacheStats> {
        self.eval_cache.as_ref().map(|c| c.stats())
    }

    /// Content hash of the session's *current* design: netlist
    /// configuration, every signal and primitive content hash, and the
    /// case set. Two sessions with equal hashes verify identically, so
    /// this is the `scald-serve` pool key — see [`design_hash`].
    #[must_use]
    pub fn design_hash(&self) -> u64 {
        design_hash(self.settled.netlist(), &self.cases)
    }

    /// Re-verifies the current design as-is (no edit). With a prior
    /// fixed point everything is clean, so the pass warm-starts with an
    /// empty frontier and replays cheaply; the refreshed
    /// [`SessionOutcome`] is returned (and retained, see
    /// [`outcome`](Self::outcome)).
    ///
    /// # Errors
    ///
    /// As for [`Session::apply`].
    pub fn reverify(&mut self) -> Result<SessionOutcome, SessionError> {
        self.apply(Delta::Cases(self.cases.clone()))
    }

    /// The report and effort statistics of the most recent pass.
    ///
    /// # Panics
    ///
    /// Never panics: every constructed session has verified at least
    /// once.
    #[must_use]
    pub fn outcome(&self) -> &SessionOutcome {
        self.last.as_ref().expect("session verified on open")
    }

    /// The report of the most recent pass.
    #[must_use]
    pub fn report(&self) -> &Report {
        &self.outcome().report
    }

    /// Applies an edit and re-verifies, warm-starting from the prior
    /// fixed point. On success the session advances to the edited
    /// design; on error it is left unchanged (the prior state stays
    /// valid, so a failed edit can simply be corrected and re-applied).
    ///
    /// # Errors
    ///
    /// Returns a [`SessionError`] if the delta fails to compile/apply or
    /// verification fails.
    pub fn apply(&mut self, delta: Delta) -> Result<SessionOutcome, SessionError> {
        let (netlist, cases) = match delta {
            Delta::Source(src) => {
                let (netlist, cases) = compile(&src)?;
                (netlist, Some(cases))
            }
            Delta::Verilog(src) => {
                let (netlist, cases) = compile_rtl(&src)?;
                (netlist, Some(cases))
            }
            Delta::Netlist(d) => (d.apply(self.settled.netlist())?, None),
            Delta::Cases(cases) => (self.settled.netlist().clone(), Some(cases)),
        };
        let outcome = self.verify(netlist, cases)?;
        self.last = Some(outcome.clone());
        Ok(outcome)
    }

    /// One verification pass over `netlist` (and, if given, a new case
    /// set), warm-started when a prior fixed point with a matching
    /// configuration exists. Commits the new snapshot/hashes/cases on
    /// success.
    fn verify(
        &mut self,
        netlist: Netlist,
        cases: Option<Vec<Case>>,
    ) -> Result<SessionOutcome, SessionError> {
        let new_sigs = index_signals(&netlist);
        let new_prims = index_prims(&netlist);
        let total_prims = netlist.prims().len();

        // A configuration change (period, clock units, skews, default
        // wire delay) invalidates every settled waveform: run cold. The
        // very first pass has empty hash maps, so it is naturally cold.
        let warm = !self.sigs.is_empty() && netlist.config() == self.settled.netlist().config();

        // The indexes are BTreeMaps, so these pair lists come out in
        // name order — never in per-process `RandomState` order, which
        // would leak into anything downstream that walks them.
        let mut sig_pairs: Vec<(SignalId, SignalId)> = Vec::new();
        let mut prim_pairs: Vec<(PrimId, PrimId)> = Vec::new();
        let mut dirty_sigs: Vec<SignalId> = Vec::new();
        let mut dirty_prims: Vec<PrimId> = Vec::new();
        for (name, &(nid, nh)) in &new_sigs {
            match self.sigs.get(name) {
                Some(&(oid, oh)) if warm && oh == nh => sig_pairs.push((nid, oid)),
                _ => dirty_sigs.push(nid),
            }
        }
        for (name, &(nid, nh)) in &new_prims {
            match self.prims.get(name) {
                Some(&(oid, oh)) if warm && oh == nh => prim_pairs.push((nid, oid)),
                _ => dirty_prims.push(nid),
            }
        }
        dirty_sigs.sort_unstable_by_key(|s| s.index());
        dirty_prims.sort_unstable_by_key(|p| p.index());

        let mut builder = VerifierBuilder::new(netlist.clone());
        if let Some(jobs) = self.jobs {
            builder = builder.jobs(jobs);
        }
        if let Some(trace) = &self.trace {
            builder = builder.trace(Arc::clone(trace));
        }
        match &self.eval_cache {
            Some(cache) => builder = builder.shared_eval_cache(Arc::clone(cache)),
            None => builder = builder.eval_cache(false),
        }
        let mut verifier = builder.build();

        let seeded_prims = if warm {
            // Seed frontier: edited primitives, plus the fan-out and the
            // drivers of every dirtied signal (its value must be
            // re-derived even when its driver itself is clean).
            let mut seeds: BTreeSet<PrimId> = dirty_prims.iter().copied().collect();
            for &sid in &dirty_sigs {
                seeds.extend(netlist.fanout(sid).iter().copied());
                seeds.extend(netlist.drivers(sid).iter().copied());
            }
            let seeds: Vec<PrimId> = seeds.into_iter().collect();
            verifier.warm_start(&self.settled, &sig_pairs, &prim_pairs, &seeds);
            seeds.len()
        } else {
            total_prims
        };
        let cone_prims = if warm {
            netlist.affected_cone(&dirty_sigs, &dirty_prims).len()
        } else {
            total_prims
        };

        let started = Instant::now();
        let cases = cases.unwrap_or_else(|| self.cases.clone());
        // Checkpoint at the base fixed point, *before* the last case's
        // overlay/hazards are installed — the next warm start must not
        // inherit a case's state as its base.
        let outcome = verifier.run(
            &RunOptions::new()
                .cases(CaseSet::list(cases.iter().cloned()))
                .checkpoint(CheckpointPolicy::SettledBase),
        )?;
        let snapshot = *outcome.checkpoint.expect("checkpoint was requested");
        let (prefix, memo) = (outcome.prefix, outcome.memo);
        let results = outcome.cases;
        let wall = started.elapsed();

        let mut report = verifier.report(self.label.clone(), &results);
        report.engine.verify_wall = Some(wall);
        if let Some(jobs) = self.jobs {
            report.engine.jobs = jobs;
        }
        let stats = IncrStats {
            warm,
            dirty_prims: if warm { dirty_prims.len() } else { total_prims },
            seeded_prims,
            cone_prims,
            total_prims,
            events: verifier.total_events(),
            evaluations: verifier.total_evaluations(),
            prefix,
            memo,
            wall,
        };

        self.settled = snapshot;
        self.sigs = new_sigs;
        self.prims = new_prims;
        self.cases = cases;
        Ok(SessionOutcome { report, stats })
    }
}

/// Compiles HDL source into the `(netlist, cases)` pair that
/// [`DesignInput::Source`] opens — exposed so callers that need the
/// netlist *before* opening (e.g. `scald-serve`, which keys its session
/// pool on [`design_hash`]) compile exactly once, exactly the way
/// [`SessionBuilder::open`] would.
///
/// # Errors
///
/// [`SessionError::Compile`] when the source fails to compile.
pub fn compile_source(src: &str) -> Result<(Netlist, Vec<Case>), SessionError> {
    compile(src)
}

/// Compiles Verilog source into the `(netlist, cases)` pair that
/// [`DesignInput::Verilog`] opens — the `scald-rtl` twin of
/// [`compile_source`], for callers that need the netlist before opening
/// a session.
///
/// # Errors
///
/// [`SessionError::Rtl`] when the source fails to compile.
pub fn compile_verilog(src: &str) -> Result<(Netlist, Vec<Case>), SessionError> {
    compile_rtl(src)
}

/// Compiles Verilog source into a netlist plus its case set (one empty
/// base case when the design declares none), mirroring [`compile`].
fn compile_rtl(src: &str) -> Result<(Netlist, Vec<Case>), SessionError> {
    let expansion = scald_rtl::compile(src)?;
    let cases: Vec<Case> = if expansion.cases.is_empty() {
        vec![Case::new()]
    } else {
        expansion
            .cases
            .iter()
            .map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (s, v)| c.assign(s.clone(), *v))
            })
            .collect()
    };
    Ok((expansion.netlist, cases))
}

/// Compiles HDL source into a netlist plus its case set (one empty base
/// case when the design declares none), mirroring `scald-tv`.
fn compile(src: &str) -> Result<(Netlist, Vec<Case>), SessionError> {
    let expansion = scald_hdl::compile(src)?;
    let cases: Vec<Case> = if expansion.cases.is_empty() {
        vec![Case::new()]
    } else {
        expansion
            .cases
            .iter()
            .map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (s, v)| c.assign(s.clone(), *v))
            })
            .collect()
    };
    Ok((expansion.netlist, cases))
}

/// Content hash of a whole design: the netlist configuration (period,
/// clock units, skews, default wire delay), every signal and primitive
/// content hash in name order, and the case set (labels + assignments).
///
/// Everything a verification result depends on feeds the hash, so equal
/// hashes mean byte-identical (effort-stripped) reports. `scald-serve`
/// keys its session pool on it: clients opening equal designs share one
/// [`EvalCache`] and can reuse each other's settled sessions.
#[must_use]
pub fn design_hash(netlist: &Netlist, cases: &[Case]) -> u64 {
    let mut h = DefaultHasher::new();
    format!("{:?}", netlist.config()).hash(&mut h);
    // index_* are BTreeMaps: name order, never per-process hash order.
    // Duplicate-named primitives are excluded from the index, so fold in
    // the raw counts to distinguish designs that differ only there.
    netlist.signals().len().hash(&mut h);
    netlist.prims().len().hash(&mut h);
    for (name, &(_, sig_hash)) in &index_signals(netlist) {
        name.hash(&mut h);
        sig_hash.hash(&mut h);
    }
    for (name, &(_, prim_hash)) in &index_prims(netlist) {
        name.hash(&mut h);
        prim_hash.hash(&mut h);
    }
    cases.len().hash(&mut h);
    for case in cases {
        case.label().hash(&mut h);
        for (signal, value) in case.assignments() {
            signal.hash(&mut h);
            value.hash(&mut h);
        }
    }
    h.finish()
}

/// Content hash of a signal: everything that feeds the verifier's init
/// and wiring decisions for it — width, assertion, wire-delay override,
/// wired-OR flag, and the (sorted) names of its drivers. The settled
/// *value* is deliberately excluded: values are what warm starting
/// carries over.
fn hash_signal(netlist: &Netlist, sid: SignalId) -> u64 {
    let sig = netlist.signal(sid);
    let mut h = DefaultHasher::new();
    sig.width.hash(&mut h);
    sig.full_name().hash(&mut h);
    format!("{:?}", sig.wire_delay).hash(&mut h);
    sig.wired_or.hash(&mut h);
    let mut drivers: Vec<&str> = netlist
        .drivers(sid)
        .iter()
        .map(|p| netlist.prim(*p).name.as_str())
        .collect();
    drivers.sort_unstable();
    drivers.hash(&mut h);
    h.finish()
}

/// Content hash of a primitive: kind (with parameters), delays, and each
/// connection — source signal full name, the source's wire-delay
/// override, inversion, directive, per-connection wire delay — plus the
/// output signal name. Any attribute change that could alter the
/// primitive's evaluation changes the hash.
fn hash_prim(netlist: &Netlist, pid: PrimId) -> u64 {
    let p = netlist.prim(pid);
    let mut h = DefaultHasher::new();
    format!("{:?}", p.kind).hash(&mut h);
    format!("{:?}", p.delay).hash(&mut h);
    format!("{:?}", p.edge_delays).hash(&mut h);
    for conn in &p.inputs {
        let src = netlist.signal(conn.signal);
        src.full_name().hash(&mut h);
        format!("{:?}", src.wire_delay).hash(&mut h);
        conn.invert.hash(&mut h);
        conn.directive.hash(&mut h);
        format!("{:?}", conn.wire_delay).hash(&mut h);
    }
    match p.output {
        Some(out) => netlist.signal(out).name.hash(&mut h),
        None => 0_u8.hash(&mut h),
    }
    h.finish()
}

fn index_signals(netlist: &Netlist) -> BTreeMap<String, (SignalId, u64)> {
    netlist
        .iter_signals()
        .map(|(sid, sig)| (sig.name.clone(), (sid, hash_signal(netlist, sid))))
        .collect()
}

/// Primitive names are not guaranteed unique (the expander makes them
/// so, hand-built netlists might not); duplicates are dropped from the
/// index so they can never be matched as clean.
fn index_prims(netlist: &Netlist) -> BTreeMap<String, (PrimId, u64)> {
    let mut map: BTreeMap<String, (PrimId, u64)> = BTreeMap::new();
    let mut dup: Vec<String> = Vec::new();
    for (pid, p) in netlist.iter_prims() {
        if map
            .insert(p.name.clone(), (pid, hash_prim(netlist, pid)))
            .is_some()
        {
            dup.push(p.name.clone());
        }
    }
    for name in dup {
        map.remove(&name);
    }
    map
}
