//! Report diffing for the `--baseline` workflow: which violations did an
//! edit introduce, and which did it fix?

use scald_verifier::{Report, Violation};
use std::collections::HashMap;

/// The violation-level difference between two reports.
#[derive(Debug, Clone, Default)]
pub struct ReportDiff {
    /// Violations present in the new report but not the old one.
    pub introduced: Vec<Violation>,
    /// Violations present in the old report but not the new one.
    pub fixed: Vec<Violation>,
}

impl ReportDiff {
    /// `true` when the edit neither introduced nor fixed anything.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.introduced.is_empty() && self.fixed.is_empty()
    }
}

/// A violation's identity for diffing: the case it occurred in, its
/// kind, the checked signal and the constraint. Timing details (how much
/// the constraint was missed by, observed values, provenance) are
/// deliberately excluded — a violation that persists across an edit with
/// a shifted margin is neither introduced nor fixed.
fn key(case: &str, v: &Violation) -> String {
    format!(
        "{case}\u{1f}{:?}\u{1f}{}\u{1f}{}",
        v.kind, v.source, v.constraint
    )
}

/// Diffs two reports case-by-case (cases are matched by name, violations
/// by kind/source/constraint, with multiset semantics). Typically both
/// reports come from the same [`Session`](crate::Session) — the old one
/// saved before [`apply`](crate::Session::apply) — or from two
/// [`Session`](crate::Session)s opened on the before/after sources, as `scald-tv
/// --baseline` does.
#[must_use]
pub fn report_diff(old: &Report, new: &Report) -> ReportDiff {
    let mut old_counts: HashMap<String, usize> = HashMap::new();
    for case in &old.cases {
        for v in &case.violations {
            *old_counts.entry(key(&case.name, v)).or_insert(0) += 1;
        }
    }
    let mut new_counts: HashMap<String, usize> = HashMap::new();
    let mut introduced = Vec::new();
    for case in &new.cases {
        for v in &case.violations {
            let k = key(&case.name, v);
            let seen = new_counts.entry(k.clone()).or_insert(0);
            *seen += 1;
            if *seen > old_counts.get(&k).copied().unwrap_or(0) {
                introduced.push(v.clone());
            }
        }
    }
    let mut fixed = Vec::new();
    let mut fixed_budget: HashMap<String, usize> = HashMap::new();
    for case in &old.cases {
        for v in &case.violations {
            let k = key(&case.name, v);
            let used = fixed_budget.entry(k.clone()).or_insert(0);
            let old_n = old_counts.get(&k).copied().unwrap_or(0);
            let new_n = new_counts.get(&k).copied().unwrap_or(0);
            if old_n - new_n > *used {
                *used += 1;
                fixed.push(v.clone());
            }
        }
    }
    ReportDiff { introduced, fixed }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_verifier::{CaseResult, EngineStats, Report, StorageReport, ViolationKind};
    use scald_wave::Time;

    fn violation(kind: ViolationKind, source: &str) -> Violation {
        Violation {
            kind,
            source: source.to_owned(),
            constraint: "SETUP TIME = 2.5".to_owned(),
            missed_by: None,
            at: None,
            observed: Vec::new(),
            provenance: None,
        }
    }

    fn report(cases: Vec<(&str, Vec<Violation>)>) -> Report {
        Report {
            design: "T".to_owned(),
            cases: cases
                .into_iter()
                .map(|(name, violations)| CaseResult {
                    name: name.to_owned(),
                    violations,
                    events: 0,
                    evaluations: 0,
                    value_records: 0,
                })
                .collect(),
            engine: EngineStats {
                signals: 0,
                prims: 0,
                cases: 1,
                jobs: 1,
                case_strategy: scald_verifier::CaseStrategy::default(),
                events: 0,
                evaluations: 0,
                verify_wall: None,
                eval_cache: None,
            },
            slack: Vec::new(),
            storage: StorageReport {
                circuit_description: 0,
                signal_values: 0,
                signal_names: 0,
                string_space: 0,
                call_list: 0,
                miscellaneous: 0,
                value_records: 0,
                signal_count: 0,
            },
            assumed_stable: Vec::new(),
            clock_driver_notes: Vec::new(),
            waves: Vec::new(),
            period: Time::from_ns(50.0),
            probabilistic: None,
        }
    }

    #[test]
    fn identical_reports_diff_empty() {
        let r = report(vec![(
            "base",
            vec![violation(ViolationKind::Setup, "S1/CHK")],
        )]);
        let d = report_diff(&r, &r.clone());
        assert!(d.is_empty());
    }

    #[test]
    fn introduced_and_fixed_are_detected() {
        let old = report(vec![(
            "base",
            vec![violation(ViolationKind::Setup, "S1/CHK")],
        )]);
        let new = report(vec![(
            "base",
            vec![violation(ViolationKind::Hold, "S2/CHK")],
        )]);
        let d = report_diff(&old, &new);
        assert_eq!(d.introduced.len(), 1);
        assert_eq!(d.introduced[0].source, "S2/CHK");
        assert_eq!(d.fixed.len(), 1);
        assert_eq!(d.fixed[0].source, "S1/CHK");
    }

    #[test]
    fn same_violation_in_a_different_case_counts() {
        let old = report(vec![
            ("A", vec![violation(ViolationKind::Setup, "S1/CHK")]),
            ("B", Vec::new()),
        ]);
        let new = report(vec![
            ("A", Vec::new()),
            ("B", vec![violation(ViolationKind::Setup, "S1/CHK")]),
        ]);
        let d = report_diff(&old, &new);
        assert_eq!(d.introduced.len(), 1, "moved to case B = introduced there");
        assert_eq!(d.fixed.len(), 1, "gone from case A = fixed there");
    }

    #[test]
    fn multiset_semantics_count_duplicates() {
        let old = report(vec![(
            "base",
            vec![
                violation(ViolationKind::Setup, "S1/CHK"),
                violation(ViolationKind::Setup, "S1/CHK"),
            ],
        )]);
        let new = report(vec![(
            "base",
            vec![violation(ViolationKind::Setup, "S1/CHK")],
        )]);
        let d = report_diff(&old, &new);
        assert!(d.introduced.is_empty());
        assert_eq!(d.fixed.len(), 1, "one of two duplicates went away");
    }

    #[test]
    fn margin_shift_is_neither_introduced_nor_fixed() {
        let old = report(vec![(
            "base",
            vec![Violation {
                missed_by: Some(Time::from_ns(0.5)),
                ..violation(ViolationKind::Setup, "S1/CHK")
            }],
        )]);
        let new = report(vec![(
            "base",
            vec![Violation {
                missed_by: Some(Time::from_ns(1.5)),
                ..violation(ViolationKind::Setup, "S1/CHK")
            }],
        )]);
        assert!(report_diff(&old, &new).is_empty());
    }
}
