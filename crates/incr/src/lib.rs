//! Incremental re-verification sessions for the SCALD Timing Verifier.
//!
//! A cold verification settles the whole design to its fixed point
//! (§2.9) and then analyses every case (§2.7). In an edit–verify loop
//! that is almost all wasted work: a one-primitive ECO touches a tiny
//! cone of the design, and every signal outside that cone settles to
//! exactly the value it had before. [`Session`] exploits this the same
//! way the engine's own case analysis does — seed the worklist with only
//! what changed — but across *design edits* rather than case overrides:
//!
//! 1. The session owns a [`Verifier`] snapshotted at its settled base
//!    fixed point, plus a content hash per signal and per primitive.
//! 2. [`Session::apply`] takes a [`Delta`] (HDL source swap, structural
//!    [`NetlistDelta`], or a new case set), rebuilds the netlist, and
//!    diffs the hashes to find the *structurally dirty* signals and
//!    primitives.
//! 3. A fresh verifier is [warm-started](Verifier::warm_start) from the
//!    prior fixed point: every clean signal's settled state is copied
//!    over, and only the dirty frontier (edited primitives, fan-out and
//!    drivers of dirtied signals) is enqueued. Settling then touches
//!    only the affected cone.
//!
//! The result is **byte-identical** to a cold run of the edited design
//! once effort counters are stripped ([`Report::strip_effort`]) —
//! property-tested against cold runs over seeded edit scripts on
//! generated S-1-like designs. Two caveats, both documented on
//! [`Verifier::warm_start`]: hazard sets must be trajectory-independent
//! (true for connection-attribute directives such as `&H`; designs
//! relying on *propagated* evaluation-directive strings through the
//! edited region should re-verify cold), and the evaluation graph must
//! reach a unique fixed point from the seeded frontier (true for the
//! acyclic pipelines the thesis targets; combinational loops need a
//! cold run).
//!
//! `scald-tv` exposes sessions as `--watch FILE` (re-verify on every
//! file change, printing per-edit effort) and `--baseline OLD NEW`
//! (report only the violations an edit introduced or fixed, via
//! [`report_diff`]).

#![warn(missing_docs)]

mod diff;
mod session;

pub use diff::{report_diff, ReportDiff};
pub use session::{
    compile_source, compile_verilog, design_hash, Delta, DesignInput, IncrStats, Session,
    SessionBuilder, SessionError, SessionOutcome,
};

// Re-exported so callers can build deltas and read reports without
// spelling every crate dependency.
pub use scald_netlist::{DeltaConn, DeltaOp, NetlistDelta, PrimSpec};
pub use scald_verifier::{Case, Report, Verifier};
