//! A small, dependency-free JSON toolkit.
//!
//! This container has no network and no vendored registry, so the report
//! layer cannot lean on `serde`. This module supplies what the workspace
//! actually needs: an ordered JSON value type ([`Json`]), a compact and a
//! pretty writer, a string escaper, and a strict recursive-descent
//! [`parse`] used by the golden tests that validate `scald-tv --format
//! json` output.
//!
//! Objects preserve insertion order (they are `Vec<(String, Json)>`), so
//! a document renders in the order it was built — stable for golden
//! files and diffs.

use std::fmt;

/// A JSON value with order-preserving objects.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as `f64`; written shortest-form).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object, in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// A string value (convenience over `Json::Str(s.into())`).
    pub fn str(s: impl Into<String>) -> Json {
        Json::Str(s.into())
    }

    /// The value at `key`, if this is an object containing it.
    #[must_use]
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string contents, if this is a string.
    #[must_use]
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    #[must_use]
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The numeric value as `u64`, if this is a non-negative integer.
    #[must_use]
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Num(n) if *n >= 0.0 && n.fract() == 0.0 => Some(*n as u64),
            _ => None,
        }
    }

    /// The boolean, if this is a boolean.
    #[must_use]
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The elements, if this is an array.
    #[must_use]
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// The fields, if this is an object.
    #[must_use]
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Obj(fields) => Some(fields),
            _ => None,
        }
    }

    /// Pretty-prints with two-space indentation and a trailing newline —
    /// the human-facing form `scald-tv --format json` emits.
    #[must_use]
    pub fn to_string_pretty(&self) -> String {
        let mut out = String::new();
        self.write_pretty(&mut out, 0);
        out.push('\n');
        out
    }

    fn write_pretty(&self, out: &mut String, indent: usize) {
        match self {
            Json::Arr(items) if !items.is_empty() => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    item.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            Json::Obj(fields) if !fields.is_empty() => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    out.push_str(if i == 0 { "\n" } else { ",\n" });
                    out.push_str(&"  ".repeat(indent + 1));
                    out.push_str(&escape(k));
                    out.push_str(": ");
                    v.write_pretty(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
            other => {
                use fmt::Write;
                write!(out, "{other}").expect("String write cannot fail");
            }
        }
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        #[allow(clippy::cast_precision_loss)]
        Json::Num(n as f64)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl fmt::Display for Json {
    /// Compact (single-line) rendering.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Json::Null => f.write_str("null"),
            Json::Bool(b) => write!(f, "{b}"),
            Json::Num(n) => {
                if n.is_finite() {
                    write!(f, "{n}")
                } else {
                    // JSON has no Inf/NaN; null is the conventional stand-in.
                    f.write_str("null")
                }
            }
            Json::Str(s) => f.write_str(&escape(s)),
            Json::Arr(items) => {
                f.write_str("[")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{item}")?;
                }
                f.write_str("]")
            }
            Json::Obj(fields) => {
                f.write_str("{")?;
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        f.write_str(",")?;
                    }
                    write!(f, "{}:{v}", escape(k))?;
                }
                f.write_str("}")
            }
        }
    }
}

/// Escapes `s` as a quoted JSON string (including the surrounding `"`).
#[must_use]
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Parses a complete JSON document. Strict: trailing garbage, trailing
/// commas, unquoted keys and bare control characters are errors.
///
/// # Errors
///
/// Returns a message with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, String> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(text, bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if *pos < bytes.len() && bytes[*pos] == b {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected {:?} at byte {}", b as char, *pos))
    }
}

fn parse_value(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_owned()),
        Some(b'n') => parse_lit(bytes, pos, b"null", Json::Null),
        Some(b't') => parse_lit(bytes, pos, b"true", Json::Bool(true)),
        Some(b'f') => parse_lit(bytes, pos, b"false", Json::Bool(false)),
        Some(b'"') => Ok(Json::Str(parse_string(text, bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(text, bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut fields = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(fields));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(text, bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(text, bytes, pos)?;
                fields.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(fields));
                    }
                    _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
                }
            }
        }
        Some(_) => parse_number(text, bytes, pos),
    }
}

fn parse_lit(bytes: &[u8], pos: &mut usize, lit: &[u8], value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(text: &str, bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    text[start..*pos]
        .parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("invalid number at byte {start}"))
}

fn parse_string(text: &str, bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        let Some(&b) = bytes.get(*pos) else {
            return Err("unterminated string".to_owned());
        };
        match b {
            b'"' => {
                *pos += 1;
                return Ok(out);
            }
            b'\\' => {
                *pos += 1;
                let Some(&esc) = bytes.get(*pos) else {
                    return Err("unterminated escape".to_owned());
                };
                *pos += 1;
                match esc {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'u' => {
                        let hex = text
                            .get(*pos..*pos + 4)
                            .ok_or_else(|| "truncated \\u escape".to_owned())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("bad \\u escape at byte {}", *pos))?;
                        *pos += 4;
                        // Surrogate pairs are rejected rather than joined:
                        // nothing in this workspace emits them.
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| format!("invalid codepoint \\u{hex}"))?,
                        );
                    }
                    _ => return Err(format!("bad escape at byte {}", *pos - 1)),
                }
            }
            0x00..=0x1f => return Err(format!("control character in string at byte {}", *pos)),
            _ => {
                // Advance one full UTF-8 scalar.
                let s = &text[*pos..];
                let c = s.chars().next().ok_or("invalid utf-8")?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_and_pretty_round_trip() {
        let doc = Json::Obj(vec![
            ("schema".into(), Json::str("scald-tv-report")),
            ("version".into(), Json::from(1u64)),
            ("clean".into(), Json::from(false)),
            (
                "cases".into(),
                Json::Arr(vec![Json::Obj(vec![
                    ("name".into(), Json::str("case 1")),
                    ("missed_by_ns".into(), Json::from(3.5)),
                    ("at".into(), Json::Null),
                ])]),
            ),
        ]);
        for text in [doc.to_string(), doc.to_string_pretty()] {
            let parsed = parse(&text).expect("round trip");
            assert_eq!(parsed, doc, "text: {text}");
        }
    }

    #[test]
    fn escapes_and_unescapes() {
        let s = "a\"b\\c\nd\te\u{1}f";
        let quoted = escape(s);
        let back = parse(&quoted).expect("valid");
        assert_eq!(back.as_str(), Some(s));
    }

    #[test]
    fn object_lookup_preserves_order() {
        let doc = parse(r#"{"b": 1, "a": 2}"#).expect("valid");
        let fields = doc.as_object().expect("object");
        assert_eq!(fields[0].0, "b");
        assert_eq!(doc.get("a").and_then(Json::as_u64), Some(2));
        assert_eq!(doc.get("missing"), None);
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "nul",
            "\"unterminated",
            "1 2",
            "{\"a\":1,}",
        ] {
            assert!(parse(bad).is_err(), "accepted: {bad:?}");
        }
    }

    #[test]
    fn numbers_parse_and_print_shortest_form() {
        assert_eq!(parse("3.5").unwrap().as_f64(), Some(3.5));
        assert_eq!(parse("-0.25").unwrap().as_f64(), Some(-0.25));
        assert_eq!(parse("1e3").unwrap().as_f64(), Some(1000.0));
        assert_eq!(Json::from(49.0).to_string(), "49");
        assert_eq!(Json::from(3.5).to_string(), "3.5");
        assert_eq!(parse("12").unwrap().as_u64(), Some(12));
        assert_eq!(parse("3.5").unwrap().as_u64(), None);
    }
}
