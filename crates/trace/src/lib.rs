//! Engine observability for the SCALD Timing Verifier.
//!
//! The thesis' designers ran the verifier nightly and read its listings to
//! find *and explain* violations (§3.3.1, Tables 3-1/3-3) — convergence
//! behaviour, evaluation effort and storage were reported product surface,
//! not debug scaffolding. This crate makes that surface pluggable: the
//! engine emits [`TraceEvent`]s describing its fixed-point iteration
//! (per-primitive evaluations, per-signal settle ordinals, queue-depth
//! samples, per-case wall-clock and effort) into any [`TraceSink`].
//!
//! Tracing is **zero-cost when disabled**: the engine holds an
//! `Option<Arc<dyn TraceSink>>` and constructs an event only inside the
//! `Some` branch, so a bare run pays one predictable branch per
//! evaluation (see the `trace_overhead` bench group).
//!
//! Shipped sinks:
//!
//! * [`CounterSink`] — lock-guarded aggregation: per-primitive evaluation
//!   counts, per-signal last-settle ordinals, queue-depth high-water mark,
//!   per-case wall-clock/effort summaries.
//! * [`TimelineSink`] — the convergence profile: `(case, ordinal, depth)`
//!   queue-depth samples over the run plus the committed
//!   [`WaveSample`]s of the level-synchronized settle loop, renderable
//!   as an ASCII profile.
//! * [`JsonlSink`] — one JSON object per event, streamed to any writer
//!   (`--trace FILE` in `scald-tv`).
//!
//! The [`json`] module is the crate's second export: a dependency-free
//! JSON value type, escaper and recursive-descent parser shared by the
//! JSONL sink, the verifier's `Report::to_json`, and the golden tests
//! that validate CLI output without `serde`.

#![warn(missing_docs)]

pub mod json;
mod sinks;

pub use sinks::{
    CaseSummary, CounterSink, CounterSnapshot, JsonlSink, TimelineSample, TimelineSink, WaveSample,
};

/// One observability event emitted by the verification engine.
///
/// Events borrow names from the engine's netlist; sinks that outlive the
/// call must copy what they keep. `case` is `None` for the base
/// (no-override) settle pass and `Some(i)` for case-analysis case `i`
/// (0-based input order); case events may arrive from worker threads
/// concurrently, so sinks must be thread-safe.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TraceEvent<'a> {
    /// A verification run (`Verifier::run`-level) is starting.
    RunStart {
        /// Signals in the design.
        signals: usize,
        /// Primitives in the design.
        prims: usize,
        /// Cases about to be analysed.
        cases: usize,
        /// Worker-pool size for the case fan-out.
        jobs: usize,
    },
    /// One primitive evaluation inside a settle loop. Emitted on the
    /// settle loop's single commit thread in commit order, so the stream
    /// is identical for every worker count.
    Evaluation {
        /// Case index, or `None` for the base settle.
        case: Option<u32>,
        /// Primitive index (`PrimId::index()`).
        prim: u32,
        /// Primitive instance name.
        name: &'a str,
        /// 1-based ordinal of this evaluation within its settle loop.
        ordinal: u64,
        /// Evaluations still pending after this one: the rest of the
        /// current wave plus everything already queued for the next.
        queue_depth: usize,
    },
    /// One wave of the level-synchronized settle loop finished
    /// committing: the worklist was drained into a deduplicated wave,
    /// every primitive of the wave was evaluated against the frozen
    /// pre-wave state (possibly concurrently), and the results were
    /// committed in primitive-id order.
    Wave {
        /// Case index, or `None` for the base settle.
        case: Option<u32>,
        /// 1-based ordinal of this wave within its settle loop.
        ordinal: u64,
        /// Primitives evaluated in this wave.
        size: usize,
        /// Worklist depth after the commit — the seed of the next wave
        /// (0 means the fixed point was reached).
        queue_depth: usize,
    },
    /// A signal took a new effective value (an *event* in §3.3.2 terms).
    /// The ordinal of the last such event per signal is its settle
    /// iteration: how deep into the fixed-point wave it kept moving.
    SignalSettled {
        /// Case index, or `None` for the base settle.
        case: Option<u32>,
        /// Signal index (`SignalId::index()`).
        signal: u32,
        /// Signal name.
        name: &'a str,
        /// Evaluation ordinal at which the change happened.
        ordinal: u64,
    },
    /// A case worker picked up a case.
    CaseStart {
        /// Case index (0-based input order).
        case: u32,
        /// The case's human-readable label.
        label: &'a str,
    },
    /// A case worker finished a case.
    CaseEnd {
        /// Case index (0-based input order).
        case: u32,
        /// Wall-clock nanoseconds the case's settle + checks took.
        wall_nanos: u64,
        /// Signal-change events within the case.
        events: u64,
        /// Primitive evaluations within the case.
        evaluations: u64,
        /// Violations the case's check pass reported.
        violations: usize,
    },
    /// An internal node of the case tree finished settling its shared
    /// assignment prefix on top of its parent's state. The contained
    /// [`Evaluation`](Self::Evaluation)/[`Wave`](Self::Wave)/
    /// [`SignalSettled`](Self::SignalSettled) events were traced with
    /// `case: None` (like the base settle): prefix effort is paid once
    /// for every descendant leaf, so it belongs to no single case. It
    /// is still included in the run totals of
    /// [`RunEnd`](Self::RunEnd).
    PrefixSettled {
        /// 0-based node index in settle order (parents before children).
        node: u32,
        /// Human-readable label of the node's cumulative overrides.
        label: &'a str,
        /// Descendant leaf cases that share this prefix.
        cases: usize,
        /// Signal-change events within the node's settle.
        events: u64,
        /// Primitive evaluations within the node's settle.
        evaluations: u64,
    },
    /// A case-tree node finished settling and the scheduler released its
    /// dependent children (child nodes and leaf cases) to the worker
    /// pool. Under dependency-aware scheduling, release order — and
    /// therefore the arrival order of this event — depends on which
    /// worker finishes which node first, like the interleaving of
    /// per-case events; the *content* per node is deterministic.
    SubtreeReleased {
        /// 0-based node index in the run's case tree.
        node: u32,
        /// Work units (child nodes plus leaves) released.
        children: usize,
    },
    /// Per-case checker/storage memoization counters, emitted just
    /// before [`CaseEnd`](Self::CaseEnd): how much of the per-leaf fixed
    /// cost (checker units, storage measurements) the case evaluated
    /// versus inherited from its prefix node's cached pass. On the
    /// independent path every unit is evaluated and the hit counters are
    /// zero. Deterministic per case — the counters depend on the case
    /// set and the netlist, never on worker count.
    LeafChecks {
        /// Case index (0-based input order).
        case: u32,
        /// Checker units (checker prims, hazard pairs, assertions)
        /// evaluated for this case.
        check_evals: u64,
        /// Checker units inherited clean-and-empty from the prefix.
        check_hits: u64,
        /// Signals measured for the case's storage accounting.
        storage_evals: u64,
        /// Signals whose storage measurement was inherited.
        storage_hits: u64,
    },
    /// The run finished (all cases merged).
    RunEnd {
        /// Wall-clock nanoseconds for the whole run.
        wall_nanos: u64,
        /// Total signal-change events across base + all cases.
        events: u64,
        /// Total primitive evaluations across base + all cases.
        evaluations: u64,
    },
    /// The verifier was warm-started from a prior session's fixed point
    /// (`scald-incr`): only the structurally dirty cone was seeded into
    /// the worklist; every other signal kept its settled value.
    WarmStart {
        /// Signals whose settled state was carried over unchanged.
        copied_signals: usize,
        /// Primitives seeded into the worklist (the dirty frontier).
        seeded_prims: usize,
        /// Total primitives in the (edited) design, for cone ratios.
        prims: usize,
    },
    /// Evaluation-memo-table counters at the end of a run (emitted just
    /// before [`RunEnd`](Self::RunEnd) when caching is enabled). These
    /// are effort counters, like wall-clock: they vary with cache
    /// configuration and sharing while every verification result stays
    /// byte-identical.
    CacheStats {
        /// Evaluations served from the memo table.
        hits: u64,
        /// Evaluations that ran the kernels (and populated the table).
        misses: u64,
        /// Distinct outcomes stored.
        entries: usize,
    },
}

impl TraceEvent<'_> {
    /// Stable lower-snake token naming the event variant (the `"type"`
    /// field of the JSONL stream).
    #[must_use]
    pub fn kind(&self) -> &'static str {
        match self {
            TraceEvent::RunStart { .. } => "run_start",
            TraceEvent::Evaluation { .. } => "evaluation",
            TraceEvent::Wave { .. } => "wave",
            TraceEvent::SignalSettled { .. } => "signal_settled",
            TraceEvent::CaseStart { .. } => "case_start",
            TraceEvent::CaseEnd { .. } => "case_end",
            TraceEvent::PrefixSettled { .. } => "prefix_settled",
            TraceEvent::SubtreeReleased { .. } => "subtree_released",
            TraceEvent::LeafChecks { .. } => "leaf_checks",
            TraceEvent::RunEnd { .. } => "run_end",
            TraceEvent::WarmStart { .. } => "warm_start",
            TraceEvent::CacheStats { .. } => "cache_stats",
        }
    }

    /// The event as a [`json::Json`] object — what [`JsonlSink`] writes,
    /// one per line.
    #[must_use]
    pub fn to_json(&self) -> json::Json {
        use json::Json;
        let case_field = |c: &Option<u32>| c.map_or(Json::Null, |i| Json::from(u64::from(i)));
        let mut obj: Vec<(String, Json)> = vec![("type".into(), Json::str(self.kind()))];
        match *self {
            TraceEvent::RunStart {
                signals,
                prims,
                cases,
                jobs,
            } => {
                obj.push(("signals".into(), Json::from(signals as u64)));
                obj.push(("prims".into(), Json::from(prims as u64)));
                obj.push(("cases".into(), Json::from(cases as u64)));
                obj.push(("jobs".into(), Json::from(jobs as u64)));
            }
            TraceEvent::Evaluation {
                ref case,
                prim,
                name,
                ordinal,
                queue_depth,
            } => {
                obj.push(("case".into(), case_field(case)));
                obj.push(("prim".into(), Json::from(u64::from(prim))));
                obj.push(("name".into(), Json::str(name)));
                obj.push(("ordinal".into(), Json::from(ordinal)));
                obj.push(("queue_depth".into(), Json::from(queue_depth as u64)));
            }
            TraceEvent::Wave {
                ref case,
                ordinal,
                size,
                queue_depth,
            } => {
                obj.push(("case".into(), case_field(case)));
                obj.push(("ordinal".into(), Json::from(ordinal)));
                obj.push(("size".into(), Json::from(size as u64)));
                obj.push(("queue_depth".into(), Json::from(queue_depth as u64)));
            }
            TraceEvent::SignalSettled {
                ref case,
                signal,
                name,
                ordinal,
            } => {
                obj.push(("case".into(), case_field(case)));
                obj.push(("signal".into(), Json::from(u64::from(signal))));
                obj.push(("name".into(), Json::str(name)));
                obj.push(("ordinal".into(), Json::from(ordinal)));
            }
            TraceEvent::CaseStart { case, label } => {
                obj.push(("case".into(), Json::from(u64::from(case))));
                obj.push(("label".into(), Json::str(label)));
            }
            TraceEvent::CaseEnd {
                case,
                wall_nanos,
                events,
                evaluations,
                violations,
            } => {
                obj.push(("case".into(), Json::from(u64::from(case))));
                obj.push(("wall_nanos".into(), Json::from(wall_nanos)));
                obj.push(("events".into(), Json::from(events)));
                obj.push(("evaluations".into(), Json::from(evaluations)));
                obj.push(("violations".into(), Json::from(violations as u64)));
            }
            TraceEvent::PrefixSettled {
                node,
                label,
                cases,
                events,
                evaluations,
            } => {
                obj.push(("node".into(), Json::from(u64::from(node))));
                obj.push(("label".into(), Json::str(label)));
                obj.push(("cases".into(), Json::from(cases as u64)));
                obj.push(("events".into(), Json::from(events)));
                obj.push(("evaluations".into(), Json::from(evaluations)));
            }
            TraceEvent::SubtreeReleased { node, children } => {
                obj.push(("node".into(), Json::from(u64::from(node))));
                obj.push(("children".into(), Json::from(children as u64)));
            }
            TraceEvent::LeafChecks {
                case,
                check_evals,
                check_hits,
                storage_evals,
                storage_hits,
            } => {
                obj.push(("case".into(), Json::from(u64::from(case))));
                obj.push(("check_evals".into(), Json::from(check_evals)));
                obj.push(("check_hits".into(), Json::from(check_hits)));
                obj.push(("storage_evals".into(), Json::from(storage_evals)));
                obj.push(("storage_hits".into(), Json::from(storage_hits)));
            }
            TraceEvent::RunEnd {
                wall_nanos,
                events,
                evaluations,
            } => {
                obj.push(("wall_nanos".into(), Json::from(wall_nanos)));
                obj.push(("events".into(), Json::from(events)));
                obj.push(("evaluations".into(), Json::from(evaluations)));
            }
            TraceEvent::WarmStart {
                copied_signals,
                seeded_prims,
                prims,
            } => {
                obj.push(("copied_signals".into(), Json::from(copied_signals as u64)));
                obj.push(("seeded_prims".into(), Json::from(seeded_prims as u64)));
                obj.push(("prims".into(), Json::from(prims as u64)));
            }
            TraceEvent::CacheStats {
                hits,
                misses,
                entries,
            } => {
                obj.push(("hits".into(), Json::from(hits)));
                obj.push(("misses".into(), Json::from(misses)));
                obj.push(("entries".into(), Json::from(entries as u64)));
            }
        }
        Json::Obj(obj)
    }
}

/// A consumer of engine observability events.
///
/// Sinks must be `Send + Sync`: case-analysis workers emit events
/// concurrently from a `std::thread::scope` pool. A sink that cannot
/// keep up slows the engine down (events are delivered synchronously),
/// so heavy sinks should aggregate cheaply and defer formatting.
pub trait TraceSink: Send + Sync {
    /// Receives one event. Called from the engine's hot loop when
    /// tracing is enabled; implementations should be quick.
    fn record(&self, event: &TraceEvent<'_>);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn event_kinds_are_stable_tokens() {
        let e = TraceEvent::RunEnd {
            wall_nanos: 1,
            events: 2,
            evaluations: 3,
        };
        assert_eq!(e.kind(), "run_end");
        let text = e.to_json().to_string();
        assert!(text.contains("\"type\":\"run_end\""), "{text}");
        assert!(text.contains("\"evaluations\":3"), "{text}");
    }

    #[test]
    fn evaluation_event_round_trips_through_json() {
        let e = TraceEvent::Evaluation {
            case: Some(4),
            prim: 7,
            name: "TOP/REG#3",
            ordinal: 19,
            queue_depth: 2,
        };
        let parsed = json::parse(&e.to_json().to_string()).expect("valid");
        assert_eq!(parsed.get("case").and_then(json::Json::as_u64), Some(4));
        assert_eq!(
            parsed.get("name").and_then(json::Json::as_str),
            Some("TOP/REG#3")
        );
        assert_eq!(
            parsed.get("queue_depth").and_then(json::Json::as_u64),
            Some(2)
        );
    }
}
