//! Shipped [`TraceSink`] implementations: counter aggregation, the
//! queue-depth/convergence-wave timeline, and the JSONL event stream.

use std::collections::HashMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::sync::Mutex;

use crate::{TraceEvent, TraceSink};

/// Per-case wall-clock and effort, as reported by [`CounterSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CaseSummary {
    /// Case index (0-based input order).
    pub case: u32,
    /// The case's label.
    pub label: String,
    /// Wall-clock nanoseconds the case took on its worker.
    pub wall_nanos: u64,
    /// Signal-change events within the case.
    pub events: u64,
    /// Primitive evaluations within the case.
    pub evaluations: u64,
    /// Violations the case reported.
    pub violations: usize,
}

#[derive(Debug, Default)]
struct CounterInner {
    eval_counts: HashMap<u32, (String, u64)>,
    settle_ordinals: HashMap<u32, (String, u64)>,
    events: u64,
    evaluations: u64,
    max_queue_depth: usize,
    waves: u64,
    max_wave: usize,
    cases: Vec<CaseSummary>,
    run_wall_nanos: u64,
    leaf_check_evals: u64,
    leaf_check_hits: u64,
    leaf_storage_evals: u64,
    leaf_storage_hits: u64,
    subtree_releases: u64,
    released_units: u64,
}

/// Aggregating sink: per-primitive evaluation counts, per-signal settle
/// ordinals, the queue-depth high-water mark, and per-case summaries.
///
/// All aggregation happens under one mutex per event; cheap enough for
/// interactive use, and the engine pays nothing when no sink is set.
#[derive(Debug, Default)]
pub struct CounterSink {
    inner: Mutex<CounterInner>,
}

/// A point-in-time copy of everything a [`CounterSink`] accumulated.
#[derive(Debug, Clone, Default)]
pub struct CounterSnapshot {
    /// `(primitive name, evaluation count)`, most-evaluated first.
    pub hottest_prims: Vec<(String, u64)>,
    /// `(signal name, last-change evaluation ordinal)`, latest-settling
    /// first — the signals that kept moving deepest into the fixed-point
    /// wave.
    pub last_settled: Vec<(String, u64)>,
    /// Total signal-change events observed.
    pub events: u64,
    /// Total primitive evaluations observed.
    pub evaluations: u64,
    /// Deepest worklist observed across all settle loops.
    pub max_queue_depth: usize,
    /// Waves committed across all settle loops (level-synchronized
    /// engine: one wave = one drain/evaluate/commit round).
    pub waves: u64,
    /// Largest single wave (primitives evaluated in one round).
    pub max_wave: usize,
    /// Per-case wall-clock/effort summaries, in completion order.
    pub cases: Vec<CaseSummary>,
    /// Whole-run wall-clock nanoseconds (0 until `RunEnd` arrives).
    pub run_wall_nanos: u64,
    /// Checker units evaluated at leaf cases (`leaf_checks` events).
    pub leaf_check_evals: u64,
    /// Checker units leaf cases inherited from their prefix node's
    /// cached pass — the memoization rate is `hits / (hits + evals)`.
    pub leaf_check_hits: u64,
    /// Signals measured for per-case storage accounting.
    pub leaf_storage_evals: u64,
    /// Per-case storage measurements inherited from the prefix.
    pub leaf_storage_hits: u64,
    /// Subtree releases performed by the dependency-aware scheduler
    /// (one per settled case-tree node).
    pub subtree_releases: u64,
    /// Work units (child nodes + leaves) those releases made runnable.
    pub released_units: u64,
}

impl CounterSink {
    /// A fresh, empty sink.
    #[must_use]
    pub fn new() -> CounterSink {
        CounterSink::default()
    }

    /// Copies out the current aggregates, sorted for reporting.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn snapshot(&self) -> CounterSnapshot {
        let inner = self.inner.lock().expect("counter sink poisoned");
        let mut hottest_prims: Vec<(String, u64)> = inner.eval_counts.values().cloned().collect();
        hottest_prims.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        let mut last_settled: Vec<(String, u64)> =
            inner.settle_ordinals.values().cloned().collect();
        last_settled.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        CounterSnapshot {
            hottest_prims,
            last_settled,
            events: inner.events,
            evaluations: inner.evaluations,
            max_queue_depth: inner.max_queue_depth,
            waves: inner.waves,
            max_wave: inner.max_wave,
            cases: inner.cases.clone(),
            run_wall_nanos: inner.run_wall_nanos,
            leaf_check_evals: inner.leaf_check_evals,
            leaf_check_hits: inner.leaf_check_hits,
            leaf_storage_evals: inner.leaf_storage_evals,
            leaf_storage_hits: inner.leaf_storage_hits,
            subtree_releases: inner.subtree_releases,
            released_units: inner.released_units,
        }
    }
}

impl TraceSink for CounterSink {
    fn record(&self, event: &TraceEvent<'_>) {
        let mut inner = self.inner.lock().expect("counter sink poisoned");
        match *event {
            TraceEvent::Evaluation {
                prim,
                name,
                queue_depth,
                ..
            } => {
                inner
                    .eval_counts
                    .entry(prim)
                    .or_insert_with(|| (name.to_owned(), 0))
                    .1 += 1;
                inner.evaluations += 1;
                inner.max_queue_depth = inner.max_queue_depth.max(queue_depth);
            }
            TraceEvent::SignalSettled {
                signal,
                name,
                ordinal,
                ..
            } => {
                let entry = inner
                    .settle_ordinals
                    .entry(signal)
                    .or_insert_with(|| (name.to_owned(), 0));
                entry.1 = entry.1.max(ordinal);
                inner.events += 1;
            }
            TraceEvent::CaseStart { case, label } => {
                // The label only travels on CaseStart; park a placeholder
                // the matching CaseEnd fills in.
                let label = label.to_owned();
                inner.cases.push(CaseSummary {
                    case,
                    label,
                    wall_nanos: 0,
                    events: 0,
                    evaluations: 0,
                    violations: 0,
                });
            }
            TraceEvent::CaseEnd {
                case,
                wall_nanos,
                events,
                evaluations,
                violations,
            } => {
                let filled = CaseSummary {
                    case,
                    label: String::new(),
                    wall_nanos,
                    events,
                    evaluations,
                    violations,
                };
                match inner
                    .cases
                    .iter_mut()
                    .rev()
                    .find(|c| c.case == case && c.wall_nanos == 0)
                {
                    Some(slot) => {
                        let label = std::mem::take(&mut slot.label);
                        *slot = CaseSummary { label, ..filled };
                    }
                    None => inner.cases.push(filled),
                }
            }
            TraceEvent::Wave { size, .. } => {
                inner.waves += 1;
                inner.max_wave = inner.max_wave.max(size);
            }
            TraceEvent::RunEnd { wall_nanos, .. } => {
                inner.run_wall_nanos = wall_nanos;
            }
            TraceEvent::LeafChecks {
                check_evals,
                check_hits,
                storage_evals,
                storage_hits,
                ..
            } => {
                inner.leaf_check_evals += check_evals;
                inner.leaf_check_hits += check_hits;
                inner.leaf_storage_evals += storage_evals;
                inner.leaf_storage_hits += storage_hits;
            }
            TraceEvent::SubtreeReleased { children, .. } => {
                inner.subtree_releases += 1;
                inner.released_units += children as u64;
            }
            TraceEvent::RunStart { .. }
            | TraceEvent::PrefixSettled { .. }
            | TraceEvent::WarmStart { .. }
            | TraceEvent::CacheStats { .. } => {}
        }
    }
}

/// One queue-depth sample on the convergence timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelineSample {
    /// Case index, or `None` for the base settle.
    pub case: Option<u32>,
    /// Evaluation ordinal within that settle loop.
    pub ordinal: u64,
    /// Worklist depth at that point.
    pub depth: usize,
}

/// One committed wave of the level-synchronized settle loop, as recorded
/// from [`TraceEvent::Wave`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaveSample {
    /// Case index, or `None` for the base settle.
    pub case: Option<u32>,
    /// 1-based wave ordinal within its settle loop.
    pub ordinal: u64,
    /// Primitives evaluated in the wave.
    pub size: usize,
    /// Worklist depth after the commit (the next wave's seed).
    pub depth: usize,
}

/// Records the *convergence wave*: worklist depth over evaluation
/// ordinal, per settle loop. A settling circuit shows a rising front as
/// events fan out, then a collapse to zero; an oscillating one plateaus.
///
/// Sampling every `stride`-th evaluation (constructor argument) bounds
/// memory on large designs.
#[derive(Debug)]
pub struct TimelineSink {
    stride: u64,
    samples: Mutex<Vec<TimelineSample>>,
    waves: Mutex<Vec<WaveSample>>,
}

impl TimelineSink {
    /// A sink sampling every `stride`-th evaluation (`stride` is clamped
    /// to at least 1). Wave events are always recorded — there are only
    /// as many as the settle loop has levels.
    #[must_use]
    pub fn every(stride: u64) -> TimelineSink {
        TimelineSink {
            stride: stride.max(1),
            samples: Mutex::new(Vec::new()),
            waves: Mutex::new(Vec::new()),
        }
    }

    /// A sink sampling every evaluation.
    #[must_use]
    pub fn new() -> TimelineSink {
        TimelineSink::every(1)
    }

    /// The samples recorded so far, in arrival order.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn samples(&self) -> Vec<TimelineSample> {
        self.samples.lock().expect("timeline sink poisoned").clone()
    }

    /// The committed waves recorded so far, in arrival order: the
    /// wave-by-wave convergence profile of the level-synchronized engine
    /// (size shrinking to the fixed point, depth reaching 0 at the end).
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn waves(&self) -> Vec<WaveSample> {
        self.waves.lock().expect("timeline sink poisoned").clone()
    }

    /// Renders the base-settle convergence wave as an ASCII profile,
    /// `width` columns wide: each column shows the maximum queue depth
    /// in its ordinal bucket, scaled to 8 rows of `#`.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    #[must_use]
    pub fn render_base_wave(&self, width: usize) -> String {
        let samples = self.samples.lock().expect("timeline sink poisoned");
        let base: Vec<&TimelineSample> = samples.iter().filter(|s| s.case.is_none()).collect();
        let Some(last) = base.last() else {
            return String::from("(no samples)\n");
        };
        let width = width.max(1);
        let span = last.ordinal.max(1);
        let mut buckets = vec![0usize; width];
        for s in &base {
            #[allow(clippy::cast_possible_truncation)]
            let col = ((s.ordinal.saturating_sub(1)) * width as u64 / span) as usize;
            let col = col.min(width - 1);
            buckets[col] = buckets[col].max(s.depth);
        }
        let peak = buckets.iter().copied().max().unwrap_or(0).max(1);
        const ROWS: usize = 8;
        let mut out = String::new();
        for row in (1..=ROWS).rev() {
            let threshold = peak * row;
            for &b in &buckets {
                out.push(if b * ROWS >= threshold { '#' } else { ' ' });
            }
            out.push('\n');
        }
        out.push_str(&format!(
            "queue depth 0..{peak} over {span} evaluations (base settle)\n"
        ));
        out
    }
}

impl Default for TimelineSink {
    fn default() -> TimelineSink {
        TimelineSink::new()
    }
}

impl TraceSink for TimelineSink {
    fn record(&self, event: &TraceEvent<'_>) {
        match *event {
            TraceEvent::Evaluation {
                case,
                ordinal,
                queue_depth,
                ..
            } if (ordinal % self.stride == 0 || queue_depth == 0) => {
                self.samples
                    .lock()
                    .expect("timeline sink poisoned")
                    .push(TimelineSample {
                        case,
                        ordinal,
                        depth: queue_depth,
                    });
            }
            TraceEvent::Wave {
                case,
                ordinal,
                size,
                queue_depth,
            } => {
                self.waves
                    .lock()
                    .expect("timeline sink poisoned")
                    .push(WaveSample {
                        case,
                        ordinal,
                        size,
                        depth: queue_depth,
                    });
            }
            _ => {}
        }
    }
}

/// Streams every event as one JSON object per line to a writer — the
/// machine-readable event log behind `scald-tv --trace FILE`.
///
/// Lines from concurrent case workers interleave, but each line is
/// written atomically under the sink's lock; consumers can partition by
/// the `case` field.
pub struct JsonlSink<W: Write + Send> {
    writer: Mutex<W>,
}

impl JsonlSink<BufWriter<File>> {
    /// Creates (truncating) `path` and streams events to it, buffered.
    ///
    /// # Errors
    ///
    /// Returns the underlying I/O error if the file cannot be created.
    pub fn create(path: impl AsRef<Path>) -> std::io::Result<JsonlSink<BufWriter<File>>> {
        Ok(JsonlSink::new(BufWriter::new(File::create(path)?)))
    }
}

impl<W: Write + Send> JsonlSink<W> {
    /// Wraps any writer. Each event becomes one line.
    pub fn new(writer: W) -> JsonlSink<W> {
        JsonlSink {
            writer: Mutex::new(writer),
        }
    }

    /// Flushes and returns the writer.
    ///
    /// # Panics
    ///
    /// Panics if a recording thread panicked while holding the lock.
    pub fn into_inner(self) -> W {
        let mut w = self.writer.into_inner().expect("jsonl sink poisoned");
        let _ = w.flush();
        w
    }
}

impl<W: Write + Send> TraceSink for JsonlSink<W> {
    fn record(&self, event: &TraceEvent<'_>) {
        let line = event.to_json().to_string();
        let mut w = self.writer.lock().expect("jsonl sink poisoned");
        // A full disk mid-trace should not abort verification; the
        // stream just goes quiet.
        let _ = writeln!(w, "{line}");
        if matches!(event, TraceEvent::RunEnd { .. }) {
            let _ = w.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eval(prim: u32, name: &str, ordinal: u64, depth: usize) -> TraceEvent<'_> {
        TraceEvent::Evaluation {
            case: None,
            prim,
            name,
            ordinal,
            queue_depth: depth,
        }
    }

    #[test]
    fn counter_sink_aggregates() {
        let sink = CounterSink::new();
        sink.record(&eval(0, "A", 1, 3));
        sink.record(&eval(0, "A", 2, 5));
        sink.record(&eval(1, "B", 3, 1));
        sink.record(&TraceEvent::SignalSettled {
            case: None,
            signal: 7,
            name: "X",
            ordinal: 2,
        });
        sink.record(&TraceEvent::SignalSettled {
            case: None,
            signal: 7,
            name: "X",
            ordinal: 9,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.evaluations, 3);
        assert_eq!(snap.events, 2);
        assert_eq!(snap.max_queue_depth, 5);
        assert_eq!(snap.hottest_prims[0], ("A".to_owned(), 2));
        assert_eq!(snap.last_settled, vec![("X".to_owned(), 9)]);
    }

    #[test]
    fn counter_sink_case_summaries_merge_start_and_end() {
        let sink = CounterSink::new();
        sink.record(&TraceEvent::CaseStart {
            case: 0,
            label: "case 1",
        });
        sink.record(&TraceEvent::CaseEnd {
            case: 0,
            wall_nanos: 42,
            events: 5,
            evaluations: 9,
            violations: 1,
        });
        let snap = sink.snapshot();
        assert_eq!(snap.cases.len(), 1);
        assert_eq!(snap.cases[0].label, "case 1");
        assert_eq!(snap.cases[0].wall_nanos, 42);
        assert_eq!(snap.cases[0].violations, 1);
    }

    #[test]
    fn timeline_sink_strides_and_renders() {
        let sink = TimelineSink::every(2);
        for i in 1..=10u64 {
            sink.record(&eval(0, "A", i, (10 - i) as usize));
        }
        let samples = sink.samples();
        assert!(samples.iter().all(|s| s.ordinal % 2 == 0 || s.depth == 0));
        let art = sink.render_base_wave(10);
        assert!(art.contains('#'));
        assert!(art.contains("base settle"));
        assert_eq!(TimelineSink::new().render_base_wave(10), "(no samples)\n");
    }

    #[test]
    fn jsonl_sink_writes_one_parseable_line_per_event() {
        let sink = JsonlSink::new(Vec::new());
        sink.record(&eval(3, "G#1", 1, 2));
        sink.record(&TraceEvent::RunEnd {
            wall_nanos: 5,
            events: 1,
            evaluations: 1,
        });
        let bytes = sink.into_inner();
        let text = String::from_utf8(bytes).expect("utf-8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let doc = crate::json::parse(line).expect("each line parses");
            assert!(doc.get("type").is_some());
        }
    }
}
