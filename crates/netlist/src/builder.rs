//! Programmatic netlist construction.
//!
//! [`NetlistBuilder`] is the API equivalent of drawing a SCALD schematic:
//! declare signals (with assertions in their names), instantiate
//! primitives, and [`finish`](NetlistBuilder::finish) to validate. The HDL
//! macro expander lowers to this same builder.

use scald_logic::Value;
use scald_wave::{DelayRange, Time};
use std::collections::HashMap;

use crate::netlist::split_name;
use crate::{Config, Netlist, NetlistError, PrimKind, Primitive, Signal, SignalId};

/// A connection from a signal to a primitive input: the signal plus
/// optional complementation (`- WE` in Fig 3-5), an evaluation-directive
/// string (`&H`, §2.6) and a wire-delay override (§2.5.3).
#[derive(Debug, Clone, PartialEq)]
pub struct Conn {
    /// The source signal.
    pub signal: SignalId,
    /// Use the complement of the signal (a leading `-` in SCALD).
    pub invert: bool,
    /// Evaluation-directive string whose first letter governs this gate
    /// and whose tail is passed downstream (§2.6, §2.8).
    pub directive: Option<String>,
    /// Overrides the interconnection delay for this wire only.
    pub wire_delay: Option<DelayRange>,
}

impl Conn {
    /// A plain connection.
    #[must_use]
    pub fn new(signal: SignalId) -> Conn {
        Conn {
            signal,
            invert: false,
            directive: None,
            wire_delay: None,
        }
    }

    /// Marks the connection as complemented (`- NAME`).
    #[must_use]
    pub fn inverted(mut self) -> Conn {
        self.invert = !self.invert;
        self
    }

    /// Attaches an evaluation-directive string such as `"H"` or `"HZ"`.
    #[must_use]
    pub fn with_directive(mut self, directive: impl Into<String>) -> Conn {
        self.directive = Some(directive.into());
        self
    }

    /// Overrides the wire delay for this connection.
    #[must_use]
    pub fn with_wire_delay(mut self, delay: DelayRange) -> Conn {
        self.wire_delay = Some(delay);
        self
    }
}

impl From<SignalId> for Conn {
    fn from(signal: SignalId) -> Conn {
        Conn::new(signal)
    }
}

/// Incremental builder for a [`Netlist`].
///
/// # Examples
///
/// Build and validate the smallest interesting circuit — a register fed by
/// an asserted data signal, with its set-up/hold constraint checked:
///
/// ```
/// use scald_netlist::{Config, NetlistBuilder};
/// use scald_wave::{DelayRange, Time};
///
/// # fn main() -> Result<(), scald_netlist::NetlistError> {
/// let mut b = NetlistBuilder::new(Config::s1_example());
/// let clk = b.signal("CLK .P2-3")?;
/// let d = b.signal_vec("W DATA .S0-6", 32)?;
/// let q = b.signal_vec("R OUT", 32)?;
/// b.reg("OUT REG", DelayRange::from_ns(1.5, 4.5), clk, d, q);
/// b.setup_hold("OUT REG CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
/// let netlist = b.finish()?;
/// assert_eq!(netlist.prims().len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct NetlistBuilder {
    config: Config,
    signals: Vec<Signal>,
    prims: Vec<Primitive>,
    by_name: HashMap<String, SignalId>,
    error: Option<NetlistError>,
}

impl NetlistBuilder {
    /// Creates an empty builder with the given design configuration.
    #[must_use]
    pub fn new(config: Config) -> NetlistBuilder {
        NetlistBuilder {
            config,
            signals: Vec::new(),
            prims: Vec::new(),
            by_name: HashMap::new(),
            error: None,
        }
    }

    /// Declares (or re-references) a scalar signal. The name may carry an
    /// assertion suffix (`"CLK .P2-3"`); re-declaring an existing signal
    /// is allowed if the assertion is consistent (§2.5: assertions are
    /// part of the name, so all references agree by construction).
    ///
    /// # Errors
    ///
    /// Returns an error if the assertion is malformed or conflicts with an
    /// earlier declaration of the same base name.
    pub fn signal(&mut self, full_name: &str) -> Result<SignalId, NetlistError> {
        self.signal_vec(full_name, 1)
    }

    /// Declares a vector signal of the given bit width. See
    /// [`signal`](Self::signal).
    ///
    /// # Errors
    ///
    /// As for [`signal`](Self::signal); also errors if an earlier
    /// declaration gave a different width.
    pub fn signal_vec(&mut self, full_name: &str, width: u32) -> Result<SignalId, NetlistError> {
        let (base, assertion) = split_name(full_name)?;
        if let Some(&id) = self.by_name.get(&base) {
            let existing = &self.signals[id.index()];
            if existing.width != width {
                return Err(NetlistError::ConflictingSignal {
                    name: base,
                    detail: format!("widths ({} vs {width})", existing.width),
                });
            }
            match (&existing.assertion, &assertion) {
                (Some(a), Some(b)) if a != b => {
                    return Err(NetlistError::ConflictingSignal {
                        name: base,
                        detail: format!("assertions ({a} vs {b})"),
                    });
                }
                (None, Some(b)) => {
                    // Later reference supplies the assertion.
                    self.signals[id.index()].assertion = Some(b.clone());
                }
                _ => {}
            }
            return Ok(id);
        }
        let id = SignalId(self.signals.len() as u32);
        self.signals.push(Signal {
            name: base.clone(),
            width,
            assertion,
            wire_delay: None,
            wired_or: false,
        });
        self.by_name.insert(base, id);
        Ok(id)
    }

    /// Looks up an already-declared signal by base name.
    #[must_use]
    pub fn find_signal(&self, base_name: &str) -> Option<SignalId> {
        self.by_name.get(base_name).copied()
    }

    /// The declared width of a signal.
    #[must_use]
    pub fn signal_width(&self, signal: SignalId) -> u32 {
        self.signals[signal.index()].width
    }

    /// Marks a signal as a wired-OR bus: multiple drivers are permitted
    /// and their values are joined with the worst-case OR (Fig 3-1's ECL
    /// memory-expansion idiom).
    pub fn mark_wired_or(&mut self, signal: SignalId) {
        self.signals[signal.index()].wired_or = true;
    }

    /// Sets a wire-delay override for all connections driven by `signal`
    /// (the designer-specified interconnection delay of §2.5.3, e.g. the
    /// 0.0–6.0 ns register-file address lines of §3.2).
    pub fn set_wire_delay(&mut self, signal: SignalId, delay: DelayRange) {
        self.signals[signal.index()].wire_delay = Some(delay);
    }

    /// Adds an arbitrary primitive. Prefer the typed helpers below.
    pub fn prim(
        &mut self,
        name: impl Into<String>,
        kind: PrimKind,
        delay: DelayRange,
        inputs: Vec<Conn>,
        output: Option<SignalId>,
    ) {
        self.prims.push(Primitive {
            name: name.into(),
            kind,
            delay,
            edge_delays: None,
            inputs,
            output,
        });
    }

    /// Adds a fully specified primitive verbatim — connections, edge
    /// delays and all. Used by delta application (`NetlistDelta::apply`)
    /// to replay an existing primitive table; the referenced signal ids
    /// must belong to this builder.
    pub fn push_prim(&mut self, prim: Primitive) {
        self.prims.push(prim);
    }

    /// Adds a variadic gate (`And`, `Or`, `Xor`, their inverting forms, or
    /// `Chg`).
    pub fn gate<C: Into<Conn>>(
        &mut self,
        name: impl Into<String>,
        kind: PrimKind,
        delay: DelayRange,
        inputs: impl IntoIterator<Item = C>,
        output: SignalId,
    ) {
        let conns = inputs.into_iter().map(Into::into).collect();
        self.prim(name, kind, delay, conns, Some(output));
    }

    /// Adds a 2-input OR gate.
    pub fn or2(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        a: impl Into<Conn>,
        b: impl Into<Conn>,
        output: SignalId,
    ) {
        self.gate(name, PrimKind::Or, delay, [a.into(), b.into()], output);
    }

    /// Adds a 2-input AND gate.
    pub fn and2(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        a: impl Into<Conn>,
        b: impl Into<Conn>,
        output: SignalId,
    ) {
        self.gate(name, PrimKind::And, delay, [a.into(), b.into()], output);
    }

    /// Adds an inverter.
    pub fn not(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        input: impl Into<Conn>,
        output: SignalId,
    ) {
        self.gate(name, PrimKind::Not, delay, [input.into()], output);
    }

    /// Adds an inverter with separate rising/falling delays (§4.2.2
    /// extension). The `rise`/`fall` ranges apply to the *output* edges.
    pub fn not_asym(
        &mut self,
        name: impl Into<String>,
        rise: DelayRange,
        fall: DelayRange,
        input: impl Into<Conn>,
        output: SignalId,
    ) {
        let ed = crate::EdgeDelays { rise, fall };
        self.prims.push(Primitive {
            name: name.into(),
            kind: PrimKind::Not,
            delay: ed.envelope(),
            edge_delays: Some(ed),
            inputs: vec![input.into()],
            output: Some(output),
        });
    }

    /// Adds a buffer with separate rising/falling delays (§4.2.2
    /// extension).
    pub fn buf_asym(
        &mut self,
        name: impl Into<String>,
        rise: DelayRange,
        fall: DelayRange,
        input: impl Into<Conn>,
        output: SignalId,
    ) {
        let ed = crate::EdgeDelays { rise, fall };
        self.prims.push(Primitive {
            name: name.into(),
            kind: PrimKind::Buf,
            delay: ed.envelope(),
            edge_delays: Some(ed),
            inputs: vec![input.into()],
            output: Some(output),
        });
    }

    /// Adds a buffer.
    pub fn buf(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        input: impl Into<Conn>,
        output: SignalId,
    ) {
        self.gate(name, PrimKind::Buf, delay, [input.into()], output);
    }

    /// Adds an n-input CHANGE primitive, the model for complex
    /// combinational logic (§2.4.2).
    pub fn chg<C: Into<Conn>>(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        inputs: impl IntoIterator<Item = C>,
        output: SignalId,
    ) {
        self.gate(name, PrimKind::Chg, delay, inputs, output);
    }

    /// Adds a pure min/max delay element (also the `CORR` fictitious delay
    /// of §4.2.3).
    pub fn delay(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        input: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Delay,
            delay,
            vec![input.into()],
            Some(output),
        );
    }

    /// Adds a constant driver.
    pub fn constant(&mut self, name: impl Into<String>, value: Value, output: SignalId) {
        self.prim(
            name,
            PrimKind::Const(value),
            DelayRange::ZERO,
            Vec::new(),
            Some(output),
        );
    }

    /// Adds a 2-input multiplexer: `output = select ? d1 : d0`.
    pub fn mux2(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        select: impl Into<Conn>,
        d0: impl Into<Conn>,
        d1: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Mux { data: 2 },
            delay,
            vec![select.into(), d0.into(), d1.into()],
            Some(output),
        );
    }

    /// Adds an edge-triggered register (Fig 2-1, first model).
    pub fn reg(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        clock: impl Into<Conn>,
        data: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Reg { set_reset: false },
            delay,
            vec![clock.into(), data.into()],
            Some(output),
        );
    }

    /// Adds a register with asynchronous SET/RESET (Fig 2-1, second model).
    #[allow(clippy::too_many_arguments)]
    pub fn reg_sr(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        clock: impl Into<Conn>,
        data: impl Into<Conn>,
        set: impl Into<Conn>,
        reset: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Reg { set_reset: true },
            delay,
            vec![clock.into(), data.into(), set.into(), reset.into()],
            Some(output),
        );
    }

    /// Adds a transparent latch (Fig 2-2, first model).
    pub fn latch(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        enable: impl Into<Conn>,
        data: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Latch { set_reset: false },
            delay,
            vec![enable.into(), data.into()],
            Some(output),
        );
    }

    /// Adds a latch with asynchronous SET/RESET (Fig 2-2, second model).
    #[allow(clippy::too_many_arguments)]
    pub fn latch_sr(
        &mut self,
        name: impl Into<String>,
        delay: DelayRange,
        enable: impl Into<Conn>,
        data: impl Into<Conn>,
        set: impl Into<Conn>,
        reset: impl Into<Conn>,
        output: SignalId,
    ) {
        self.prim(
            name,
            PrimKind::Latch { set_reset: true },
            delay,
            vec![enable.into(), data.into(), set.into(), reset.into()],
            Some(output),
        );
    }

    /// Adds a `SETUP HOLD CHK` (§2.4.4): `input` must be quiescent from
    /// `setup` before to `hold` after each rising edge of `clock`.
    pub fn setup_hold(
        &mut self,
        name: impl Into<String>,
        setup: Time,
        hold: Time,
        input: impl Into<Conn>,
        clock: impl Into<Conn>,
    ) {
        self.prim(
            name,
            PrimKind::SetupHold { setup, hold },
            DelayRange::ZERO,
            vec![input.into(), clock.into()],
            None,
        );
    }

    /// Adds a `SETUP RISE HOLD FALL CHK` (§2.4.4): set-up before the
    /// rising edge of `clock`, stability while it is true, and hold after
    /// its falling edge.
    pub fn setup_rise_hold_fall(
        &mut self,
        name: impl Into<String>,
        setup: Time,
        hold: Time,
        input: impl Into<Conn>,
        clock: impl Into<Conn>,
    ) {
        self.prim(
            name,
            PrimKind::SetupRiseHoldFall { setup, hold },
            DelayRange::ZERO,
            vec![input.into(), clock.into()],
            None,
        );
    }

    /// Adds a `MIN PULSE WIDTH` checker (§2.4.5).
    pub fn min_pulse_width(
        &mut self,
        name: impl Into<String>,
        min_high: Time,
        min_low: Time,
        input: impl Into<Conn>,
    ) {
        self.prim(
            name,
            PrimKind::MinPulseWidth {
                high: min_high,
                low: min_low,
            },
            DelayRange::ZERO,
            vec![input.into()],
            None,
        );
    }

    /// Number of signals declared so far.
    #[must_use]
    pub fn signal_count(&self) -> usize {
        self.signals.len()
    }

    /// Number of primitives added so far.
    #[must_use]
    pub fn prim_count(&self) -> usize {
        self.prims.len()
    }

    /// Validates and produces the [`Netlist`].
    ///
    /// # Errors
    ///
    /// Returns the first [`NetlistError`] found: multiple drivers, wrong
    /// input counts, invalid directives, checkers with outputs, etc.
    pub fn finish(self) -> Result<Netlist, NetlistError> {
        if let Some(e) = self.error {
            return Err(e);
        }
        Netlist::new_validated(self.config, self.signals, self.prims, self.by_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_assertions::AssertionKind;

    fn builder() -> NetlistBuilder {
        NetlistBuilder::new(Config::s1_example())
    }

    #[test]
    fn signals_dedup_by_base_name() {
        let mut b = builder();
        let a = b.signal("CLK .P2-3").unwrap();
        let a2 = b.signal("CLK .P2-3").unwrap();
        assert_eq!(a, a2);
        assert_eq!(b.signal_count(), 1);
    }

    #[test]
    fn conflicting_assertions_rejected() {
        let mut b = builder();
        b.signal("CLK .P2-3").unwrap();
        let err = b.signal("CLK .P2-4").unwrap_err();
        assert!(matches!(err, NetlistError::ConflictingSignal { .. }));
        assert!(err.to_string().contains("assertions"));
    }

    #[test]
    fn later_reference_supplies_assertion() {
        let mut b = builder();
        let id = b.signal("DATA").unwrap();
        let id2 = b.signal("DATA .S0-6").unwrap();
        assert_eq!(id, id2);
        let n = b.finish().unwrap();
        assert_eq!(
            n.signal(id).assertion.as_ref().map(|a| a.kind),
            Some(AssertionKind::Stable)
        );
    }

    #[test]
    fn conflicting_widths_rejected() {
        let mut b = builder();
        b.signal_vec("BUS", 32).unwrap();
        let err = b.signal_vec("BUS", 16).unwrap_err();
        assert!(err.to_string().contains("widths"));
    }

    #[test]
    fn multiple_drivers_rejected() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let q = b.signal("Q").unwrap();
        b.buf("B1", DelayRange::ZERO, a, q);
        b.buf("B2", DelayRange::ZERO, a, q);
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::MultipleDrivers { .. }));
    }

    #[test]
    fn wrong_input_count_rejected() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let q = b.signal("Q").unwrap();
        b.prim(
            "BAD REG",
            PrimKind::Reg { set_reset: false },
            DelayRange::ZERO,
            vec![Conn::new(a)],
            Some(q),
        );
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::WrongInputCount { .. }));
        assert!(err.to_string().contains("needs 2 input(s)"));
    }

    #[test]
    fn invalid_directive_rejected() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let c = b.signal("C").unwrap();
        let q = b.signal("Q").unwrap();
        b.and2(
            "G",
            DelayRange::ZERO,
            Conn::new(a).with_directive("HX"),
            c,
            q,
        );
        let err = b.finish().unwrap_err();
        assert!(matches!(
            err,
            NetlistError::InvalidDirective { bad: 'X', .. }
        ));
    }

    #[test]
    fn checker_cannot_drive_output() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let ck = b.signal("CK").unwrap();
        let q = b.signal("Q").unwrap();
        b.prim(
            "CHK",
            PrimKind::SetupHold {
                setup: Time::from_ns(1.0),
                hold: Time::from_ns(1.0),
            },
            DelayRange::ZERO,
            vec![Conn::new(a), Conn::new(ck)],
            Some(q),
        );
        let err = b.finish().unwrap_err();
        assert!(matches!(err, NetlistError::CheckerWithOutput { .. }));
    }

    #[test]
    fn fanout_and_driver_indexes() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let q1 = b.signal("Q1").unwrap();
        let q2 = b.signal("Q2").unwrap();
        b.buf("B1", DelayRange::ZERO, a, q1);
        b.not("N1", DelayRange::ZERO, a, q2);
        let n = b.finish().unwrap();
        assert_eq!(n.fanout(a).len(), 2);
        assert!(n.driver(a).is_none());
        let d1 = n.driver(q1).unwrap();
        assert_eq!(n.prim(d1).name, "B1");
    }

    #[test]
    fn wire_delay_resolution_order() {
        let mut b = builder();
        let a = b.signal("A").unwrap();
        let v = b.signal("ADR").unwrap();
        b.set_wire_delay(v, DelayRange::from_ns(0.0, 6.0));
        let q = b.signal("Q").unwrap();
        b.and2(
            "G",
            DelayRange::ZERO,
            Conn::new(a).with_wire_delay(DelayRange::from_ns(1.0, 1.5)),
            v,
            q,
        );
        let n = b.finish().unwrap();
        let g = n.prim(n.driver(q).unwrap());
        // Per-connection override wins.
        assert_eq!(n.wire_delay(&g.inputs[0]), DelayRange::from_ns(1.0, 1.5));
        // Signal-level override next.
        assert_eq!(n.wire_delay(&g.inputs[1]), DelayRange::from_ns(0.0, 6.0));
        // Default otherwise.
        let b2 = Conn::new(a);
        assert_eq!(n.wire_delay(&b2), DelayRange::from_ns(0.0, 2.0));
    }

    #[test]
    fn histogram_matches_table_3_2_style() {
        let mut b = builder();
        let ck = b.signal("CK .P2-3").unwrap();
        let d = b.signal_vec("D", 8).unwrap();
        let q = b.signal_vec("Q", 8).unwrap();
        let s = b.signal("S").unwrap();
        let m = b.signal_vec("M", 8).unwrap();
        b.reg("R1", DelayRange::from_ns(1.5, 4.5), ck, d, q);
        b.mux2("M1", DelayRange::from_ns(1.2, 3.3), s, d, q, m);
        b.setup_hold("C1", Time::from_ns(2.5), Time::from_ns(1.5), d, ck);
        let n = b.finish().unwrap();
        let hist = n.primitive_histogram();
        let names: Vec<&str> = hist.iter().map(|(n, _)| n.as_str()).collect();
        assert!(names.contains(&"REG"));
        assert!(names.contains(&"2 MUX"));
        assert!(names.contains(&"SETUP HOLD CHK"));
        // Average width: REG drives 8 bits, MUX 8 bits, checker 1.
        let avg = n.average_primitive_width();
        assert!((avg - 17.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn inverted_connection_round_trips() {
        let c = Conn::new(SignalId(0)).inverted().inverted();
        assert!(!c.invert);
    }
}
