//! The Timing Verifier's built-in primitive functions (§2.4, §3.1).
//!
//! Circuits are described in terms of gates, registers, latches,
//! multiplexers and the three checker primitives; more complex components
//! are macros over these (the HDL crate performs that expansion). Each
//! primitive represents an arbitrarily wide data path — one timing value
//! per vector, the symmetry the thesis credits with a 6.5× reduction in
//! primitive count (§3.3.2).

use scald_logic::Value;
use scald_wave::{DelayRange, Time};
use std::fmt;

use crate::{Conn, SignalId};

/// The kind of a primitive, with any kind-specific timing parameters.
///
/// Input ordering conventions (positions in [`Primitive::inputs`]):
///
/// | kind | inputs |
/// |---|---|
/// | gates / `Chg` | data inputs, any number |
/// | `Mux { data }` | `[select, d0, d1, …]` |
/// | `Reg` | `[clock, data]`, plus `[set, reset]` if `set_reset` |
/// | `Latch` | `[enable, data]`, plus `[set, reset]` if `set_reset` |
/// | `SetupHold`, `SetupRiseHoldFall` | `[checked input, clock]` |
/// | `MinPulseWidth` | `[checked input]` |
/// | `Buf`, `Not`, `Delay` | `[input]` |
/// | `Const` | none |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrimKind {
    /// Worst-case AND gate (§2.4.2).
    And,
    /// Worst-case INCLUSIVE-OR gate.
    Or,
    /// AND with inverted output.
    Nand,
    /// OR with inverted output.
    Nor,
    /// Worst-case EXCLUSIVE-OR gate.
    Xor,
    /// XOR with inverted output.
    Xnor,
    /// Inverter.
    Not,
    /// Non-inverting buffer.
    Buf,
    /// The CHANGE function: models complex combinational logic (adders,
    /// parity trees, ALU data paths) where only *when* the output changes
    /// matters (§2.4.2).
    Chg,
    /// Multiplexer with `data` data inputs selected by the first input.
    Mux {
        /// Number of data inputs (2 for the thesis' `2 MUX`).
        data: u32,
    },
    /// Edge-triggered register, clocked on the rising edge of its clock
    /// input (§2.4.3, Fig 2-1). With `set_reset`, asynchronous SET/RESET
    /// inputs override the clocked behaviour.
    Reg {
        /// Whether asynchronous SET and RESET inputs are present.
        set_reset: bool,
    },
    /// Transparent latch: output follows data while enable is high and
    /// holds when it falls (§2.4.3, Fig 2-2).
    Latch {
        /// Whether asynchronous SET and RESET inputs are present.
        set_reset: bool,
    },
    /// Pure min/max delay element. Also used for the `CORR` fictitious
    /// delay the designer inserts to suppress correlation false errors
    /// (§4.2.3, Fig 4-2).
    Delay,
    /// A constant source driving its output with a fixed value.
    Const(
        /// The driven value.
        Value,
    ),
    /// `SETUP HOLD CHK` (§2.4.4, Fig 2-3): the input must be quiescent
    /// from `setup` before until `hold` after the rising edge of the
    /// clock input.
    SetupHold {
        /// Required stability interval before the clock edge. May be
        /// negative (the input may change up to `-setup` *after* the edge).
        setup: Time,
        /// Required stability interval after the clock edge. May be
        /// negative, as in the thesis' register-file example (−1.0 ns).
        hold: Time,
    },
    /// `SETUP RISE HOLD FALL CHK` (§2.4.4): set-up before the *rising*
    /// edge, hold after the *falling* edge, and stability for the whole
    /// interval the clock is true — the constraint shape of memory
    /// write-enable pulses.
    SetupRiseHoldFall {
        /// Required stability interval before the rising clock edge.
        setup: Time,
        /// Required stability interval after the falling clock edge.
        hold: Time,
    },
    /// `MIN PULSE WIDTH` (§2.4.5, Fig 2-4): every high pulse on the input
    /// must last at least `high`, every low pulse at least `low`.
    MinPulseWidth {
        /// Minimum high-pulse width (zero disables the high check).
        high: Time,
        /// Minimum low-pulse width (zero disables the low check).
        low: Time,
    },
}

impl PrimKind {
    /// `true` for the three checker primitives, which verify constraints
    /// but drive no output.
    #[must_use]
    pub const fn is_checker(self) -> bool {
        matches!(
            self,
            PrimKind::SetupHold { .. }
                | PrimKind::SetupRiseHoldFall { .. }
                | PrimKind::MinPulseWidth { .. }
        )
    }

    /// `true` for the clocked storage primitives.
    #[must_use]
    pub const fn is_storage(self) -> bool {
        matches!(self, PrimKind::Reg { .. } | PrimKind::Latch { .. })
    }

    /// The exact number of inputs this kind requires, or `None` if it is
    /// variadic (gates and `Chg` take any number ≥ 1).
    #[must_use]
    pub fn required_inputs(self) -> Option<usize> {
        match self {
            PrimKind::And
            | PrimKind::Or
            | PrimKind::Nand
            | PrimKind::Nor
            | PrimKind::Xor
            | PrimKind::Xnor
            | PrimKind::Chg => None,
            PrimKind::Not | PrimKind::Buf | PrimKind::Delay | PrimKind::MinPulseWidth { .. } => {
                Some(1)
            }
            PrimKind::Mux { data } => Some(1 + data as usize),
            PrimKind::Reg { set_reset } | PrimKind::Latch { set_reset } => {
                Some(if set_reset { 4 } else { 2 })
            }
            PrimKind::Const(_) => Some(0),
            PrimKind::SetupHold { .. } | PrimKind::SetupRiseHoldFall { .. } => Some(2),
        }
    }

    /// Whether this kind drives an output signal.
    #[must_use]
    pub const fn has_output(self) -> bool {
        !self.is_checker()
    }

    /// The display name the thesis' Table 3-2 primitive histogram uses,
    /// parameterized by the input count for variadic kinds (`2 OR`,
    /// `3 CHG`, `8 MUX`, `REG RS`, …).
    #[must_use]
    pub fn type_name(self, n_inputs: usize) -> String {
        match self {
            PrimKind::And => format!("{n_inputs} AND"),
            PrimKind::Or => format!("{n_inputs} OR"),
            PrimKind::Nand => format!("{n_inputs} NAND"),
            PrimKind::Nor => format!("{n_inputs} NOR"),
            PrimKind::Xor => format!("{n_inputs} XOR"),
            PrimKind::Xnor => format!("{n_inputs} XNOR"),
            PrimKind::Not => "NOT".to_owned(),
            PrimKind::Buf => "BUF".to_owned(),
            PrimKind::Chg => {
                if n_inputs == 1 {
                    "CHG".to_owned()
                } else {
                    format!("{n_inputs} CHG")
                }
            }
            PrimKind::Mux { data } => format!("{data} MUX"),
            PrimKind::Reg { set_reset: false } => "REG".to_owned(),
            PrimKind::Reg { set_reset: true } => "REG RS".to_owned(),
            PrimKind::Latch { set_reset: false } => "LATCH".to_owned(),
            PrimKind::Latch { set_reset: true } => "LATCH RS".to_owned(),
            PrimKind::Delay => "DELAY".to_owned(),
            PrimKind::Const(v) => format!("CONST {v}"),
            PrimKind::SetupHold { .. } => "SETUP HOLD CHK".to_owned(),
            PrimKind::SetupRiseHoldFall { .. } => "SETUP RISE HOLD FALL CHK".to_owned(),
            PrimKind::MinPulseWidth { .. } => "MIN PULSE WIDTH".to_owned(),
        }
    }
}

impl fmt::Display for PrimKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Without the instance's input count, format variadic kinds bare.
        let name = match self {
            PrimKind::And => "AND".to_owned(),
            PrimKind::Or => "OR".to_owned(),
            PrimKind::Nand => "NAND".to_owned(),
            PrimKind::Nor => "NOR".to_owned(),
            PrimKind::Xor => "XOR".to_owned(),
            PrimKind::Xnor => "XNOR".to_owned(),
            PrimKind::Chg => "CHG".to_owned(),
            other => other.type_name(0),
        };
        f.write_str(&name)
    }
}

/// Separate rising- and falling-edge propagation delays (§4.2.2).
///
/// The thesis lists asymmetric delays as future work for nMOS-style
/// technologies: "one approach is to recognize multiple inverting levels
/// of logic, and to automatically adjust the delays specified for those
/// gates". This extension implements the per-edge delay model for unary
/// primitives (buffers, inverters, delays): output edges of known
/// polarity use the matching delay; value-unknown transitions use the
/// conservative envelope of both.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeDelays {
    /// Delay applied to output *rising* edges.
    pub rise: DelayRange,
    /// Delay applied to output *falling* edges.
    pub fall: DelayRange,
}

impl EdgeDelays {
    /// The conservative envelope covering both edges: what a
    /// value-independent analysis must assume when the polarity of a
    /// transition is unknown (§4.2.2: "merely using the maximum of the
    /// rising and falling delays is the correct choice").
    #[must_use]
    pub fn envelope(self) -> DelayRange {
        DelayRange::new(
            self.rise.min.min(self.fall.min),
            self.rise.max.max(self.fall.max),
        )
    }
}

/// One primitive instance in a flattened design.
#[derive(Debug, Clone, PartialEq)]
pub struct Primitive {
    /// Hierarchical instance name (for reports), e.g. `ALU0/OUT REG`.
    pub name: String,
    /// The primitive function and its parameters.
    pub kind: PrimKind,
    /// Min/max propagation delay from any input to the output. The thesis
    /// uses one delay per primitive; different per-input delays are
    /// modelled with buffer primitives on the inputs (§2.4.3).
    pub delay: DelayRange,
    /// Optional asymmetric rising/falling delays (§4.2.2 extension).
    /// When set on a unary primitive, output edges of known polarity use
    /// the matching range and `delay` is ignored; other primitives use
    /// [`EdgeDelays::envelope`].
    pub edge_delays: Option<EdgeDelays>,
    /// Input connections, ordered per the [`PrimKind`] conventions.
    pub inputs: Vec<Conn>,
    /// The driven output signal; `None` for checkers.
    pub output: Option<SignalId>,
}

impl Primitive {
    /// The Table 3-2 display name of this instance's primitive type.
    #[must_use]
    pub fn type_name(&self) -> String {
        self.kind.type_name(self.inputs.len())
    }

    /// Iterates over all signals this primitive reads.
    pub fn input_signals(&self) -> impl Iterator<Item = SignalId> + '_ {
        self.inputs.iter().map(|c| c.signal)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_wave::DelayRange;

    #[test]
    fn required_input_counts() {
        assert_eq!(PrimKind::Not.required_inputs(), Some(1));
        assert_eq!(PrimKind::And.required_inputs(), None);
        assert_eq!(PrimKind::Mux { data: 4 }.required_inputs(), Some(5));
        assert_eq!(
            PrimKind::Reg { set_reset: false }.required_inputs(),
            Some(2)
        );
        assert_eq!(PrimKind::Reg { set_reset: true }.required_inputs(), Some(4));
        assert_eq!(
            PrimKind::Latch { set_reset: true }.required_inputs(),
            Some(4)
        );
        assert_eq!(PrimKind::Const(Value::Zero).required_inputs(), Some(0));
        assert_eq!(
            PrimKind::MinPulseWidth {
                high: Time::ZERO,
                low: Time::ZERO
            }
            .required_inputs(),
            Some(1)
        );
    }

    #[test]
    fn classification_predicates() {
        assert!(PrimKind::SetupHold {
            setup: Time::ZERO,
            hold: Time::ZERO
        }
        .is_checker());
        assert!(!PrimKind::And.is_checker());
        assert!(PrimKind::Reg { set_reset: false }.is_storage());
        assert!(PrimKind::Latch { set_reset: true }.is_storage());
        assert!(!PrimKind::Buf.is_storage());
        assert!(PrimKind::And.has_output());
        assert!(!PrimKind::MinPulseWidth {
            high: Time::ZERO,
            low: Time::ZERO
        }
        .has_output());
    }

    #[test]
    fn table_3_2_type_names() {
        assert_eq!(PrimKind::Or.type_name(2), "2 OR");
        assert_eq!(PrimKind::Chg.type_name(1), "CHG");
        assert_eq!(PrimKind::Chg.type_name(3), "3 CHG");
        assert_eq!(PrimKind::Mux { data: 8 }.type_name(9), "8 MUX");
        assert_eq!(PrimKind::Reg { set_reset: true }.type_name(4), "REG RS");
        assert_eq!(PrimKind::Latch { set_reset: false }.type_name(2), "LATCH");
        assert_eq!(
            PrimKind::SetupRiseHoldFall {
                setup: Time::ZERO,
                hold: Time::ZERO
            }
            .type_name(2),
            "SETUP RISE HOLD FALL CHK"
        );
        assert_eq!(PrimKind::Const(Value::One).type_name(0), "CONST 1");
        // Display formats variadic kinds without a count.
        assert_eq!(PrimKind::And.to_string(), "AND");
        assert_eq!(PrimKind::Reg { set_reset: false }.to_string(), "REG");
    }

    #[test]
    fn edge_delay_envelope_covers_both() {
        let ed = EdgeDelays {
            rise: DelayRange::from_ns(1.0, 2.0),
            fall: DelayRange::from_ns(3.0, 5.0),
        };
        assert_eq!(ed.envelope(), DelayRange::from_ns(1.0, 5.0));
        let sym = EdgeDelays {
            rise: DelayRange::from_ns(2.0, 3.0),
            fall: DelayRange::from_ns(2.0, 3.0),
        };
        assert_eq!(sym.envelope(), DelayRange::from_ns(2.0, 3.0));
    }
}
