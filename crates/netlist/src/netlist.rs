//! The flattened circuit: signals, primitives, drivers and the fan-out
//! index ("CALL LIST ARRAY", Table 3-3).

use scald_assertions::{parse_signal_name, Assertion, TimingContext};
use scald_wave::DelayRange;
use std::collections::HashMap;
use std::fmt;

use crate::{Conn, PrimKind, Primitive};

/// Index of a signal in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SignalId(pub(crate) u32);

impl SignalId {
    /// The underlying index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// Index of a primitive in a [`Netlist`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PrimId(pub(crate) u32);

impl PrimId {
    /// The underlying index.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

/// A named signal (vector net). Each signal carries *one* timing value no
/// matter its bit width — the vector-symmetry saving of §3.3.2.
#[derive(Debug, Clone, PartialEq)]
pub struct Signal {
    /// Base name, without the assertion suffix.
    pub name: String,
    /// Bit width of the vector (1 for scalars).
    pub width: u32,
    /// The assertion parsed from the signal's full name, if any (§2.5).
    pub assertion: Option<Assertion>,
    /// Overrides the design's default interconnection delay for wires
    /// driven by this signal (§2.5.3).
    pub wire_delay: Option<DelayRange>,
    /// Multiple drivers are allowed and joined with worst-case OR — the
    /// ECL wired-OR bus of the F10145A data sheet ("outputs can be
    /// wired-OR for easy memory expansion", Fig 3-1).
    pub wired_or: bool,
}

impl Signal {
    /// The full display name including the assertion suffix.
    #[must_use]
    pub fn full_name(&self) -> String {
        match &self.assertion {
            Some(a) => format!("{} {}", self.name, a),
            None => self.name.clone(),
        }
    }
}

/// Design-wide configuration: the timing context (period, clock units,
/// default clock skews) plus the default interconnection delay used for
/// wires without a specified delay (§2.5.3, §3.2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Config {
    /// Period, clock-unit scale and default clock skews.
    pub timing: TimingContext,
    /// Min/max delay assumed for every wire unless overridden
    /// (0.0/2.0 ns in the thesis' examples).
    pub default_wire_delay: DelayRange,
}

impl Config {
    /// The configuration of the thesis' running example (§3.2): 50 ns
    /// cycle, 6.25 ns clock units, 0.0/2.0 ns default wires, ±1 ns
    /// precision and ±5 ns non-precision clock skew.
    #[must_use]
    pub fn s1_example() -> Config {
        Config {
            timing: TimingContext::s1_example(),
            default_wire_delay: DelayRange::from_ns(0.0, 2.0),
        }
    }
}

/// Compressed-sparse-row adjacency: every per-signal row packed into one
/// flat id array plus an offsets table. This is the thesis' CALL LIST
/// ARRAY stored the way Table 3-3 costs it — one contiguous block, one
/// FIELD per (signal, primitive) pair — instead of a `Vec<Vec<_>>` whose
/// rows are scattered allocations. Row lookup is two loads and a slice,
/// and walking many rows in id order is sequential in memory, which is
/// what the settle loop's fan-out enqueue does at scale.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Csr {
    /// `offsets[s]..offsets[s + 1]` bounds signal `s`'s row in `items`.
    offsets: Vec<u32>,
    /// All rows, concatenated in signal-id order.
    items: Vec<PrimId>,
}

impl Csr {
    /// Packs per-signal rows into contiguous form. Row order (and any
    /// duplicates the caller left in) is preserved exactly.
    fn from_rows(rows: &[Vec<PrimId>]) -> Csr {
        let total: usize = rows.iter().map(Vec::len).sum();
        assert!(
            u32::try_from(total).is_ok(),
            "adjacency exceeds u32 offsets ({total} entries)"
        );
        let mut offsets = Vec::with_capacity(rows.len() + 1);
        let mut items = Vec::with_capacity(total);
        offsets.push(0u32);
        for row in rows {
            items.extend_from_slice(row);
            offsets.push(items.len() as u32);
        }
        Csr { offsets, items }
    }

    /// The row for index `idx` (a signal's fan-out or driver list).
    #[must_use]
    pub fn row(&self, idx: usize) -> &[PrimId] {
        &self.items[self.offsets[idx] as usize..self.offsets[idx + 1] as usize]
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Total entries across all rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True when no row has any entry.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// A validated, flattened circuit ready for verification.
///
/// Construct one with [`NetlistBuilder`](crate::NetlistBuilder) or via the
/// HDL macro expander. The netlist owns:
///
/// * the signal table (names, widths, assertions, wire-delay overrides),
/// * the primitive table,
/// * the driver map (at most one primitive drives each signal), and
/// * the fan-out index — the thesis' "CALL LIST ARRAY" — listing, for each
///   signal, the primitives that must be re-evaluated when it changes.
#[derive(Debug, Clone)]
pub struct Netlist {
    config: Config,
    signals: Vec<Signal>,
    prims: Vec<Primitive>,
    drivers: Csr,
    fanout: Csr,
    by_name: HashMap<String, SignalId>,
}

impl Netlist {
    pub(crate) fn new_validated(
        config: Config,
        signals: Vec<Signal>,
        prims: Vec<Primitive>,
        by_name: HashMap<String, SignalId>,
    ) -> Result<Netlist, NetlistError> {
        let mut drivers: Vec<Vec<PrimId>> = vec![Vec::new(); signals.len()];
        let mut fanout: Vec<Vec<PrimId>> = vec![Vec::new(); signals.len()];

        for (i, prim) in prims.iter().enumerate() {
            let pid = PrimId(i as u32);
            if let Some(need) = prim.kind.required_inputs() {
                if prim.inputs.len() != need {
                    return Err(NetlistError::WrongInputCount {
                        prim: prim.name.clone(),
                        kind: prim.kind.type_name(prim.inputs.len()),
                        expected: need,
                        found: prim.inputs.len(),
                    });
                }
            } else if prim.inputs.is_empty() {
                return Err(NetlistError::WrongInputCount {
                    prim: prim.name.clone(),
                    kind: prim.kind.type_name(0),
                    expected: 1,
                    found: 0,
                });
            }
            for conn in &prim.inputs {
                if let Some(dir) = &conn.directive {
                    if let Some(bad) = dir
                        .chars()
                        .find(|c| !matches!(c, 'E' | 'W' | 'Z' | 'A' | 'H'))
                    {
                        return Err(NetlistError::InvalidDirective {
                            prim: prim.name.clone(),
                            directive: dir.clone(),
                            bad,
                        });
                    }
                }
                fanout[conn.signal.index()].push(pid);
            }
            match (prim.kind.has_output(), prim.output) {
                (true, Some(out)) => {
                    if let Some(&prev) = drivers[out.index()].first() {
                        if !signals[out.index()].wired_or {
                            return Err(NetlistError::MultipleDrivers {
                                signal: signals[out.index()].name.clone(),
                                first: prims[prev.index()].name.clone(),
                                second: prim.name.clone(),
                            });
                        }
                    }
                    drivers[out.index()].push(pid);
                }
                (true, None) => {
                    return Err(NetlistError::MissingOutput {
                        prim: prim.name.clone(),
                    })
                }
                (false, Some(_)) => {
                    return Err(NetlistError::CheckerWithOutput {
                        prim: prim.name.clone(),
                    })
                }
                (false, None) => {}
            }
        }
        for fo in &mut fanout {
            fo.sort();
            fo.dedup();
        }
        Ok(Netlist {
            config,
            signals,
            prims,
            drivers: Csr::from_rows(&drivers),
            fanout: Csr::from_rows(&fanout),
            by_name,
        })
    }

    /// The design configuration.
    #[must_use]
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// All signals, indexable by [`SignalId::index`].
    #[must_use]
    pub fn signals(&self) -> &[Signal] {
        &self.signals
    }

    /// All primitives, indexable by [`PrimId::index`].
    #[must_use]
    pub fn prims(&self) -> &[Primitive] {
        &self.prims
    }

    /// The signal with the given id.
    #[must_use]
    pub fn signal(&self, id: SignalId) -> &Signal {
        &self.signals[id.index()]
    }

    /// The primitive with the given id.
    #[must_use]
    pub fn prim(&self, id: PrimId) -> &Primitive {
        &self.prims[id.index()]
    }

    /// Looks a signal up by base name (assertion suffix not included).
    #[must_use]
    pub fn signal_by_name(&self, name: &str) -> Option<SignalId> {
        self.by_name.get(name).copied()
    }

    /// The primitive driving `signal`, if any. For wired-OR signals this
    /// is the first driver; see [`drivers`](Self::drivers) for all of them.
    #[must_use]
    pub fn driver(&self, signal: SignalId) -> Option<PrimId> {
        self.drivers.row(signal.index()).first().copied()
    }

    /// All primitives driving `signal` — more than one only on wired-OR
    /// buses.
    #[must_use]
    pub fn drivers(&self, signal: SignalId) -> &[PrimId] {
        self.drivers.row(signal.index())
    }

    /// The primitives that read `signal` — the entries of the thesis'
    /// CALL LIST ARRAY, i.e. what must be re-evaluated when the signal's
    /// value changes (§2.9).
    #[must_use]
    pub fn fanout(&self, signal: SignalId) -> &[PrimId] {
        self.fanout.row(signal.index())
    }

    /// The packed CALL LIST ARRAY itself — the CSR fan-out adjacency.
    /// Exposed so storage accounting and consistency tests can inspect
    /// the contiguous layout directly.
    #[must_use]
    pub fn fanout_csr(&self) -> &Csr {
        &self.fanout
    }

    /// The forward structural closure of a set of edited signals and
    /// primitives: every primitive that could need re-evaluation when
    /// those signals' values (or those primitives' definitions) change.
    /// This is the "dirty cone" seeded into a warm-started verifier run;
    /// for the initial signals it also includes their *drivers*, since a
    /// dirtied signal must be recomputed from scratch.
    ///
    /// Returns the cone members in id order.
    #[must_use]
    pub fn affected_cone(&self, signals: &[SignalId], prims: &[PrimId]) -> Vec<PrimId> {
        let mut in_cone = vec![false; self.prims.len()];
        let mut sig_seen = vec![false; self.signals.len()];
        let mut work: Vec<PrimId> = Vec::new();
        let enter = |p: PrimId, in_cone: &mut Vec<bool>, work: &mut Vec<PrimId>| {
            if !in_cone[p.index()] {
                in_cone[p.index()] = true;
                work.push(p);
            }
        };
        for &p in prims {
            enter(p, &mut in_cone, &mut work);
        }
        for &s in signals {
            if sig_seen[s.index()] {
                continue;
            }
            sig_seen[s.index()] = true;
            for &p in self.fanout(s) {
                enter(p, &mut in_cone, &mut work);
            }
            for &p in self.drivers(s) {
                enter(p, &mut in_cone, &mut work);
            }
        }
        while let Some(p) = work.pop() {
            if let Some(out) = self.prims[p.index()].output {
                if !sig_seen[out.index()] {
                    sig_seen[out.index()] = true;
                    for &q in self.fanout(out) {
                        enter(q, &mut in_cone, &mut work);
                    }
                }
            }
        }
        in_cone
            .iter()
            .enumerate()
            .filter(|(_, &hit)| hit)
            .map(|(i, _)| PrimId(i as u32))
            .collect()
    }

    /// Iterates over `(id, signal)` pairs.
    pub fn iter_signals(&self) -> impl Iterator<Item = (SignalId, &Signal)> {
        self.signals
            .iter()
            .enumerate()
            .map(|(i, s)| (SignalId(i as u32), s))
    }

    /// Iterates over `(id, primitive)` pairs.
    pub fn iter_prims(&self) -> impl Iterator<Item = (PrimId, &Primitive)> {
        self.prims
            .iter()
            .enumerate()
            .map(|(i, p)| (PrimId(i as u32), p))
    }

    /// The effective interconnection delay for a connection: the
    /// per-connection override if given, else the source signal's
    /// override, else the design default (§2.5.3).
    #[must_use]
    pub fn wire_delay(&self, conn: &Conn) -> DelayRange {
        conn.wire_delay
            .or(self.signal(conn.signal).wire_delay)
            .unwrap_or(self.config.default_wire_delay)
    }

    /// A text listing of the flattened design — the "fully elaborated
    /// design" output of the Macro Expander's second pass (§3.3.2): one
    /// line per primitive with its type, delay and connections.
    #[must_use]
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (_, p) in self.iter_prims() {
            let inputs: Vec<String> = p
                .inputs
                .iter()
                .map(|c| {
                    let mut s = String::new();
                    if c.invert {
                        s.push('-');
                    }
                    s.push_str(&self.signal(c.signal).name);
                    if let Some(d) = &c.directive {
                        let _ = write!(s, " &{d}");
                    }
                    s
                })
                .collect();
            let output = p
                .output
                .map_or(String::new(), |o| format!(" -> {}", self.signal(o).name));
            let _ = writeln!(
                out,
                "{:<28} {:<10} ({}){}   [{}]",
                p.type_name(),
                p.delay.to_string(),
                inputs.join(", "),
                output,
                p.name
            );
        }
        out
    }

    /// Histogram of primitive type names — the contents of Table 3-2.
    /// Returns `(type name, count)` sorted by descending count then name.
    #[must_use]
    pub fn primitive_histogram(&self) -> Vec<(String, usize)> {
        let mut counts: HashMap<String, usize> = HashMap::new();
        for p in &self.prims {
            *counts.entry(p.type_name()).or_insert(0) += 1;
        }
        let mut out: Vec<(String, usize)> = counts.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        out
    }

    /// Average vector width of the primitives' outputs, the statistic the
    /// thesis reports as 6.5 bits (§3.3.2): the total bit-blasted
    /// primitive count divided by the vector primitive count.
    #[must_use]
    pub fn average_primitive_width(&self) -> f64 {
        if self.prims.is_empty() {
            return 0.0;
        }
        let total_bits: u64 = self
            .prims
            .iter()
            .map(|p| {
                p.output
                    .map_or(1, |out| u64::from(self.signal(out).width.max(1)))
            })
            .sum();
        total_bits as f64 / self.prims.len() as f64
    }
}

/// Errors detected while assembling or validating a netlist.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A signal name was declared twice with conflicting properties.
    ConflictingSignal {
        /// The signal's base name.
        name: String,
        /// What differed between the declarations.
        detail: String,
    },
    /// Two primitives drive the same signal.
    MultipleDrivers {
        /// The multiply-driven signal.
        signal: String,
        /// The first driver's instance name.
        first: String,
        /// The conflicting driver's instance name.
        second: String,
    },
    /// A primitive has the wrong number of inputs for its kind.
    WrongInputCount {
        /// The primitive's instance name.
        prim: String,
        /// Its kind's display name.
        kind: String,
        /// How many inputs the kind requires (minimum for variadic kinds).
        expected: usize,
        /// How many were connected.
        found: usize,
    },
    /// A non-checker primitive has no output signal.
    MissingOutput {
        /// The primitive's instance name.
        prim: String,
    },
    /// A checker primitive was given an output signal.
    CheckerWithOutput {
        /// The primitive's instance name.
        prim: String,
    },
    /// An evaluation-directive string contains a letter outside
    /// `E W Z A H` (§2.6).
    InvalidDirective {
        /// The primitive the directive is attached to.
        prim: String,
        /// The full directive string.
        directive: String,
        /// The offending character.
        bad: char,
    },
    /// A signal's assertion suffix failed to parse.
    BadAssertion {
        /// The full signal name as given.
        name: String,
        /// The parse error message.
        message: String,
    },
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::ConflictingSignal { name, detail } => {
                write!(f, "signal {name:?} declared twice with different {detail}")
            }
            NetlistError::MultipleDrivers {
                signal,
                first,
                second,
            } => write!(
                f,
                "signal {signal:?} is driven by both {first:?} and {second:?}"
            ),
            NetlistError::WrongInputCount {
                prim,
                kind,
                expected,
                found,
            } => write!(
                f,
                "primitive {prim:?} ({kind}) needs {expected} input(s), found {found}"
            ),
            NetlistError::MissingOutput { prim } => {
                write!(f, "primitive {prim:?} has no output signal")
            }
            NetlistError::CheckerWithOutput { prim } => {
                write!(f, "checker {prim:?} cannot drive an output signal")
            }
            NetlistError::InvalidDirective {
                prim,
                directive,
                bad,
            } => write!(
                f,
                "directive {directive:?} on {prim:?} contains {bad:?}; only E W Z A H are allowed"
            ),
            NetlistError::BadAssertion { name, message } => {
                write!(f, "signal {name:?}: {message}")
            }
        }
    }
}

impl std::error::Error for NetlistError {}

/// Convenience used by the builder: parse a full signal name into base and
/// assertion, mapping errors to [`NetlistError`].
pub(crate) fn split_name(full: &str) -> Result<(String, Option<Assertion>), NetlistError> {
    parse_signal_name(full).map_err(|e| NetlistError::BadAssertion {
        name: full.to_owned(),
        message: e.to_string(),
    })
}

/// Ensure `PrimKind` is available to doc links in this module.
#[allow(unused)]
fn _kind_link(_: PrimKind) {}
