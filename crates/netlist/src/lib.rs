//! Netlist model for the SCALD Timing Verifier: signals, primitives,
//! connections and the validated circuit graph.
//!
//! A design is flattened (by the `scald-hdl` macro expander, or built
//! directly with [`NetlistBuilder`]) into the primitive vocabulary of §2.4:
//! worst-case gates, the CHANGE function, multiplexers, edge-triggered
//! registers and transparent latches (each with optional asynchronous
//! SET/RESET), pure delays, and the three checker primitives
//! (`SETUP HOLD CHK`, `SETUP RISE HOLD FALL CHK`, `MIN PULSE WIDTH`).
//!
//! Signals are *vector* nets carrying one timing value regardless of bit
//! width — the representation symmetry that let the thesis describe a
//! 6357-chip processor with 8 282 primitives instead of 53 833 (§3.3.2).
//!
//! ```
//! use scald_netlist::{Config, NetlistBuilder};
//! use scald_wave::DelayRange;
//!
//! # fn main() -> Result<(), scald_netlist::NetlistError> {
//! let mut b = NetlistBuilder::new(Config::s1_example());
//! let a = b.signal("A .S0-6")?;
//! let bsig = b.signal("B .S0-6")?;
//! let q = b.signal("Q")?;
//! b.or2("OR1", DelayRange::from_ns(1.0, 2.9), a, bsig, q);
//! let netlist = b.finish()?;
//! assert_eq!(netlist.prims()[0].type_name(), "2 OR");
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

mod builder;
mod delta;
mod netlist;
mod primitive;

pub use builder::{Conn, NetlistBuilder};
pub use delta::{DeltaConn, DeltaError, DeltaOp, NetlistDelta, PrimSpec};
pub use netlist::{Config, Csr, Netlist, NetlistError, PrimId, Signal, SignalId};
pub use primitive::{EdgeDelays, PrimKind, Primitive};
