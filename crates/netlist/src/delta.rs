//! Netlist deltas: small, named edits applied to a validated [`Netlist`]
//! to produce a new validated netlist — the structural half of the
//! incremental re-verification workflow (`scald-incr`).
//!
//! A [`NetlistDelta`] is an ordered list of [`DeltaOp`]s addressed by
//! *name* (signal base names, primitive instance names), because names —
//! unlike [`SignalId`](crate::SignalId)/[`PrimId`](crate::PrimId)
//! indices — survive the rebuild.
//! [`NetlistDelta::apply`] replays the base netlist through a fresh
//! [`NetlistBuilder`] with the edits folded in, preserving the original
//! signal declaration order so unchanged signals keep their ids.
//!
//! Signals are never *removed* by a delta: a signal whose last driver is
//! removed simply becomes undriven (and, without an assertion, is treated
//! as assumed-stable by the verifier, exactly as in a cold run). This
//! keeps delta application total and the id mapping simple.

use scald_wave::DelayRange;
use std::collections::HashMap;

use crate::{Conn, Netlist, NetlistBuilder, NetlistError, PrimKind, Primitive};

/// A connection endpoint in an [`DeltaOp::AddPrim`] request, addressed by
/// signal name. The name may carry an assertion suffix (`"CLK .P6-7"`);
/// names that do not resolve to an existing signal declare a fresh scalar
/// signal (vector signals must already exist in the base netlist).
#[derive(Debug, Clone, PartialEq)]
pub struct DeltaConn {
    /// Full signal name, optionally with an assertion suffix.
    pub signal: String,
    /// Use the complement of the signal.
    pub invert: bool,
    /// Evaluation-directive string (`"H"`, `"HZ"`, …).
    pub directive: Option<String>,
    /// Per-connection wire-delay override.
    pub wire_delay: Option<DelayRange>,
}

impl DeltaConn {
    /// A plain connection to the named signal.
    #[must_use]
    pub fn new(signal: impl Into<String>) -> DeltaConn {
        DeltaConn {
            signal: signal.into(),
            invert: false,
            directive: None,
            wire_delay: None,
        }
    }

    /// Marks the connection as complemented.
    #[must_use]
    pub fn inverted(mut self) -> DeltaConn {
        self.invert = !self.invert;
        self
    }

    /// Attaches an evaluation-directive string.
    #[must_use]
    pub fn with_directive(mut self, directive: impl Into<String>) -> DeltaConn {
        self.directive = Some(directive.into());
        self
    }
}

/// A new primitive to splice into the design.
#[derive(Debug, Clone, PartialEq)]
pub struct PrimSpec {
    /// Instance name (must not collide with an existing primitive).
    pub name: String,
    /// Primitive kind, with its kind-specific parameters.
    pub kind: PrimKind,
    /// Min/max propagation delay.
    pub delay: DelayRange,
    /// Input connections, in primitive input order.
    pub inputs: Vec<DeltaConn>,
    /// Output signal name, if the primitive drives one.
    pub output: Option<String>,
}

/// One edit in a [`NetlistDelta`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaOp {
    /// Splice in a new primitive (new signal names are declared scalar).
    AddPrim(PrimSpec),
    /// Remove the named primitive. Its output signal stays declared and
    /// becomes undriven if this was the only driver.
    RemovePrim {
        /// Instance name of the primitive to remove.
        name: String,
    },
    /// Replace the named primitive's delay (an ECO retime). Asymmetric
    /// edge delays, if any, are replaced by the single new envelope.
    Retime {
        /// Instance name of the primitive to retime.
        prim: String,
        /// The new min/max propagation delay.
        delay: DelayRange,
    },
    /// Replace (or remove, with `None`) a signal's timing assertion. The
    /// assertion is given as the name suffix it would carry, e.g.
    /// `".S3-8"` or `".P6-7"`.
    SetAssertion {
        /// Base name of the signal.
        signal: String,
        /// The new assertion suffix, or `None` to drop the assertion.
        assertion: Option<String>,
    },
}

/// Errors from [`NetlistDelta::apply`].
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaError {
    /// A `RemovePrim`/`Retime` op named a primitive the base lacks.
    UnknownPrim(String),
    /// A `SetAssertion` op named a signal the base lacks.
    UnknownSignal(String),
    /// An `AddPrim` op reused an existing primitive name.
    DuplicatePrim(String),
    /// The edited design failed netlist validation.
    Netlist(NetlistError),
}

impl std::fmt::Display for DeltaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DeltaError::UnknownPrim(n) => write!(f, "delta names unknown primitive {n:?}"),
            DeltaError::UnknownSignal(n) => write!(f, "delta names unknown signal {n:?}"),
            DeltaError::DuplicatePrim(n) => {
                write!(f, "delta adds primitive {n:?} which already exists")
            }
            DeltaError::Netlist(e) => write!(f, "edited design is invalid: {e}"),
        }
    }
}

impl std::error::Error for DeltaError {}

impl From<NetlistError> for DeltaError {
    fn from(e: NetlistError) -> DeltaError {
        DeltaError::Netlist(e)
    }
}

/// An ordered batch of netlist edits, applied atomically in order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetlistDelta {
    ops: Vec<DeltaOp>,
}

impl NetlistDelta {
    /// An empty delta (applying it reproduces the base netlist).
    #[must_use]
    pub fn new() -> NetlistDelta {
        NetlistDelta::default()
    }

    /// Appends an arbitrary op.
    pub fn push(&mut self, op: DeltaOp) -> &mut NetlistDelta {
        self.ops.push(op);
        self
    }

    /// Appends an `AddPrim` op.
    pub fn add_prim(&mut self, spec: PrimSpec) -> &mut NetlistDelta {
        self.push(DeltaOp::AddPrim(spec))
    }

    /// Appends a `RemovePrim` op.
    pub fn remove_prim(&mut self, name: impl Into<String>) -> &mut NetlistDelta {
        self.push(DeltaOp::RemovePrim { name: name.into() })
    }

    /// Appends a `Retime` op.
    pub fn retime(&mut self, prim: impl Into<String>, delay: DelayRange) -> &mut NetlistDelta {
        self.push(DeltaOp::Retime {
            prim: prim.into(),
            delay,
        })
    }

    /// Appends a `SetAssertion` op.
    pub fn set_assertion(
        &mut self,
        signal: impl Into<String>,
        assertion: Option<String>,
    ) -> &mut NetlistDelta {
        self.push(DeltaOp::SetAssertion {
            signal: signal.into(),
            assertion,
        })
    }

    /// The ops, in application order.
    #[must_use]
    pub fn ops(&self) -> &[DeltaOp] {
        &self.ops
    }

    /// `true` when the delta contains no ops.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Applies the delta to `base`, producing a new validated netlist.
    ///
    /// Base signals keep their declaration order (and therefore their
    /// [`SignalId`](crate::SignalId)s); signals first named by `AddPrim`
    /// ops are appended after them.
    ///
    /// # Errors
    ///
    /// Returns a [`DeltaError`] when an op names an unknown primitive or
    /// signal, reuses a primitive name, or the edited design fails
    /// netlist validation.
    pub fn apply(&self, base: &Netlist) -> Result<Netlist, DeltaError> {
        // Fold the ops into lookup form first, validating names eagerly.
        let mut removed: Vec<&str> = Vec::new();
        let mut retimed: HashMap<&str, DelayRange> = HashMap::new();
        let mut assertions: HashMap<&str, Option<&str>> = HashMap::new();
        let mut added: Vec<&PrimSpec> = Vec::new();
        let prim_exists = |name: &str| -> bool { base.prims().iter().any(|p| p.name == name) };
        for op in &self.ops {
            match op {
                DeltaOp::AddPrim(spec) => {
                    if prim_exists(&spec.name) || added.iter().any(|s| s.name == spec.name) {
                        return Err(DeltaError::DuplicatePrim(spec.name.clone()));
                    }
                    added.push(spec);
                }
                DeltaOp::RemovePrim { name } => {
                    if !prim_exists(name) {
                        return Err(DeltaError::UnknownPrim(name.clone()));
                    }
                    removed.push(name);
                }
                DeltaOp::Retime { prim, delay } => {
                    if !prim_exists(prim) {
                        return Err(DeltaError::UnknownPrim(prim.clone()));
                    }
                    retimed.insert(prim, *delay);
                }
                DeltaOp::SetAssertion { signal, assertion } => {
                    if base.signal_by_name(signal).is_none() {
                        return Err(DeltaError::UnknownSignal(signal.clone()));
                    }
                    assertions.insert(signal, assertion.as_deref());
                }
            }
        }

        let mut b = NetlistBuilder::new(*base.config());

        // Replay the signal table in declaration order so surviving
        // signals keep their ids.
        for (sid, sig) in base.iter_signals() {
            let declared = match assertions.get(sig.name.as_str()) {
                Some(Some(a)) => format!("{} {}", sig.name, a),
                Some(None) => sig.name.clone(),
                None => sig.full_name(),
            };
            let new_sid = b.signal_vec(&declared, sig.width)?;
            debug_assert_eq!(new_sid, sid);
            if let Some(wd) = sig.wire_delay {
                b.set_wire_delay(new_sid, wd);
            }
            if sig.wired_or {
                b.mark_wired_or(new_sid);
            }
        }

        // Replay the primitive table with removals and retimes folded in.
        for prim in base.prims() {
            if removed.iter().any(|n| *n == prim.name) {
                continue;
            }
            let mut p = prim.clone();
            if let Some(delay) = retimed.get(prim.name.as_str()) {
                p.delay = *delay;
                p.edge_delays = None;
            }
            b.push_prim(p);
        }

        // Splice in the additions, declaring any fresh (scalar) signals.
        // References to existing signals keep their declared width.
        fn resolve(b: &mut NetlistBuilder, name: &str) -> Result<crate::SignalId, DeltaError> {
            let (base_name, _) = crate::netlist::split_name(name)?;
            let width = b
                .find_signal(&base_name)
                .map_or(1, |sid| b.signal_width(sid));
            Ok(b.signal_vec(name, width)?)
        }
        for spec in added {
            let mut inputs = Vec::with_capacity(spec.inputs.len());
            for dc in &spec.inputs {
                let sid = resolve(&mut b, &dc.signal)?;
                let mut conn = Conn::new(sid);
                conn.invert = dc.invert;
                conn.directive = dc.directive.clone();
                conn.wire_delay = dc.wire_delay;
                inputs.push(conn);
            }
            let output = match &spec.output {
                Some(name) => Some(resolve(&mut b, name)?),
                None => None,
            };
            b.push_prim(Primitive {
                name: spec.name.clone(),
                kind: spec.kind,
                delay: spec.delay,
                edge_delays: None,
                inputs,
                output,
            });
        }

        Ok(b.finish()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Config;
    use scald_wave::Time;

    fn base() -> Netlist {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CLK .P6-7").expect("valid");
        let d = b.signal_vec("D .S0-3", 8).expect("valid");
        let x = b.signal_vec("X", 8).expect("valid");
        let q = b.signal_vec("Q", 8).expect("valid");
        b.buf("U1", DelayRange::from_ns(1.0, 2.0), d, x);
        b.reg("U2", DelayRange::from_ns(1.5, 4.5), clk, x, q);
        b.setup_hold("U3", Time::from_ns(2.5), Time::from_ns(1.0), x, clk);
        b.finish().expect("valid base")
    }

    #[test]
    fn empty_delta_reproduces_base() {
        let n = base();
        let edited = NetlistDelta::new().apply(&n).expect("applies");
        assert_eq!(edited.signals().len(), n.signals().len());
        assert_eq!(edited.prims().len(), n.prims().len());
        assert_eq!(edited.listing(), n.listing());
    }

    #[test]
    fn retime_replaces_delay_and_keeps_ids() {
        let n = base();
        let mut delta = NetlistDelta::new();
        delta.retime("U1", DelayRange::from_ns(3.0, 9.0));
        let edited = delta.apply(&n).expect("applies");
        assert_eq!(edited.prims()[0].delay, DelayRange::from_ns(3.0, 9.0));
        assert_eq!(
            edited.signal_by_name("Q"),
            n.signal_by_name("Q"),
            "surviving signals keep their ids"
        );
    }

    #[test]
    fn remove_prim_leaves_output_undriven() {
        let n = base();
        let mut delta = NetlistDelta::new();
        delta.remove_prim("U1");
        let edited = delta.apply(&n).expect("applies");
        assert_eq!(edited.prims().len(), n.prims().len() - 1);
        let x = edited.signal_by_name("X").expect("X survives");
        assert!(edited.driver(x).is_none(), "X is now undriven");
    }

    #[test]
    fn add_prim_declares_new_signals_after_base() {
        let n = base();
        let mut delta = NetlistDelta::new();
        delta.add_prim(PrimSpec {
            name: "U4".to_owned(),
            kind: PrimKind::Buf,
            delay: DelayRange::from_ns(0.5, 1.5),
            inputs: vec![DeltaConn::new("Q")],
            output: Some("Q BUF".to_owned()),
        });
        let edited = delta.apply(&n).expect("applies");
        let fresh = edited.signal_by_name("Q BUF").expect("declared");
        assert_eq!(fresh.index(), n.signals().len(), "appended after base");
        assert_eq!(edited.prims().last().expect("added").name, "U4");
    }

    #[test]
    fn set_assertion_replaces_and_removes() {
        let n = base();
        let mut delta = NetlistDelta::new();
        delta.set_assertion("D", Some(".S1-5".to_owned()));
        delta.set_assertion("CLK", None);
        let edited = delta.apply(&n).expect("applies");
        let d = edited.signal_by_name("D").expect("D");
        assert_eq!(edited.signal(d).full_name(), "D .S1-5");
        let clk = edited.signal_by_name("CLK").expect("CLK");
        assert!(edited.signal(clk).assertion.is_none());
    }

    #[test]
    fn unknown_names_are_rejected() {
        let n = base();
        let mut delta = NetlistDelta::new();
        delta.remove_prim("NOPE");
        assert_eq!(
            delta.apply(&n).unwrap_err(),
            DeltaError::UnknownPrim("NOPE".to_owned())
        );
        let mut delta = NetlistDelta::new();
        delta.set_assertion("NOPE", None);
        assert_eq!(
            delta.apply(&n).unwrap_err(),
            DeltaError::UnknownSignal("NOPE".to_owned())
        );
        let mut delta = NetlistDelta::new();
        delta.add_prim(PrimSpec {
            name: "U1".to_owned(),
            kind: PrimKind::Buf,
            delay: DelayRange::from_ns(0.5, 1.5),
            inputs: vec![DeltaConn::new("Q")],
            output: None,
        });
        assert_eq!(
            delta.apply(&n).unwrap_err(),
            DeltaError::DuplicatePrim("U1".to_owned())
        );
    }

    #[test]
    fn affected_cone_is_the_forward_closure() {
        let n = base();
        let d = n.signal_by_name("D").expect("D");
        let cone = n.affected_cone(&[d], &[]);
        // D feeds U1; U1 drives X which feeds U2 (reg) and U3 (checker);
        // U2 drives Q which feeds nothing.
        assert_eq!(cone.len(), 3, "cone: {cone:?}");
        let empty = n.affected_cone(&[], &[]);
        assert!(empty.is_empty());
    }
}
