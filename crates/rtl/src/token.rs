//! The hand-written lexer for the Verilog subset.
//!
//! Produces a flat token stream with 1-based line/column spans, and
//! collects `// scald:` pragma comments (the timing annotations of the
//! frontend, see [`crate::pragma`]) as a side channel in source order.

use crate::error::{RtlError, Span};

/// One lexical token.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`module`, `clk`, `always_ff`, ...).
    Ident(String),
    /// A sized or unsized number literal (`42`, `8'd1`, `4'hF`).
    Number {
        /// The literal's value.
        value: u64,
        /// Declared bit width (`8` in `8'd1`), if sized.
        width: Option<u32>,
    },
    /// Punctuation or an operator.
    Sym(Sym),
    /// End of input.
    Eof,
}

/// Punctuation and operator tokens.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sym {
    /// `(`
    LParen,
    /// `)`
    RParen,
    /// `[`
    LBracket,
    /// `]`
    RBracket,
    /// `;`
    Semi,
    /// `,`
    Comma,
    /// `.`
    Dot,
    /// `:`
    Colon,
    /// `?`
    Question,
    /// `@`
    At,
    /// `=`
    Assign,
    /// `==`
    EqEq,
    /// `!=`
    NotEq,
    /// `<`
    Lt,
    /// `<=` — non-blocking assignment *or* less-equal; the parser
    /// disambiguates by position.
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
    /// `+`
    Plus,
    /// `-`
    Minus,
    /// `*`
    Star,
    /// `&`
    Amp,
    /// `|`
    Pipe,
    /// `^`
    Caret,
    /// `~`
    Tilde,
    /// `!`
    Bang,
}

impl Sym {
    /// The token as it appears in source, for diagnostics.
    pub fn as_str(self) -> &'static str {
        match self {
            Sym::LParen => "(",
            Sym::RParen => ")",
            Sym::LBracket => "[",
            Sym::RBracket => "]",
            Sym::Semi => ";",
            Sym::Comma => ",",
            Sym::Dot => ".",
            Sym::Colon => ":",
            Sym::Question => "?",
            Sym::At => "@",
            Sym::Assign => "=",
            Sym::EqEq => "==",
            Sym::NotEq => "!=",
            Sym::Lt => "<",
            Sym::LtEq => "<=",
            Sym::Gt => ">",
            Sym::GtEq => ">=",
            Sym::Plus => "+",
            Sym::Minus => "-",
            Sym::Star => "*",
            Sym::Amp => "&",
            Sym::Pipe => "|",
            Sym::Caret => "^",
            Sym::Tilde => "~",
            Sym::Bang => "!",
        }
    }
}

/// A token plus where it starts.
#[derive(Debug, Clone)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// Source position of its first character.
    pub span: Span,
}

/// A `// scald:` comment, with the text after the marker.
#[derive(Debug, Clone)]
pub struct RawPragma {
    /// The pragma body (whitespace-trimmed).
    pub text: String,
    /// Position of the comment's first character.
    pub span: Span,
}

/// The lexer's output: the token stream (terminated by [`Tok::Eof`])
/// and the pragma comments in source order.
#[derive(Debug)]
pub struct Lexed {
    /// All tokens, ending with exactly one `Eof`.
    pub tokens: Vec<Token>,
    /// Every `// scald:` comment encountered.
    pub pragmas: Vec<RawPragma>,
}

/// Tokenizes the whole source.
///
/// # Errors
///
/// Returns a spanned [`RtlError`] for unterminated block comments,
/// malformed number literals, or characters outside the subset.
pub fn lex(src: &str) -> Result<Lexed, RtlError> {
    let mut chars: Vec<char> = src.chars().collect();
    // Sentinel simplifies two-character lookahead.
    chars.push('\0');
    let mut tokens = Vec::new();
    let mut pragmas = Vec::new();
    let mut i = 0usize;
    let mut line = 1u32;
    let mut col = 1u32;

    macro_rules! bump {
        () => {{
            if chars[i] == '\n' {
                line += 1;
                col = 1;
            } else {
                col += 1;
            }
            i += 1;
        }};
    }

    while i < chars.len() - 1 {
        let c = chars[i];
        let span = Span::new(line, col);
        if c.is_whitespace() {
            bump!();
            continue;
        }
        if c == '/' && chars[i + 1] == '/' {
            let start = i;
            while i < chars.len() - 1 && chars[i] != '\n' {
                bump!();
            }
            let comment: String = chars[start..i].iter().collect();
            if let Some(rest) = comment.strip_prefix("// scald:") {
                pragmas.push(RawPragma {
                    text: rest.trim().to_owned(),
                    span,
                });
            }
            continue;
        }
        if c == '/' && chars[i + 1] == '*' {
            bump!();
            bump!();
            loop {
                if i >= chars.len() - 1 {
                    return Err(RtlError::new("unterminated block comment", span));
                }
                if chars[i] == '*' && chars[i + 1] == '/' {
                    bump!();
                    bump!();
                    break;
                }
                bump!();
            }
            continue;
        }
        if c.is_ascii_alphabetic() || c == '_' {
            let start = i;
            while chars[i].is_ascii_alphanumeric() || chars[i] == '_' || chars[i] == '$' {
                bump!();
            }
            tokens.push(Token {
                tok: Tok::Ident(chars[start..i].iter().collect()),
                span,
            });
            continue;
        }
        if c.is_ascii_digit() {
            let first = read_digits(&chars, &mut i, &mut col, 10, span)?;
            if chars[i] == '\'' {
                bump!(); // the tick
                let base = match chars[i] {
                    'b' | 'B' => 2,
                    'd' | 'D' => 10,
                    'h' | 'H' => 16,
                    other => {
                        return Err(RtlError::new(
                            format!("unknown number base {other:?}; expected b, d or h"),
                            Span::new(line, col),
                        ))
                    }
                };
                bump!(); // the base letter
                if !chars[i].is_ascii_hexdigit() {
                    return Err(RtlError::new(
                        "sized literal is missing its digits",
                        Span::new(line, col),
                    ));
                }
                let value = read_digits(&chars, &mut i, &mut col, base, span)?;
                let width = u32::try_from(first)
                    .ok()
                    .filter(|w| (1..=64).contains(w))
                    .ok_or_else(|| {
                        RtlError::new(format!("literal width {first} out of range 1..=64"), span)
                    })?;
                tokens.push(Token {
                    tok: Tok::Number {
                        value,
                        width: Some(width),
                    },
                    span,
                });
            } else {
                tokens.push(Token {
                    tok: Tok::Number {
                        value: first,
                        width: None,
                    },
                    span,
                });
            }
            continue;
        }
        let (sym, len) = match (c, chars[i + 1]) {
            ('=', '=') => (Sym::EqEq, 2),
            ('!', '=') => (Sym::NotEq, 2),
            ('<', '=') => (Sym::LtEq, 2),
            ('>', '=') => (Sym::GtEq, 2),
            _ => match c {
                '(' => (Sym::LParen, 1),
                ')' => (Sym::RParen, 1),
                '[' => (Sym::LBracket, 1),
                ']' => (Sym::RBracket, 1),
                ';' => (Sym::Semi, 1),
                ',' => (Sym::Comma, 1),
                '.' => (Sym::Dot, 1),
                ':' => (Sym::Colon, 1),
                '?' => (Sym::Question, 1),
                '@' => (Sym::At, 1),
                '+' => (Sym::Plus, 1),
                '-' => (Sym::Minus, 1),
                '*' => (Sym::Star, 1),
                '&' => (Sym::Amp, 1),
                '|' => (Sym::Pipe, 1),
                '^' => (Sym::Caret, 1),
                '~' => (Sym::Tilde, 1),
                '=' => (Sym::Assign, 1),
                '!' => (Sym::Bang, 1),
                '<' => (Sym::Lt, 1),
                '>' => (Sym::Gt, 1),
                other => {
                    return Err(RtlError::new(
                        format!("unexpected character {other:?}"),
                        span,
                    ))
                }
            },
        };
        for _ in 0..len {
            bump!();
        }
        tokens.push(Token {
            tok: Tok::Sym(sym),
            span,
        });
    }
    tokens.push(Token {
        tok: Tok::Eof,
        span: Span::new(line, col),
    });
    Ok(Lexed { tokens, pragmas })
}

/// Reads a run of digits (with `_` separators) in `base`, accumulating
/// into a `u64`. Digit runs never span lines, so only the column moves.
fn read_digits(
    chars: &[char],
    i: &mut usize,
    col: &mut u32,
    base: u32,
    span: Span,
) -> Result<u64, RtlError> {
    let mut value: u64 = 0;
    while chars[*i].is_ascii_hexdigit() || chars[*i] == '_' {
        let c = chars[*i];
        if c != '_' {
            let digit = c.to_digit(base).ok_or_else(|| {
                RtlError::new(format!("digit {c:?} invalid in base {base}"), span)
            })?;
            value = value
                .checked_mul(u64::from(base))
                .and_then(|v| v.checked_add(u64::from(digit)))
                .ok_or_else(|| RtlError::new("number literal overflows 64 bits", span))?;
        }
        *col += 1;
        *i += 1;
    }
    Ok(value)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_module_header() {
        let lexed = lex("module top(input wire clk);\nendmodule\n").unwrap();
        let idents: Vec<&str> = lexed
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(
            idents,
            ["module", "top", "input", "wire", "clk", "endmodule"]
        );
    }

    #[test]
    fn sized_literals_carry_width() {
        let lexed = lex("8'd255 4'hF 1'b0 42").unwrap();
        let nums: Vec<(u64, Option<u32>)> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Number { value, width } => Some((value, width)),
                _ => None,
            })
            .collect();
        assert_eq!(
            nums,
            [(255, Some(8)), (15, Some(4)), (0, Some(1)), (42, None)]
        );
    }

    #[test]
    fn collects_scald_pragmas_with_spans() {
        let lexed = lex("// scald: period 50.0\nmodule m(); // not a pragma\nendmodule\n").unwrap();
        assert_eq!(lexed.pragmas.len(), 1);
        assert_eq!(lexed.pragmas[0].text, "period 50.0");
        assert_eq!(lexed.pragmas[0].span, Span::new(1, 1));
    }

    #[test]
    fn unterminated_block_comment_is_spanned() {
        let err = lex("module m();\n/* torn").unwrap_err();
        assert!(err.message.contains("unterminated block comment"));
        assert_eq!(err.span, Span::new(2, 1));
    }

    #[test]
    fn two_char_operators() {
        let lexed = lex("<= >= == != < >").unwrap();
        let syms: Vec<Sym> = lexed
            .tokens
            .iter()
            .filter_map(|t| match t.tok {
                Tok::Sym(s) => Some(s),
                _ => None,
            })
            .collect();
        assert_eq!(
            syms,
            [
                Sym::LtEq,
                Sym::GtEq,
                Sym::EqEq,
                Sym::NotEq,
                Sym::Lt,
                Sym::Gt
            ]
        );
    }
}
