//! `scald-rtl` — a synthesisable-Verilog frontend for the timing
//! verifier.
//!
//! The SCALD timing verifier (McWilliams, DAC 1980) consumes a
//! directive-annotated netlist; this crate grows the system a second
//! frontend that accepts a synthesisable subset of Verilog and lowers
//! it onto the same primitive model, so real RTL can be checked without
//! hand-translating it:
//!
//! 1. **Lex + parse** ([`parse`]): a hand-written lexer and
//!    recursive-descent parser for modules, vector ports,
//!    `wire`/`reg`/`logic` declarations, `assign`, `always_ff` with
//!    async reset, `always_comb`, `if`/`else`, ternaries, the
//!    bitwise/arithmetic/compare operators, and module instantiation
//!    with named connections. Every diagnostic carries a line/column
//!    [`Span`] and the offending source excerpt.
//! 2. **Elaborate**: the instance hierarchy is flattened onto SCALD
//!    expander paths (`TOP/Child#1/...`) and vectors resolve to the
//!    netlist's symmetric per-bit signal model.
//! 3. **Lower** ([`compile`]): `always_ff` bodies become registers
//!    guarded by setup/hold checkers, `assign`/`always_comb` cones
//!    become gate/CHANGE/mux primitives, and derived clocks
//!    (`assign gclk = clk & en;`) become clock-path gates whose delays
//!    widen the downstream edge-arrival window — which is exactly how
//!    the verifier spots gated-clock races.
//!
//! Timing comes from `// scald:` pragma comments (period, clock and
//! input assertions, per-module `ff`/`comb` delays) with CLI-settable
//! [`Defaults`] for anything unstated, so plain third-party RTL still
//! lowers.
//!
//! ```
//! let src = "
//! // scald: period 50.0
//! module top(input wire clk, input wire d, output reg q);
//!   // scald: input clk .P0-4(0,0)
//!   // scald: input d .S0-6
//!   always_ff @(posedge clk) q <= d;
//! endmodule
//! ";
//! let expansion = scald_rtl::compile(src).expect("compiles");
//! assert_eq!(expansion.stats.prims_emitted, 2); // the reg + its checker
//! ```

#![warn(missing_docs)]

mod ast;
mod elab;
mod error;
mod lower;
mod parser;
mod pragma;
mod token;

pub use ast::{BinOp, Dir, EdgeRef, Expr, Item, Module, Port, SourceFile, Stmt, UnOp};
pub use error::{RtlError, Span};
pub use parser::parse;
pub use pragma::Defaults;
pub use token::{lex, Lexed, RawPragma, Sym, Tok, Token};

use scald_netlist::Netlist;

/// The result of compiling a Verilog source: the lowered netlist, the
/// case-analysis assignments from `// scald: case` pragmas, and
/// compile statistics.
#[derive(Debug)]
pub struct RtlExpansion {
    /// The lowered netlist.
    pub netlist: Netlist,
    /// Case assignments (`signal = value` lists), one per `case` pragma.
    pub cases: Vec<Vec<(String, bool)>>,
    /// Compile statistics.
    pub stats: RtlStats,
}

/// Statistics from one compile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RtlStats {
    /// Modules declared in the file.
    pub modules: usize,
    /// Instances flattened (the top module not counted).
    pub instances_flattened: usize,
    /// Primitives emitted into the netlist.
    pub prims_emitted: usize,
    /// Signals created in the netlist.
    pub signals: usize,
}

/// Compiles Verilog source to a netlist with default timing.
///
/// # Errors
///
/// Returns a spanned [`RtlError`] (with the offending source line
/// attached) for lexical, syntactic, pragma, elaboration or lowering
/// problems.
pub fn compile(src: &str) -> Result<RtlExpansion, RtlError> {
    compile_with(src, &Defaults::default())
}

/// Compiles Verilog source to a netlist, using `defaults` for any
/// timing a `// scald:` pragma does not state.
///
/// # Errors
///
/// See [`compile`].
pub fn compile_with(src: &str, defaults: &Defaults) -> Result<RtlExpansion, RtlError> {
    let run = || -> Result<RtlExpansion, RtlError> {
        let file = parse(src)?;
        let lowered = lower::lower(&file, defaults)?;
        Ok(RtlExpansion {
            netlist: lowered.netlist,
            cases: lowered.cases,
            stats: RtlStats {
                modules: file.modules.len(),
                instances_flattened: lowered.instances,
                prims_emitted: lowered.prims,
                signals: lowered.signals,
            },
        })
    };
    run().map_err(|e| e.attach_source(src))
}
