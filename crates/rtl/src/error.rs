//! Spanned diagnostics with source excerpts.
//!
//! Every failure in the RTL frontend — lexical, syntactic, semantic or
//! lowering — carries the 1-based line/column it points at. The
//! top-level [`compile`](crate::compile) entry point attaches the
//! offending source line so CLI users see a caret under the problem.

use std::fmt;

/// A 1-based source position.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Span {
    /// Line number, starting at 1.
    pub line: u32,
    /// Column number (in characters), starting at 1.
    pub col: u32,
}

impl Span {
    /// A span at the given line and column.
    #[must_use]
    pub fn new(line: u32, col: u32) -> Span {
        Span { line, col }
    }
}

impl fmt::Display for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}, col {}", self.line, self.col)
    }
}

/// An error from the RTL frontend: what went wrong, where, and (once
/// [`attach_source`](RtlError::attach_source) has run) the offending
/// source line.
#[derive(Debug, Clone)]
pub struct RtlError {
    /// Explanation of the failure.
    pub message: String,
    /// Where in the source it points.
    pub span: Span,
    /// The source line the span falls on, when known.
    pub excerpt: Option<String>,
}

impl RtlError {
    /// A new diagnostic at `span` (no excerpt yet).
    #[must_use]
    pub fn new(message: impl Into<String>, span: Span) -> RtlError {
        RtlError {
            message: message.into(),
            span,
            excerpt: None,
        }
    }

    /// Fills in the excerpt from the source text the error came from.
    /// Idempotent; a span past the end of the text leaves no excerpt.
    #[must_use]
    pub fn attach_source(mut self, src: &str) -> RtlError {
        if self.excerpt.is_none() {
            self.excerpt = src
                .lines()
                .nth(self.span.line.saturating_sub(1) as usize)
                .map(str::to_owned);
        }
        self
    }
}

impl fmt::Display for RtlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}: {}", self.span, self.message)?;
        if let Some(excerpt) = &self.excerpt {
            let line = self.span.line;
            let gutter = format!("{line}").len().max(4);
            writeln!(f)?;
            writeln!(f, "{line:>gutter$} | {excerpt}")?;
            let caret_at = (self.span.col.saturating_sub(1)) as usize;
            // Columns count characters, so pad by character count, not
            // bytes, and never run the caret past the excerpt's end.
            let pad = caret_at.min(excerpt.chars().count());
            write!(f, "{:>gutter$} | {:pad$}^", "", "")?;
        }
        Ok(())
    }
}

impl std::error::Error for RtlError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_renders_excerpt_with_caret() {
        let src = "module top;\n  assign y = x;\nendmodule\n";
        let e = RtlError::new("undeclared identifier `x`", Span::new(2, 14)).attach_source(src);
        let text = e.to_string();
        assert!(text.contains("line 2, col 14"));
        assert!(text.contains("  assign y = x;"));
        let caret_line = text.lines().last().unwrap();
        assert_eq!(caret_line.find('^'), Some("   2 | ".len() + 13));
    }

    #[test]
    fn span_past_eof_has_no_excerpt() {
        let e = RtlError::new("unexpected end of file", Span::new(99, 1)).attach_source("x\n");
        assert!(e.excerpt.is_none());
        assert_eq!(e.to_string(), "line 99, col 1: unexpected end of file");
    }
}
