//! `// scald:` timing pragmas — the bridge from bare RTL to the timing
//! assertions the verifier needs.
//!
//! Verilog carries no timing, so the frontend reads it from structured
//! comments. Design-wide configuration lives outside any module:
//!
//! ```text
//! // scald: period 50.0            — clock period in ns
//! // scald: clock_unit 6.25        — ns per assertion clock unit
//! // scald: wire_delay 0.0 2.0     — default interconnect delay (min max)
//! // scald: precision_skew 1.0 1.0 — default skew of .P clocks (minus plus)
//! // scald: clock_skew 5.0 5.0     — default skew of .C clocks
//! // scald: case SEL=0, EN=1       — one case-analysis block (§2.7.1)
//! ```
//!
//! Per-module timing goes inside the module body:
//!
//! ```text
//! // scald: input CLK .P0-4(0,0)   — assertion suffix for a top-level input
//! // scald: ff delay=1.5:4.5 setup=2.5 hold=1.5
//! // scald: comb delay=1.0:3.0
//! ```
//!
//! Every key falls back to [`Defaults`] when absent, so an unannotated
//! `.v` file still verifies (with the S-1-flavoured numbers below).

use crate::error::{RtlError, Span};
use crate::token::RawPragma;

/// Fallback timing used wherever a pragma is absent. The values mirror
/// the S-1 example configuration used throughout the repo: a 50 ns
/// period in 6.25 ns clock units, 0–2 ns interconnect, registers at
/// 1.5–4.5 ns with a 2.5/1.5 ns set-up/hold window, and combinational
/// cones at 1–3 ns.
#[derive(Debug, Clone)]
pub struct Defaults {
    /// Clock period, ns.
    pub period_ns: f64,
    /// Assertion clock unit, ns.
    pub clock_unit_ns: f64,
    /// Default interconnect delay (min, max), ns.
    pub wire_delay_ns: (f64, f64),
    /// Default skew of precision (`.P`) clocks (minus, plus), ns.
    pub precision_skew_ns: (f64, f64),
    /// Default skew of non-precision (`.C`) clocks (minus, plus), ns.
    pub clock_skew_ns: (f64, f64),
    /// Register clock-to-output delay (min, max), ns.
    pub ff_delay_ns: (f64, f64),
    /// Register set-up time, ns.
    pub setup_ns: f64,
    /// Register hold time, ns.
    pub hold_ns: f64,
    /// Combinational primitive delay (min, max), ns.
    pub comb_delay_ns: (f64, f64),
}

impl Default for Defaults {
    fn default() -> Defaults {
        Defaults {
            period_ns: 50.0,
            clock_unit_ns: 6.25,
            wire_delay_ns: (0.0, 2.0),
            precision_skew_ns: (1.0, 1.0),
            clock_skew_ns: (5.0, 5.0),
            ff_delay_ns: (1.5, 4.5),
            setup_ns: 2.5,
            hold_ns: 1.5,
            comb_delay_ns: (1.0, 3.0),
        }
    }
}

/// Design-wide configuration after folding the global pragmas over the
/// defaults.
#[derive(Debug, Clone)]
pub(crate) struct GlobalConfig {
    pub period_ns: f64,
    pub clock_unit_ns: f64,
    pub wire_delay_ns: (f64, f64),
    pub precision_skew_ns: (f64, f64),
    pub clock_skew_ns: (f64, f64),
    /// Case-analysis blocks, one per `case` pragma.
    pub cases: Vec<Vec<(String, bool)>>,
}

/// Per-module timing after folding the module's pragmas over the
/// defaults.
#[derive(Debug, Clone)]
pub(crate) struct ModuleTiming {
    pub ff_delay_ns: (f64, f64),
    pub setup_ns: f64,
    pub hold_ns: f64,
    pub comb_delay_ns: (f64, f64),
    /// `input NAME .SPEC` assertions: name -> (spec, span).
    pub inputs: Vec<(String, String, Span)>,
}

const MODULE_KEYS: [&str; 3] = ["input", "ff", "comb"];
const GLOBAL_KEYS: [&str; 6] = [
    "period",
    "clock_unit",
    "wire_delay",
    "precision_skew",
    "clock_skew",
    "case",
];

/// Folds the file-scoped pragmas into a [`GlobalConfig`].
pub(crate) fn global_config(
    defaults: &Defaults,
    pragmas: &[RawPragma],
) -> Result<GlobalConfig, RtlError> {
    let mut config = GlobalConfig {
        period_ns: defaults.period_ns,
        clock_unit_ns: defaults.clock_unit_ns,
        wire_delay_ns: defaults.wire_delay_ns,
        precision_skew_ns: defaults.precision_skew_ns,
        clock_skew_ns: defaults.clock_skew_ns,
        cases: Vec::new(),
    };
    for pragma in pragmas {
        let (key, rest) = split_key(pragma)?;
        let span = pragma.span;
        match key {
            "period" => {
                config.period_ns = parse_pos_f64(rest, "period", span)?;
            }
            "clock_unit" => {
                config.clock_unit_ns = parse_pos_f64(rest, "clock_unit", span)?;
            }
            "wire_delay" => {
                config.wire_delay_ns = parse_pair(rest, "wire_delay", span)?;
            }
            "precision_skew" => {
                config.precision_skew_ns = parse_pair(rest, "precision_skew", span)?;
            }
            "clock_skew" => {
                config.clock_skew_ns = parse_pair(rest, "clock_skew", span)?;
            }
            "case" => {
                config.cases.push(parse_case(rest, span)?);
            }
            k if MODULE_KEYS.contains(&k) => {
                return Err(RtlError::new(
                    format!(
                        "pragma `{k}` applies per module; move it inside \
                         `module ... endmodule`"
                    ),
                    span,
                ));
            }
            other => {
                return Err(RtlError::new(
                    format!(
                        "unknown pragma `{other}`; design-wide keys are {}",
                        GLOBAL_KEYS.join(", ")
                    ),
                    span,
                ));
            }
        }
    }
    Ok(config)
}

/// Folds one module's pragmas into its [`ModuleTiming`].
pub(crate) fn module_timing(
    defaults: &Defaults,
    pragmas: &[RawPragma],
) -> Result<ModuleTiming, RtlError> {
    let mut timing = ModuleTiming {
        ff_delay_ns: defaults.ff_delay_ns,
        setup_ns: defaults.setup_ns,
        hold_ns: defaults.hold_ns,
        comb_delay_ns: defaults.comb_delay_ns,
        inputs: Vec::new(),
    };
    for pragma in pragmas {
        let (key, rest) = split_key(pragma)?;
        let span = pragma.span;
        match key {
            "input" => {
                let (name, spec) = rest.split_once(char::is_whitespace).ok_or_else(|| {
                    RtlError::new("`input` pragma needs a name and an assertion spec", span)
                })?;
                let spec = spec.trim();
                if !spec.starts_with('.') {
                    return Err(RtlError::new(
                        format!("assertion spec must start with `.`, found `{spec}`"),
                        span,
                    ));
                }
                // Validate the spec now so the diagnostic points at the
                // pragma rather than surfacing later from the netlist.
                let (_, assertion) = scald_assertions::parse_signal_name(&format!("{name} {spec}"))
                    .map_err(|e| RtlError::new(format!("bad assertion spec: {e}"), span))?;
                if assertion.is_none() {
                    return Err(RtlError::new(
                        format!(
                            "bad assertion spec `{spec}`: expected a clock (`.P`/`.C`) or \
                             stability (`.S`) assertion"
                        ),
                        span,
                    ));
                }
                timing.inputs.push((name.to_owned(), spec.to_owned(), span));
            }
            "ff" => {
                for field in rest.split_whitespace() {
                    let (k, v) = split_attr(field, span)?;
                    match k {
                        "delay" => timing.ff_delay_ns = parse_range(v, span)?,
                        "setup" => timing.setup_ns = parse_pos_f64(v, "setup", span)?,
                        "hold" => timing.hold_ns = parse_pos_f64(v, "hold", span)?,
                        other => {
                            return Err(RtlError::new(
                                format!("`ff` pragma has no field `{other}`"),
                                span,
                            ))
                        }
                    }
                }
            }
            "comb" => {
                for field in rest.split_whitespace() {
                    let (k, v) = split_attr(field, span)?;
                    match k {
                        "delay" => timing.comb_delay_ns = parse_range(v, span)?,
                        other => {
                            return Err(RtlError::new(
                                format!("`comb` pragma has no field `{other}`"),
                                span,
                            ))
                        }
                    }
                }
            }
            k if GLOBAL_KEYS.contains(&k) => {
                return Err(RtlError::new(
                    format!("pragma `{k}` is design-wide; move it outside the module"),
                    span,
                ));
            }
            other => {
                return Err(RtlError::new(
                    format!(
                        "unknown pragma `{other}`; per-module keys are {}",
                        MODULE_KEYS.join(", ")
                    ),
                    span,
                ));
            }
        }
    }
    Ok(timing)
}

fn split_key(pragma: &RawPragma) -> Result<(&str, &str), RtlError> {
    let text = pragma.text.trim();
    if text.is_empty() {
        return Err(RtlError::new("empty `// scald:` pragma", pragma.span));
    }
    Ok(match text.split_once(char::is_whitespace) {
        Some((key, rest)) => (key, rest.trim()),
        None => (text, ""),
    })
}

fn split_attr(field: &str, span: Span) -> Result<(&str, &str), RtlError> {
    field
        .split_once('=')
        .ok_or_else(|| RtlError::new(format!("expected `key=value`, found `{field}`"), span))
}

fn parse_f64(text: &str, what: &str, span: Span) -> Result<f64, RtlError> {
    text.trim()
        .parse::<f64>()
        .ok()
        .filter(|v| v.is_finite())
        .ok_or_else(|| RtlError::new(format!("`{what}` expects a number, found `{text}`"), span))
}

fn parse_pos_f64(text: &str, what: &str, span: Span) -> Result<f64, RtlError> {
    let v = parse_f64(text, what, span)?;
    if v < 0.0 {
        return Err(RtlError::new(
            format!("`{what}` must be non-negative, found {v}"),
            span,
        ));
    }
    Ok(v)
}

/// Two whitespace-separated numbers: `0.0 2.0`.
fn parse_pair(text: &str, what: &str, span: Span) -> Result<(f64, f64), RtlError> {
    let mut parts = text.split_whitespace();
    let (Some(a), Some(b), None) = (parts.next(), parts.next(), parts.next()) else {
        return Err(RtlError::new(
            format!("`{what}` expects two numbers (min max), found `{text}`"),
            span,
        ));
    };
    let lo = parse_f64(a, what, span)?;
    let hi = parse_f64(b, what, span)?;
    if lo > hi {
        return Err(RtlError::new(
            format!("`{what}` range {lo}:{hi} has min > max"),
            span,
        ));
    }
    Ok((lo, hi))
}

/// A colon range: `1.5:4.5` (or a single number for a fixed delay).
fn parse_range(text: &str, span: Span) -> Result<(f64, f64), RtlError> {
    let (lo, hi) = match text.split_once(':') {
        Some((a, b)) => (parse_f64(a, "delay", span)?, parse_f64(b, "delay", span)?),
        None => {
            let v = parse_f64(text, "delay", span)?;
            (v, v)
        }
    };
    if lo > hi {
        return Err(RtlError::new(
            format!("delay range {lo}:{hi} has min > max"),
            span,
        ));
    }
    Ok((lo, hi))
}

/// `SIG=0, SIG2=1` -> one case-analysis assignment list.
fn parse_case(text: &str, span: Span) -> Result<Vec<(String, bool)>, RtlError> {
    if text.is_empty() {
        return Err(RtlError::new(
            "`case` pragma needs at least one NAME=0|1 assignment",
            span,
        ));
    }
    let mut assigns = Vec::new();
    for part in text.split(',') {
        let (name, value) = split_attr(part.trim(), span)?;
        let value = match value.trim() {
            "0" => false,
            "1" => true,
            other => {
                return Err(RtlError::new(
                    format!("case value for `{name}` must be 0 or 1, found `{other}`"),
                    span,
                ))
            }
        };
        assigns.push((name.trim().to_owned(), value));
    }
    Ok(assigns)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn raw(text: &str) -> RawPragma {
        RawPragma {
            text: text.to_owned(),
            span: Span::new(1, 1),
        }
    }

    #[test]
    fn defaults_survive_empty_pragma_lists() {
        let d = Defaults::default();
        let g = global_config(&d, &[]).unwrap();
        assert_eq!(g.period_ns, 50.0);
        let t = module_timing(&d, &[]).unwrap();
        assert_eq!(t.ff_delay_ns, (1.5, 4.5));
    }

    #[test]
    fn global_pragmas_override() {
        let g = global_config(
            &Defaults::default(),
            &[
                raw("period 40"),
                raw("wire_delay 0.5 1.5"),
                raw("case S=1, T=0"),
            ],
        )
        .unwrap();
        assert_eq!(g.period_ns, 40.0);
        assert_eq!(g.wire_delay_ns, (0.5, 1.5));
        assert_eq!(g.cases, vec![vec![("S".into(), true), ("T".into(), false)]]);
    }

    #[test]
    fn module_pragmas_parse_attrs_and_inputs() {
        let t = module_timing(
            &Defaults::default(),
            &[
                raw("ff delay=3.0:5.0 setup=2.0 hold=1.0"),
                raw("comb delay=1.5:3.0"),
                raw("input CLK .P0-4(0,0)"),
            ],
        )
        .unwrap();
        assert_eq!(t.ff_delay_ns, (3.0, 5.0));
        assert_eq!(t.setup_ns, 2.0);
        assert_eq!(t.comb_delay_ns, (1.5, 3.0));
        assert_eq!(t.inputs[0].0, "CLK");
        assert_eq!(t.inputs[0].1, ".P0-4(0,0)");
    }

    #[test]
    fn misplaced_and_unknown_keys_are_spanned_errors() {
        let d = Defaults::default();
        let err = global_config(&d, &[raw("ff delay=1:2")]).unwrap_err();
        assert!(err.message.contains("applies per module"));
        let err = module_timing(&d, &[raw("period 50")]).unwrap_err();
        assert!(err.message.contains("design-wide"));
        let err = global_config(&d, &[raw("frobnicate 3")]).unwrap_err();
        assert!(err.message.contains("unknown pragma"));
    }

    #[test]
    fn bad_assertion_spec_is_rejected_at_the_pragma() {
        let err = module_timing(&Defaults::default(), &[raw("input CLK .Q9")]).unwrap_err();
        assert!(err.message.contains("bad assertion spec"), "{err}");
    }
}
