//! Lowering: flatten the instance hierarchy and map elaborated RTL
//! onto the netlist's timing primitives.
//!
//! Naming mirrors the SCALD expander exactly so the two frontends are
//! interchangeable: primitives are `{path}/{kind}#{ordinal}` with
//! per-body per-keyword ordinals, instance paths are
//! `{path}/{Module}#{ordinal}`, and signals are created in connection
//! order (inputs first, then the output). Expression temporaries are
//! `x#{n}`, constant nets `k#{n}`, and the per-body ground net
//! `GND#0` — all under the instance prefix.
//!
//! The timing mapping:
//!
//! * `always_ff` bodies become [`Reg`](PrimKind::Reg) primitives (with
//!   asynchronous SET/RESET when the sensitivity list carries a reset
//!   edge), each guarded by a `SETUP HOLD CHK` built from the module's
//!   `// scald: ff` pragma.
//! * `assign` and `always_comb` cones become gate/CHANGE/mux
//!   primitives carrying the module's `comb` delay.
//! * A derived clock (`assign gclk = clk & en;`) is just the AND gate
//!   it says it is: under the seven-value algebra a gate with one
//!   changing input and stable companions passes the edge through, so
//!   the gate *is* the clock-path primitive and its delay widens the
//!   edge arrival window the checker sees downstream.

use crate::ast::{BinOp, EdgeRef, Expr, Item, Module, SourceFile, Stmt, UnOp};
use crate::elab::{eval_targets, ModuleTable, ProcKind, TargetExpr};
use crate::error::{RtlError, Span};
use crate::pragma::{global_config, module_timing, Defaults, ModuleTiming};
use scald_logic::Value;
use scald_netlist::{Config, Conn, Netlist, NetlistBuilder, PrimKind, SignalId};
use scald_wave::{DelayRange, Time};
use std::collections::HashMap;

/// Maximum instance-nesting depth; a backstop against (transitively)
/// self-instantiating module graphs.
const MAX_DEPTH: usize = 32;

/// The result of lowering a parsed file.
pub(crate) struct Lowered {
    /// The finished netlist.
    pub netlist: Netlist,
    /// Case assignments from `// scald: case` pragmas.
    pub cases: Vec<Vec<(String, bool)>>,
    /// Instances flattened (excluding the top module).
    pub instances: usize,
    /// Primitives emitted.
    pub prims: usize,
    /// Signals created.
    pub signals: usize,
}

/// Lowers a parsed source file into a netlist.
pub(crate) fn lower(file: &SourceFile, defaults: &Defaults) -> Result<Lowered, RtlError> {
    let global = global_config(defaults, &file.global_pragmas)?;
    let config = Config {
        timing: scald_assertions::TimingContext {
            period: Time::from_ns(global.period_ns),
            clock_unit: Time::from_ns(global.clock_unit_ns),
            precision_skew: scald_wave::Skew::from_ns(
                global.precision_skew_ns.0,
                global.precision_skew_ns.1,
            ),
            nonprecision_skew: scald_wave::Skew::from_ns(
                global.clock_skew_ns.0,
                global.clock_skew_ns.1,
            ),
        },
        default_wire_delay: DelayRange::from_ns(global.wire_delay_ns.0, global.wire_delay_ns.1),
    };
    let table = ModuleTable::new(&file.modules)?;
    let top = table.top(&file.modules)?;
    let mut lw = Lowerer {
        builder: NetlistBuilder::new(config),
        table: &table,
        defaults,
        asserted: HashMap::new(),
        driven: HashMap::new(),
        instances: 0,
    };
    lw.walk_module(top, "TOP".to_owned(), String::new(), HashMap::new(), 0)?;
    let prims = lw.builder.prim_count();
    let signals = lw.builder.signal_count();
    let netlist = lw
        .builder
        .finish()
        .map_err(|e| RtlError::new(format!("netlist validation failed: {e}"), Span::new(1, 1)))?;
    Ok(Lowered {
        netlist,
        cases: global.cases,
        instances: lw.instances,
        prims,
        signals,
    })
}

/// Per-instance lowering context: flat naming, declared widths, and the
/// per-body ordinal/temporary counters.
struct Ctx {
    /// Module name, for diagnostics.
    module_name: String,
    /// Flat instance path (`TOP`, `TOP/Child#1`, ...).
    path: String,
    /// Prefix for local nets (`""` at top, `"TOP/Child#1/"` below).
    prefix: String,
    /// Declared local names → (width, declaration span).
    widths: HashMap<String, (u32, Span)>,
    /// Port name → flat parent net, for connected ports.
    bindings: HashMap<String, String>,
    /// Module timing pragmas.
    timing: ModuleTiming,
    /// Per-keyword primitive/instance ordinals.
    ordinals: HashMap<String, usize>,
    /// Expression-temporary counter (`x#{n}`).
    temp_n: usize,
    /// Constant-net counter (`k#{n}`).
    const_n: usize,
    /// The body's ground net, created on first use.
    gnd: Option<Conn>,
}

impl Ctx {
    /// The flat netlist name of a local identifier.
    fn flat(&self, local: &str) -> String {
        match self.bindings.get(local) {
            Some(bound) => bound.clone(),
            None => format!("{}{}", self.prefix, local),
        }
    }

    /// Declared width of a local identifier.
    fn width_of(&self, name: &str, span: Span) -> Result<u32, RtlError> {
        self.widths
            .get(name)
            .map(|&(w, _)| w)
            .ok_or_else(|| RtlError::new(format!("undeclared identifier `{name}`"), span))
    }
}

fn next_ordinal(ordinals: &mut HashMap<String, usize>, key: &str) -> usize {
    let n = ordinals.entry(key.to_owned()).or_insert(0);
    *n += 1;
    *n
}

struct Lowerer<'a> {
    builder: NetlistBuilder,
    table: &'a ModuleTable<'a>,
    defaults: &'a Defaults,
    /// Flat base name → full name with assertion suffix, from top-level
    /// `// scald: input` pragmas.
    asserted: HashMap<String, String>,
    /// Flat base name → span of its first driver.
    driven: HashMap<String, Span>,
    instances: usize,
}

impl Lowerer<'_> {
    /// The full netlist name (base plus assertion suffix, if any).
    fn full(&self, flat: &str) -> String {
        match self.asserted.get(flat) {
            Some(full) => full.clone(),
            None => flat.to_owned(),
        }
    }

    /// Resolves a local identifier to its netlist signal.
    fn signal_ref(
        &mut self,
        ctx: &Ctx,
        name: &str,
        span: Span,
    ) -> Result<(SignalId, u32), RtlError> {
        let w = ctx.width_of(name, span)?;
        let full = self.full(&ctx.flat(name));
        let sid = self
            .builder
            .signal_vec(&full, w)
            .map_err(|e| RtlError::new(e.to_string(), span))?;
        Ok((sid, w))
    }

    /// Records a driver of `target`, rejecting multiple drivers.
    fn check_driven(&mut self, ctx: &Ctx, target: &str, span: Span) -> Result<(), RtlError> {
        let flat = ctx.flat(target);
        if let Some(first) = self.driven.insert(flat, span) {
            return Err(RtlError::new(
                format!(
                    "`{target}` is driven more than once (first driver at line {})",
                    first.line
                ),
                span,
            ));
        }
        Ok(())
    }

    fn prim_name(&self, ctx: &mut Ctx, kw: &str) -> String {
        let n = next_ordinal(&mut ctx.ordinals, kw);
        format!("{}/{}#{}", ctx.path, kw, n)
    }

    fn comb_delay(&self, ctx: &Ctx) -> DelayRange {
        DelayRange::from_ns(ctx.timing.comb_delay_ns.0, ctx.timing.comb_delay_ns.1)
    }

    /// Infers the width of `expr`; `None` means a flexible (unsized,
    /// context-determined) literal.
    fn infer(&self, ctx: &Ctx, expr: &Expr) -> Result<Option<u32>, RtlError> {
        match expr {
            Expr::Ident { name, span } => Ok(Some(ctx.width_of(name, *span)?)),
            Expr::Literal { width, .. } => Ok(*width),
            Expr::Unary { operand, .. } => self.infer(ctx, operand),
            Expr::Binary { op, lhs, rhs, span } => {
                let l = self.infer(ctx, lhs)?;
                let r = self.infer(ctx, rhs)?;
                let w = unify(l, r, *span)?;
                Ok(if op.is_compare() { Some(1) } else { w })
            }
            Expr::Ternary {
                cond,
                then,
                els,
                span,
            } => {
                let c = self.infer(ctx, cond)?;
                unify(c, Some(1), cond.span())?;
                let t = self.infer(ctx, then)?;
                let e = self.infer(ctx, els)?;
                unify(t, e, *span)
            }
        }
    }

    /// Checks that `expr` is width-compatible with `target`; returns the
    /// target's width.
    fn check_assign_width(
        &self,
        ctx: &Ctx,
        target: &str,
        target_span: Span,
        expr: &Expr,
    ) -> Result<u32, RtlError> {
        let tw = ctx.width_of(target, target_span)?;
        if let Some(ew) = self.infer(ctx, expr)? {
            if ew != tw {
                return Err(RtlError::new(
                    format!(
                        "width mismatch: {tw}-bit `{target}` is assigned a {ew}-bit expression"
                    ),
                    expr.span(),
                ));
            }
        }
        Ok(tw)
    }

    /// Lowers `expr` to a connection, materialising a temporary net for
    /// anything that is not a (possibly inverted) identifier.
    fn lower_operand(&mut self, ctx: &mut Ctx, expr: &Expr, want: u32) -> Result<Conn, RtlError> {
        match expr {
            Expr::Ident { name, span } => {
                let (sid, _) = self.signal_ref(ctx, name, *span)?;
                Ok(Conn::new(sid))
            }
            // `~`/`!` cost nothing: they become inverted connections,
            // the netlist's native complemented-input form.
            Expr::Unary {
                op: UnOp::Not,
                operand,
                ..
            } => Ok(self.lower_operand(ctx, operand, want)?.inverted()),
            Expr::Literal { value, width, span } => {
                let w = width.unwrap_or(want);
                ctx.const_n += 1;
                let name = format!("{}k#{}", ctx.prefix, ctx.const_n);
                let sid = self
                    .builder
                    .signal_vec(&name, w)
                    .map_err(|e| RtlError::new(e.to_string(), *span))?;
                let (kw, value) = if *value == 0 {
                    ("const0", Value::Zero)
                } else {
                    ("const1", Value::One)
                };
                let prim = self.prim_name(ctx, kw);
                self.builder.constant(prim, value, sid);
                Ok(Conn::new(sid))
            }
            _ => {
                let w = self.infer(ctx, expr)?.unwrap_or(want);
                ctx.temp_n += 1;
                let name = format!("{}x#{}", ctx.prefix, ctx.temp_n);
                let sid = self.lower_into(ctx, expr, &name, w)?;
                Ok(Conn::new(sid))
            }
        }
    }

    /// The body's lazily created ground net (`GND#0` driven by a
    /// `const0`), shared by every reset in the body.
    fn ensure_gnd(&mut self, ctx: &mut Ctx, span: Span) -> Result<Conn, RtlError> {
        if let Some(conn) = &ctx.gnd {
            return Ok(conn.clone());
        }
        let name = format!("{}GND#0", ctx.prefix);
        let sid = self
            .builder
            .signal_vec(&name, 1)
            .map_err(|e| RtlError::new(e.to_string(), span))?;
        let prim = self.prim_name(ctx, "const0");
        self.builder.constant(prim, Value::Zero, sid);
        let conn = Conn::new(sid);
        ctx.gnd = Some(conn.clone());
        Ok(conn)
    }

    /// Lowers `expr` into the signal `out_full`, creating operand
    /// connections first and the output signal last (the expander's
    /// creation order). Returns the output's id.
    fn lower_into(
        &mut self,
        ctx: &mut Ctx,
        expr: &Expr,
        out_full: &str,
        out_w: u32,
    ) -> Result<SignalId, RtlError> {
        let delay = self.comb_delay(ctx);
        let out = |lw: &mut Self, span: Span| {
            lw.builder
                .signal_vec(out_full, out_w)
                .map_err(|e| RtlError::new(e.to_string(), span))
        };
        match expr {
            Expr::Literal { value, span, .. } => {
                let sid = out(self, *span)?;
                let (kw, value) = if *value == 0 {
                    ("const0", Value::Zero)
                } else {
                    ("const1", Value::One)
                };
                let prim = self.prim_name(ctx, kw);
                self.builder.constant(prim, value, sid);
                Ok(sid)
            }
            Expr::Ident { span, .. } => {
                let conn = self.lower_operand(ctx, expr, out_w)?;
                let sid = out(self, *span)?;
                let name = self.prim_name(ctx, "buf");
                self.builder.buf(name, delay, conn, sid);
                Ok(sid)
            }
            Expr::Unary {
                op: UnOp::Not,
                operand,
                span,
            } => {
                let conn = self.lower_operand(ctx, operand, out_w)?;
                let sid = out(self, *span)?;
                let name = self.prim_name(ctx, "not");
                self.builder.not(name, delay, conn, sid);
                Ok(sid)
            }
            Expr::Binary { op, span, .. } if op.is_gate() => {
                let mut operands = Vec::new();
                flatten_gate(*op, expr, &mut operands);
                let conns = operands
                    .iter()
                    .map(|e| self.lower_operand(ctx, e, out_w))
                    .collect::<Result<Vec<_>, _>>()?;
                let sid = out(self, *span)?;
                let (kw, kind) = match op {
                    BinOp::And => ("and", PrimKind::And),
                    BinOp::Or => ("or", PrimKind::Or),
                    _ => ("xor", PrimKind::Xor),
                };
                let name = self.prim_name(ctx, kw);
                self.builder.gate(name, kind, delay, conns, sid);
                Ok(sid)
            }
            // Arithmetic, comparisons and negation: a CHANGE cone over
            // the maximal non-gate subtree (§2.4.2 — complex logic has
            // no per-value model, only "an output change follows an
            // input change").
            Expr::Unary { .. } | Expr::Binary { .. } => {
                let operand_w = chg_operand_width(self, ctx, expr)?.unwrap_or(1);
                let mut leaves = Vec::new();
                flatten_chg(expr, &mut leaves);
                let conns = leaves
                    .iter()
                    .map(|e| self.lower_operand(ctx, e, operand_w))
                    .collect::<Result<Vec<_>, _>>()?;
                let sid = out(self, expr.span())?;
                let name = self.prim_name(ctx, "chg");
                self.builder.chg(name, delay, conns, sid);
                Ok(sid)
            }
            Expr::Ternary {
                cond,
                then,
                els,
                span,
            } => {
                let select = self.lower_operand(ctx, cond, 1)?;
                let d0 = self.lower_operand(ctx, els, out_w)?;
                let d1 = self.lower_operand(ctx, then, out_w)?;
                let sid = out(self, *span)?;
                let name = self.prim_name(ctx, "mux");
                self.builder.mux2(name, delay, select, d0, d1, sid);
                Ok(sid)
            }
        }
    }

    /// Lowers one `always_ff` process.
    fn lower_ff(
        &mut self,
        ctx: &mut Ctx,
        clock: &EdgeRef,
        reset: Option<&EdgeRef>,
        body: &Stmt,
        span: Span,
    ) -> Result<(), RtlError> {
        let (targets, reset_values) = match reset {
            Some(rst) => split_async_reset(rst, body, span)?,
            None => (eval_targets(body, ProcKind::Ff)?, Vec::new()),
        };
        for (target, tspan, expr) in &targets {
            let tw = self.check_assign_width(ctx, target, *tspan, expr)?;
            self.check_driven(ctx, target, *tspan)?;

            // Creation order mirrors the expander's twin statements:
            // data temporaries, the ground net, then the register's
            // connections (clock, data, set, reset) and its output.
            let data = self.lower_operand(ctx, expr, tw)?;
            let reset_wiring = match reset {
                Some(rst) => {
                    let value = reset_values
                        .iter()
                        .find(|(t, _, _)| t == target)
                        .map(|&(_, vspan, v)| (vspan, v))
                        .ok_or_else(|| {
                            RtlError::new(
                                format!(
                                    "register `{target}` is missing an assignment in \
                                     the reset branch"
                                ),
                                *tspan,
                            )
                        })?;
                    let gnd = self.ensure_gnd(ctx, span)?;
                    Some((rst, value, gnd))
                }
                None => None,
            };
            let (clock_sid, cw) = self.signal_ref(ctx, &clock.signal, clock.span)?;
            if cw != 1 {
                return Err(RtlError::new(
                    format!("clock `{}` must be 1 bit wide, not {cw}", clock.signal),
                    clock.span,
                ));
            }
            let mut clock_conn = Conn::new(clock_sid);
            if !clock.posedge {
                clock_conn = clock_conn.inverted();
            }
            let reset_conns = match reset_wiring {
                Some((rst, (vspan, value), gnd)) => {
                    let (rsid, rw) = self.signal_ref(ctx, &rst.signal, rst.span)?;
                    if rw != 1 {
                        return Err(RtlError::new(
                            format!("reset `{}` must be 1 bit wide, not {rw}", rst.signal),
                            rst.span,
                        ));
                    }
                    let mut rconn = Conn::new(rsid);
                    if !rst.posedge {
                        rconn = rconn.inverted();
                    }
                    // Reset-to-0 wires the RESET pin, anything else the
                    // SET pin; the unused pin is grounded.
                    Some(if value == 0 {
                        (gnd, rconn)
                    } else {
                        if tw > 1 && value != (1 << tw) - 1 {
                            return Err(RtlError::new(
                                format!(
                                    "reset value {value} of `{target}` is neither all-zeros \
                                     nor all-ones; the vector register model resets \
                                     symmetrically"
                                ),
                                vspan,
                            ));
                        }
                        (rconn, gnd)
                    })
                }
                None => None,
            };
            let qfull = self.full(&ctx.flat(target));
            let qsid = self
                .builder
                .signal_vec(&qfull, tw)
                .map_err(|e| RtlError::new(e.to_string(), *tspan))?;
            let ff_delay = DelayRange::from_ns(ctx.timing.ff_delay_ns.0, ctx.timing.ff_delay_ns.1);
            match reset_conns {
                Some((set, rconn)) => {
                    let name = self.prim_name(ctx, "reg_sr");
                    self.builder.reg_sr(
                        name,
                        ff_delay,
                        clock_conn.clone(),
                        data.clone(),
                        set,
                        rconn,
                        qsid,
                    );
                }
                None => {
                    let name = self.prim_name(ctx, "reg");
                    self.builder
                        .reg(name, ff_delay, clock_conn.clone(), data.clone(), qsid);
                }
            }
            let name = self.prim_name(ctx, "setup_hold");
            self.builder.setup_hold(
                name,
                Time::from_ns(ctx.timing.setup_ns),
                Time::from_ns(ctx.timing.hold_ns),
                data,
                clock_conn,
            );
        }
        Ok(())
    }

    /// Lowers one module body under the given flat path and port
    /// bindings, recursing into instances.
    fn walk_module(
        &mut self,
        module: &Module,
        path: String,
        prefix: String,
        bindings: HashMap<String, String>,
        depth: usize,
    ) -> Result<(), RtlError> {
        if depth > MAX_DEPTH {
            return Err(RtlError::new(
                format!(
                    "instance nesting deeper than {MAX_DEPTH} at `{}`; is the module \
                     graph recursive?",
                    module.name
                ),
                module.span,
            ));
        }
        let timing = module_timing(self.defaults, &module.pragmas)?;

        let mut widths: HashMap<String, (u32, Span)> = HashMap::new();
        let mut declare = |name: &str, width: u32, span: Span| -> Result<(), RtlError> {
            if let Some(&(_, first)) = widths.get(name) {
                return Err(RtlError::new(
                    format!(
                        "duplicate declaration of `{name}` (first declared at line {})",
                        first.line
                    ),
                    span,
                ));
            }
            widths.insert(name.to_owned(), (width, span));
            Ok(())
        };
        for port in &module.ports {
            declare(&port.name, port.width, port.span)?;
        }
        for item in &module.items {
            if let Item::Net { name, width, span } = item {
                declare(name, *width, *span)?;
            }
        }

        let mut ctx = Ctx {
            module_name: module.name.clone(),
            path,
            prefix,
            widths,
            bindings,
            timing,
            ordinals: HashMap::new(),
            temp_n: 0,
            const_n: 0,
            gnd: None,
        };

        // Top-level `// scald: input` pragmas pin assertion specs onto
        // the design's inputs; every later reference uses the full name.
        for (name, spec, pspan) in ctx.timing.inputs.clone() {
            if depth != 0 {
                return Err(RtlError::new(
                    "input assertion pragmas apply to the top module only; inner \
                     modules see their parent's signals",
                    pspan,
                ));
            }
            let is_input = module
                .ports
                .iter()
                .any(|p| p.name == name && p.dir == crate::ast::Dir::Input);
            if !is_input {
                return Err(RtlError::new(
                    format!(
                        "input pragma names `{name}`, which is not an input port of \
                         `{}`",
                        ctx.module_name
                    ),
                    pspan,
                ));
            }
            let flat = ctx.flat(&name);
            let full = format!("{flat} {spec}");
            if let Some(prior) = self.asserted.insert(flat, full) {
                return Err(RtlError::new(
                    format!("`{name}` already has an assertion pragma (`{prior}`)"),
                    pspan,
                ));
            }
        }

        for item in &module.items {
            match item {
                Item::Net { .. } => {}
                Item::Assign {
                    target,
                    target_span,
                    expr,
                    ..
                } => {
                    let tw = self.check_assign_width(&ctx, target, *target_span, expr)?;
                    self.check_driven(&ctx, target, *target_span)?;
                    let out_full = self.full(&ctx.flat(target));
                    self.lower_into(&mut ctx, expr, &out_full, tw)?;
                }
                Item::AlwaysComb { body, .. } => {
                    let targets = eval_targets(body, ProcKind::Comb)?;
                    for (target, tspan, expr) in &targets {
                        let tw = self.check_assign_width(&ctx, target, *tspan, expr)?;
                        self.check_driven(&ctx, target, *tspan)?;
                        let out_full = self.full(&ctx.flat(target));
                        self.lower_into(&mut ctx, expr, &out_full, tw)?;
                    }
                }
                Item::AlwaysFf {
                    clock,
                    reset,
                    body,
                    span,
                } => {
                    self.lower_ff(&mut ctx, clock, reset.as_ref(), body, *span)?;
                }
                Item::Instance {
                    module: child_name,
                    conns,
                    span,
                    ..
                } => {
                    let child = self.table.get(child_name).ok_or_else(|| {
                        RtlError::new(format!("unknown module `{child_name}`"), *span)
                    })?;
                    let n = next_ordinal(&mut ctx.ordinals, child_name);
                    let inst_path = format!("{}/{}#{}", ctx.path, child_name, n);
                    let mut child_bindings: HashMap<String, String> = HashMap::new();
                    for (port, net, cspan) in conns {
                        let cp = child
                            .ports
                            .iter()
                            .find(|p| &p.name == port)
                            .ok_or_else(|| {
                                RtlError::new(
                                    format!("module `{child_name}` has no port `{port}`"),
                                    *cspan,
                                )
                            })?;
                        if child_bindings.contains_key(port) {
                            return Err(RtlError::new(
                                format!("port `{port}` is connected twice"),
                                *cspan,
                            ));
                        }
                        let w = ctx.width_of(net, *cspan)?;
                        if w != cp.width {
                            return Err(RtlError::new(
                                format!(
                                    "width mismatch: port `{port}` of `{child_name}` is \
                                     {}-bit but `{net}` is {w}-bit",
                                    cp.width
                                ),
                                *cspan,
                            ));
                        }
                        child_bindings.insert(port.clone(), ctx.flat(net));
                    }
                    for p in &child.ports {
                        if p.dir == crate::ast::Dir::Input && !child_bindings.contains_key(&p.name)
                        {
                            return Err(RtlError::new(
                                format!("input port `{}` of `{child_name}` is unconnected", p.name),
                                *span,
                            ));
                        }
                    }
                    self.instances += 1;
                    let child_prefix = format!("{inst_path}/");
                    self.walk_module(child, inst_path, child_prefix, child_bindings, depth + 1)?;
                }
            }
        }
        Ok(())
    }
}

/// Unifies two inferred widths; `None` (a flexible literal) defers.
fn unify(a: Option<u32>, b: Option<u32>, span: Span) -> Result<Option<u32>, RtlError> {
    match (a, b) {
        (Some(x), Some(y)) if x != y => Err(RtlError::new(
            format!("width mismatch: {x}-bit vs {y}-bit operands"),
            span,
        )),
        (Some(x), _) => Ok(Some(x)),
        (None, y) => Ok(y),
    }
}

/// Collects the operands of a same-operator gate tree (`a & b & c`)
/// into one n-ary gate.
fn flatten_gate<'e>(op: BinOp, expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary {
            op: o, lhs, rhs, ..
        } if *o == op => {
            flatten_gate(op, lhs, out);
            flatten_gate(op, rhs, out);
        }
        _ => out.push(expr),
    }
}

/// Collects the leaves of a maximal non-gate (arithmetic/compare/negate)
/// subtree; the whole cone becomes one CHANGE primitive.
fn flatten_chg<'e>(expr: &'e Expr, out: &mut Vec<&'e Expr>) {
    match expr {
        Expr::Binary { op, lhs, rhs, .. } if !op.is_gate() => {
            flatten_chg(lhs, out);
            flatten_chg(rhs, out);
        }
        Expr::Unary {
            op: UnOp::Neg,
            operand,
            ..
        } => flatten_chg(operand, out),
        _ => out.push(expr),
    }
}

/// The operand width of a CHANGE cone: for comparisons the unified
/// operand width (the result is 1 bit), otherwise the cone's own width.
fn chg_operand_width(lw: &Lowerer<'_>, ctx: &Ctx, expr: &Expr) -> Result<Option<u32>, RtlError> {
    if let Expr::Binary { op, lhs, rhs, span } = expr {
        if op.is_compare() {
            let l = lw.infer(ctx, lhs)?;
            let r = lw.infer(ctx, rhs)?;
            return unify(l, r, *span);
        }
    }
    lw.infer(ctx, expr)
}

/// A register's reset assignment: target name, its span, and the
/// literal value it resets to.
type ResetValue = (String, Span, u64);

/// Validates the canonical async-reset shape — `if (rst) <literal
/// resets> else <clocked body>` — returning the clocked targets and the
/// per-register reset values.
fn split_async_reset(
    rst: &EdgeRef,
    body: &Stmt,
    span: Span,
) -> Result<(Vec<TargetExpr>, Vec<ResetValue>), RtlError> {
    let stmt = unwrap_single(body);
    let Stmt::If {
        cond,
        then,
        els,
        span: if_span,
    } = stmt
    else {
        return Err(RtlError::new(
            format!(
                "with `{} {}` in the sensitivity list, the body must start with \
                 `if ({}{})` handling the reset",
                if rst.posedge { "posedge" } else { "negedge" },
                rst.signal,
                if rst.posedge { "" } else { "!" },
                rst.signal,
            ),
            span,
        ));
    };
    let cond_matches = match cond {
        Expr::Ident { name, .. } => rst.posedge && *name == rst.signal,
        Expr::Unary {
            op: UnOp::Not,
            operand,
            ..
        } => !rst.posedge && matches!(&**operand, Expr::Ident { name, .. } if *name == rst.signal),
        _ => false,
    };
    if !cond_matches {
        return Err(RtlError::new(
            format!(
                "the reset branch must test exactly the reset signal: `if ({}{})`",
                if rst.posedge { "" } else { "!" },
                rst.signal
            ),
            cond.span(),
        ));
    }
    let Some(els) = els else {
        return Err(RtlError::new(
            "async-reset always_ff needs an `else` branch with the clocked assignments",
            *if_span,
        ));
    };
    let mut reset_values = Vec::new();
    collect_resets(then, &mut reset_values)?;
    let targets = eval_targets(els, ProcKind::Ff)?;
    for (t, s, _) in &reset_values {
        if !targets.iter().any(|(name, _, _)| name == t) {
            return Err(RtlError::new(
                format!("register `{t}` is assigned only in the reset branch"),
                *s,
            ));
        }
    }
    Ok((targets, reset_values))
}

/// Unwraps `begin ... end` blocks containing a single statement.
fn unwrap_single(stmt: &Stmt) -> &Stmt {
    match stmt {
        Stmt::Block(inner) if inner.len() == 1 => unwrap_single(&inner[0]),
        other => other,
    }
}

/// Collects `target <= literal;` pairs from a reset branch.
fn collect_resets(stmt: &Stmt, out: &mut Vec<(String, Span, u64)>) -> Result<(), RtlError> {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                collect_resets(s, out)?;
            }
            Ok(())
        }
        Stmt::If { span, .. } => Err(RtlError::new(
            "conditional reset values are not supported; the reset branch must be \
             plain `target <= literal;` assignments",
            *span,
        )),
        Stmt::Assign {
            target,
            target_span,
            nonblocking,
            expr,
            span,
        } => {
            if !nonblocking {
                return Err(RtlError::new(
                    format!("blocking assignment to `{target}` in always_ff; registers use `<=`"),
                    *span,
                ));
            }
            let Expr::Literal { value, .. } = expr else {
                return Err(RtlError::new(
                    format!("reset value of `{target}` must be a literal constant"),
                    expr.span(),
                ));
            };
            out.push((target.clone(), *target_span, *value));
            Ok(())
        }
    }
}
