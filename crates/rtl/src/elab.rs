//! Elaboration support: the module table, top-module selection, and the
//! symbolic evaluation that turns a process body into one expression
//! per assigned register/net.
//!
//! The symbolic evaluator is the principled always-block semantics the
//! lowering relies on (after Lööw's simulation semantics of
//! synthesisable Verilog): walk the statements in order keeping, for
//! every target, the expression it would hold at the end of the body.
//! `if`/`else` merges become ternaries (lowered to multiplexers); in an
//! `always_ff` a branch that leaves a target unassigned holds its old
//! value, while in `always_comb` it is a latch-inference error.

use crate::ast::{Expr, Module, Stmt};
use crate::error::{RtlError, Span};
use std::collections::{HashMap, HashSet};

/// All modules of a file, indexed by name.
pub(crate) struct ModuleTable<'a> {
    by_name: HashMap<&'a str, &'a Module>,
}

impl<'a> ModuleTable<'a> {
    /// Indexes the modules, rejecting duplicate names.
    pub(crate) fn new(modules: &'a [Module]) -> Result<ModuleTable<'a>, RtlError> {
        let mut by_name = HashMap::new();
        for module in modules {
            if by_name.insert(module.name.as_str(), module).is_some() {
                return Err(RtlError::new(
                    format!("duplicate module `{}`", module.name),
                    module.span,
                ));
            }
        }
        Ok(ModuleTable { by_name })
    }

    /// Looks up a module by name.
    pub(crate) fn get(&self, name: &str) -> Option<&'a Module> {
        self.by_name.get(name).copied()
    }

    /// Picks the top module: the unique module no other module
    /// instantiates.
    pub(crate) fn top(&self, modules: &'a [Module]) -> Result<&'a Module, RtlError> {
        if modules.is_empty() {
            return Err(RtlError::new(
                "the file declares no modules",
                Span::new(1, 1),
            ));
        }
        let mut instantiated: HashSet<&str> = HashSet::new();
        for module in modules {
            for item in &module.items {
                if let crate::ast::Item::Instance { module: child, .. } = item {
                    instantiated.insert(child.as_str());
                }
            }
        }
        let candidates: Vec<&'a Module> = modules
            .iter()
            .filter(|m| !instantiated.contains(m.name.as_str()))
            .collect();
        match candidates.as_slice() {
            [] => Err(RtlError::new(
                "no top module: every module is instantiated (instantiation cycle?)",
                modules[0].span,
            )),
            [top] => Ok(top),
            [first, second, ..] => Err(RtlError::new(
                format!(
                    "ambiguous top module: both `{}` and `{}` are uninstantiated",
                    first.name, second.name
                ),
                second.span,
            )),
        }
    }
}

/// Which kind of process a body belongs to; controls the assignment
/// discipline and the unassigned-branch semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ProcKind {
    /// `always_ff`: non-blocking assignments, unassigned targets hold.
    Ff,
    /// `always_comb`: blocking assignments, unassigned targets are a
    /// latch-inference error.
    Comb,
}

/// One resolved target: name, span of its first assignment, and the
/// expression it holds at the end of the body.
pub(crate) type TargetExpr = (String, Span, Expr);

/// Symbolically evaluates a process body into one expression per
/// target, in first-assignment order.
///
/// # Errors
///
/// Wrong assignment operator for the process kind, or (for
/// `always_comb`) a target not assigned on every path.
pub(crate) fn eval_targets(body: &Stmt, kind: ProcKind) -> Result<Vec<TargetExpr>, RtlError> {
    let mut env: Env = Vec::new();
    let mut touched = Vec::new();
    walk(body, kind, &mut env, &mut touched)?;
    Ok(env)
}

type Env = Vec<TargetExpr>;

fn get<'e>(env: &'e Env, target: &str) -> Option<&'e Expr> {
    env.iter()
        .find(|(name, _, _)| name == target)
        .map(|(_, _, e)| e)
}

fn set(env: &mut Env, target: &str, span: Span, expr: Expr) {
    match env.iter_mut().find(|(name, _, _)| name == target) {
        Some(slot) => slot.2 = expr,
        None => env.push((target.to_owned(), span, expr)),
    }
}

fn touch(touched: &mut Vec<String>, target: &str) {
    if !touched.iter().any(|t| t == target) {
        touched.push(target.to_owned());
    }
}

fn walk(
    stmt: &Stmt,
    kind: ProcKind,
    env: &mut Env,
    touched: &mut Vec<String>,
) -> Result<(), RtlError> {
    match stmt {
        Stmt::Block(stmts) => {
            for s in stmts {
                walk(s, kind, env, touched)?;
            }
            Ok(())
        }
        Stmt::Assign {
            target,
            target_span,
            nonblocking,
            expr,
            span,
        } => {
            match kind {
                ProcKind::Ff if !nonblocking => {
                    return Err(RtlError::new(
                        format!(
                            "blocking assignment to `{target}` in always_ff; \
                             registers use `<=`"
                        ),
                        *span,
                    ))
                }
                ProcKind::Comb if *nonblocking => {
                    return Err(RtlError::new(
                        format!(
                            "non-blocking assignment to `{target}` in always_comb; \
                             combinational logic uses `=`"
                        ),
                        *span,
                    ))
                }
                _ => {}
            }
            set(env, target, *target_span, expr.clone());
            touch(touched, target);
            Ok(())
        }
        Stmt::If {
            cond,
            then,
            els,
            span,
        } => {
            let mut env_t = env.clone();
            let mut touched_t = Vec::new();
            walk(then, kind, &mut env_t, &mut touched_t)?;
            let mut env_e = env.clone();
            let mut touched_e = Vec::new();
            if let Some(els) = els {
                walk(els, kind, &mut env_e, &mut touched_e)?;
            }
            // Merge in first-touch order: branch targets become
            // ternaries selecting between the two branch values.
            let mut union = touched_t.clone();
            for t in &touched_e {
                if !union.iter().any(|u| u == t) {
                    union.push(t.clone());
                }
            }
            for target in union {
                let value_of = |branch: &Env| -> Result<Expr, RtlError> {
                    if let Some(e) = get(branch, &target) {
                        return Ok(e.clone());
                    }
                    match kind {
                        // Unassigned in this branch: the register holds.
                        ProcKind::Ff => Ok(Expr::Ident {
                            name: target.clone(),
                            span: *span,
                        }),
                        ProcKind::Comb => Err(RtlError::new(
                            format!(
                                "in always_comb, `{target}` is not assigned on every \
                                 path (latch inferred); assign it in both branches \
                                 or give it a default"
                            ),
                            *span,
                        )),
                    }
                };
                let then_value = value_of(&env_t)?;
                let else_value = value_of(&env_e)?;
                let span_of = env_t
                    .iter()
                    .chain(env_e.iter())
                    .find(|(name, _, _)| *name == target)
                    .map_or(*span, |(_, s, _)| *s);
                set(
                    env,
                    &target,
                    span_of,
                    Expr::Ternary {
                        cond: Box::new(cond.clone()),
                        then: Box::new(then_value),
                        els: Box::new(else_value),
                        span: *span,
                    },
                );
                touch(touched, &target);
            }
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn body_of(src: &str) -> (Stmt, ProcKind) {
        let file = parse(src).unwrap();
        match file
            .modules
            .into_iter()
            .next()
            .unwrap()
            .items
            .into_iter()
            .next()
            .unwrap()
        {
            crate::ast::Item::AlwaysFf { body, .. } => (body, ProcKind::Ff),
            crate::ast::Item::AlwaysComb { body, .. } => (body, ProcKind::Comb),
            other => panic!("unexpected item {other:?}"),
        }
    }

    #[test]
    fn enable_pattern_becomes_hold_mux() {
        let (body, kind) = body_of(
            "module m(input wire c, input wire en, input wire d, output reg q);\n\
             always_ff @(posedge c) if (en) q <= d;\nendmodule\n",
        );
        let targets = eval_targets(&body, kind).unwrap();
        assert_eq!(targets.len(), 1);
        let Expr::Ternary { els, .. } = &targets[0].2 else {
            panic!("expected a mux: {targets:?}")
        };
        assert!(matches!(&**els, Expr::Ident { name, .. } if name == "q"));
    }

    #[test]
    fn comb_missing_branch_is_latch_error() {
        let (body, kind) = body_of(
            "module m(input wire en, input wire d, output wire y);\n\
             always_comb if (en) y = d;\nendmodule\n",
        );
        let err = eval_targets(&body, kind).unwrap_err();
        assert!(err.message.contains("latch inferred"), "{err}");
    }

    #[test]
    fn blocking_in_ff_is_rejected() {
        let (body, kind) = body_of(
            "module m(input wire c, input wire d, output reg q);\n\
             always_ff @(posedge c) q = d;\nendmodule\n",
        );
        let err = eval_targets(&body, kind).unwrap_err();
        assert!(err.message.contains("blocking assignment"), "{err}");
    }

    #[test]
    fn sequential_reassignment_keeps_last_value() {
        let (body, kind) = body_of(
            "module m(input wire a, input wire b, output wire y);\n\
             always_comb begin y = a; y = b; end\nendmodule\n",
        );
        let targets = eval_targets(&body, kind).unwrap();
        assert!(matches!(&targets[0].2, Expr::Ident { name, .. } if name == "b"));
    }
}
