//! Recursive-descent parser for the Verilog subset.
//!
//! The grammar (items in `[]` optional, `*` repeated):
//!
//! ```text
//! file    := module*
//! module  := 'module' IDENT '(' [port (',' port)*] ')' ';' item* 'endmodule'
//! port    := ('input'|'output') ['wire'|'reg'|'logic'] [range] IDENT
//! range   := '[' NUM ':' NUM ']'
//! item    := ('wire'|'reg'|'logic') [range] IDENT (',' IDENT)* ';'
//!          | 'assign' IDENT '=' expr ';'
//!          | 'always_ff' '@' '(' edge (('or'|',') edge)* ')' stmt
//!          | 'always_comb' stmt
//!          | IDENT IDENT '(' [conn (',' conn)*] ')' ';'
//! edge    := ('posedge'|'negedge') IDENT
//! conn    := '.' IDENT '(' IDENT ')'
//! stmt    := 'begin' stmt* 'end'
//!          | 'if' '(' expr ')' stmt ['else' stmt]
//!          | IDENT ('<='|'=') expr ';'
//! expr    := ternary with Verilog precedence:
//!            unary ~ ! -  >  *  >  + -  >  < <= > >=  >  == !=
//!            >  &  >  ^  >  |  >  ?:
//! ```
//!
//! `// scald:` pragmas are collected by the lexer; the parser assigns
//! each to the module whose `module`..`endmodule` lines enclose it, and
//! leaves the rest file-scoped.

use crate::ast::{BinOp, Dir, EdgeRef, Expr, Item, Module, Port, SourceFile, Stmt, UnOp};
use crate::error::{RtlError, Span};
use crate::token::{lex, Sym, Tok, Token};

/// Parses a whole source file.
///
/// # Errors
///
/// Returns the first lexical or syntactic error, spanned. A truncated
/// file yields an "unexpected end of file" diagnostic at the cut, never
/// a panic.
pub fn parse(src: &str) -> Result<SourceFile, RtlError> {
    let lexed = lex(src)?;
    let mut p = Parser {
        tokens: lexed.tokens,
        pos: 0,
    };
    let mut modules = Vec::new();
    let mut spans: Vec<(u32, u32)> = Vec::new();
    while !matches!(p.peek(), Tok::Eof) {
        let start = p.span();
        p.expect_kw("module")?;
        let (module, end_line) = p.module(start)?;
        spans.push((start.line, end_line));
        modules.push(module);
    }
    // Partition pragmas: inside a module's line range -> that module.
    let mut global_pragmas = Vec::new();
    for pragma in lexed.pragmas {
        let line = pragma.span.line;
        match spans
            .iter()
            .position(|&(start, end)| line >= start && line <= end)
        {
            Some(idx) => modules[idx].pragmas.push(pragma),
            None => global_pragmas.push(pragma),
        }
    }
    Ok(SourceFile {
        modules,
        global_pragmas,
    })
}

struct Parser {
    tokens: Vec<Token>,
    pos: usize,
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.tokens[self.pos].tok
    }

    fn span(&self) -> Span {
        self.tokens[self.pos].span
    }

    fn bump(&mut self) -> Token {
        let t = self.tokens[self.pos].clone();
        if self.pos + 1 < self.tokens.len() {
            self.pos += 1;
        }
        t
    }

    /// Human-readable description of the token under the cursor.
    fn describe(&self) -> String {
        match self.peek() {
            Tok::Ident(s) => format!("`{s}`"),
            Tok::Number { value, .. } => format!("number {value}"),
            Tok::Sym(s) => format!("`{}`", s.as_str()),
            Tok::Eof => "end of file".to_owned(),
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, RtlError> {
        Err(RtlError::new(message, self.span()))
    }

    fn expected<T>(&self, what: &str) -> Result<T, RtlError> {
        let found = self.describe();
        if matches!(self.peek(), Tok::Eof) {
            self.err(format!("unexpected end of file: expected {what}"))
        } else {
            self.err(format!("expected {what}, found {found}"))
        }
    }

    fn expect_sym(&mut self, sym: Sym) -> Result<Span, RtlError> {
        if *self.peek() == Tok::Sym(sym) {
            Ok(self.bump().span)
        } else {
            self.expected(&format!("`{}`", sym.as_str()))
        }
    }

    fn expect_ident(&mut self) -> Result<(String, Span), RtlError> {
        match self.peek() {
            Tok::Ident(_) => {
                let t = self.bump();
                let Tok::Ident(name) = t.tok else {
                    unreachable!()
                };
                Ok((name, t.span))
            }
            _ => self.expected("an identifier"),
        }
    }

    fn expect_kw(&mut self, kw: &str) -> Result<Span, RtlError> {
        match self.peek() {
            Tok::Ident(s) if s == kw => Ok(self.bump().span),
            _ => self.expected(&format!("`{kw}`")),
        }
    }

    fn at_kw(&self, kw: &str) -> bool {
        matches!(self.peek(), Tok::Ident(s) if s == kw)
    }

    fn eat_sym(&mut self, sym: Sym) -> bool {
        if *self.peek() == Tok::Sym(sym) {
            self.bump();
            true
        } else {
            false
        }
    }

    /// `[msb:lsb]` -> width. Returns 1 when absent.
    fn opt_range(&mut self) -> Result<u32, RtlError> {
        if !self.eat_sym(Sym::LBracket) {
            return Ok(1);
        }
        let span = self.span();
        let msb = self.expect_plain_number()?;
        self.expect_sym(Sym::Colon)?;
        let lsb = self.expect_plain_number()?;
        self.expect_sym(Sym::RBracket)?;
        if lsb > msb {
            return Err(RtlError::new(
                format!("range [{msb}:{lsb}] must be [msb:lsb] with msb >= lsb"),
                span,
            ));
        }
        u32::try_from(msb - lsb + 1)
            .ok()
            .filter(|w| *w <= 4096)
            .ok_or_else(|| RtlError::new(format!("vector width {} too large", msb - lsb + 1), span))
    }

    fn expect_plain_number(&mut self) -> Result<u64, RtlError> {
        match *self.peek() {
            Tok::Number { value, width: None } => {
                self.bump();
                Ok(value)
            }
            _ => self.expected("a plain number"),
        }
    }

    /// Body of one module; the `module` keyword is already consumed.
    /// Returns the module and the line of its `endmodule`.
    fn module(&mut self, start: Span) -> Result<(Module, u32), RtlError> {
        let (name, name_span) = self.expect_ident()?;
        self.expect_sym(Sym::LParen)?;
        let mut ports = Vec::new();
        if !self.eat_sym(Sym::RParen) {
            loop {
                ports.push(self.port()?);
                if self.eat_sym(Sym::RParen) {
                    break;
                }
                self.expect_sym(Sym::Comma)?;
            }
        }
        self.expect_sym(Sym::Semi)?;
        let mut items = Vec::new();
        let end_line = loop {
            if self.at_kw("endmodule") {
                break self.bump().span.line;
            }
            if matches!(self.peek(), Tok::Eof) {
                return self.err(format!(
                    "unexpected end of file: missing `endmodule` for module `{name}` \
                     (started at line {})",
                    start.line
                ));
            }
            self.item(&mut items)?;
        };
        Ok((
            Module {
                name,
                span: name_span,
                ports,
                items,
                pragmas: Vec::new(),
            },
            end_line,
        ))
    }

    fn port(&mut self) -> Result<Port, RtlError> {
        let dir = if self.at_kw("input") {
            self.bump();
            Dir::Input
        } else if self.at_kw("output") {
            self.bump();
            Dir::Output
        } else {
            return self.expected("`input` or `output`");
        };
        if self.at_kw("wire") || self.at_kw("reg") || self.at_kw("logic") {
            self.bump();
        }
        let width = self.opt_range()?;
        let (name, span) = self.expect_ident()?;
        Ok(Port {
            dir,
            name,
            width,
            span,
        })
    }

    fn item(&mut self, items: &mut Vec<Item>) -> Result<(), RtlError> {
        if self.at_kw("wire") || self.at_kw("reg") || self.at_kw("logic") {
            self.bump();
            let width = self.opt_range()?;
            loop {
                let (name, span) = self.expect_ident()?;
                items.push(Item::Net { name, width, span });
                if self.eat_sym(Sym::Semi) {
                    break;
                }
                self.expect_sym(Sym::Comma)?;
            }
            return Ok(());
        }
        if self.at_kw("assign") {
            let span = self.bump().span;
            let (target, target_span) = self.expect_ident()?;
            if *self.peek() == Tok::Sym(Sym::LBracket) {
                return self.err(
                    "cannot assign to a bit/part select; a vector net carries one \
                     timing value, assign the whole net",
                );
            }
            self.expect_sym(Sym::Assign)?;
            let expr = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            items.push(Item::Assign {
                target,
                target_span,
                expr,
                span,
            });
            return Ok(());
        }
        if self.at_kw("always_ff") {
            let span = self.bump().span;
            self.expect_sym(Sym::At)?;
            self.expect_sym(Sym::LParen)?;
            let clock = self.edge()?;
            let mut reset = None;
            if self.at_kw("or") || *self.peek() == Tok::Sym(Sym::Comma) {
                self.bump();
                reset = Some(self.edge()?);
                if self.at_kw("or") || *self.peek() == Tok::Sym(Sym::Comma) {
                    return self.err(
                        "at most two sensitivity entries are supported \
                         (clock plus one async set/reset)",
                    );
                }
            }
            self.expect_sym(Sym::RParen)?;
            let body = self.stmt()?;
            items.push(Item::AlwaysFf {
                clock,
                reset,
                body,
                span,
            });
            return Ok(());
        }
        if self.at_kw("always_comb") {
            let span = self.bump().span;
            let body = self.stmt()?;
            items.push(Item::AlwaysComb { body, span });
            return Ok(());
        }
        if self.at_kw("always") || self.at_kw("always_latch") || self.at_kw("initial") {
            let found = self.describe();
            return self.err(format!(
                "{found} is outside the synthesisable subset; use `always_ff` or \
                 `always_comb`"
            ));
        }
        if matches!(self.peek(), Tok::Ident(_)) {
            // Module instantiation: `Mod inst (.port(net), ...);`
            let (module, span) = self.expect_ident()?;
            let (inst, _) = self.expect_ident()?;
            self.expect_sym(Sym::LParen)?;
            let mut conns = Vec::new();
            if !self.eat_sym(Sym::RParen) {
                loop {
                    self.expect_sym(Sym::Dot)?;
                    let (port, port_span) = self.expect_ident()?;
                    self.expect_sym(Sym::LParen)?;
                    let (net, _) = match self.peek() {
                        Tok::Ident(_) => self.expect_ident()?,
                        _ => {
                            return self
                                .expected("a net name (instance connections must be plain nets)")
                        }
                    };
                    self.expect_sym(Sym::RParen)?;
                    conns.push((port, net, port_span));
                    if self.eat_sym(Sym::RParen) {
                        break;
                    }
                    self.expect_sym(Sym::Comma)?;
                }
            }
            self.expect_sym(Sym::Semi)?;
            items.push(Item::Instance {
                module,
                inst,
                conns,
                span,
            });
            return Ok(());
        }
        self.expected("a declaration, `assign`, `always_ff`, `always_comb` or an instance")
    }

    fn edge(&mut self) -> Result<EdgeRef, RtlError> {
        let posedge = if self.at_kw("posedge") {
            true
        } else if self.at_kw("negedge") {
            false
        } else {
            return self.err(
                "always_ff requires an edge-triggered sensitivity list \
                 (`posedge`/`negedge`); for combinational logic use `always_comb`",
            );
        };
        self.bump();
        let (signal, span) = self.expect_ident()?;
        Ok(EdgeRef {
            posedge,
            signal,
            span,
        })
    }

    fn stmt(&mut self) -> Result<Stmt, RtlError> {
        if self.at_kw("begin") {
            self.bump();
            let mut stmts = Vec::new();
            while !self.at_kw("end") {
                if matches!(self.peek(), Tok::Eof) {
                    return self.expected("`end`");
                }
                stmts.push(self.stmt()?);
            }
            self.bump();
            return Ok(Stmt::Block(stmts));
        }
        if self.at_kw("if") {
            let span = self.bump().span;
            self.expect_sym(Sym::LParen)?;
            let cond = self.expr()?;
            self.expect_sym(Sym::RParen)?;
            let then = Box::new(self.stmt()?);
            let els = if self.at_kw("else") {
                self.bump();
                Some(Box::new(self.stmt()?))
            } else {
                None
            };
            return Ok(Stmt::If {
                cond,
                then,
                els,
                span,
            });
        }
        if matches!(self.peek(), Tok::Ident(_)) {
            let (target, target_span) = self.expect_ident()?;
            if *self.peek() == Tok::Sym(Sym::LBracket) {
                return self.err(
                    "cannot assign to a bit/part select; a vector net carries one \
                     timing value, assign the whole net",
                );
            }
            let span = self.span();
            let nonblocking = if self.eat_sym(Sym::LtEq) {
                true
            } else if self.eat_sym(Sym::Assign) {
                false
            } else {
                return self.expected("`<=` or `=`");
            };
            let expr = self.expr()?;
            self.expect_sym(Sym::Semi)?;
            return Ok(Stmt::Assign {
                target,
                target_span,
                nonblocking,
                expr,
                span,
            });
        }
        self.expected("a statement")
    }

    // --- Expressions, lowest precedence first. ---

    fn expr(&mut self) -> Result<Expr, RtlError> {
        let cond = self.bit_or()?;
        if *self.peek() == Tok::Sym(Sym::Question) {
            let span = self.bump().span;
            let then = Box::new(self.expr()?);
            self.expect_sym(Sym::Colon)?;
            let els = Box::new(self.expr()?);
            return Ok(Expr::Ternary {
                cond: Box::new(cond),
                then,
                els,
                span,
            });
        }
        Ok(cond)
    }

    fn binary_chain(
        &mut self,
        next: fn(&mut Parser) -> Result<Expr, RtlError>,
        ops: &[(Sym, BinOp)],
    ) -> Result<Expr, RtlError> {
        let mut lhs = next(self)?;
        loop {
            let Tok::Sym(sym) = *self.peek() else {
                return Ok(lhs);
            };
            let Some(&(_, op)) = ops.iter().find(|(s, _)| *s == sym) else {
                return Ok(lhs);
            };
            let span = self.bump().span;
            let rhs = next(self)?;
            lhs = Expr::Binary {
                op,
                lhs: Box::new(lhs),
                rhs: Box::new(rhs),
                span,
            };
        }
    }

    fn bit_or(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(Parser::bit_xor, &[(Sym::Pipe, BinOp::Or)])
    }

    fn bit_xor(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(Parser::bit_and, &[(Sym::Caret, BinOp::Xor)])
    }

    fn bit_and(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(Parser::equality, &[(Sym::Amp, BinOp::And)])
    }

    fn equality(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(
            Parser::relational,
            &[(Sym::EqEq, BinOp::Eq), (Sym::NotEq, BinOp::Ne)],
        )
    }

    fn relational(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(
            Parser::additive,
            &[
                (Sym::Lt, BinOp::Lt),
                (Sym::LtEq, BinOp::Le),
                (Sym::Gt, BinOp::Gt),
                (Sym::GtEq, BinOp::Ge),
            ],
        )
    }

    fn additive(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(
            Parser::multiplicative,
            &[(Sym::Plus, BinOp::Add), (Sym::Minus, BinOp::Sub)],
        )
    }

    fn multiplicative(&mut self) -> Result<Expr, RtlError> {
        self.binary_chain(Parser::unary, &[(Sym::Star, BinOp::Mul)])
    }

    fn unary(&mut self) -> Result<Expr, RtlError> {
        let op = match self.peek() {
            Tok::Sym(Sym::Tilde) | Tok::Sym(Sym::Bang) => Some(UnOp::Not),
            Tok::Sym(Sym::Minus) => Some(UnOp::Neg),
            _ => None,
        };
        if let Some(op) = op {
            let span = self.bump().span;
            let operand = Box::new(self.unary()?);
            return Ok(Expr::Unary { op, operand, span });
        }
        self.primary()
    }

    fn primary(&mut self) -> Result<Expr, RtlError> {
        match self.peek().clone() {
            Tok::Sym(Sym::LParen) => {
                self.bump();
                let inner = self.expr()?;
                self.expect_sym(Sym::RParen)?;
                Ok(inner)
            }
            Tok::Number { value, width } => {
                let span = self.bump().span;
                Ok(Expr::Literal { value, width, span })
            }
            Tok::Ident(_) => {
                let (name, span) = self.expect_ident()?;
                if self.eat_sym(Sym::LBracket) {
                    // Bit/part select: the whole vector is one timing
                    // value, so `x[3]` and `x[7:0]` read the base net.
                    self.expect_plain_number()?;
                    if self.eat_sym(Sym::Colon) {
                        self.expect_plain_number()?;
                    }
                    self.expect_sym(Sym::RBracket)?;
                }
                Ok(Expr::Ident { name, span })
            }
            _ => self.expected("an expression"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_counter_module() {
        let src = "\
module counter (input wire clk, input wire rst, output reg [7:0] q);
  always_ff @(posedge clk or posedge rst)
    if (rst) q <= 8'd0;
    else q <= q + 8'd1;
endmodule
";
        let file = parse(src).unwrap();
        assert_eq!(file.modules.len(), 1);
        let m = &file.modules[0];
        assert_eq!(m.name, "counter");
        assert_eq!(m.ports.len(), 3);
        assert_eq!(m.ports[2].width, 8);
        assert!(matches!(m.items[0], Item::AlwaysFf { .. }));
    }

    #[test]
    fn precedence_and_over_or() {
        let file = parse("module m(input wire a, input wire b, input wire c, output wire y);\nassign y = a | b & c;\nendmodule\n").unwrap();
        let Item::Assign { expr, .. } = &file.modules[0].items[0] else {
            panic!("expected assign")
        };
        let Expr::Binary {
            op: BinOp::Or, rhs, ..
        } = expr
        else {
            panic!("| should be the root: {expr:?}")
        };
        assert!(matches!(**rhs, Expr::Binary { op: BinOp::And, .. }));
    }

    #[test]
    fn unterminated_module_names_the_module() {
        let err = parse("module broken (input wire a);\n  wire x;\n").unwrap_err();
        assert!(err.message.contains("missing `endmodule`"));
        assert!(err.message.contains("`broken`"));
        assert!(err.message.contains("line 1"));
    }

    #[test]
    fn non_edge_sensitivity_is_rejected() {
        let err =
            parse("module m(input wire a, output reg q);\nalways_ff @(a) q <= a;\nendmodule\n")
                .unwrap_err();
        assert!(err.message.contains("edge-triggered"));
        assert_eq!(err.span.line, 2);
    }

    #[test]
    fn pragmas_partition_by_module() {
        let src = "\
// scald: period 50.0
module m (input wire clk);
  // scald: ff delay=1.5:4.5 setup=2.5 hold=1.5
endmodule
// scald: clock_unit 6.25
";
        let file = parse(src).unwrap();
        assert_eq!(file.global_pragmas.len(), 2);
        assert_eq!(file.modules[0].pragmas.len(), 1);
        assert!(file.modules[0].pragmas[0].text.starts_with("ff "));
    }

    #[test]
    fn nonblocking_vs_blocking_is_recorded() {
        let src = "\
module m (input wire c, input wire d, output reg q, output reg p);
  always_ff @(posedge c) q <= d;
  always_comb p = d;
endmodule
";
        let file = parse(src).unwrap();
        let Item::AlwaysFf { body, .. } = &file.modules[0].items[0] else {
            panic!()
        };
        assert!(matches!(
            body,
            Stmt::Assign {
                nonblocking: true,
                ..
            }
        ));
        let Item::AlwaysComb { body, .. } = &file.modules[0].items[1] else {
            panic!()
        };
        assert!(matches!(
            body,
            Stmt::Assign {
                nonblocking: false,
                ..
            }
        ));
    }
}
