//! The abstract syntax tree of the Verilog subset.
//!
//! Deliberately small: everything here is synthesisable and has a
//! direct timing meaning after lowering. Vectors keep one declaration
//! width per net — the netlist models a vector as one symmetric signal
//! (§3.3.2 of the thesis), so bit/part selects resolve to the base net.

use crate::error::Span;
use crate::token::RawPragma;

/// One parsed source file: the modules plus file-scoped pragmas.
#[derive(Debug)]
pub struct SourceFile {
    /// All modules, in source order.
    pub modules: Vec<Module>,
    /// `// scald:` pragmas outside any module (design configuration).
    pub global_pragmas: Vec<RawPragma>,
}

/// Port direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Dir {
    /// `input`
    Input,
    /// `output`
    Output,
}

/// A declared port.
#[derive(Debug)]
pub struct Port {
    /// Direction.
    pub dir: Dir,
    /// Port name.
    pub name: String,
    /// Bit width (1 for scalars).
    pub width: u32,
    /// Where the port name appears.
    pub span: Span,
}

/// One `module ... endmodule`.
#[derive(Debug)]
pub struct Module {
    /// Module name.
    pub name: String,
    /// Where the name appears (for duplicate/top diagnostics).
    pub span: Span,
    /// Declared ports, in header order.
    pub ports: Vec<Port>,
    /// Body items, in source order.
    pub items: Vec<Item>,
    /// `// scald:` pragmas lexically inside this module.
    pub pragmas: Vec<RawPragma>,
}

/// A module body item.
#[derive(Debug)]
pub enum Item {
    /// A `wire`/`reg`/`logic` net declaration (multi-name declarations
    /// are split into one item per name).
    Net {
        /// Net name.
        name: String,
        /// Bit width (1 for scalars).
        width: u32,
        /// Where the name appears.
        span: Span,
    },
    /// `assign target = expr;`
    Assign {
        /// Target net.
        target: String,
        /// Where the target appears.
        target_span: Span,
        /// Driven expression.
        expr: Expr,
        /// Statement span (the `assign` keyword).
        span: Span,
    },
    /// `always_ff @(posedge clk [or posedge rst]) stmt`
    AlwaysFf {
        /// The clock edge (first entry of the sensitivity list).
        clock: EdgeRef,
        /// The async set/reset edge, when present.
        reset: Option<EdgeRef>,
        /// Process body.
        body: Stmt,
        /// Statement span (the `always_ff` keyword).
        span: Span,
    },
    /// `always_comb stmt`
    AlwaysComb {
        /// Process body.
        body: Stmt,
        /// Statement span (the `always_comb` keyword).
        span: Span,
    },
    /// `Module inst (.port(net), ...);`
    Instance {
        /// Instantiated module name.
        module: String,
        /// Instance name (diagnostics only; flat primitive paths use
        /// the module name, mirroring the SCALD expander).
        inst: String,
        /// Named connections: `(port, net, span-of-port)`.
        conns: Vec<(String, String, Span)>,
        /// Statement span (the module name).
        span: Span,
    },
}

/// A `posedge`/`negedge` entry in a sensitivity list.
#[derive(Debug, Clone)]
pub struct EdgeRef {
    /// `true` for `posedge`.
    pub posedge: bool,
    /// The edge's signal.
    pub signal: String,
    /// Where the signal name appears.
    pub span: Span,
}

/// A procedural statement.
#[derive(Debug)]
pub enum Stmt {
    /// `begin ... end`
    Block(Vec<Stmt>),
    /// `if (cond) then [else els]`
    If {
        /// Condition.
        cond: Expr,
        /// Taken branch.
        then: Box<Stmt>,
        /// Else branch, when present.
        els: Option<Box<Stmt>>,
        /// The `if` keyword.
        span: Span,
    },
    /// `target <= expr;` / `target = expr;`
    Assign {
        /// Target net.
        target: String,
        /// Where the target appears.
        target_span: Span,
        /// `true` for `<=`.
        nonblocking: bool,
        /// Assigned expression.
        expr: Expr,
        /// Statement span.
        span: Span,
    },
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// `~` / `!` — lowered to an inverted connection (no primitive).
    Not,
    /// `-` — arithmetic negate, lowered as a CHANGE cone.
    Neg,
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// `&`
    And,
    /// `|`
    Or,
    /// `^`
    Xor,
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl BinOp {
    /// `true` for the bitwise gate operators (`&`, `|`, `^`), which
    /// lower to their own gate primitives; everything else lowers into
    /// a CHANGE cone (§2.4.2: complex combinational logic).
    #[must_use]
    pub fn is_gate(self) -> bool {
        matches!(self, BinOp::And | BinOp::Or | BinOp::Xor)
    }

    /// `true` for comparisons, whose result is one bit wide.
    #[must_use]
    pub fn is_compare(self) -> bool {
        matches!(
            self,
            BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
        )
    }
}

/// An expression.
#[derive(Debug, Clone)]
pub enum Expr {
    /// A net reference; bit/part selects (`x[3]`, `x[7:0]`) resolve to
    /// the base net under vector symmetry.
    Ident {
        /// Referenced name.
        name: String,
        /// Where it appears.
        span: Span,
    },
    /// A number literal.
    Literal {
        /// Value.
        value: u64,
        /// Declared width, if sized.
        width: Option<u32>,
        /// Where it appears.
        span: Span,
    },
    /// A unary operation.
    Unary {
        /// Operator.
        op: UnOp,
        /// Operand.
        operand: Box<Expr>,
        /// Operator position.
        span: Span,
    },
    /// A binary operation.
    Binary {
        /// Operator.
        op: BinOp,
        /// Left operand.
        lhs: Box<Expr>,
        /// Right operand.
        rhs: Box<Expr>,
        /// Operator position.
        span: Span,
    },
    /// `cond ? then : els`
    Ternary {
        /// Select.
        cond: Box<Expr>,
        /// Value when the select is 1.
        then: Box<Expr>,
        /// Value when the select is 0.
        els: Box<Expr>,
        /// The `?` position.
        span: Span,
    },
}

impl Expr {
    /// The expression's anchor span for diagnostics.
    #[must_use]
    pub fn span(&self) -> Span {
        match self {
            Expr::Ident { span, .. }
            | Expr::Literal { span, .. }
            | Expr::Unary { span, .. }
            | Expr::Binary { span, .. }
            | Expr::Ternary { span, .. } => *span,
        }
    }
}
