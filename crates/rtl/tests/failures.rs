//! The frontend's failure surface: malformed, torn, or
//! subset-violating input must produce a spanned diagnostic with the
//! offending source excerpt — never a panic, never a bare message.

use scald_rtl::{compile, RtlError};

fn fail(src: &str) -> RtlError {
    match compile(src) {
        Err(e) => e,
        Ok(_) => panic!("expected a diagnostic for:\n{src}"),
    }
}

/// Every diagnostic carries a 1-based span and (when the line exists in
/// the source) a rendered excerpt with a caret.
fn assert_spanned(src: &str, e: &RtlError) {
    assert!(e.span.line >= 1 && e.span.col >= 1, "bad span: {e:?}");
    let rendered = e.to_string();
    assert!(
        rendered.contains(&format!("line {}, col {}", e.span.line, e.span.col)),
        "missing position in: {rendered}"
    );
    if src.lines().nth(e.span.line as usize - 1).is_some() {
        assert!(rendered.contains('^'), "missing caret in: {rendered}");
    }
}

#[test]
fn unterminated_module_names_the_module_and_its_start() {
    let src = "module counter(input wire clk);\n  wire q;\n  assign q = clk;\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("unexpected end of file"), "{e}");
    assert!(
        e.message
            .contains("missing `endmodule` for module `counter`"),
        "{e}"
    );
    assert!(e.message.contains("started at line 1"), "{e}");
}

#[test]
fn undeclared_identifier_is_spanned_at_the_use() {
    let src = "module m(input wire a, output wire y);\n  assign y = a & ghost;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("undeclared identifier `ghost`"), "{e}");
    assert_eq!(e.span.line, 2);
}

#[test]
fn width_mismatch_names_both_widths() {
    let src = "module m(input wire [7:0] a, output wire [3:0] y);\n  assign y = a;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("width mismatch"), "{e}");
    assert!(e.message.contains("4-bit"), "{e}");
    assert!(e.message.contains("8-bit"), "{e}");
}

#[test]
fn operand_width_mismatch_is_caught_inside_expressions() {
    let src = "module m(input wire [7:0] a, input wire [3:0] b, output wire [7:0] y);\n  \
               assign y = a + b;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("width mismatch"), "{e}");
}

#[test]
fn combinational_always_ff_is_redirected_to_always_comb() {
    let src = "module m(input wire a, output reg y);\n  always_ff @(a) y <= a;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("edge-triggered"), "{e}");
    assert!(e.message.contains("always_comb"), "{e}");
}

#[test]
fn torn_file_mid_expression_is_a_diagnostic() {
    let src = "module m(input wire a, output wire y);\n  assign y = a &";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("unexpected end of file"), "{e}");
}

#[test]
fn torn_file_mid_block_comment_is_a_diagnostic() {
    let src = "module m();\n/* torn away";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("unterminated block comment"), "{e}");
}

#[test]
fn truncation_at_every_byte_never_panics() {
    // Shear the shipped design at every char boundary; every prefix
    // must either compile or produce a diagnostic, never panic.
    let full = std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../designs/cascade_race.v"
    ))
    .expect("shipped design file exists");
    for (i, _) in full.char_indices() {
        let _ = compile(&full[..i]);
    }
    assert!(compile(&full).is_ok());
}

#[test]
fn multiple_drivers_point_at_the_second_driver() {
    let src = "module m(input wire a, input wire b, output wire y);\n  \
               assign y = a;\n  assign y = b;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("driven more than once"), "{e}");
    assert!(e.message.contains("first driver at line 2"), "{e}");
    assert_eq!(e.span.line, 3);
}

#[test]
fn latch_inference_in_always_comb_is_rejected() {
    let src = "module m(input wire en, input wire d, output wire y);\n  \
               always_comb if (en) y = d;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("latch inferred"), "{e}");
}

#[test]
fn async_reset_shape_is_enforced() {
    // Sensitivity list says async reset, body never tests it.
    let src = "module m(input wire c, input wire r, input wire d, output reg q);\n  \
               always_ff @(posedge c or posedge r) q <= d;\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("if (r)"), "{e}");

    // Reset polarity must match the tested condition.
    let src = "module m(input wire c, input wire r, input wire d, output reg q);\n  \
               always_ff @(posedge c or negedge r) begin\n    \
               if (r) q <= 1'b0; else q <= d;\n  end\nendmodule\n";
    let e = fail(src);
    assert!(
        e.message.contains("must test exactly the reset signal"),
        "{e}"
    );

    // Reset values must be literals.
    let src = "module m(input wire c, input wire r, input wire d, output reg q);\n  \
               always_ff @(posedge c or posedge r) begin\n    \
               if (r) q <= d; else q <= d;\n  end\nendmodule\n";
    let e = fail(src);
    assert!(e.message.contains("literal constant"), "{e}");
}

#[test]
fn unknown_module_and_bad_connections_are_spanned() {
    let src = "module top(input wire a);\n  Ghost u0 (.x(a));\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("unknown module `Ghost`"), "{e}");

    let src = "module child(input wire x);\nendmodule\n\
               module top(input wire a);\n  child u0 (.y(a));\nendmodule\n";
    let e = fail(src);
    assert!(e.message.contains("has no port `y`"), "{e}");

    let src = "module child(input wire x);\nendmodule\n\
               module top(input wire a);\n  child u0 ();\nendmodule\n";
    let e = fail(src);
    assert!(
        e.message
            .contains("input port `x` of `child` is unconnected"),
        "{e}"
    );
}

#[test]
fn bad_pragmas_are_spanned_diagnostics() {
    let src = "// scald: frobnicate 12\nmodule m(input wire a);\nendmodule\n";
    let e = fail(src);
    assert_spanned(src, &e);
    assert!(e.message.contains("unknown pragma"), "{e}");

    let src = "module m(input wire a);\n  // scald: period 50.0\nendmodule\n";
    let e = fail(src);
    assert!(e.message.contains("design-wide"), "{e}");

    let src = "module m(input wire a);\n  // scald: input a .Q9\nendmodule\n";
    let e = fail(src);
    assert!(e.message.contains("bad assertion spec"), "{e}");
}
