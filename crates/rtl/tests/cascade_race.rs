//! The shipped `designs/cascade_race.v` must reproduce the gated-clock
//! race end to end: the counter on the raw clock passes, the counter on
//! the derived clock fails, and the violation's clock pin and fan-in
//! provenance name `gclk`.

use scald_rtl::compile;
use scald_verifier::{RunOptions, Verifier, ViolationKind};

fn design_src() -> String {
    std::fs::read_to_string(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../designs/cascade_race.v"
    ))
    .expect("shipped design file exists")
}

#[test]
fn gated_clock_race_is_flagged_through_the_derived_clock() {
    let expansion = compile(&design_src()).expect("cascade_race.v compiles");
    let mut v = Verifier::new(expansion.netlist);
    let r = v
        .run(&RunOptions::new())
        .expect("design settles")
        .into_sole();

    // The gated-clock register misses both setup and hold.
    assert!(
        !r.of_kind(ViolationKind::Setup).is_empty(),
        "expected a setup violation: {r}"
    );
    assert!(
        !r.of_kind(ViolationKind::Hold).is_empty(),
        "expected a hold violation: {r}"
    );

    // Every violation sits at the cnt2 checker — cnt1 on the raw clock
    // is the control and must pass.
    assert!(!r.violations.is_empty());
    for x in &r.violations {
        assert!(
            x.source.contains("setup_hold#2"),
            "unexpected violation at {}: {r}",
            x.source
        );
    }

    // The observed clock is the derived clock...
    let at_gclk: Vec<_> = r
        .violations
        .iter()
        .filter(|x| x.observed.iter().any(|o| o.contains("gclk")))
        .collect();
    assert!(
        !at_gclk.is_empty(),
        "no violation observes the gated clock: {r}"
    );
    // ...and the fan-in provenance walks back through it.
    assert!(
        r.violations.iter().any(|x| x
            .provenance
            .as_ref()
            .is_some_and(|p| p.hops.iter().any(|h| h.signal.contains("gclk")))),
        "no provenance hop names gclk: {r}"
    );
}

#[test]
fn ungating_the_clock_does_not_silence_the_race() {
    // The race comes from cnt2's own feedback riding the delayed clock,
    // not from the enable value: with `en` tied to constant 1 the AND
    // gate still delays the edge, so the violations must persist.
    let src = design_src().replace("clk & en", "clk & 1'b1");
    let expansion = compile(&src).expect("modified design compiles");
    let mut v = Verifier::new(expansion.netlist);
    let r = v
        .run(&RunOptions::new())
        .expect("design settles")
        .into_sole();
    assert!(
        !r.of_kind(ViolationKind::Hold).is_empty(),
        "expected the race to survive a constant enable: {r}"
    );
}
