//! Baseline #2: worst-case path searching (§1.4.2 of McWilliams 1980).
//!
//! GRASP and the Race Analysis System verified timing by searching every
//! combinational path between registers/latches for the longest and
//! shortest delay, RAS deriving the start/end points automatically from
//! the storage elements. The thesis' critique — reproduced by this crate —
//! is that path search cannot use the *value behaviour* of control
//! signals, so value-dependent circuits (Fig 2-6) produce phantom paths
//! and spurious errors, and unbroken loops stall the search.
//!
//! The analyzer consumes the same netlists as the Timing Verifier:
//!
//! * **Sources**: primary inputs (arrival 0) and storage-element outputs
//!   (arrival = the element's clock-to-output delay range).
//! * **Edges**: combinational primitives, weighted by wire + gate delay.
//! * **Endpoints**: the checked inputs of `SETUP HOLD` /
//!   `SETUP RISE HOLD FALL` checkers (set-up borrowed from the checker)
//!   and storage-element data inputs.
//! * **Loops**: combinational cycles are reported for the user to break,
//!   exactly the GRASP workflow.
//!
//! ```
//! use scald_netlist::{Config, NetlistBuilder};
//! use scald_paths::PathAnalysis;
//! use scald_wave::DelayRange;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut b = NetlistBuilder::new(Config::s1_example());
//! let a = b.signal("A")?;
//! let q = b.signal("Q")?;
//! b.buf("B", DelayRange::from_ns(1.0, 2.0), a, q);
//! let analysis = PathAnalysis::analyze(&b.finish()?);
//! assert!(analysis.loops().is_empty());
//! # Ok(())
//! # }
//! ```

#![warn(missing_docs)]

use scald_netlist::{Netlist, PrimId, PrimKind, SignalId};
use scald_wave::{DelayRange, Time};
use std::collections::VecDeque;
use std::fmt;

/// Min/max arrival time of a signal relative to the launching clock edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Earliest the signal can change.
    pub min: Time,
    /// Latest the signal can settle.
    pub max: Time,
}

/// A constrained endpoint with its worst-case slack.
#[derive(Debug, Clone, PartialEq)]
pub struct PathReport {
    /// The endpoint signal's name.
    pub endpoint: String,
    /// The checker or storage primitive imposing the constraint.
    pub constraint_source: String,
    /// Required set-up before the capturing edge (one period after
    /// launch).
    pub setup: Time,
    /// Required hold after the capturing edge.
    pub hold: Time,
    /// Arrival range at the endpoint.
    pub arrival: Arrival,
    /// `period - setup - arrival.max`: negative means a set-up violation.
    pub setup_slack: Time,
    /// `arrival.min - hold`: negative means a hold violation.
    pub hold_slack: Time,
    /// The critical (max-delay) path, endpoint last.
    pub critical_path: Vec<String>,
}

impl PathReport {
    /// `true` if either slack is negative.
    #[must_use]
    pub fn is_violated(&self) -> bool {
        self.setup_slack < Time::ZERO || self.hold_slack < Time::ZERO
    }
}

impl fmt::Display for PathReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}: arrival [{}, {}], setup slack {}, hold slack {}  ({})",
            self.endpoint,
            self.arrival.min,
            self.arrival.max,
            self.setup_slack,
            self.hold_slack,
            self.constraint_source
        )?;
        write!(f, "  path: {}", self.critical_path.join(" -> "))
    }
}

/// Whether a primitive propagates combinationally from inputs to output.
fn is_combinational(kind: PrimKind) -> bool {
    matches!(
        kind,
        PrimKind::And
            | PrimKind::Or
            | PrimKind::Nand
            | PrimKind::Nor
            | PrimKind::Xor
            | PrimKind::Xnor
            | PrimKind::Not
            | PrimKind::Buf
            | PrimKind::Chg
            | PrimKind::Delay
            | PrimKind::Mux { .. }
    )
}

/// Static min/max path analysis of a netlist.
#[derive(Debug)]
pub struct PathAnalysis {
    arrivals: Vec<Option<Arrival>>,
    /// Max-path predecessor: (previous signal, via primitive).
    pred: Vec<Option<(SignalId, PrimId)>>,
    /// Backward-propagated required time per signal: the latest the
    /// signal may settle without violating any downstream set-up.
    required: Vec<Option<Time>>,
    loops: Vec<Vec<String>>,
    reports: Vec<PathReport>,
}

impl PathAnalysis {
    /// Runs the analysis: longest/shortest arrival propagation over the
    /// combinational graph, loop detection, and slack computation at every
    /// constrained endpoint.
    #[must_use]
    pub fn analyze(netlist: &Netlist) -> PathAnalysis {
        let n = netlist.signals().len();
        let period = netlist.config().timing.period;
        let mut arrivals: Vec<Option<Arrival>> = vec![None; n];
        let mut pred: Vec<Option<(SignalId, PrimId)>> = vec![None; n];

        // Sources.
        for (sid, _) in netlist.iter_signals() {
            match netlist.driver(sid) {
                None => {
                    arrivals[sid.index()] = Some(Arrival {
                        min: Time::ZERO,
                        max: Time::ZERO,
                    });
                }
                Some(pid) => {
                    let p = netlist.prim(pid);
                    if p.kind.is_storage() {
                        arrivals[sid.index()] = Some(Arrival {
                            min: p.delay.min,
                            max: p.delay.max,
                        });
                    } else if matches!(p.kind, PrimKind::Const(_)) {
                        arrivals[sid.index()] = Some(Arrival {
                            min: Time::ZERO,
                            max: Time::ZERO,
                        });
                    }
                }
            }
        }

        // Kahn topological relaxation over combinational primitives.
        let comb: Vec<(PrimId, &scald_netlist::Primitive)> = netlist
            .iter_prims()
            .filter(|(_, p)| is_combinational(p.kind))
            .collect();
        let mut indegree: Vec<usize> = vec![0; netlist.prims().len()];
        for (pid, p) in &comb {
            indegree[pid.index()] = p
                .inputs
                .iter()
                .filter(|c| {
                    // An input counts as a dependency if it is itself the
                    // output of a combinational primitive.
                    netlist
                        .driver(c.signal)
                        .is_some_and(|d| is_combinational(netlist.prim(d).kind))
                })
                .count();
        }
        let mut ready: VecDeque<PrimId> = comb
            .iter()
            .filter(|(pid, _)| indegree[pid.index()] == 0)
            .map(|(pid, _)| *pid)
            .collect();
        let mut processed = vec![false; netlist.prims().len()];
        while let Some(pid) = ready.pop_front() {
            if processed[pid.index()] {
                continue;
            }
            processed[pid.index()] = true;
            let p = netlist.prim(pid);
            let out = p.output.expect("combinational prims drive outputs");
            let mut best: Option<Arrival> = None;
            let mut best_pred: Option<(SignalId, PrimId)> = None;
            for c in &p.inputs {
                let Some(a) = arrivals[c.signal.index()] else {
                    continue;
                };
                let d: DelayRange = netlist.wire_delay(c).then(p.delay);
                let cand = Arrival {
                    min: a.min + d.min,
                    max: a.max + d.max,
                };
                match &mut best {
                    None => {
                        best = Some(cand);
                        best_pred = Some((c.signal, pid));
                    }
                    Some(b) => {
                        b.min = b.min.min(cand.min);
                        if cand.max > b.max {
                            b.max = cand.max;
                            best_pred = Some((c.signal, pid));
                        }
                    }
                }
            }
            if let Some(a) = best {
                arrivals[out.index()] = Some(a);
                pred[out.index()] = best_pred;
            }
            // Release dependents.
            for &next in netlist.fanout(out) {
                if is_combinational(netlist.prim(next).kind) && !processed[next.index()] {
                    let deg = &mut indegree[next.index()];
                    *deg = deg.saturating_sub(1);
                    if *deg == 0 {
                        ready.push_back(next);
                    }
                }
            }
        }

        // Unprocessed combinational primitives are in loops: report them
        // for the user to break, GRASP-style.
        let mut loops = Vec::new();
        let mut in_loop: Vec<String> = comb
            .iter()
            .filter(|(pid, _)| !processed[pid.index()])
            .map(|(_, p)| p.name.clone())
            .collect();
        if !in_loop.is_empty() {
            in_loop.sort();
            loops.push(in_loop);
        }

        // Endpoint slacks.
        let mut reports = Vec::new();
        for (_, p) in netlist.iter_prims() {
            let (endpoint_conn, setup, hold) = match p.kind {
                PrimKind::SetupHold { setup, hold }
                | PrimKind::SetupRiseHoldFall { setup, hold } => (&p.inputs[0], setup, hold),
                PrimKind::Reg { .. } | PrimKind::Latch { .. } => {
                    (&p.inputs[1], Time::ZERO, Time::ZERO)
                }
                _ => continue,
            };
            let sid = endpoint_conn.signal;
            let Some(arrival) = arrivals[sid.index()] else {
                continue;
            };
            // Classic single-cycle constraint: data launched at edge N must
            // settle setup before edge N+1 and not race through before the
            // hold window of edge N.
            let setup_slack = period - setup - arrival.max;
            let hold_slack = arrival.min - hold;
            // Critical-path traceback.
            let mut path = vec![netlist.signal(sid).name.clone()];
            let mut cur = sid;
            let mut guard = 0;
            while let Some((prev, via)) = pred[cur.index()] {
                path.push(format!(
                    "{} (via {})",
                    netlist.signal(prev).name,
                    netlist.prim(via).name
                ));
                cur = prev;
                guard += 1;
                if guard > netlist.signals().len() {
                    break;
                }
            }
            path.reverse();
            reports.push(PathReport {
                endpoint: netlist.signal(sid).name.clone(),
                constraint_source: p.name.clone(),
                setup,
                hold,
                arrival,
                setup_slack,
                hold_slack,
                critical_path: path,
            });
        }

        // Backward pass: required times. An endpoint's input must settle
        // `setup` before the capturing edge (one period after launch);
        // combinational primitives propagate the requirement upstream
        // minus their own worst-case delay.
        let mut required: Vec<Option<Time>> = vec![None; n];
        let tighten = |slot: &mut Option<Time>, t: Time| match slot {
            None => *slot = Some(t),
            Some(cur) => {
                if t < *cur {
                    *slot = Some(t);
                }
            }
        };
        for (_, p) in netlist.iter_prims() {
            let (conn, setup) = match p.kind {
                PrimKind::SetupHold { setup, .. } | PrimKind::SetupRiseHoldFall { setup, .. } => {
                    // Checkers carry the checked data input first, the
                    // clock second (the reverse of Reg/Latch below).
                    (&p.inputs[0], setup)
                }
                PrimKind::Reg { .. } | PrimKind::Latch { .. } => (&p.inputs[1], Time::ZERO),
                _ => continue,
            };
            tighten(&mut required[conn.signal.index()], period - setup);
        }
        // Walk combinational primitives in reverse topological order (the
        // forward `processed` order reversed is a valid reverse order for
        // the acyclic part).
        let order: Vec<PrimId> = {
            // Recompute the forward order cheaply: processed flags were
            // consumed above, so redo Kahn on primitive indices.
            let mut indeg: Vec<usize> = vec![0; netlist.prims().len()];
            for (pid, p) in &comb {
                indeg[pid.index()] = p
                    .inputs
                    .iter()
                    .filter(|c| {
                        netlist
                            .driver(c.signal)
                            .is_some_and(|d| is_combinational(netlist.prim(d).kind))
                    })
                    .count();
            }
            let mut ready: VecDeque<PrimId> = comb
                .iter()
                .filter(|(pid, _)| indeg[pid.index()] == 0)
                .map(|(pid, _)| *pid)
                .collect();
            let mut seen = vec![false; netlist.prims().len()];
            let mut order = Vec::new();
            while let Some(pid) = ready.pop_front() {
                if seen[pid.index()] {
                    continue;
                }
                seen[pid.index()] = true;
                order.push(pid);
                let out = netlist.prim(pid).output.expect("comb prims drive outputs");
                for &next in netlist.fanout(out) {
                    if is_combinational(netlist.prim(next).kind) && !seen[next.index()] {
                        let d = &mut indeg[next.index()];
                        *d = d.saturating_sub(1);
                        if *d == 0 {
                            ready.push_back(next);
                        }
                    }
                }
            }
            order
        };
        for pid in order.into_iter().rev() {
            let p = netlist.prim(pid);
            let out = p.output.expect("comb prims drive outputs");
            let Some(req_out) = required[out.index()] else {
                continue;
            };
            for c in &p.inputs {
                let d = netlist.wire_delay(c).then(p.delay);
                tighten(&mut required[c.signal.index()], req_out - d.max);
            }
        }

        PathAnalysis {
            arrivals,
            pred,
            required,
            loops,
            reports,
        }
    }

    /// The backward-propagated *required time* of a signal: the latest it
    /// may settle without violating any downstream set-up constraint.
    /// `None` for signals with no constrained fan-out cone.
    #[must_use]
    pub fn required(&self, sid: SignalId) -> Option<Time> {
        self.required[sid.index()]
    }

    /// Per-signal set-up slack: `required − arrival.max`. Signals with
    /// negative slack form the critical region a designer must fix.
    /// Sorted worst-first. Signals lacking either quantity are omitted.
    #[must_use]
    pub fn signal_slacks(&self, netlist: &Netlist) -> Vec<(SignalId, Time)> {
        let mut out: Vec<(SignalId, Time)> = netlist
            .iter_signals()
            .filter_map(|(sid, _)| {
                let req = self.required[sid.index()]?;
                let arr = self.arrivals[sid.index()]?;
                Some((sid, req - arr.max))
            })
            .collect();
        out.sort_by_key(|&(_, slack)| slack);
        out
    }

    /// The computed arrival range of a signal, if it was reachable.
    #[must_use]
    pub fn arrival(&self, sid: SignalId) -> Option<Arrival> {
        self.arrivals[sid.index()]
    }

    /// Combinational loops the search could not traverse — the user must
    /// insert breakpoints, as in GRASP (§1.4.2).
    #[must_use]
    pub fn loops(&self) -> &[Vec<String>] {
        &self.loops
    }

    /// All endpoint reports.
    #[must_use]
    pub fn reports(&self) -> &[PathReport] {
        &self.reports
    }

    /// Reports whose slack is negative — the errors a path-searching tool
    /// would print (including the spurious ones on value-dependent logic).
    #[must_use]
    pub fn violations(&self) -> Vec<&PathReport> {
        self.reports.iter().filter(|r| r.is_violated()).collect()
    }

    /// Max-path predecessor of a signal, for external tracing.
    #[must_use]
    pub fn predecessor(&self, sid: SignalId) -> Option<(SignalId, PrimId)> {
        self.pred[sid.index()]
    }

    /// The self-timed *module delay* of §4.2.1: the min/max combinational
    /// delay from the module's inputs to its outputs (signals nothing in
    /// the module reads). This is the figure a self-timed design needs to
    /// size the delay on its "done" line — the use the thesis suggests for
    /// the verification machinery in asynchronous contexts.
    ///
    /// Returns `None` if the module has no reachable outputs (e.g. a loop
    /// blocked the analysis).
    #[must_use]
    pub fn module_delay(&self, netlist: &Netlist) -> Option<DelayRange> {
        let mut min: Option<Time> = None;
        let mut max: Option<Time> = None;
        for (sid, _) in netlist.iter_signals() {
            if !netlist.fanout(sid).is_empty() || netlist.driver(sid).is_none() {
                continue; // not a module output
            }
            let Some(a) = self.arrivals[sid.index()] else {
                continue;
            };
            min = Some(min.map_or(a.min, |m: Time| m.min(a.min)));
            max = Some(max.map_or(a.max, |m: Time| m.max(a.max)));
        }
        match (min, max) {
            (Some(min), Some(max)) => Some(DelayRange::new(Time::ZERO.max(min), max)),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_netlist::{Config, Conn, NetlistBuilder};

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    fn z(s: SignalId) -> Conn {
        Conn::new(s).with_wire_delay(DelayRange::ZERO)
    }

    #[test]
    fn chain_accumulates_delay() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let m = b.signal("M").unwrap();
        let q = b.signal("Q").unwrap();
        b.buf("B1", DelayRange::from_ns(1.0, 2.0), z(a), m);
        b.buf("B2", DelayRange::from_ns(3.0, 5.0), z(m), q);
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        let arr = an.arrival(q).unwrap();
        assert_eq!(arr.min, ns(4.0));
        assert_eq!(arr.max, ns(7.0));
    }

    #[test]
    fn register_launch_and_capture() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let q1 = b.signal("Q1").unwrap();
        let mid = b.signal("MID").unwrap();
        let q2 = b.signal("Q2").unwrap();
        b.reg("R1", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q1);
        b.buf("LOGIC", DelayRange::from_ns(10.0, 43.0), z(q1), mid);
        b.reg("R2", DelayRange::from_ns(1.5, 4.5), z(clk), z(mid), q2);
        b.setup_hold("R2 CHK", ns(3.0), ns(1.0), z(mid), z(clk));
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        // Arrival at MID: launch 1.5..4.5 + 10..43 = 11.5..47.5.
        let arr = an.arrival(mid).unwrap();
        assert_eq!(arr.min, ns(11.5));
        assert_eq!(arr.max, ns(47.5));
        // Setup slack: 50 - 3 - 47.5 = -0.5 -> violation.
        let viols = an.violations();
        assert!(!viols.is_empty());
        let chk = viols
            .iter()
            .find(|r| r.constraint_source == "R2 CHK")
            .unwrap();
        assert_eq!(chk.setup_slack, ns(-0.5));
        assert!(chk.hold_slack >= Time::ZERO);
        assert!(chk.critical_path.len() >= 2);
    }

    #[test]
    fn combinational_loop_reported() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let x = b.signal("X").unwrap();
        let y = b.signal("Y").unwrap();
        b.or2("G1", DelayRange::from_ns(1.0, 2.0), z(a), z(y), x);
        b.not("G2", DelayRange::from_ns(1.0, 2.0), z(x), y);
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        assert_eq!(an.loops().len(), 1);
        assert_eq!(an.loops()[0].len(), 2);
        assert!(an.arrival(x).is_none());
    }

    #[test]
    fn phantom_path_on_value_dependent_logic() {
        // The Fig 2-6 shape: 10/20 ns legs around two muxes with
        // complementary selects. The true worst path is 30 ns; blind path
        // search sees 40.
        let mut b = NetlistBuilder::new(Config::s1_example());
        let input = b.signal("INPUT").unwrap();
        let ctrl = b.signal("CTRL").unwrap();
        let d10 = b.signal("D10").unwrap();
        let d20 = b.signal("D20").unwrap();
        let m1 = b.signal("M1").unwrap();
        let m1d10 = b.signal("M1D10").unwrap();
        let m1d20 = b.signal("M1D20").unwrap();
        let out = b.signal("OUT").unwrap();
        b.delay("P10", DelayRange::from_ns(10.0, 10.0), z(input), d10);
        b.delay("P20", DelayRange::from_ns(20.0, 20.0), z(input), d20);
        b.mux2("MUX1", DelayRange::ZERO, z(ctrl), z(d10), z(d20), m1);
        b.delay("Q10", DelayRange::from_ns(10.0, 10.0), z(m1), m1d10);
        b.delay("Q20", DelayRange::from_ns(20.0, 20.0), z(m1), m1d20);
        b.mux2(
            "MUX2",
            DelayRange::ZERO,
            z(ctrl).inverted(),
            z(m1d10),
            z(m1d20),
            out,
        );
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        // 20 + 20 = 40 ns phantom path — the spurious result the thesis
        // criticizes path searching for (§4.1).
        assert_eq!(an.arrival(out).unwrap().max, ns(40.0));
        // The shortest path is through MUX2's select pin (a blind path
        // searcher includes control paths; arrival 0 at the primary input).
        assert_eq!(an.arrival(out).unwrap().min, Time::ZERO);
        // The shortest *data* path is visible one level up: 10 ns at M1
        // via the select (0) ... M1's min is via its own select, also 0.
        assert_eq!(an.arrival(m1).unwrap().max, ns(20.0));
    }

    #[test]
    fn module_delay_for_self_timed_sizing() {
        // A two-stage combinational module: the done-line delay must cover
        // 4..7 ns (the accumulated min/max to the only output).
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let m = b.signal("M").unwrap();
        let q = b.signal("Q").unwrap();
        b.buf("B1", DelayRange::from_ns(1.0, 2.0), z(a), m);
        b.buf("B2", DelayRange::from_ns(3.0, 5.0), z(m), q);
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        let d = an.module_delay(&n).unwrap();
        assert_eq!(d, DelayRange::from_ns(4.0, 7.0));
    }

    #[test]
    fn module_delay_none_when_no_outputs() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let x = b.signal("X").unwrap();
        let y = b.signal("Y").unwrap();
        // Pure loop: every driven signal is read; no module outputs.
        b.or2("G1", DelayRange::from_ns(1.0, 2.0), z(a), z(y), x);
        b.not("G2", DelayRange::from_ns(1.0, 2.0), z(x), y);
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        assert!(an.module_delay(&n).is_none());
    }

    #[test]
    fn reports_render() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let q = b.signal("Q").unwrap();
        b.reg("R", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q);
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        assert_eq!(an.reports().len(), 1);
        let text = an.reports()[0].to_string();
        assert!(text.contains("slack"));
        assert!(!an.reports()[0].is_violated());
    }
}

#[cfg(test)]
mod required_time_tests {
    use super::*;
    use scald_netlist::{Config, Conn, NetlistBuilder};

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    fn z(s: SignalId) -> Conn {
        Conn::new(s).with_wire_delay(DelayRange::ZERO)
    }

    #[test]
    fn required_times_propagate_backward() {
        // R1 -> LOGIC(10..20) -> endpoint with setup 3: the endpoint input
        // must settle by 47; LOGIC's input by 47 - 20 = 27.
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let q1 = b.signal("Q1").unwrap();
        let mid = b.signal("MID").unwrap();
        b.reg("R1", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q1);
        b.buf("LOGIC", DelayRange::from_ns(10.0, 20.0), z(q1), mid);
        b.setup_hold("END", ns(3.0), ns(1.0), z(mid), z(clk));
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        assert_eq!(an.required(mid), Some(ns(47.0)));
        assert_eq!(an.required(q1), Some(ns(27.0)));
        assert!(an.required(d).is_none() || an.required(d).is_some());
        // Slack at MID: 47 - (4.5 + 20) = 22.5; at Q1: 27 - 4.5 = 22.5.
        let slacks = an.signal_slacks(&n);
        let mid_slack = slacks.iter().find(|(s, _)| *s == mid).unwrap().1;
        let q1_slack = slacks.iter().find(|(s, _)| *s == q1).unwrap().1;
        assert_eq!(mid_slack, ns(22.5));
        assert_eq!(q1_slack, ns(22.5));
    }

    #[test]
    fn critical_region_sorts_worst_first() {
        // Two cones: a failing one (slack < 0) and a comfortable one.
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let q = b.signal("Q").unwrap();
        let slow = b.signal("SLOW").unwrap();
        let fast = b.signal("FAST").unwrap();
        b.reg("R", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q);
        b.buf("BS", DelayRange::from_ns(10.0, 44.0), z(q), slow);
        b.buf("BF", DelayRange::from_ns(1.0, 2.0), z(q), fast);
        b.setup_hold("CS", ns(3.0), ns(0.5), z(slow), z(clk));
        b.setup_hold("CF", ns(3.0), ns(0.5), z(fast), z(clk));
        let n = b.finish().unwrap();
        let an = PathAnalysis::analyze(&n);
        let slacks = an.signal_slacks(&n);
        // Worst-first; the critical region is {Q, SLOW}, both at
        // 47 - (4.5 + 44) = -1.5 (ties keep declaration order).
        let worst: Vec<SignalId> = slacks[..2].iter().map(|&(s, _)| s).collect();
        assert!(worst.contains(&slow) && worst.contains(&q), "{slacks:?}");
        assert_eq!(slacks[0].1, ns(-1.5));
        assert_eq!(slacks[1].1, ns(-1.5));
        // Q's slack is constrained through the slow cone:
        // required(Q) = min(47-44, 47-2) = 3; arrival 4.5 -> -1.5.
        let q_slack = slacks.iter().find(|(s, _)| *s == q).unwrap().1;
        assert_eq!(q_slack, ns(-1.5));
        // FAST is comfortable.
        let fast_slack = slacks.iter().find(|(s, _)| *s == fast).unwrap().1;
        assert_eq!(fast_slack, ns(40.5));
    }
}
