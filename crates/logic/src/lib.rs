//! Seven-value symbolic logic algebra of the SCALD Timing Verifier.
//!
//! The Timing Verifier (McWilliams, 1980, §2.4.1) represents every signal at
//! every instant with exactly one of seven values. The large majority of
//! signals are represented only as *stable* or *changing*, which is the key
//! idea that makes exhaustive timing verification tractable: the verifier
//! does not need to know whether a signal is true or false to decide whether
//! the timing constraints on it are met.
//!
//! | value | meaning |
//! |---|---|
//! | `0` | false |
//! | `1` | true |
//! | `S` | stable — not changing, level unknown |
//! | `C` | may be changing |
//! | `R` | rising — going from zero to one |
//! | `F` | falling — going from one to zero |
//! | `U` | unknown — initial value of all signals |
//!
//! The combinational functions ([`Value::or`], [`Value::and`],
//! [`Value::xor`], [`Value::not`], [`chg`]) are "uniformly defined to give
//! worst-case values" (§2.4.2): e.g. `S OR R = R`, because the output is
//! either stable or a rising edge, and the rising edge is the worst case.
//!
//! # Examples
//!
//! ```
//! use scald_logic::Value;
//!
//! // A stable control signal gated with a rising clock: worst case is that
//! // the control enables the gate, so the output carries the rising edge.
//! assert_eq!(Value::Stable.and(Value::Rise), Value::Rise);
//!
//! // A logic one dominates an OR regardless of what the other input does.
//! assert_eq!(Value::One.or(Value::Change), Value::One);
//!
//! // XOR of a known one inverts a transition.
//! assert_eq!(Value::One.xor(Value::Rise), Value::Fall);
//! ```

use std::fmt;
use std::str::FromStr;

/// One of the seven signal values used by the Timing Verifier (§2.4.1).
///
/// See the [crate-level documentation](crate) for the meaning of each value.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Logic false (`0`).
    Zero,
    /// Logic true (`1`).
    One,
    /// Stable: the signal is not changing, but its level is not tracked (`S`).
    Stable,
    /// The signal may be changing (`C`).
    Change,
    /// The signal is transitioning from zero to one (`R`).
    Rise,
    /// The signal is transitioning from one to zero (`F`).
    Fall,
    /// Unknown: the initial value of every signal (`U`).
    Unknown,
}

/// All seven values, in the order they are listed in the thesis.
pub const ALL_VALUES: [Value; 7] = [
    Value::Zero,
    Value::One,
    Value::Stable,
    Value::Change,
    Value::Rise,
    Value::Fall,
    Value::Unknown,
];

impl Value {
    /// Returns `true` for the two known constants `0` and `1`.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert!(Value::Zero.is_constant());
    /// assert!(!Value::Stable.is_constant());
    /// ```
    #[must_use]
    pub const fn is_constant(self) -> bool {
        matches!(self, Value::Zero | Value::One)
    }

    /// Returns `true` if the signal is guaranteed not to be changing:
    /// `0`, `1` or `S`.
    ///
    /// Timing checks (set-up, hold, `&A` directives) require an input to be
    /// *quiescent* over an interval; this predicate is the test they apply.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert!(Value::One.is_quiescent());
    /// assert!(Value::Stable.is_quiescent());
    /// assert!(!Value::Rise.is_quiescent());
    /// assert!(!Value::Unknown.is_quiescent());
    /// ```
    #[must_use]
    pub const fn is_quiescent(self) -> bool {
        matches!(self, Value::Zero | Value::One | Value::Stable)
    }

    /// Returns `true` if the signal may be in transition: `C`, `R` or `F`.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert!(Value::Change.is_transitioning());
    /// assert!(!Value::Zero.is_transitioning());
    /// ```
    #[must_use]
    pub const fn is_transitioning(self) -> bool {
        matches!(self, Value::Change | Value::Rise | Value::Fall)
    }

    /// Returns `true` if the signal could be at a logic-one level during an
    /// interval with this value.
    ///
    /// `S`, `C`, `R`, `F` and `U` could all be high; only `0` cannot.
    /// Minimum-pulse-width and hazard checks use this to find intervals in
    /// which a clock line could be asserted.
    #[must_use]
    pub const fn could_be_high(self) -> bool {
        !matches!(self, Value::Zero)
    }

    /// Returns `true` if the signal could be at a logic-zero level.
    #[must_use]
    pub const fn could_be_low(self) -> bool {
        !matches!(self, Value::One)
    }

    /// Logical complement (NOT function of §2.4.2).
    ///
    /// Rising becomes falling and vice versa; `S`, `C` and `U` are fixed
    /// points because complementing an unknown-level signal yields another
    /// unknown-level signal.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Rise.not(), Value::Fall);
    /// assert_eq!(Value::Stable.not(), Value::Stable);
    /// ```
    #[must_use]
    pub const fn not(self) -> Value {
        match self {
            Value::Zero => Value::One,
            Value::One => Value::Zero,
            Value::Stable => Value::Stable,
            Value::Change => Value::Change,
            Value::Rise => Value::Fall,
            Value::Fall => Value::Rise,
            Value::Unknown => Value::Unknown,
        }
    }

    /// Worst-case INCLUSIVE-OR (§2.4.2).
    ///
    /// A known `1` dominates every other value, including `U`. A known `0`
    /// is the identity. Two opposite transitions combine to `C` because the
    /// relative edge times are not known. `U` propagates unless dominated.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Stable.or(Value::Rise), Value::Rise);
    /// assert_eq!(Value::Rise.or(Value::Fall), Value::Change);
    /// assert_eq!(Value::One.or(Value::Unknown), Value::One);
    /// ```
    #[must_use]
    pub const fn or(self, other: Value) -> Value {
        use Value::*;
        match (self, other) {
            (One, _) | (_, One) => One,
            (Zero, v) | (v, Zero) => v,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Stable, v) | (v, Stable) => v,
            (Change, _) | (_, Change) => Change,
            (Rise, Rise) => Rise,
            (Fall, Fall) => Fall,
            (Rise, Fall) | (Fall, Rise) => Change,
        }
    }

    /// Worst-case AND (§2.4.2). Dual of [`Value::or`]:
    /// `0` dominates, `1` is the identity.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Zero.and(Value::Change), Value::Zero);
    /// assert_eq!(Value::Stable.and(Value::Fall), Value::Fall);
    /// ```
    #[must_use]
    pub const fn and(self, other: Value) -> Value {
        use Value::*;
        match (self, other) {
            (Zero, _) | (_, Zero) => Zero,
            (One, v) | (v, One) => v,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Stable, v) | (v, Stable) => v,
            (Change, _) | (_, Change) => Change,
            (Rise, Rise) => Rise,
            (Fall, Fall) => Fall,
            (Rise, Fall) | (Fall, Rise) => Change,
        }
    }

    /// Worst-case EXCLUSIVE-OR (§2.4.2).
    ///
    /// XOR has no dominating value, so `U` always propagates. A known
    /// constant either passes the other input through (`0`) or inverts it
    /// (`1`). Any transition combined with an unknown-level value yields
    /// `C`, because the direction of the output edge depends on the level.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Zero.xor(Value::Rise), Value::Rise);
    /// assert_eq!(Value::One.xor(Value::Rise), Value::Fall);
    /// assert_eq!(Value::Stable.xor(Value::Rise), Value::Change);
    /// ```
    #[must_use]
    pub const fn xor(self, other: Value) -> Value {
        use Value::*;
        match (self, other) {
            (Unknown, _) | (_, Unknown) => Unknown,
            (Zero, v) | (v, Zero) => v,
            (One, v) | (v, One) => v.not(),
            (Stable, Stable) => Stable,
            // Any transition against an unknown level, or two transitions
            // with unknown relative timing, could glitch either way.
            _ => Change,
        }
    }

    /// The CHANGE function (§2.4.2): `U` if the input is undefined, `C` if
    /// it may be changing, otherwise `S`.
    ///
    /// This is the per-input contribution of the n-ary [`chg`] primitive
    /// used to model complex combinational logic (parity trees, adders)
    /// whose actual function is irrelevant to timing.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::One.chg(), Value::Stable);
    /// assert_eq!(Value::Rise.chg(), Value::Change);
    /// assert_eq!(Value::Unknown.chg(), Value::Unknown);
    /// ```
    #[must_use]
    pub const fn chg(self) -> Value {
        match self {
            Value::Unknown => Value::Unknown,
            Value::Change | Value::Rise | Value::Fall => Value::Change,
            Value::Zero | Value::One | Value::Stable => Value::Stable,
        }
    }

    /// Least upper bound of two values under the uncertainty ordering:
    /// "the signal is *either* `self` *or* `other`, and we do not know
    /// which".
    ///
    /// This is the merge used when a multiplexer's select line is at an
    /// unknown level, and when overlapping skew windows must be collapsed
    /// into a single value (§2.8).
    ///
    /// Unlike [`Value::or`], constants do not dominate: a signal that is
    /// either `0` or `1` is `S` (some unknown but steady level), and a
    /// signal that is either rising or falling is `C`.
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Zero.join(Value::One), Value::Stable);
    /// assert_eq!(Value::Rise.join(Value::Fall), Value::Change);
    /// assert_eq!(Value::Stable.join(Value::Rise), Value::Rise);
    /// ```
    #[must_use]
    pub const fn join(self, other: Value) -> Value {
        use Value::*;
        match (self, other) {
            (a, b) if a as u8 == b as u8 => a,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Change, _) | (_, Change) => Change,
            (Rise, Fall) | (Fall, Rise) => Change,
            (Rise, _) | (_, Rise) => Rise,
            (Fall, _) | (_, Fall) => Fall,
            // Remaining pairs are distinct members of {0, 1, S}.
            _ => Stable,
        }
    }

    /// The value of the uncertainty window for a transition from `self`
    /// to `to` (§2.8, Fig 2-9).
    ///
    /// When separated skew is folded back into a signal's value list, every
    /// transition instant becomes a window over which the signal could be
    /// the old value, the new value, or mid-transition. A `0 → 1` window is
    /// `R`, `1 → 0` is `F`, and anything else collapses to `C` (or `U` if
    /// either side is undefined).
    ///
    /// ```
    /// use scald_logic::Value;
    /// assert_eq!(Value::Zero.edge_to(Value::One), Value::Rise);
    /// assert_eq!(Value::One.edge_to(Value::Zero), Value::Fall);
    /// assert_eq!(Value::Stable.edge_to(Value::Change), Value::Change);
    /// ```
    #[must_use]
    pub const fn edge_to(self, to: Value) -> Value {
        use Value::*;
        match (self, to) {
            (a, b) if a as u8 == b as u8 => a,
            (Unknown, _) | (_, Unknown) => Unknown,
            (Zero, One) => Rise,
            (One, Zero) => Fall,
            _ => Change,
        }
    }

    /// Single-character mnemonic used in listings (`0 1 S C R F U`).
    #[must_use]
    pub const fn mnemonic(self) -> char {
        match self {
            Value::Zero => '0',
            Value::One => '1',
            Value::Stable => 'S',
            Value::Change => 'C',
            Value::Rise => 'R',
            Value::Fall => 'F',
            Value::Unknown => 'U',
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.mnemonic())
    }
}

/// Error returned when parsing a [`Value`] from a string fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseValueError {
    input: String,
}

impl fmt::Display for ParseValueError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid signal value {:?}, expected one of 0 1 S C R F U \
             (or STABLE CHANGE RISE FALL UNKNOWN)",
            self.input
        )
    }
}

impl std::error::Error for ParseValueError {}

impl FromStr for Value {
    type Err = ParseValueError;

    /// Parses the single-character mnemonics and the spelled-out names used
    /// in the thesis (`STABLE`, `CHANGE`, `RISE`, `FALL`, `UNKNOWN`),
    /// case-insensitively.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.to_ascii_uppercase().as_str() {
            "0" => Ok(Value::Zero),
            "1" => Ok(Value::One),
            "S" | "STABLE" => Ok(Value::Stable),
            "C" | "CHANGE" | "CHANGING" => Ok(Value::Change),
            "R" | "RISE" | "RISING" => Ok(Value::Rise),
            "F" | "FALL" | "FALLING" => Ok(Value::Fall),
            "U" | "UNKNOWN" | "UNDEFINED" => Ok(Value::Unknown),
            _ => Err(ParseValueError {
                input: s.to_owned(),
            }),
        }
    }
}

/// The n-ary CHANGE function (§2.4.2): `U` if any input is undefined,
/// `C` if any input may be changing, otherwise `S`.
///
/// Used to model complex combinational logic — parity trees, adders, ALUs —
/// where only *when* the output changes matters, not its value. An empty
/// input list yields `S` (a function of nothing never changes).
///
/// ```
/// use scald_logic::{chg, Value};
/// assert_eq!(chg([Value::One, Value::Stable]), Value::Stable);
/// assert_eq!(chg([Value::One, Value::Rise]), Value::Change);
/// assert_eq!(chg([Value::Unknown, Value::Rise]), Value::Unknown);
/// ```
pub fn chg<I: IntoIterator<Item = Value>>(inputs: I) -> Value {
    let mut out = Value::Stable;
    for v in inputs {
        match v.chg() {
            Value::Unknown => return Value::Unknown,
            Value::Change => out = Value::Change,
            _ => {}
        }
    }
    out
}

/// Folds [`Value::or`] over an input list. Empty input yields `0`
/// (the identity of OR).
pub fn or_all<I: IntoIterator<Item = Value>>(inputs: I) -> Value {
    inputs.into_iter().fold(Value::Zero, Value::or)
}

/// Folds [`Value::and`] over an input list. Empty input yields `1`
/// (the identity of AND).
pub fn and_all<I: IntoIterator<Item = Value>>(inputs: I) -> Value {
    inputs.into_iter().fold(Value::One, Value::and)
}

/// Folds [`Value::xor`] over an input list. Empty input yields `0`
/// (the identity of XOR).
pub fn xor_all<I: IntoIterator<Item = Value>>(inputs: I) -> Value {
    inputs.into_iter().fold(Value::Zero, Value::xor)
}

/// Folds [`Value::join`] over an input list.
///
/// # Panics
///
/// Panics if the input list is empty: the join of nothing has no neutral
/// element in this algebra.
pub fn join_all<I: IntoIterator<Item = Value>>(inputs: I) -> Value {
    inputs
        .into_iter()
        .reduce(Value::join)
        .expect("join_all requires at least one input")
}

/// Multiplexer output value (§3.1's `2 MUX` primitive, generalized).
///
/// * Select `0`/`1`: the corresponding data input passes through.
/// * Select `S` (steady but unknown): the output is *one of* the data
///   inputs — their [`Value::join`].
/// * Select changing (`C`/`R`/`F`): the output may switch between inputs,
///   so it is quiescent only if every data input is the *same known
///   constant*; two different stable levels switched onto one wire is a
///   change.
/// * Select `U`: output `U`.
///
/// # Panics
///
/// Panics if `data` is empty, or if the select is a known constant that
/// indexes past the end of `data`.
///
/// ```
/// use scald_logic::{mux, Value};
/// let d = [Value::Stable, Value::Rise];
/// assert_eq!(mux(Value::Zero, &d), Value::Stable);
/// assert_eq!(mux(Value::One, &d), Value::Rise);
/// assert_eq!(mux(Value::Stable, &d), Value::Rise); // worst case of the two
/// assert_eq!(mux(Value::Fall, &d), Value::Change); // select switching
/// ```
pub fn mux(select: Value, data: &[Value]) -> Value {
    assert!(!data.is_empty(), "mux requires at least one data input");
    match select {
        Value::Zero => data[0],
        Value::One => {
            assert!(data.len() > 1, "mux select is 1 but only one data input");
            data[1]
        }
        Value::Stable => join_all(data.iter().copied()),
        Value::Unknown => Value::Unknown,
        Value::Change | Value::Rise | Value::Fall => {
            if data.contains(&Value::Unknown) {
                Value::Unknown
            } else if data.iter().all(|v| *v == data[0] && v.is_constant()) {
                // Switching between identical constants is invisible.
                data[0]
            } else {
                Value::Change
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Value::*;

    #[test]
    fn not_is_an_involution() {
        for v in ALL_VALUES {
            assert_eq!(v.not().not(), v, "NOT NOT {v}");
        }
    }

    #[test]
    fn not_table_matches_paper() {
        assert_eq!(Zero.not(), One);
        assert_eq!(One.not(), Zero);
        assert_eq!(Stable.not(), Stable);
        assert_eq!(Change.not(), Change);
        assert_eq!(Rise.not(), Fall);
        assert_eq!(Fall.not(), Rise);
        assert_eq!(Unknown.not(), Unknown);
    }

    /// The full 7x7 OR table, spelled out row by row
    /// (rows = left operand, columns in `ALL_VALUES` order).
    #[test]
    fn or_full_table() {
        #[rustfmt::skip]
        let expect = [
            // 0        1     S        C        R        F        U
            [ Zero,     One,  Stable,  Change,  Rise,    Fall,    Unknown], // 0
            [ One,      One,  One,     One,     One,     One,     One    ], // 1
            [ Stable,   One,  Stable,  Change,  Rise,    Fall,    Unknown], // S
            [ Change,   One,  Change,  Change,  Change,  Change,  Unknown], // C
            [ Rise,     One,  Rise,    Change,  Rise,    Change,  Unknown], // R
            [ Fall,     One,  Fall,    Change,  Change,  Fall,    Unknown], // F
            [ Unknown,  One,  Unknown, Unknown, Unknown, Unknown, Unknown], // U
        ];
        for (i, a) in ALL_VALUES.iter().enumerate() {
            for (j, b) in ALL_VALUES.iter().enumerate() {
                assert_eq!(a.or(*b), expect[i][j], "{a} OR {b}");
            }
        }
    }

    #[test]
    fn and_full_table() {
        #[rustfmt::skip]
        let expect = [
            // 0     1        S        C        R        F        U
            [ Zero,  Zero,    Zero,    Zero,    Zero,    Zero,    Zero   ], // 0
            [ Zero,  One,     Stable,  Change,  Rise,    Fall,    Unknown], // 1
            [ Zero,  Stable,  Stable,  Change,  Rise,    Fall,    Unknown], // S
            [ Zero,  Change,  Change,  Change,  Change,  Change,  Unknown], // C
            [ Zero,  Rise,    Rise,    Change,  Rise,    Change,  Unknown], // R
            [ Zero,  Fall,    Fall,    Change,  Change,  Fall,    Unknown], // F
            [ Zero,  Unknown, Unknown, Unknown, Unknown, Unknown, Unknown], // U
        ];
        for (i, a) in ALL_VALUES.iter().enumerate() {
            for (j, b) in ALL_VALUES.iter().enumerate() {
                assert_eq!(a.and(*b), expect[i][j], "{a} AND {b}");
            }
        }
    }

    #[test]
    fn xor_full_table() {
        #[rustfmt::skip]
        let expect = [
            // 0       1        S        C        R        F        U
            [ Zero,    One,     Stable,  Change,  Rise,    Fall,    Unknown], // 0
            [ One,     Zero,    Stable,  Change,  Fall,    Rise,    Unknown], // 1
            [ Stable,  Stable,  Stable,  Change,  Change,  Change,  Unknown], // S
            [ Change,  Change,  Change,  Change,  Change,  Change,  Unknown], // C
            [ Rise,    Fall,    Change,  Change,  Change,  Change,  Unknown], // R
            [ Fall,    Rise,    Change,  Change,  Change,  Change,  Unknown], // F
            [ Unknown, Unknown, Unknown, Unknown, Unknown, Unknown, Unknown], // U
        ];
        for (i, a) in ALL_VALUES.iter().enumerate() {
            for (j, b) in ALL_VALUES.iter().enumerate() {
                assert_eq!(a.xor(*b), expect[i][j], "{a} XOR {b}");
            }
        }
    }

    #[test]
    fn demorgan_duality_of_and_or() {
        for a in ALL_VALUES {
            for b in ALL_VALUES {
                assert_eq!(
                    a.and(b).not(),
                    a.not().or(b.not()),
                    "De Morgan failed for {a}, {b}"
                );
            }
        }
    }

    #[test]
    fn join_is_upper_bound_of_branches() {
        for v in ALL_VALUES {
            assert_eq!(v.join(v), v);
        }
        assert_eq!(Zero.join(One), Stable);
        assert_eq!(Zero.join(Stable), Stable);
        assert_eq!(One.join(Rise), Rise);
        assert_eq!(Rise.join(Fall), Change);
        assert_eq!(Stable.join(Change), Change);
        assert_eq!(Unknown.join(Zero), Unknown);
    }

    #[test]
    fn chg_collapses_to_three_values() {
        for v in ALL_VALUES {
            let c = v.chg();
            assert!(
                matches!(c, Stable | Change | Unknown),
                "CHG({v}) = {c} is not in {{S, C, U}}"
            );
        }
        assert_eq!(chg([Zero, One, Stable]), Stable);
        assert_eq!(chg([Zero, Rise]), Change);
        assert_eq!(chg([Change, Unknown]), Unknown);
        assert_eq!(chg([]), Stable);
    }

    #[test]
    fn folds_use_correct_identities() {
        assert_eq!(or_all([]), Zero);
        assert_eq!(and_all([]), One);
        assert_eq!(xor_all([]), Zero);
        assert_eq!(or_all([Rise, Fall, Zero]), Change);
        assert_eq!(and_all([One, Stable, Rise]), Rise);
        assert_eq!(xor_all([One, One]), Zero);
    }

    #[test]
    #[should_panic(expected = "at least one input")]
    fn join_all_empty_panics() {
        let _ = join_all([]);
    }

    #[test]
    fn mux_select_constant_routes_input() {
        let d = [Stable, Rise, Fall];
        assert_eq!(mux(Zero, &d), Stable);
        assert_eq!(mux(One, &d), Rise);
    }

    #[test]
    fn mux_select_stable_joins_inputs() {
        assert_eq!(mux(Stable, &[Zero, One]), Stable);
        assert_eq!(mux(Stable, &[Stable, Rise]), Rise);
        assert_eq!(mux(Stable, &[Rise, Fall]), Change);
        assert_eq!(mux(Stable, &[One, One]), One);
    }

    #[test]
    fn mux_select_changing_is_change_unless_inputs_identical_constants() {
        assert_eq!(mux(Rise, &[One, One]), One);
        assert_eq!(mux(Fall, &[Zero, Zero]), Zero);
        assert_eq!(mux(Change, &[Stable, Stable]), Change);
        assert_eq!(mux(Rise, &[Zero, One]), Change);
        assert_eq!(mux(Change, &[Unknown, One]), Unknown);
    }

    #[test]
    fn mux_select_unknown_is_unknown() {
        assert_eq!(mux(Unknown, &[Zero, One]), Unknown);
    }

    #[test]
    fn parse_round_trip() {
        for v in ALL_VALUES {
            let s = v.to_string();
            assert_eq!(s.parse::<Value>().unwrap(), v);
        }
        assert_eq!("stable".parse::<Value>().unwrap(), Stable);
        assert_eq!("RISING".parse::<Value>().unwrap(), Rise);
        assert!("Q".parse::<Value>().is_err());
        let err = "Q".parse::<Value>().unwrap_err();
        assert!(err.to_string().contains("invalid signal value"));
    }

    #[test]
    fn edge_to_windows() {
        assert_eq!(Zero.edge_to(One), Rise);
        assert_eq!(One.edge_to(Zero), Fall);
        assert_eq!(Zero.edge_to(Stable), Change);
        assert_eq!(Stable.edge_to(Stable), Stable);
        assert_eq!(Unknown.edge_to(One), Unknown);
        assert_eq!(Rise.edge_to(Fall), Change);
    }

    #[test]
    fn predicates_partition_sensibly() {
        for v in ALL_VALUES {
            assert!(
                !(v.is_quiescent() && v.is_transitioning()),
                "{v} is both quiescent and transitioning"
            );
        }
        assert!(Zero.could_be_low() && !Zero.could_be_high());
        assert!(One.could_be_high() && !One.could_be_low());
        assert!(Stable.could_be_high() && Stable.could_be_low());
    }
}
