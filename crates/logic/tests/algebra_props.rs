//! Property tests for the seven-value algebra — run *exhaustively*.
//!
//! These check the algebraic laws the verifier's fixed-point engine relies
//! on: commutativity and associativity (so fold order over gate inputs is
//! irrelevant), idempotence, identity/dominance elements, De Morgan duality,
//! and soundness of the symbolic values with respect to concrete booleans.
//!
//! The domain has only seven values, so instead of sampling (the original
//! suite used proptest, which the offline build can no longer carry) every
//! law is verified over **all** pairs and triples: 343 combinations cover
//! the space completely.

use scald_logic::{Value, ALL_VALUES};

/// The set of concrete boolean *behaviours* a symbolic value stands for,
/// encoded as (start_level, end_level) pairs over a tiny interval.
///
/// Per §2.4.2 the symbolic values are *worst cases*: `R` means the signal
/// may be mid-way through a 0→1 transition, so at any instant it could
/// still be low, already be high, or be switching — but it cannot fall.
/// `S` is {00, 11}; `R` is {00, 11, 01}; `F` is {00, 11, 10}; `C` and `U`
/// are everything.
fn concretizations(v: Value) -> Vec<(bool, bool)> {
    match v {
        Value::Zero => vec![(false, false)],
        Value::One => vec![(true, true)],
        Value::Stable => vec![(false, false), (true, true)],
        Value::Rise => vec![(false, false), (true, true), (false, true)],
        Value::Fall => vec![(false, false), (true, true), (true, false)],
        Value::Change | Value::Unknown => {
            vec![(false, false), (true, true), (false, true), (true, false)]
        }
    }
}

/// Is `sym` a sound abstraction of the concrete behaviour `(s, e)`?
fn covers(sym: Value, beh: (bool, bool)) -> bool {
    concretizations(sym).contains(&beh)
}

fn pairs() -> impl Iterator<Item = (Value, Value)> {
    ALL_VALUES
        .iter()
        .flat_map(|&a| ALL_VALUES.iter().map(move |&b| (a, b)))
}

fn triples() -> impl Iterator<Item = (Value, Value, Value)> {
    pairs().flat_map(|(a, b)| ALL_VALUES.iter().map(move |&c| (a, b, c)))
}

#[test]
fn or_and_xor_join_commute() {
    for (a, b) in pairs() {
        assert_eq!(a.or(b), b.or(a), "OR {a} {b}");
        assert_eq!(a.and(b), b.and(a), "AND {a} {b}");
        assert_eq!(a.xor(b), b.xor(a), "XOR {a} {b}");
        assert_eq!(a.join(b), b.join(a), "JOIN {a} {b}");
    }
}

#[test]
fn or_and_join_associate() {
    for (a, b, c) in triples() {
        assert_eq!(a.or(b).or(c), a.or(b.or(c)), "OR {a} {b} {c}");
        assert_eq!(a.and(b).and(c), a.and(b.and(c)), "AND {a} {b} {c}");
        assert_eq!(a.join(b).join(c), a.join(b.join(c)), "JOIN {a} {b} {c}");
    }
}

#[test]
fn or_and_idempotent() {
    for &a in &ALL_VALUES {
        assert_eq!(a.or(a), a);
        assert_eq!(a.and(a), a);
        assert_eq!(a.join(a), a);
    }
}

#[test]
fn identities_and_dominators() {
    for &a in &ALL_VALUES {
        assert_eq!(Value::Zero.or(a), a);
        assert_eq!(Value::One.and(a), a);
        assert_eq!(Value::One.or(a), Value::One);
        assert_eq!(Value::Zero.and(a), Value::Zero);
        assert_eq!(Value::Zero.xor(a), a);
        assert_eq!(Value::One.xor(a), a.not());
    }
}

#[test]
fn demorgan() {
    for (a, b) in pairs() {
        assert_eq!(a.or(b).not(), a.not().and(b.not()), "{a} {b}");
    }
}

/// Soundness: for every concrete behaviour of the inputs, the concrete
/// gate output behaviour is covered by the symbolic gate output.
/// This is the property that makes the whole verification approach
/// conservative — the symbolic pass never misses a real transition.
#[test]
fn or_is_sound_abstraction() {
    for (a, b) in pairs() {
        let sym = a.or(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 | cb.0, ca.1 | cb.1);
                assert!(
                    covers(sym, beh),
                    "{a} OR {b} = {sym} does not cover {beh:?}"
                );
            }
        }
    }
}

#[test]
fn and_is_sound_abstraction() {
    for (a, b) in pairs() {
        let sym = a.and(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 & cb.0, ca.1 & cb.1);
                assert!(
                    covers(sym, beh),
                    "{a} AND {b} = {sym} does not cover {beh:?}"
                );
            }
        }
    }
}

#[test]
fn xor_is_sound_abstraction() {
    for (a, b) in pairs() {
        let sym = a.xor(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 ^ cb.0, ca.1 ^ cb.1);
                assert!(
                    covers(sym, beh),
                    "{a} XOR {b} = {sym} does not cover {beh:?}"
                );
            }
        }
    }
}

#[test]
fn not_is_sound_abstraction() {
    for &a in &ALL_VALUES {
        let sym = a.not();
        for ca in concretizations(a) {
            assert!(covers(sym, (!ca.0, !ca.1)), "NOT {a}");
        }
    }
}

/// join(a, b) must cover every behaviour of both branches.
#[test]
fn join_covers_both_branches() {
    for (a, b) in pairs() {
        let j = a.join(b);
        for beh in concretizations(a).into_iter().chain(concretizations(b)) {
            assert!(covers(j, beh), "join({a}, {b}) = {j} misses {beh:?}");
        }
    }
}

/// edge_to(a, b) must cover holding the old value, already holding the new
/// one, and being mid-transition from old to new.
#[test]
fn edge_to_covers_old_new_and_transition() {
    for (a, b) in pairs() {
        let w = a.edge_to(b);
        for beh in concretizations(a) {
            assert!(covers(w, beh), "edge {a}->{b} = {w} misses old {beh:?}");
        }
        for beh in concretizations(b) {
            assert!(covers(w, beh), "edge {a}->{b} = {w} misses new {beh:?}");
        }
        // Mid-transition: starts at a's start level, ends at b's end level.
        // Only meaningful at a real boundary (a != b); equal-valued adjacent
        // segments are merged by waveform normalization and never produce
        // an edge window.
        if a != b {
            for ca in concretizations(a) {
                for cb in concretizations(b) {
                    let beh = (ca.0, cb.1);
                    assert!(covers(w, beh), "edge {a}->{b} = {w} misses {beh:?}");
                }
            }
        }
    }
}

#[test]
fn display_parse_round_trip() {
    for &a in &ALL_VALUES {
        assert_eq!(a.to_string().parse::<Value>().unwrap(), a);
    }
}
