//! Property-based tests for the seven-value algebra.
//!
//! These check the algebraic laws the verifier's fixed-point engine relies
//! on: commutativity and associativity (so fold order over gate inputs is
//! irrelevant), idempotence, identity/dominance elements, De Morgan duality,
//! and soundness of the symbolic values with respect to concrete booleans.

use proptest::prelude::*;
use scald_logic::{Value, ALL_VALUES};

fn any_value() -> impl Strategy<Value = Value> {
    prop::sample::select(ALL_VALUES.to_vec())
}

/// The set of concrete boolean *behaviours* a symbolic value stands for,
/// encoded as (start_level, end_level) pairs over a tiny interval.
///
/// Per §2.4.2 the symbolic values are *worst cases*: `R` means the signal
/// may be mid-way through a 0→1 transition, so at any instant it could
/// still be low, already be high, or be switching — but it cannot fall.
/// `S` is {00, 11}; `R` is {00, 11, 01}; `F` is {00, 11, 10}; `C` and `U`
/// are everything.
fn concretizations(v: Value) -> Vec<(bool, bool)> {
    match v {
        Value::Zero => vec![(false, false)],
        Value::One => vec![(true, true)],
        Value::Stable => vec![(false, false), (true, true)],
        Value::Rise => vec![(false, false), (true, true), (false, true)],
        Value::Fall => vec![(false, false), (true, true), (true, false)],
        Value::Change | Value::Unknown => {
            vec![(false, false), (true, true), (false, true), (true, false)]
        }
    }
}

/// Is `sym` a sound abstraction of the concrete behaviour `(s, e)`?
fn covers(sym: Value, beh: (bool, bool)) -> bool {
    concretizations(sym).contains(&beh)
}

proptest! {
    #[test]
    fn or_commutes(a in any_value(), b in any_value()) {
        prop_assert_eq!(a.or(b), b.or(a));
    }

    #[test]
    fn and_commutes(a in any_value(), b in any_value()) {
        prop_assert_eq!(a.and(b), b.and(a));
    }

    #[test]
    fn xor_commutes(a in any_value(), b in any_value()) {
        prop_assert_eq!(a.xor(b), b.xor(a));
    }

    #[test]
    fn join_commutes(a in any_value(), b in any_value()) {
        prop_assert_eq!(a.join(b), b.join(a));
    }

    #[test]
    fn or_associates(a in any_value(), b in any_value(), c in any_value()) {
        prop_assert_eq!(a.or(b).or(c), a.or(b.or(c)));
    }

    #[test]
    fn and_associates(a in any_value(), b in any_value(), c in any_value()) {
        prop_assert_eq!(a.and(b).and(c), a.and(b.and(c)));
    }

    #[test]
    fn join_associates(a in any_value(), b in any_value(), c in any_value()) {
        prop_assert_eq!(a.join(b).join(c), a.join(b.join(c)));
    }

    #[test]
    fn or_and_idempotent(a in any_value()) {
        prop_assert_eq!(a.or(a), a);
        prop_assert_eq!(a.and(a), a);
        prop_assert_eq!(a.join(a), a);
    }

    #[test]
    fn identities_and_dominators(a in any_value()) {
        prop_assert_eq!(Value::Zero.or(a), a);
        prop_assert_eq!(Value::One.and(a), a);
        prop_assert_eq!(Value::One.or(a), Value::One);
        prop_assert_eq!(Value::Zero.and(a), Value::Zero);
        prop_assert_eq!(Value::Zero.xor(a), a);
        prop_assert_eq!(Value::One.xor(a), a.not());
    }

    #[test]
    fn demorgan(a in any_value(), b in any_value()) {
        prop_assert_eq!(a.or(b).not(), a.not().and(b.not()));
    }

    /// Soundness: for every concrete behaviour of the inputs, the concrete
    /// gate output behaviour is covered by the symbolic gate output.
    /// This is the property that makes the whole verification approach
    /// conservative — the symbolic pass never misses a real transition.
    #[test]
    fn or_is_sound_abstraction(a in any_value(), b in any_value()) {
        let sym = a.or(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 | cb.0, ca.1 | cb.1);
                prop_assert!(
                    covers(sym, beh),
                    "{} OR {} = {} does not cover {:?}", a, b, sym, beh
                );
            }
        }
    }

    #[test]
    fn and_is_sound_abstraction(a in any_value(), b in any_value()) {
        let sym = a.and(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 & cb.0, ca.1 & cb.1);
                prop_assert!(
                    covers(sym, beh),
                    "{} AND {} = {} does not cover {:?}", a, b, sym, beh
                );
            }
        }
    }

    #[test]
    fn xor_is_sound_abstraction(a in any_value(), b in any_value()) {
        let sym = a.xor(b);
        for ca in concretizations(a) {
            for cb in concretizations(b) {
                let beh = (ca.0 ^ cb.0, ca.1 ^ cb.1);
                prop_assert!(
                    covers(sym, beh),
                    "{} XOR {} = {} does not cover {:?}", a, b, sym, beh
                );
            }
        }
    }

    #[test]
    fn not_is_sound_abstraction(a in any_value()) {
        let sym = a.not();
        for ca in concretizations(a) {
            prop_assert!(covers(sym, (!ca.0, !ca.1)));
        }
    }

    /// join(a, b) must cover every behaviour of both branches.
    #[test]
    fn join_covers_both_branches(a in any_value(), b in any_value()) {
        let j = a.join(b);
        for beh in concretizations(a).into_iter().chain(concretizations(b)) {
            prop_assert!(covers(j, beh), "join({}, {}) = {} misses {:?}", a, b, j, beh);
        }
    }

    /// edge_to(a, b) must cover ending like `a` starts... more precisely:
    /// the window could still hold the old value, already hold the new one,
    /// or be mid-transition from old to new.
    #[test]
    fn edge_to_covers_old_new_and_transition(a in any_value(), b in any_value()) {
        let w = a.edge_to(b);
        for beh in concretizations(a) {
            prop_assert!(covers(w, beh), "edge {}->{} = {} misses old {:?}", a, b, w, beh);
        }
        for beh in concretizations(b) {
            prop_assert!(covers(w, beh), "edge {}->{} = {} misses new {:?}", a, b, w, beh);
        }
        // Mid-transition: starts at a's start level, ends at b's end level.
        // Only meaningful at a real boundary (a != b); equal-valued adjacent
        // segments are merged by waveform normalization and never produce
        // an edge window.
        if a != b {
            for ca in concretizations(a) {
                for cb in concretizations(b) {
                    let beh = (ca.0, cb.1);
                    prop_assert!(covers(w, beh), "edge {}->{} = {} misses {:?}", a, b, w, beh);
                }
            }
        }
    }

    #[test]
    fn display_parse_round_trip(a in any_value()) {
        prop_assert_eq!(a.to_string().parse::<Value>().unwrap(), a);
    }
}
