//! Signal assertions: the `.P`, `.C` and `.S` suffixes of SCALD signal
//! names (§2.5).
//!
//! In SCALD, timing assertions are part of a signal's *name*, which
//! guarantees that every reference to the signal agrees on its timing.
//! Three kinds exist:
//!
//! * **Precision clocks** — `NAME .P <spec>`: clocks that have been
//!   hand-adjusted (de-skewed); they get a tight default skew.
//! * **Non-precision clocks** — `NAME .C <spec>`: unadjusted clocks, with a
//!   larger default skew.
//! * **Stable assertions** — `NAME .S <spec>`: control/data signals that
//!   the designer asserts are stable during the given intervals and may be
//!   changing during the rest of the cycle.
//!
//! The `<spec>` grammar (§2.5.1):
//!
//! ```text
//! spec   := ranges [ '(' minus ',' plus ')' ] [ 'L' ]
//! ranges := range { ',' range }
//! range  := time | time '-' time | time '+' width_ns
//! ```
//!
//! Times are in designer-chosen *clock units* that scale with the period
//! (§2.3); a `time '+' width` range fixes the pulse width in nanoseconds so
//! it does **not** scale. A single time means a one-clock-unit interval.
//! `L` asserts the clock is *low* during the given ranges. All ranges are
//! taken modulo the cycle time (§3.2), so `.S4-9` on an 8-unit cycle wraps.
//!
//! # Examples
//!
//! ```
//! use scald_assertions::{Assertion, AssertionKind, parse_signal_name};
//!
//! let (base, assertion) = parse_signal_name("WRITE .S0-6 L").unwrap();
//! assert_eq!(base, "WRITE");
//! let a = assertion.unwrap();
//! assert_eq!(a.kind, AssertionKind::Stable);
//! assert!(a.active_low);
//!
//! let (base, assertion) = parse_signal_name("CK .P2-3").unwrap();
//! assert_eq!(base, "CK");
//! assert_eq!(assertion.unwrap().kind, AssertionKind::PrecisionClock);
//! ```

#![warn(missing_docs)]

use scald_logic::Value;
use scald_wave::{Skew, Time, Waveform};
use std::fmt;

/// Which kind of assertion a signal name carries (§2.5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AssertionKind {
    /// `.P` — a clock adjusted to a specified (small) skew.
    PrecisionClock,
    /// `.C` — an unadjusted clock with the larger default skew.
    NonPrecisionClock,
    /// `.S` — a stable assertion on a control or data signal.
    Stable,
}

impl AssertionKind {
    /// The suffix letter (`P`, `C` or `S`).
    #[must_use]
    pub const fn letter(self) -> char {
        match self {
            AssertionKind::PrecisionClock => 'P',
            AssertionKind::NonPrecisionClock => 'C',
            AssertionKind::Stable => 'S',
        }
    }

    /// `true` for the two clock kinds.
    #[must_use]
    pub const fn is_clock(self) -> bool {
        matches!(
            self,
            AssertionKind::PrecisionClock | AssertionKind::NonPrecisionClock
        )
    }
}

/// One `time`, `time-time` or `time+width` range in an assertion spec.
///
/// Starts and ends are in clock units; a [`TimeRange::UnitsPlusNs`] end is
/// an absolute width in nanoseconds that does not scale with the period.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum TimeRange {
    /// `t`: a one-clock-unit interval starting at `t`.
    Single(f64),
    /// `a-b`: from time `a` to time `b` (both clock units, modulo period).
    Units(f64, f64),
    /// `a+w`: from time `a` (clock units) for `w` nanoseconds.
    UnitsPlusNs(f64, f64),
}

impl TimeRange {
    /// Resolves the range to absolute `(start, end)` instants given the
    /// clock-unit scale.
    #[must_use]
    pub fn resolve(self, clock_unit: Time) -> (Time, Time) {
        let at = |units: f64| Time::from_ps((units * clock_unit.as_ps() as f64).round() as i64);
        match self {
            TimeRange::Single(t) => (at(t), at(t + 1.0)),
            TimeRange::Units(a, b) => (at(a), at(b)),
            TimeRange::UnitsPlusNs(a, w) => (at(a), at(a) + Time::from_ns(w)),
        }
    }
}

impl fmt::Display for TimeRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn num(f: &mut fmt::Formatter<'_>, x: f64) -> fmt::Result {
            if x.fract() == 0.0 {
                write!(f, "{}", x as i64)
            } else {
                write!(f, "{x}")
            }
        }
        match *self {
            TimeRange::Single(t) => num(f, t),
            TimeRange::Units(a, b) => {
                num(f, a)?;
                write!(f, "-")?;
                num(f, b)
            }
            TimeRange::UnitsPlusNs(a, w) => {
                num(f, a)?;
                write!(f, "+{w:.1}")
            }
        }
    }
}

/// A parsed signal assertion.
///
/// Two assertions are equal when they specify the same kind, ranges, skew
/// and polarity — the test SCALD applies when checking that the interface
/// signals of separately verified design sections are consistent (§2.5.2).
#[derive(Debug, Clone, PartialEq)]
pub struct Assertion {
    /// Clock or stable assertion.
    pub kind: AssertionKind,
    /// The asserted intervals, in clock units.
    pub ranges: Vec<TimeRange>,
    /// Explicit skew override `(minus, plus)` in nanoseconds; `None` uses
    /// the default for the kind.
    pub skew: Option<(f64, f64)>,
    /// `L`: the clock is low (rather than high) during the ranges.
    pub active_low: bool,
}

/// Timing context needed to turn an [`Assertion`] into a waveform:
/// the circuit period, the clock-unit scale (§2.3), and the default skews
/// for the two clock categories (§2.5.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimingContext {
    /// The circuit clock period (§2.2).
    pub period: Time,
    /// One designer clock unit, e.g. one-eighth of the period.
    pub clock_unit: Time,
    /// Default skew for `.P` clocks (the thesis used ±1.0 ns).
    pub precision_skew: Skew,
    /// Default skew for `.C` clocks (the thesis used ±5.0 ns).
    pub nonprecision_skew: Skew,
}

impl TimingContext {
    /// The context used throughout the thesis' examples: a 50 ns cycle with
    /// 6.25 ns clock units (8 units per cycle), ±1 ns precision skew and
    /// ±5 ns non-precision skew (§3.2, §3.3).
    #[must_use]
    pub fn s1_example() -> TimingContext {
        TimingContext {
            period: Time::from_ns(50.0),
            clock_unit: Time::from_ns(6.25),
            precision_skew: Skew::from_ns(1.0, 1.0),
            nonprecision_skew: Skew::from_ns(5.0, 5.0),
        }
    }
}

impl Assertion {
    /// Builds the initial waveform and skew for a signal carrying this
    /// assertion (§2.9).
    ///
    /// Clock assertions produce a `0`/`1` waveform (high during the ranges,
    /// or low if `L`) plus the clock's skew, kept separate so the pulse
    /// width survives (§2.8). Stable assertions produce `S` during the
    /// ranges and `C` elsewhere, with zero skew.
    #[must_use]
    pub fn to_state(&self, ctx: &TimingContext) -> (Waveform, Skew) {
        let (asserted, base) = match (self.kind, self.active_low) {
            (AssertionKind::Stable, _) => (Value::Stable, Value::Change),
            (_, false) => (Value::One, Value::Zero),
            (_, true) => (Value::Zero, Value::One),
        };
        let wave = Waveform::from_intervals(
            ctx.period,
            base,
            self.ranges.iter().map(|r| {
                let (s, e) = r.resolve(ctx.clock_unit);
                (s, e, asserted)
            }),
        );
        let skew = if self.kind.is_clock() {
            match self.skew {
                Some((m, p)) => Skew::from_ns(m.abs(), p),
                None => match self.kind {
                    AssertionKind::PrecisionClock => ctx.precision_skew,
                    AssertionKind::NonPrecisionClock => ctx.nonprecision_skew,
                    AssertionKind::Stable => unreachable!(),
                },
            }
        } else {
            Skew::ZERO
        };
        (wave, skew)
    }
}

impl fmt::Display for Assertion {
    /// Reconstructs the canonical suffix text, e.g. `.C2-3,5-6 L`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, ".{}", self.kind.letter())?;
        for (i, r) in self.ranges.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{r}")?;
        }
        if let Some((m, p)) = self.skew {
            write!(f, " ({m},{p})")?;
        }
        if self.active_low {
            write!(f, " L")?;
        }
        Ok(())
    }
}

/// Error from [`parse_signal_name`] / [`parse_assertion`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAssertionError {
    message: String,
}

impl ParseAssertionError {
    fn new(msg: impl Into<String>) -> ParseAssertionError {
        ParseAssertionError {
            message: msg.into(),
        }
    }
}

impl fmt::Display for ParseAssertionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid assertion: {}", self.message)
    }
}

impl std::error::Error for ParseAssertionError {}

/// Splits a full SCALD signal name into its base name and optional
/// assertion.
///
/// The assertion starts at the last ` .P`, ` .C` or ` .S` in the name
/// (assertions "are given at the end of signal names and are preceded by a
/// period", §2.5.1). Names without such a suffix have no assertion.
///
/// # Errors
///
/// Returns an error if an assertion suffix is present but malformed.
///
/// ```
/// use scald_assertions::parse_signal_name;
/// let (base, a) = parse_signal_name("W DATA .S0-6").unwrap();
/// assert_eq!(base, "W DATA");
/// assert!(a.is_some());
/// let (base, a) = parse_signal_name("PLAIN WIRE").unwrap();
/// assert_eq!(base, "PLAIN WIRE");
/// assert!(a.is_none());
/// ```
pub fn parse_signal_name(full: &str) -> Result<(String, Option<Assertion>), ParseAssertionError> {
    let full = full.trim();
    // Find the last " .X" with X in {P, C, S}.
    let mut split_at = None;
    let bytes = full.as_bytes();
    for i in (0..full.len()).rev() {
        if bytes[i] == b'.'
            && i > 0
            && bytes[i - 1] == b' '
            && i + 1 < full.len()
            && matches!(bytes[i + 1], b'P' | b'C' | b'S')
        {
            split_at = Some(i);
            break;
        }
    }
    match split_at {
        None => Ok((full.to_owned(), None)),
        Some(i) => {
            let base = full[..i].trim_end().to_owned();
            if base.is_empty() {
                return Err(ParseAssertionError::new(format!(
                    "signal name {full:?} is only an assertion"
                )));
            }
            let assertion = parse_assertion(&full[i..])?;
            Ok((base, Some(assertion)))
        }
    }
}

/// Parses an assertion suffix such as `.C2-3,5-6 L`, `.P2,5 (-0.5,0.5)` or
/// `.S0-6`.
///
/// # Errors
///
/// Returns an error if the suffix does not match the grammar in the
/// [crate documentation](crate).
pub fn parse_assertion(s: &str) -> Result<Assertion, ParseAssertionError> {
    let s = s.trim();
    let rest = s
        .strip_prefix('.')
        .ok_or_else(|| ParseAssertionError::new(format!("{s:?} does not start with '.'")))?;
    let mut chars = rest.chars();
    let kind = match chars.next() {
        Some('P') => AssertionKind::PrecisionClock,
        Some('C') => AssertionKind::NonPrecisionClock,
        Some('S') => AssertionKind::Stable,
        other => {
            return Err(ParseAssertionError::new(format!(
                "expected P, C or S after '.', found {other:?}"
            )))
        }
    };
    let spec = chars.as_str().trim();

    let mut ranges = Vec::new();
    let mut skew = None;
    let mut active_low = false;

    let mut toks = Tokenizer::new(spec);
    // Ranges: number [ ('-'|'+') number ] { ',' ... }
    loop {
        let start = toks
            .number()
            .ok_or_else(|| ParseAssertionError::new(format!("expected a time in {spec:?}")))?;
        match toks.peek() {
            Some('-') => {
                toks.bump();
                let end = toks.number().ok_or_else(|| {
                    ParseAssertionError::new(format!("expected end time after '-' in {spec:?}"))
                })?;
                ranges.push(TimeRange::Units(start, end));
            }
            Some('+') => {
                toks.bump();
                let width = toks.number().ok_or_else(|| {
                    ParseAssertionError::new(format!("expected width after '+' in {spec:?}"))
                })?;
                ranges.push(TimeRange::UnitsPlusNs(start, width));
            }
            _ => ranges.push(TimeRange::Single(start)),
        }
        if toks.peek() == Some(',') {
            toks.bump();
        } else {
            break;
        }
    }
    // Optional skew "(minus,plus)".
    toks.skip_ws();
    if toks.peek() == Some('(') {
        toks.bump();
        let minus = toks
            .number()
            .ok_or_else(|| ParseAssertionError::new("expected minus skew after '('"))?;
        if toks.peek() == Some(',') {
            toks.bump();
        } else {
            return Err(ParseAssertionError::new(
                "expected ',' in skew specification",
            ));
        }
        let plus = toks
            .number()
            .ok_or_else(|| ParseAssertionError::new("expected plus skew"))?;
        if toks.peek() == Some(')') {
            toks.bump();
        } else {
            return Err(ParseAssertionError::new("expected ')' to close skew"));
        }
        if minus > 0.0 {
            return Err(ParseAssertionError::new(format!(
                "minus skew must be negative or zero, got {minus}"
            )));
        }
        if plus < 0.0 {
            return Err(ParseAssertionError::new(format!(
                "plus skew must be positive or zero, got {plus}"
            )));
        }
        skew = Some((minus, plus));
    }
    // Optional polarity 'L'.
    toks.skip_ws();
    if toks.peek() == Some('L') {
        toks.bump();
        active_low = true;
    }
    toks.skip_ws();
    if let Some(c) = toks.peek() {
        return Err(ParseAssertionError::new(format!(
            "unexpected {c:?} at end of assertion {s:?}"
        )));
    }
    if kind == AssertionKind::Stable && skew.is_some() {
        return Err(ParseAssertionError::new(
            "stable assertions cannot specify skew",
        ));
    }
    Ok(Assertion {
        kind,
        ranges,
        skew,
        active_low,
    })
}

/// Minimal character tokenizer for assertion specs.
struct Tokenizer<'a> {
    rest: std::str::Chars<'a>,
}

impl<'a> Tokenizer<'a> {
    fn new(s: &'a str) -> Tokenizer<'a> {
        Tokenizer { rest: s.chars() }
    }

    fn skip_ws(&mut self) {
        while self.peek() == Some(' ') {
            self.bump();
        }
    }

    fn peek(&self) -> Option<char> {
        self.rest.clone().next()
    }

    fn bump(&mut self) {
        self.rest.next();
    }

    /// Parses an optionally signed decimal number. Skips leading spaces.
    fn number(&mut self) -> Option<f64> {
        self.skip_ws();
        let s = self.rest.as_str();
        let mut len = 0;
        let bytes = s.as_bytes();
        if len < bytes.len() && bytes[len] == b'-' {
            len += 1;
        }
        let digits_start = len;
        while len < bytes.len() && (bytes[len].is_ascii_digit() || bytes[len] == b'.') {
            len += 1;
        }
        if len == digits_start {
            return None;
        }
        let parsed: f64 = s[..len].parse().ok()?;
        for _ in 0..len {
            self.bump();
        }
        Some(parsed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value::*;

    fn ctx() -> TimingContext {
        TimingContext::s1_example()
    }

    fn ns(x: f64) -> Time {
        Time::from_ns(x)
    }

    #[test]
    fn parse_paper_examples() {
        // "XYZ .C 4-6 L"
        let (base, a) = parse_signal_name("XYZ .C4-6 L").unwrap();
        assert_eq!(base, "XYZ");
        let a = a.unwrap();
        assert_eq!(a.kind, AssertionKind::NonPrecisionClock);
        assert_eq!(a.ranges, vec![TimeRange::Units(4.0, 6.0)]);
        assert!(a.active_low);

        // "XYZ .C2-3,5-6"
        let (_, a) = parse_signal_name("XYZ .C2-3,5-6").unwrap();
        let a = a.unwrap();
        assert_eq!(
            a.ranges,
            vec![TimeRange::Units(2.0, 3.0), TimeRange::Units(5.0, 6.0)]
        );

        // "XYZ .C2,5" — single times are one clock unit wide.
        let (_, a) = parse_signal_name("XYZ .C2,5").unwrap();
        let a = a.unwrap();
        assert_eq!(
            a.ranges,
            vec![TimeRange::Single(2.0), TimeRange::Single(5.0)]
        );

        // "2+10.0": high at unit 2 for 10.0 ns.
        let (_, a) = parse_signal_name("XYZ .C2+10.0").unwrap();
        let a = a.unwrap();
        assert_eq!(a.ranges, vec![TimeRange::UnitsPlusNs(2.0, 10.0)]);
    }

    #[test]
    fn parse_spaces_variant() {
        let (base, a) = parse_signal_name("CK .P 2-3 L").unwrap();
        assert_eq!(base, "CK");
        let a = a.unwrap();
        assert_eq!(a.kind, AssertionKind::PrecisionClock);
        assert!(a.active_low);
    }

    #[test]
    fn parse_explicit_skew() {
        let (_, a) = parse_signal_name("CK .P2-3 (-0.5,0.5)").unwrap();
        let a = a.unwrap();
        assert_eq!(a.skew, Some((-0.5, 0.5)));
    }

    #[test]
    fn parse_multiword_base_names() {
        let (base, a) = parse_signal_name("W DATA .S0-6").unwrap();
        assert_eq!(base, "W DATA");
        assert_eq!(a.unwrap().kind, AssertionKind::Stable);
        let (base, a) = parse_signal_name("READ ADR .S4-9").unwrap();
        assert_eq!(base, "READ ADR");
        assert!(a.is_some());
    }

    #[test]
    fn names_without_assertions() {
        let (base, a) = parse_signal_name("REG OUT").unwrap();
        assert_eq!(base, "REG OUT");
        assert!(a.is_none());
        // A '.' not preceded by a space is part of the name.
        let (base, a) = parse_signal_name("NET.Px").unwrap();
        assert_eq!(base, "NET.Px");
        assert!(a.is_none());
    }

    #[test]
    fn parse_errors() {
        assert!(parse_signal_name("X .Q1-2").is_ok()); // .Q is not an assertion
        assert!(parse_assertion(".C").is_err()); // no ranges
        assert!(parse_assertion(".C1-2 X").is_err()); // trailing junk
        assert!(parse_assertion(".C1-2 (0.5,0.5)").is_err()); // minus must be <= 0
        assert!(parse_assertion(".C1-2 (-0.5,-0.5)").is_err()); // plus must be >= 0
        assert!(parse_assertion(".S1-2 (-1,1)").is_err()); // stable has no skew
        let err = parse_assertion(".C").unwrap_err();
        assert!(err.to_string().contains("invalid assertion"));
    }

    #[test]
    fn clock_waveform_high_during_ranges() {
        // .C2-3,5-6 on the 8-unit 50 ns cycle: high 12.5..18.75, 31.25..37.5.
        let a = parse_assertion(".C2-3,5-6").unwrap();
        let (wave, skew) = a.to_state(&ctx());
        assert_eq!(wave.value_at(ns(14.0)), One);
        assert_eq!(wave.value_at(ns(20.0)), Zero);
        assert_eq!(wave.value_at(ns(33.0)), One);
        assert_eq!(wave.value_at(ns(40.0)), Zero);
        assert_eq!(skew, Skew::from_ns(5.0, 5.0)); // non-precision default
    }

    #[test]
    fn active_low_clock() {
        let a = parse_assertion(".C4-6 L").unwrap();
        let (wave, _) = a.to_state(&ctx());
        // Low from unit 4 (25 ns) to unit 6 (37.5 ns), high elsewhere.
        assert_eq!(wave.value_at(ns(30.0)), Zero);
        assert_eq!(wave.value_at(ns(10.0)), One);
        assert_eq!(wave.value_at(ns(40.0)), One);
    }

    #[test]
    fn precision_clock_gets_tight_default_skew() {
        let a = parse_assertion(".P2,5").unwrap();
        let (_, skew) = a.to_state(&ctx());
        assert_eq!(skew, Skew::from_ns(1.0, 1.0));
    }

    #[test]
    fn explicit_skew_overrides_default() {
        let a = parse_assertion(".P2-3 (-0.25,0.25)").unwrap();
        let (_, skew) = a.to_state(&ctx());
        assert_eq!(skew, Skew::from_ns(0.25, 0.25));
    }

    #[test]
    fn fixed_width_range_does_not_scale() {
        let a = parse_assertion(".C2+10.0").unwrap();
        let (wave, _) = a.to_state(&ctx());
        // High from 12.5 ns for exactly 10 ns.
        assert_eq!(wave.value_at(ns(12.5)), One);
        assert_eq!(wave.value_at(ns(22.4)), One);
        assert_eq!(wave.value_at(ns(22.5)), Zero);
    }

    #[test]
    fn stable_assertion_wraps_modulo_cycle() {
        // ".S4-9" on the 8-unit cycle: stable 4..8 and 0..1 (§3.2).
        let a = parse_assertion(".S4-9").unwrap();
        let (wave, skew) = a.to_state(&ctx());
        assert_eq!(skew, Skew::ZERO);
        assert_eq!(wave.value_at(ns(30.0)), Stable); // unit 4.8
        assert_eq!(wave.value_at(ns(49.0)), Stable); // unit 7.8
        assert_eq!(wave.value_at(ns(3.0)), Stable); // unit 0.5 (wrapped)
        assert_eq!(wave.value_at(ns(10.0)), Change); // unit 1.6
    }

    #[test]
    fn stable_assertion_w_data_example() {
        // "W DATA .S0-6": stable 0..37.5 ns, changing 37.5..50.
        let a = parse_assertion(".S0-6").unwrap();
        let (wave, _) = a.to_state(&ctx());
        assert_eq!(wave.value_at(ns(0.0)), Stable);
        assert_eq!(wave.value_at(ns(37.0)), Stable);
        assert_eq!(wave.value_at(ns(38.0)), Change);
        assert_eq!(wave.value_at(ns(49.0)), Change);
    }

    #[test]
    fn display_round_trip() {
        for text in [
            ".C2-3,5-6",
            ".P2,5",
            ".C4-6 L",
            ".C2+10.0",
            ".P2-3 (-0.5,0.5)",
            ".S0-6",
        ] {
            let a = parse_assertion(text).unwrap();
            let shown = a.to_string();
            let reparsed = parse_assertion(&shown).unwrap();
            assert_eq!(reparsed, a, "round trip failed for {text:?} -> {shown:?}");
        }
    }

    #[test]
    fn equality_supports_interface_consistency_checks() {
        let a = parse_assertion(".S0-6").unwrap();
        let b = parse_assertion(".S0-6").unwrap();
        let c = parse_assertion(".S0-7").unwrap();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }
}
