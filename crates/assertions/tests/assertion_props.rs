//! Property tests: assertion Display/parse round trips and waveform
//! construction invariants.

use proptest::prelude::*;
use scald_assertions::{
    parse_assertion, parse_signal_name, Assertion, AssertionKind, TimeRange, TimingContext,
};
use scald_logic::Value;
use scald_wave::Time;

fn kind() -> impl Strategy<Value = AssertionKind> {
    prop_oneof![
        Just(AssertionKind::PrecisionClock),
        Just(AssertionKind::NonPrecisionClock),
        Just(AssertionKind::Stable),
    ]
}

fn time_range() -> impl Strategy<Value = TimeRange> {
    prop_oneof![
        (0u32..16).prop_map(|a| TimeRange::Single(f64::from(a))),
        (0u32..16, 1u32..16)
            .prop_map(|(a, w)| TimeRange::Units(f64::from(a), f64::from(a + w))),
        (0u32..16, 1u32..200)
            .prop_map(|(a, w)| TimeRange::UnitsPlusNs(f64::from(a), f64::from(w) / 10.0)),
    ]
}

fn assertion() -> impl Strategy<Value = Assertion> {
    (
        kind(),
        prop::collection::vec(time_range(), 1..4),
        prop::option::of((0u32..50, 0u32..50)),
        any::<bool>(),
    )
        .prop_map(|(kind, ranges, skew, active_low)| {
            let skew = if kind.is_clock() {
                skew.map(|(m, p)| (-f64::from(m) / 10.0, f64::from(p) / 10.0))
            } else {
                None
            };
            Assertion {
                kind,
                ranges,
                skew,
                active_low,
            }
        })
}

proptest! {
    /// Display -> parse reconstructs the assertion exactly — the property
    /// SCALD relies on when assertions live inside signal names.
    #[test]
    fn display_parse_round_trip(a in assertion()) {
        let text = a.to_string();
        let parsed = parse_assertion(&text)
            .unwrap_or_else(|e| panic!("{text:?} failed to parse: {e}"));
        prop_assert_eq!(parsed, a, "text: {}", text);
    }

    /// The assertion survives embedding in a full signal name.
    #[test]
    fn embeds_in_signal_names(a in assertion(), base in "[A-Z][A-Z ]{0,10}[A-Z]") {
        let full = format!("{base} {a}");
        let (parsed_base, parsed_a) = parse_signal_name(&full)
            .unwrap_or_else(|e| panic!("{full:?} failed: {e}"));
        prop_assert_eq!(parsed_base, base);
        prop_assert_eq!(parsed_a, Some(a));
    }

    /// to_state produces a waveform whose asserted intervals carry the
    /// asserted value — and clock skews come from the right default.
    #[test]
    fn to_state_paints_asserted_value(a in assertion()) {
        let ctx = TimingContext::s1_example();
        let (wave, skew) = a.to_state(&ctx);
        // Sample the midpoint of each range (modulo the period).
        for r in &a.ranges {
            let (start, end) = r.resolve(ctx.clock_unit);
            if end <= start { continue; }
            let mid_ps = (start.as_ps() + end.as_ps()) / 2;
            let v = wave.value_at(Time::from_ps(mid_ps));
            let expect = match (a.kind, a.active_low) {
                (AssertionKind::Stable, _) => Value::Stable,
                (_, false) => Value::One,
                (_, true) => Value::Zero,
            };
            // Later overlapping ranges may repaint, so only require the
            // value to be one of the two paint colours.
            let base = match (a.kind, a.active_low) {
                (AssertionKind::Stable, _) => Value::Change,
                (_, false) => Value::Zero,
                (_, true) => Value::One,
            };
            prop_assert!(
                v == expect || v == base,
                "range {} midpoint {} has {}", r, Time::from_ps(mid_ps), v
            );
        }
        if a.kind.is_clock() {
            match a.skew {
                Some((m, p)) => {
                    prop_assert_eq!(skew.minus, Time::from_ns(m.abs()));
                    prop_assert_eq!(skew.plus, Time::from_ns(p));
                }
                None => {
                    let expect = match a.kind {
                        AssertionKind::PrecisionClock => ctx.precision_skew,
                        _ => ctx.nonprecision_skew,
                    };
                    prop_assert_eq!(skew, expect);
                }
            }
        } else {
            prop_assert!(skew.is_zero());
        }
    }
}
