//! Randomized property tests (seeded, std-only): assertion Display/parse
//! round trips and waveform construction invariants.

use scald_assertions::{
    parse_assertion, parse_signal_name, Assertion, AssertionKind, TimeRange, TimingContext,
};
use scald_logic::Value;
use scald_rng::Rng;
use scald_wave::Time;

const CASES: usize = 1024;

fn kind(rng: &mut Rng) -> AssertionKind {
    *rng.choose(&[
        AssertionKind::PrecisionClock,
        AssertionKind::NonPrecisionClock,
        AssertionKind::Stable,
    ])
}

fn time_range(rng: &mut Rng) -> TimeRange {
    match rng.range_u32(0, 3) {
        0 => TimeRange::Single(f64::from(rng.range_u32(0, 16))),
        1 => {
            let a = rng.range_u32(0, 16);
            let w = rng.range_u32(1, 16);
            TimeRange::Units(f64::from(a), f64::from(a + w))
        }
        _ => {
            let a = rng.range_u32(0, 16);
            let w = rng.range_u32(1, 200);
            TimeRange::UnitsPlusNs(f64::from(a), f64::from(w) / 10.0)
        }
    }
}

fn assertion(rng: &mut Rng) -> Assertion {
    let kind = kind(rng);
    let ranges: Vec<TimeRange> = (0..rng.range_usize(1, 4))
        .map(|_| time_range(rng))
        .collect();
    let skew = if rng.bool() {
        Some((rng.range_u32(0, 50), rng.range_u32(0, 50)))
    } else {
        None
    };
    let active_low = rng.bool();
    let skew = if kind.is_clock() {
        skew.map(|(m, p)| (-f64::from(m) / 10.0, f64::from(p) / 10.0))
    } else {
        None
    };
    Assertion {
        kind,
        ranges,
        skew,
        active_low,
    }
}

/// An uppercase multi-word base name like `MEM WRITE STROBE`.
fn base_name(rng: &mut Rng) -> String {
    let letter = |rng: &mut Rng| (b'A' + rng.range_u32(0, 26) as u8) as char;
    let mut s = String::new();
    s.push(letter(rng));
    for _ in 0..rng.range_usize(0, 11) {
        s.push(if rng.bool_with(0.2) { ' ' } else { letter(rng) });
    }
    // No leading/trailing/double spaces: collapse then trim.
    let mut out = String::new();
    let mut prev_space = true;
    for c in s.chars() {
        if c == ' ' {
            if !prev_space {
                out.push(c);
            }
            prev_space = true;
        } else {
            out.push(c);
            prev_space = false;
        }
    }
    let out = out.trim_end().to_owned();
    if out.is_empty() {
        "A".to_owned()
    } else {
        out
    }
}

/// Display -> parse reconstructs the assertion exactly — the property
/// SCALD relies on when assertions live inside signal names.
#[test]
fn display_parse_round_trip() {
    let mut rng = Rng::seed_from_u64(0xa55e_0001);
    for _ in 0..CASES {
        let a = assertion(&mut rng);
        let text = a.to_string();
        let parsed =
            parse_assertion(&text).unwrap_or_else(|e| panic!("{text:?} failed to parse: {e}"));
        assert_eq!(parsed, a, "text: {text}");
    }
}

/// The assertion survives embedding in a full signal name.
#[test]
fn embeds_in_signal_names() {
    let mut rng = Rng::seed_from_u64(0xa55e_0002);
    for _ in 0..CASES {
        let a = assertion(&mut rng);
        let base = base_name(&mut rng);
        let full = format!("{base} {a}");
        let (parsed_base, parsed_a) =
            parse_signal_name(&full).unwrap_or_else(|e| panic!("{full:?} failed: {e}"));
        assert_eq!(parsed_base, base);
        assert_eq!(parsed_a, Some(a));
    }
}

/// to_state produces a waveform whose asserted intervals carry the
/// asserted value — and clock skews come from the right default.
#[test]
fn to_state_paints_asserted_value() {
    let mut rng = Rng::seed_from_u64(0xa55e_0003);
    for _ in 0..CASES {
        let a = assertion(&mut rng);
        let ctx = TimingContext::s1_example();
        let (wave, skew) = a.to_state(&ctx);
        // Sample the midpoint of each range (modulo the period).
        for r in &a.ranges {
            let (start, end) = r.resolve(ctx.clock_unit);
            if end <= start {
                continue;
            }
            let mid_ps = (start.as_ps() + end.as_ps()) / 2;
            let v = wave.value_at(Time::from_ps(mid_ps));
            let expect = match (a.kind, a.active_low) {
                (AssertionKind::Stable, _) => Value::Stable,
                (_, false) => Value::One,
                (_, true) => Value::Zero,
            };
            // Later overlapping ranges may repaint, so only require the
            // value to be one of the two paint colours.
            let base = match (a.kind, a.active_low) {
                (AssertionKind::Stable, _) => Value::Change,
                (_, false) => Value::Zero,
                (_, true) => Value::One,
            };
            assert!(
                v == expect || v == base,
                "range {} midpoint {} has {}",
                r,
                Time::from_ps(mid_ps),
                v
            );
        }
        if a.kind.is_clock() {
            match a.skew {
                Some((m, p)) => {
                    assert_eq!(skew.minus, Time::from_ns(m.abs()));
                    assert_eq!(skew.plus, Time::from_ns(p));
                }
                None => {
                    let expect = match a.kind {
                        AssertionKind::PrecisionClock => ctx.precision_skew,
                        _ => ctx.nonprecision_skew,
                    };
                    assert_eq!(skew, expect);
                }
            }
        } else {
            assert!(skew.is_zero());
        }
    }
}
