//! # scald-serve — the long-lived verification daemon
//!
//! Everything before this crate runs one verification per process:
//! `scald-tv` compiles, settles, reports, exits. A design team's
//! workflow is the opposite shape — many engineers poking at one large
//! design all day — and the paper's setting (S-1 scale, §4) makes cold
//! starts the dominant cost. `scald-serve` keeps the expensive state
//! resident: a daemon owns a pool of `scald-incr` sessions keyed by
//! design content hash, and any number of clients open, edit, re-verify
//! and stream traces over one versioned JSONL protocol.
//!
//! ## The protocol
//!
//! One request per line, one response per line, plus interleaved trace
//! frames for subscribed sessions — all in the serde-free
//! `scald-trace` JSON. The handshake pins the version:
//!
//! ```text
//! S: {"frame":"hello","scald-serve-proto":1,"server":"scald-serve/0.1.0","jobs":8}
//! C: {"id":1,"cmd":"open","source":"...","label":"alu"}
//! S: {"frame":"response","id":1,"ok":true,"cmd":"open","result":{"session":"s1",...}}
//! ```
//!
//! Commands: `open`, `apply-delta`, `run`, `report`, `subscribe-trace`,
//! `close`, `stats`, `shutdown` — see [`proto`] for the full schema.
//! Malformed frames get a structured `parse` error and the connection
//! stays alive; only EOF (or a line torn mid-write) ends it.
//!
//! ## What sharing buys
//!
//! Sessions of one design hash share one [`EvalCache`]
//! (`scald_verifier`), so the second client opening a popular design
//! replays the first client's evaluations; a closed session parks
//! settled in the pool and a later identical `open` reuses it with zero
//! work. The daemon-wide `--jobs` budget is split across whatever is
//! verifying at the moment ([`JobsLedger`]), so one daemon saturates a
//! machine without oversubscribing it.
//!
//! [`EvalCache`]: scald_verifier::EvalCache

pub mod client;
pub mod daemon;
pub mod pool;
pub mod proto;
mod tap;

pub use client::Client;
pub use daemon::{serve, JobsLease, JobsLedger, ServeOptions, DEFAULT_MAX_SWEEP_CASES};
pub use pool::{CheckoutInfo, PooledSession, SessionPool};
pub use proto::{
    CacheDelta, DaemonStats, DeltaSpec, DesignStats, ErrorKind, Frame, Frontend, Hello, ProtoError,
    Request, Response, RunSummary, SweepEffort, SweepSpec, TraceMode, PROTO_KEY, PROTO_VERSION,
    SWEEP_MAX_CASES,
};
pub use tap::TapSink;
