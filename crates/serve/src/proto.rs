//! Protocol v1 of `scald-serve`, as real types.
//!
//! The wire format is line-oriented JSONL over stdio or a Unix socket:
//! every frame is one JSON object on one line, built and parsed with the
//! workspace's serde-free [`Json`] toolkit. The server opens each
//! connection with a [`Hello`] frame carrying the version handshake
//! (`"scald-serve-proto": 1`); after that the client sends [`Request`]
//! frames and the server answers each with exactly one [`Response`]
//! frame, interleaved with zero or more [`Frame::Trace`] frames for
//! sessions with an active trace subscription.
//!
//! # Frame shapes
//!
//! ```text
//! server -> client on connect:
//!   {"frame":"hello","scald-serve-proto":1,"server":"scald-serve/0.1.0","jobs":4}
//!
//! client -> server (one per line; "id" is the client's correlation tag):
//!   {"id":1,"cmd":"open","source":"design D; ...","label":"demo"}
//!   {"id":2,"cmd":"run","session":"s1"}               // + optional "cases":{sweep spec}
//!   {"id":3,"cmd":"report","session":"s1"}            // + optional "effort":true
//!   {"id":4,"cmd":"apply-delta","session":"s1","delta":{"kind":"source","source":"..."}}
//!   {"id":5,"cmd":"apply-delta","session":"s1","delta":{"kind":"cases","cases":[{"CTL 0":true}]}}
//!   {"id":5,"cmd":"apply-delta","session":"s1",
//!    "delta":{"kind":"sweep","sweep":{"kind":"exhaustive","signals":["MODE0","MODE1"]}}}
//!   {"id":6,"cmd":"subscribe-trace","session":"s1","mode":"coarse"}
//!   {"id":7,"cmd":"close","session":"s1"}
//!   {"id":8,"cmd":"stats"}
//!   {"id":9,"cmd":"shutdown"}
//!
//! server -> client, one per request:
//!   {"frame":"response","id":1,"ok":true,"cmd":"open","result":{...}}
//!   {"frame":"response","id":1,"ok":false,"error":{"kind":"parse","message":"..."}}
//!
//! server -> client, streamed while a subscribed session verifies:
//!   {"frame":"trace","session":"s1","event":{"type":"run_start",...}}
//! ```
//!
//! Parsing is **strict**: unknown commands, unknown fields, missing
//! fields and wrong types are all [`ProtoError`]s. The daemon turns any
//! such error into an `ok:false` response (echoing the `id` when one
//! could be recovered) and keeps the connection alive — a malformed
//! frame never tears down the session state behind it.

use scald_trace::json::Json;
use scald_verifier::{Case, CaseSet, DelayCorner};
use std::fmt;

/// Protocol version spoken by this build. Bumped only on breaking
/// changes; additive result fields do not bump it.
pub const PROTO_VERSION: u64 = 1;
/// The handshake key carrying [`PROTO_VERSION`] in the hello frame.
pub const PROTO_KEY: &str = "scald-serve-proto";

/// A protocol-level parse failure: what was wrong with the frame.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError(pub String);

impl fmt::Display for ProtoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ProtoError {}

fn err<T>(msg: impl Into<String>) -> Result<T, ProtoError> {
    Err(ProtoError(msg.into()))
}

/// The server's first frame on every connection: the version handshake.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hello {
    /// Protocol version ([`PROTO_VERSION`] for this build).
    pub proto: u64,
    /// Server name/version string, informational.
    pub server: String,
    /// The daemon-wide worker budget requests are multiplexed over.
    pub jobs: u64,
}

impl Hello {
    /// The hello frame as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("frame".into(), Json::str("hello")),
            (PROTO_KEY.into(), Json::from(self.proto)),
            ("server".into(), Json::str(&self.server)),
            ("jobs".into(), Json::from(self.jobs)),
        ])
    }

    /// Parses a hello frame, checking the version key is present.
    ///
    /// # Errors
    ///
    /// [`ProtoError`] if the frame is not a hello or lacks the handshake.
    pub fn parse(json: &Json) -> Result<Hello, ProtoError> {
        let fields = Fields::of(json, &["frame", PROTO_KEY, "server", "jobs"])?;
        if fields.req_str("frame")? != "hello" {
            return err("expected a hello frame");
        }
        Ok(Hello {
            proto: fields.req_u64(PROTO_KEY)?,
            server: fields.req_str("server")?.to_owned(),
            jobs: fields.req_u64("jobs")?,
        })
    }
}

/// How much of the engine's trace stream a subscription forwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceMode {
    /// No trace frames (the default for every session).
    #[default]
    Off,
    /// Run/case/wave/warm-start/cache milestones only — bounded by the
    /// number of settle levels, not the number of evaluations.
    Coarse,
    /// Every engine event, including per-evaluation and per-signal ones.
    Full,
}

impl TraceMode {
    /// The wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            TraceMode::Off => "off",
            TraceMode::Coarse => "coarse",
            TraceMode::Full => "full",
        }
    }

    fn parse(s: &str) -> Result<TraceMode, ProtoError> {
        match s {
            "off" => Ok(TraceMode::Off),
            "coarse" => Ok(TraceMode::Coarse),
            "full" => Ok(TraceMode::Full),
            other => err(format!("unknown trace mode {other:?}")),
        }
    }
}

/// Which compiler an `open` request's `source` goes through.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Frontend {
    /// SCALD-style HDL (the default when the field is absent, so v1
    /// frames from older clients parse unchanged).
    #[default]
    Scald,
    /// Synthesisable Verilog, via the `scald-rtl` frontend.
    Verilog,
}

impl Frontend {
    /// The wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            Frontend::Scald => "scald",
            Frontend::Verilog => "verilog",
        }
    }

    fn parse(s: &str) -> Result<Frontend, ProtoError> {
        match s {
            "scald" => Ok(Frontend::Scald),
            "verilog" => Ok(Frontend::Verilog),
            other => err(format!(
                "unknown frontend {other:?}; expected \"scald\" or \"verilog\""
            )),
        }
    }
}

/// A design edit carried by `apply-delta`. Protocol v1 ships whole-text
/// and case-set deltas; the session diffs hashes server-side either way,
/// so a source swap that touches one macro still re-verifies warm. The
/// additive `sweep` kind (same protocol version — absent from older
/// clients' frames, never emitted unless used) carries a generated
/// [`SweepSpec`] instead of a hand-enumerated list.
#[derive(Debug, Clone, PartialEq)]
pub enum DeltaSpec {
    /// Replace the whole design from HDL source (case blocks included).
    Source(String),
    /// Replace the case set; the netlist carries over.
    Cases(Vec<Vec<(String, bool)>>),
    /// Replace the case set with a generated sweep; the netlist carries
    /// over. The server expands the spec with the `CaseSet` builders,
    /// so the wire carries the generator (exhaustive/product/corners),
    /// not the enumeration.
    Sweep(SweepSpec),
}

impl DeltaSpec {
    fn to_json(&self) -> Json {
        match self {
            DeltaSpec::Source(src) => Json::Obj(vec![
                ("kind".into(), Json::str("source")),
                ("source".into(), Json::str(src)),
            ]),
            DeltaSpec::Cases(cases) => Json::Obj(vec![
                ("kind".into(), Json::str("cases")),
                ("cases".into(), cases_to_json(cases)),
            ]),
            DeltaSpec::Sweep(spec) => Json::Obj(vec![
                ("kind".into(), Json::str("sweep")),
                ("sweep".into(), spec.to_json()),
            ]),
        }
    }

    fn parse(json: &Json) -> Result<DeltaSpec, ProtoError> {
        let kind_fields = Fields::of(json, &["kind", "source", "cases", "sweep"])?;
        match kind_fields.req_str("kind")? {
            "source" => {
                let fields = Fields::of(json, &["kind", "source"])?;
                Ok(DeltaSpec::Source(fields.req_str("source")?.to_owned()))
            }
            "cases" => {
                let fields = Fields::of(json, &["kind", "cases"])?;
                Ok(DeltaSpec::Cases(parse_cases(fields.req("cases")?)?))
            }
            "sweep" => {
                let fields = Fields::of(json, &["kind", "sweep"])?;
                Ok(DeltaSpec::Sweep(SweepSpec::parse(fields.req("sweep")?, 0)?))
            }
            other => err(format!("unknown delta kind {other:?}")),
        }
    }
}

/// A generated case sweep on the wire: the protocol counterpart of the
/// `CaseSet` builders. Strictly parsed — unknown kinds, malformed
/// corner tokens, absurd widths, over-deep nesting and over-large
/// *expanded totals* (a product multiplies its axes, so the per-axis
/// width guard alone is not enough) are all [`ProtoError`]s, so a
/// malformed frame can never panic the daemon or make it enumerate an
/// astronomically large case list.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepSpec {
    /// Every 0/1 combination of the named signals (`CaseSet::exhaustive`).
    /// `{"kind":"exhaustive","signals":["MODE0","MODE1"]}`
    Exhaustive(Vec<String>),
    /// Cross product of independent axes (`CaseSet::product`).
    /// `{"kind":"product","axes":[<spec>, ...]}`
    Product(Vec<SweepSpec>),
    /// One assignment-free case per delay corner (`CaseSet::corners`),
    /// as `worst`/`min`/`typ`/`max` tokens.
    /// `{"kind":"corners","corners":["min","max"]}`
    Corners(Vec<DelayCorner>),
    /// An explicit list, same shape as the `cases` delta
    /// (`CaseSet::list`). `{"kind":"list","cases":[{"SIG":true}, ...]}`
    List(Vec<Vec<(String, bool)>>),
}

/// `product` axes may nest sweeps, but a frame is one line of JSON from
/// an untrusted client — cap the recursion well above any real sweep.
const SWEEP_MAX_DEPTH: usize = 8;

/// Hard ceiling on the number of cases a parsed sweep may expand to.
/// Matches the `CaseSet::exhaustive` width guard (20 signals = 2^20
/// cases), but applied to the *multiplicative total*: three 20-signal
/// exhaustive axes in one product would otherwise pass the per-axis
/// guard while naming 2^60 cases. Daemons may enforce a lower,
/// configurable limit on top (`ServeOptions::max_sweep_cases`).
pub const SWEEP_MAX_CASES: u64 = 1 << 20;

impl SweepSpec {
    /// The spec as a JSON object (the wire shape).
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            SweepSpec::Exhaustive(signals) => Json::Obj(vec![
                ("kind".into(), Json::str("exhaustive")),
                (
                    "signals".into(),
                    Json::Arr(signals.iter().map(Json::str).collect()),
                ),
            ]),
            SweepSpec::Product(axes) => Json::Obj(vec![
                ("kind".into(), Json::str("product")),
                (
                    "axes".into(),
                    Json::Arr(axes.iter().map(SweepSpec::to_json).collect()),
                ),
            ]),
            SweepSpec::Corners(corners) => Json::Obj(vec![
                ("kind".into(), Json::str("corners")),
                (
                    "corners".into(),
                    Json::Arr(corners.iter().map(|c| Json::str(c.token())).collect()),
                ),
            ]),
            SweepSpec::List(cases) => Json::Obj(vec![
                ("kind".into(), Json::str("list")),
                ("cases".into(), cases_to_json(cases)),
            ]),
        }
    }

    /// The number of cases the spec expands to, computed bottom-up with
    /// saturating arithmetic — safe to call on arbitrarily large specs
    /// without materializing anything.
    #[must_use]
    pub fn case_count(&self) -> u64 {
        match self {
            SweepSpec::Exhaustive(signals) => match u32::try_from(signals.len()) {
                Ok(n) if n < 64 => 1u64 << n,
                _ => u64::MAX,
            },
            SweepSpec::Product(axes) => axes
                .iter()
                .fold(1u64, |total, axis| total.saturating_mul(axis.case_count())),
            SweepSpec::Corners(corners) => corners.len() as u64,
            SweepSpec::List(cases) => cases.len() as u64,
        }
    }

    fn parse(json: &Json, depth: usize) -> Result<SweepSpec, ProtoError> {
        let spec = SweepSpec::parse_inner(json, depth)?;
        // Guard the *expanded total* at the root, not just each axis:
        // products multiply, so several individually-legal exhaustive
        // axes can still name more cases than any daemon could ever
        // materialize. Saturating bottom-up arithmetic keeps the check
        // itself cheap regardless of how absurd the spec is.
        if depth == 0 {
            let total = spec.case_count();
            if total > SWEEP_MAX_CASES {
                return err(format!(
                    "sweep expands to {total} cases, over the protocol limit of \
                     {SWEEP_MAX_CASES}"
                ));
            }
        }
        Ok(spec)
    }

    fn parse_inner(json: &Json, depth: usize) -> Result<SweepSpec, ProtoError> {
        if depth > SWEEP_MAX_DEPTH {
            return err(format!("sweep nested deeper than {SWEEP_MAX_DEPTH} levels"));
        }
        let kind_fields = Fields::of(json, &["kind", "signals", "axes", "corners", "cases"])?;
        match kind_fields.req_str("kind")? {
            "exhaustive" => {
                let fields = Fields::of(json, &["kind", "signals"])?;
                let Some(items) = fields.req("signals")?.as_array() else {
                    return err("\"signals\" must be an array of signal names");
                };
                let signals: Vec<String> = items
                    .iter()
                    .map(|s| match s.as_str() {
                        Some(name) => Ok(name.to_owned()),
                        None => err("\"signals\" must be an array of signal names"),
                    })
                    .collect::<Result<_, _>>()?;
                // Mirrors the CaseSet::exhaustive width and uniqueness
                // guards as parse errors: a client cannot make the
                // daemon enumerate 2^n cases (or panic) with one short
                // frame.
                if signals.len() > 20 {
                    return err(format!(
                        "exhaustive sweep over {} signals would enumerate 2^{} cases",
                        signals.len(),
                        signals.len()
                    ));
                }
                if let Some(dup) = first_duplicate(&signals) {
                    return err(format!("exhaustive sweep names signal {dup:?} twice"));
                }
                Ok(SweepSpec::Exhaustive(signals))
            }
            "product" => {
                let fields = Fields::of(json, &["kind", "axes"])?;
                let Some(items) = fields.req("axes")?.as_array() else {
                    return err("\"axes\" must be an array of sweep specs");
                };
                Ok(SweepSpec::Product(
                    items
                        .iter()
                        .map(|axis| SweepSpec::parse(axis, depth + 1))
                        .collect::<Result<_, _>>()?,
                ))
            }
            "corners" => {
                let fields = Fields::of(json, &["kind", "corners"])?;
                let Some(items) = fields.req("corners")?.as_array() else {
                    return err("\"corners\" must be an array of corner tokens");
                };
                Ok(SweepSpec::Corners(
                    items
                        .iter()
                        .map(|c| {
                            c.as_str().and_then(DelayCorner::from_token).ok_or_else(|| {
                                ProtoError(format!(
                                    "unknown delay corner {c}; expected \
                                         \"worst\"/\"min\"/\"typ\"/\"max\""
                                ))
                            })
                        })
                        .collect::<Result<_, _>>()?,
                ))
            }
            "list" => {
                let fields = Fields::of(json, &["kind", "cases"])?;
                Ok(SweepSpec::List(parse_cases(fields.req("cases")?)?))
            }
            other => err(format!("unknown sweep kind {other:?}")),
        }
    }

    /// Expands the spec into the `CaseSet` it names.
    #[must_use]
    pub fn to_case_set(&self) -> CaseSet {
        match self {
            SweepSpec::Exhaustive(signals) => CaseSet::exhaustive(signals.iter().cloned()),
            SweepSpec::Product(axes) => CaseSet::product(axes.iter().map(SweepSpec::to_case_set)),
            SweepSpec::Corners(corners) => CaseSet::corners(corners.iter().copied()),
            SweepSpec::List(cases) => CaseSet::list(cases.iter().map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (signal, value)| c.assign(signal, *value))
            })),
        }
    }
}

/// The first signal name appearing more than once, if any.
fn first_duplicate(signals: &[String]) -> Option<&String> {
    signals
        .iter()
        .enumerate()
        .find(|(i, name)| signals[..*i].contains(name))
        .map(|(_, name)| name)
}

fn cases_to_json(cases: &[Vec<(String, bool)>]) -> Json {
    Json::Arr(
        cases
            .iter()
            .map(|assigns| {
                Json::Obj(
                    assigns
                        .iter()
                        .map(|(signal, value)| (signal.clone(), Json::from(*value)))
                        .collect(),
                )
            })
            .collect(),
    )
}

fn parse_cases(json: &Json) -> Result<Vec<Vec<(String, bool)>>, ProtoError> {
    let Some(items) = json.as_array() else {
        return err("\"cases\" must be an array of objects");
    };
    items
        .iter()
        .map(|case| {
            let Some(assigns) = case.as_object() else {
                return err("each case must be an object of signal: bool assignments");
            };
            assigns
                .iter()
                .map(|(signal, value)| match value.as_bool() {
                    Some(v) => Ok((signal.clone(), v)),
                    None => err(format!("case assignment {signal:?} must be a boolean")),
                })
                .collect()
        })
        .collect()
}

/// One client request. Every variant carries the client-chosen `id`
/// echoed on the matching [`Response`].
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Open (or reuse from the pool) a session on design source text.
    Open {
        /// Correlation tag.
        id: u64,
        /// The design source, in the `frontend`'s language.
        source: String,
        /// Report label; defaults to `"<unnamed>"`.
        label: Option<String>,
        /// Which compiler the source goes through (absent = SCALD HDL).
        frontend: Frontend,
    },
    /// Apply an edit to a session and re-verify (warm when possible).
    ApplyDelta {
        /// Correlation tag.
        id: u64,
        /// Session name from a prior `open` response.
        session: String,
        /// The edit.
        delta: DeltaSpec,
    },
    /// Re-verify a session's current design as-is.
    Run {
        /// Correlation tag.
        id: u64,
        /// Session name.
        session: String,
        /// Optional case sweep to install before re-verifying — the
        /// same spec shape as [`DeltaSpec::Sweep`]. Omitted on the wire
        /// when `None` (the v1 default: re-run the session's current
        /// cases), so pre-sweep clients emit byte-identical frames.
        cases: Option<SweepSpec>,
    },
    /// Fetch the session's current `scald-tv-report` v1 document.
    Report {
        /// Correlation tag.
        id: u64,
        /// Session name.
        session: String,
        /// `false` (default): the effort-stripped, byte-deterministic
        /// document. `true`: include effort counters (events, wall
        /// clock, cache stats), which vary run to run.
        effort: bool,
    },
    /// Set the session's trace-forwarding mode for this connection.
    SubscribeTrace {
        /// Correlation tag.
        id: u64,
        /// Session name.
        session: String,
        /// Forwarding level.
        mode: TraceMode,
    },
    /// Close a session, returning it to the shared pool.
    Close {
        /// Correlation tag.
        id: u64,
        /// Session name.
        session: String,
    },
    /// Daemon-wide statistics: pool contents, cache counters, budgets.
    Stats {
        /// Correlation tag.
        id: u64,
    },
    /// Begin graceful shutdown: drain in-flight work, reject new opens.
    Shutdown {
        /// Correlation tag.
        id: u64,
    },
}

impl Request {
    /// The request's correlation id.
    #[must_use]
    pub fn id(&self) -> u64 {
        match *self {
            Request::Open { id, .. }
            | Request::ApplyDelta { id, .. }
            | Request::Run { id, .. }
            | Request::Report { id, .. }
            | Request::SubscribeTrace { id, .. }
            | Request::Close { id, .. }
            | Request::Stats { id }
            | Request::Shutdown { id } => id,
        }
    }

    /// The wire command token.
    #[must_use]
    pub fn cmd(&self) -> &'static str {
        match self {
            Request::Open { .. } => "open",
            Request::ApplyDelta { .. } => "apply-delta",
            Request::Run { .. } => "run",
            Request::Report { .. } => "report",
            Request::SubscribeTrace { .. } => "subscribe-trace",
            Request::Close { .. } => "close",
            Request::Stats { .. } => "stats",
            Request::Shutdown { .. } => "shutdown",
        }
    }

    /// The request as a JSON frame.
    #[must_use]
    pub fn to_json(&self) -> Json {
        let mut obj = vec![
            ("id".to_owned(), Json::from(self.id())),
            ("cmd".to_owned(), Json::str(self.cmd())),
        ];
        match self {
            Request::Open {
                source,
                label,
                frontend,
                ..
            } => {
                obj.push(("source".into(), Json::str(source)));
                if let Some(label) = label {
                    obj.push(("label".into(), Json::str(label)));
                }
                // Emitted only when non-default, so golden v1 frames
                // from scald-HDL clients are byte-stable.
                if *frontend != Frontend::Scald {
                    obj.push(("frontend".into(), Json::str(frontend.token())));
                }
            }
            Request::ApplyDelta { session, delta, .. } => {
                obj.push(("session".into(), Json::str(session)));
                obj.push(("delta".into(), delta.to_json()));
            }
            Request::Run { session, cases, .. } => {
                obj.push(("session".into(), Json::str(session)));
                if let Some(spec) = cases {
                    obj.push(("cases".into(), spec.to_json()));
                }
            }
            Request::Close { session, .. } => {
                obj.push(("session".into(), Json::str(session)));
            }
            Request::Report {
                session, effort, ..
            } => {
                obj.push(("session".into(), Json::str(session)));
                if *effort {
                    obj.push(("effort".into(), Json::from(true)));
                }
            }
            Request::SubscribeTrace { session, mode, .. } => {
                obj.push(("session".into(), Json::str(session)));
                obj.push(("mode".into(), Json::str(mode.token())));
            }
            Request::Stats { .. } | Request::Shutdown { .. } => {}
        }
        Json::Obj(obj)
    }

    /// Strictly parses a request frame: the `cmd` must be known, every
    /// required field present and well-typed, and no unknown fields.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the first problem.
    pub fn parse(json: &Json) -> Result<Request, ProtoError> {
        // First pass with every field any command accepts, to name the
        // command; the per-command pass then rejects fields that do not
        // belong to *that* command.
        let all = Fields::of(
            json,
            &[
                "id", "cmd", "source", "label", "frontend", "session", "delta", "mode", "effort",
                "cases",
            ],
        )?;
        let id = all.req_u64("id")?;
        let cmd = all.req_str("cmd")?;
        match cmd {
            "open" => {
                let f = Fields::of(json, &["id", "cmd", "source", "label", "frontend"])?;
                Ok(Request::Open {
                    id,
                    source: f.req_str("source")?.to_owned(),
                    label: f.opt_str("label")?.map(str::to_owned),
                    frontend: match f.opt_str("frontend")? {
                        Some(token) => Frontend::parse(token)?,
                        None => Frontend::Scald,
                    },
                })
            }
            "apply-delta" => {
                let f = Fields::of(json, &["id", "cmd", "session", "delta"])?;
                Ok(Request::ApplyDelta {
                    id,
                    session: f.req_str("session")?.to_owned(),
                    delta: DeltaSpec::parse(f.req("delta")?)?,
                })
            }
            "run" => {
                let f = Fields::of(json, &["id", "cmd", "session", "cases"])?;
                Ok(Request::Run {
                    id,
                    session: f.req_str("session")?.to_owned(),
                    cases: f
                        .opt("cases")
                        .map(|spec| SweepSpec::parse(spec, 0))
                        .transpose()?,
                })
            }
            "report" => {
                let f = Fields::of(json, &["id", "cmd", "session", "effort"])?;
                Ok(Request::Report {
                    id,
                    session: f.req_str("session")?.to_owned(),
                    effort: f.opt_bool("effort")?.unwrap_or(false),
                })
            }
            "subscribe-trace" => {
                let f = Fields::of(json, &["id", "cmd", "session", "mode"])?;
                Ok(Request::SubscribeTrace {
                    id,
                    session: f.req_str("session")?.to_owned(),
                    mode: match f.opt_str("mode")? {
                        Some(tok) => TraceMode::parse(tok)?,
                        None => TraceMode::Coarse,
                    },
                })
            }
            "close" => {
                let f = Fields::of(json, &["id", "cmd", "session"])?;
                Ok(Request::Close {
                    id,
                    session: f.req_str("session")?.to_owned(),
                })
            }
            "stats" => {
                Fields::of(json, &["id", "cmd"])?;
                Ok(Request::Stats { id })
            }
            "shutdown" => {
                Fields::of(json, &["id", "cmd"])?;
                Ok(Request::Shutdown { id })
            }
            other => err(format!("unknown cmd {other:?}")),
        }
    }
}

/// Machine-readable error category on an `ok:false` response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorKind {
    /// The frame failed to parse (malformed JSON, unknown cmd/field,
    /// missing field, wrong type). The connection stays alive.
    Parse,
    /// The named session does not exist on this connection (never
    /// opened, already closed, or evicted by a timeout).
    UnknownSession,
    /// HDL source failed to compile.
    Compile,
    /// A delta failed to apply.
    Delta,
    /// Verification failed (oscillation budget, unknown case signal).
    Verify,
    /// The request exceeded the per-request timeout. The session handle
    /// is evicted; the underlying run completes in the background and
    /// its session returns to the shared pool.
    Timeout,
    /// The daemon is draining: new `open` requests are rejected.
    ShuttingDown,
    /// Anything else (I/O, internal invariants).
    Internal,
}

impl ErrorKind {
    /// The wire token.
    #[must_use]
    pub fn token(self) -> &'static str {
        match self {
            ErrorKind::Parse => "parse",
            ErrorKind::UnknownSession => "unknown-session",
            ErrorKind::Compile => "compile",
            ErrorKind::Delta => "delta",
            ErrorKind::Verify => "verify",
            ErrorKind::Timeout => "timeout",
            ErrorKind::ShuttingDown => "shutting-down",
            ErrorKind::Internal => "internal",
        }
    }

    fn parse(s: &str) -> Result<ErrorKind, ProtoError> {
        Ok(match s {
            "parse" => ErrorKind::Parse,
            "unknown-session" => ErrorKind::UnknownSession,
            "compile" => ErrorKind::Compile,
            "delta" => ErrorKind::Delta,
            "verify" => ErrorKind::Verify,
            "timeout" => ErrorKind::Timeout,
            "shutting-down" => ErrorKind::ShuttingDown,
            "internal" => ErrorKind::Internal,
            other => return err(format!("unknown error kind {other:?}")),
        })
    }
}

/// Per-request verification effort, attached to `open` / `apply-delta` /
/// `run` results. Everything here is *effort*, not outcome: two requests
/// reaching the same fixed point may differ in all of it.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RunSummary {
    /// `true` when no case reported a violation.
    pub clean: bool,
    /// Total violations across all cases.
    pub violations: u64,
    /// `true` when the pass warm-started from a prior fixed point (or
    /// was served straight from a pooled settled session).
    pub warm: bool,
    /// Primitives seeded into the worklist.
    pub seeded_prims: u64,
    /// Total primitives in the design.
    pub total_prims: u64,
    /// Signal-change events processed.
    pub events: u64,
    /// Primitive evaluations processed.
    pub evaluations: u64,
    /// Wall-clock nanoseconds of the verification (0 for a pooled reuse).
    pub wall_ns: u64,
    /// Evaluation-cache traffic attributed to this request: the shared
    /// table's counter movement while it ran (approximate under
    /// concurrency — other clients' traffic on the same design lands in
    /// whichever request observes it). `None` when caching is disabled.
    pub cache: Option<CacheDelta>,
    /// Sweep-amortization effort: shared-prefix settles and per-leaf
    /// checker/storage memoization. `None` when the pass ran no
    /// verification (a pooled reuse) or scheduled its cases
    /// independently. Additive protocol-v1 extension.
    pub sweep: Option<SweepEffort>,
}

/// Sweep-amortization counters over one request: how much of the
/// per-case fixed cost the case-tree scheduler shared or inherited
/// instead of recomputing. Mirrors the engine's `PrefixStats` +
/// `MemoStats` so clients can compute the same hit rates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepEffort {
    /// Internal prefix nodes the scheduler settled (each shared by ≥ 2
    /// cases).
    pub prefix_nodes: u64,
    /// Primitive evaluations spent settling those shared prefixes.
    pub prefix_evaluations: u64,
    /// Checker units leaves actually re-evaluated.
    pub leaf_check_evals: u64,
    /// Checker units leaves inherited from their prefix node's cached
    /// pass.
    pub leaf_check_hits: u64,
    /// Signals leaves actually re-measured for storage accounting.
    pub leaf_storage_evals: u64,
    /// Signals whose storage accounting leaves inherited.
    pub leaf_storage_hits: u64,
}

impl SweepEffort {
    /// Fraction of per-leaf checker work served from the parent's cached
    /// pass, in `[0, 1]` (`0.0` when no leaf checker work ran).
    #[must_use]
    pub fn leaf_hit_rate(&self) -> f64 {
        let total = self.leaf_check_evals + self.leaf_check_hits;
        if total == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.leaf_check_hits as f64 / total as f64
            }
        }
    }
}

/// Evaluation-cache counter movement over one request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheDelta {
    /// Evaluations served from the shared table.
    pub hits: u64,
    /// Evaluations that ran the kernels.
    pub misses: u64,
    /// Total entries in the table afterwards (absolute, not a delta).
    pub entries: u64,
}

impl RunSummary {
    fn to_json(self) -> Json {
        Json::Obj(vec![
            ("clean".into(), Json::from(self.clean)),
            ("violations".into(), Json::from(self.violations)),
            ("warm".into(), Json::from(self.warm)),
            ("seeded_prims".into(), Json::from(self.seeded_prims)),
            ("total_prims".into(), Json::from(self.total_prims)),
            ("events".into(), Json::from(self.events)),
            ("evaluations".into(), Json::from(self.evaluations)),
            ("wall_ns".into(), Json::from(self.wall_ns)),
            (
                "cache".into(),
                self.cache.map_or(Json::Null, |c| {
                    Json::Obj(vec![
                        ("hits".into(), Json::from(c.hits)),
                        ("misses".into(), Json::from(c.misses)),
                        ("entries".into(), Json::from(c.entries)),
                    ])
                }),
            ),
            (
                "sweep".into(),
                self.sweep.map_or(Json::Null, |s| {
                    Json::Obj(vec![
                        ("prefix_nodes".into(), Json::from(s.prefix_nodes)),
                        (
                            "prefix_evaluations".into(),
                            Json::from(s.prefix_evaluations),
                        ),
                        ("leaf_check_evals".into(), Json::from(s.leaf_check_evals)),
                        ("leaf_check_hits".into(), Json::from(s.leaf_check_hits)),
                        (
                            "leaf_storage_evals".into(),
                            Json::from(s.leaf_storage_evals),
                        ),
                        ("leaf_storage_hits".into(), Json::from(s.leaf_storage_hits)),
                    ])
                }),
            ),
        ])
    }

    fn parse(json: &Json) -> Result<RunSummary, ProtoError> {
        let f = Fields::of(
            json,
            &[
                "clean",
                "violations",
                "warm",
                "seeded_prims",
                "total_prims",
                "events",
                "evaluations",
                "wall_ns",
                "cache",
                "sweep",
            ],
        )?;
        // Absent (pre-extension peer) and null both mean "no sweep
        // amortization to report".
        let sweep = match f.opt("sweep") {
            None | Some(Json::Null) => None,
            Some(sweep) => {
                let s = Fields::of(
                    sweep,
                    &[
                        "prefix_nodes",
                        "prefix_evaluations",
                        "leaf_check_evals",
                        "leaf_check_hits",
                        "leaf_storage_evals",
                        "leaf_storage_hits",
                    ],
                )?;
                Some(SweepEffort {
                    prefix_nodes: s.req_u64("prefix_nodes")?,
                    prefix_evaluations: s.req_u64("prefix_evaluations")?,
                    leaf_check_evals: s.req_u64("leaf_check_evals")?,
                    leaf_check_hits: s.req_u64("leaf_check_hits")?,
                    leaf_storage_evals: s.req_u64("leaf_storage_evals")?,
                    leaf_storage_hits: s.req_u64("leaf_storage_hits")?,
                })
            }
        };
        let cache = match f.req("cache")? {
            Json::Null => None,
            cache => {
                let c = Fields::of(cache, &["hits", "misses", "entries"])?;
                Some(CacheDelta {
                    hits: c.req_u64("hits")?,
                    misses: c.req_u64("misses")?,
                    entries: c.req_u64("entries")?,
                })
            }
        };
        Ok(RunSummary {
            clean: f.req_bool("clean")?,
            violations: f.req_u64("violations")?,
            warm: f.req_bool("warm")?,
            seeded_prims: f.req_u64("seeded_prims")?,
            total_prims: f.req_u64("total_prims")?,
            events: f.req_u64("events")?,
            evaluations: f.req_u64("evaluations")?,
            wall_ns: f.req_u64("wall_ns")?,
            cache,
            sweep,
        })
    }
}

/// Pool statistics for one design hash, inside [`DaemonStats`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DesignStats {
    /// The pool key, as 16 hex digits.
    pub design_hash: String,
    /// Sessions opened on this design (cold builds + pooled reuses).
    pub opens: u64,
    /// Opens served by handing back a pooled settled session.
    pub reuses: u64,
    /// Settled sessions currently idle in the pool.
    pub idle_sessions: u64,
    /// Shared-cache hits across every client of this design.
    pub cache_hits: u64,
    /// Shared-cache misses across every client of this design.
    pub cache_misses: u64,
    /// Entries in the shared table.
    pub cache_entries: u64,
}

/// Daemon-wide statistics returned by the `stats` command.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DaemonStats {
    /// Live client connections.
    pub connections: u64,
    /// Requests currently verifying on worker threads.
    pub active_runs: u64,
    /// The daemon-wide `--jobs` budget.
    pub jobs_total: u64,
    /// `true` once graceful shutdown has begun.
    pub shutting_down: bool,
    /// Per-design pool/cache statistics, in hash order.
    pub designs: Vec<DesignStats>,
}

impl DaemonStats {
    fn to_json(&self) -> Json {
        Json::Obj(vec![
            ("connections".into(), Json::from(self.connections)),
            ("active_runs".into(), Json::from(self.active_runs)),
            ("jobs_total".into(), Json::from(self.jobs_total)),
            ("shutting_down".into(), Json::from(self.shutting_down)),
            (
                "designs".into(),
                Json::Arr(
                    self.designs
                        .iter()
                        .map(|d| {
                            Json::Obj(vec![
                                ("design_hash".into(), Json::str(&d.design_hash)),
                                ("opens".into(), Json::from(d.opens)),
                                ("reuses".into(), Json::from(d.reuses)),
                                ("idle_sessions".into(), Json::from(d.idle_sessions)),
                                ("cache_hits".into(), Json::from(d.cache_hits)),
                                ("cache_misses".into(), Json::from(d.cache_misses)),
                                ("cache_entries".into(), Json::from(d.cache_entries)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    fn parse(json: &Json) -> Result<DaemonStats, ProtoError> {
        let f = Fields::of(
            json,
            &[
                "connections",
                "active_runs",
                "jobs_total",
                "shutting_down",
                "designs",
            ],
        )?;
        let Some(designs) = f.req("designs")?.as_array() else {
            return err("\"designs\" must be an array");
        };
        let designs = designs
            .iter()
            .map(|d| {
                let f = Fields::of(
                    d,
                    &[
                        "design_hash",
                        "opens",
                        "reuses",
                        "idle_sessions",
                        "cache_hits",
                        "cache_misses",
                        "cache_entries",
                    ],
                )?;
                Ok(DesignStats {
                    design_hash: f.req_str("design_hash")?.to_owned(),
                    opens: f.req_u64("opens")?,
                    reuses: f.req_u64("reuses")?,
                    idle_sessions: f.req_u64("idle_sessions")?,
                    cache_hits: f.req_u64("cache_hits")?,
                    cache_misses: f.req_u64("cache_misses")?,
                    cache_entries: f.req_u64("cache_entries")?,
                })
            })
            .collect::<Result<Vec<_>, ProtoError>>()?;
        Ok(DaemonStats {
            connections: f.req_u64("connections")?,
            active_runs: f.req_u64("active_runs")?,
            jobs_total: f.req_u64("jobs_total")?,
            shutting_down: f.req_bool("shutting_down")?,
            designs,
        })
    }
}

/// One server response. Every success variant echoes the request `id`;
/// [`Response::Error`] echoes it when the frame parsed far enough to
/// recover one.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// `open` succeeded.
    Opened {
        /// Echoed request id.
        id: u64,
        /// The session name to use in subsequent requests (`"s1"`, ...),
        /// scoped to this connection.
        session: String,
        /// The design's pool key, as 16 hex digits.
        design_hash: String,
        /// `true` when a pooled settled session was reused (no
        /// verification ran at all).
        reused_session: bool,
        /// `true` when an earlier client had already opened this design,
        /// so the session verified through the shared, pre-warmed cache.
        shared_cache: bool,
        /// Effort and outcome of the opening verification.
        summary: RunSummary,
    },
    /// `apply-delta` succeeded.
    Applied {
        /// Echoed request id.
        id: u64,
        /// Effort and outcome of the re-verification.
        summary: RunSummary,
    },
    /// `run` succeeded.
    Ran {
        /// Echoed request id.
        id: u64,
        /// Effort and outcome of the re-verification.
        summary: RunSummary,
    },
    /// `report` succeeded.
    Report {
        /// Echoed request id.
        id: u64,
        /// The `scald-tv-report` v1 document. With `effort:false`
        /// (default) it is effort-stripped and therefore byte-identical
        /// to `Report::strip_effort().to_json()` of a direct
        /// `Verifier::run` of the same design.
        report: Json,
        /// Whether effort counters were included.
        effort: bool,
    },
    /// `subscribe-trace` succeeded.
    Subscribed {
        /// Echoed request id.
        id: u64,
        /// The mode now in force.
        mode: TraceMode,
    },
    /// `close` succeeded.
    Closed {
        /// Echoed request id.
        id: u64,
        /// `true` when the settled session went back to the shared pool
        /// (rather than being dropped because the pool slot was full).
        pooled: bool,
    },
    /// `stats` succeeded.
    Stats {
        /// Echoed request id.
        id: u64,
        /// The daemon-wide statistics.
        stats: DaemonStats,
    },
    /// `shutdown` acknowledged; the daemon is now draining.
    ShuttingDown {
        /// Echoed request id.
        id: u64,
    },
    /// The request failed. The connection stays usable.
    Error {
        /// Echoed request id, when the frame parsed far enough to
        /// recover one.
        id: Option<u64>,
        /// Error category.
        kind: ErrorKind,
        /// Human-readable description.
        message: String,
    },
}

impl Response {
    /// The command token a success response answers (`None` for errors).
    #[must_use]
    pub fn cmd(&self) -> Option<&'static str> {
        Some(match self {
            Response::Opened { .. } => "open",
            Response::Applied { .. } => "apply-delta",
            Response::Ran { .. } => "run",
            Response::Report { .. } => "report",
            Response::Subscribed { .. } => "subscribe-trace",
            Response::Closed { .. } => "close",
            Response::Stats { .. } => "stats",
            Response::ShuttingDown { .. } => "shutdown",
            Response::Error { .. } => return None,
        })
    }

    /// The response as a JSON frame.
    #[must_use]
    pub fn to_json(&self) -> Json {
        if let Response::Error { id, kind, message } = self {
            return Json::Obj(vec![
                ("frame".into(), Json::str("response")),
                ("id".into(), id.map_or(Json::Null, Json::from)),
                ("ok".into(), Json::from(false)),
                (
                    "error".into(),
                    Json::Obj(vec![
                        ("kind".into(), Json::str(kind.token())),
                        ("message".into(), Json::str(message)),
                    ]),
                ),
            ]);
        }
        let (id, result) = match self {
            Response::Opened {
                id,
                session,
                design_hash,
                reused_session,
                shared_cache,
                summary,
            } => (
                *id,
                Json::Obj(vec![
                    ("session".into(), Json::str(session)),
                    ("design_hash".into(), Json::str(design_hash)),
                    ("reused_session".into(), Json::from(*reused_session)),
                    ("shared_cache".into(), Json::from(*shared_cache)),
                    ("summary".into(), summary.to_json()),
                ]),
            ),
            Response::Applied { id, summary } | Response::Ran { id, summary } => {
                (*id, Json::Obj(vec![("summary".into(), summary.to_json())]))
            }
            Response::Report { id, report, effort } => (
                *id,
                Json::Obj(vec![
                    ("effort".into(), Json::from(*effort)),
                    ("report".into(), report.clone()),
                ]),
            ),
            Response::Subscribed { id, mode } => (
                *id,
                Json::Obj(vec![("mode".into(), Json::str(mode.token()))]),
            ),
            Response::Closed { id, pooled } => {
                (*id, Json::Obj(vec![("pooled".into(), Json::from(*pooled))]))
            }
            Response::Stats { id, stats } => (*id, stats.to_json()),
            Response::ShuttingDown { id } => (*id, Json::Obj(vec![])),
            Response::Error { .. } => unreachable!("handled above"),
        };
        Json::Obj(vec![
            ("frame".into(), Json::str("response")),
            ("id".into(), Json::from(id)),
            ("ok".into(), Json::from(true)),
            (
                "cmd".into(),
                Json::str(self.cmd().expect("success responses name their cmd")),
            ),
            ("result".into(), result),
        ])
    }

    /// Parses a response frame (the client side of the protocol).
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the first problem.
    pub fn parse(json: &Json) -> Result<Response, ProtoError> {
        let outer = Fields::of(json, &["frame", "id", "ok", "cmd", "result", "error"])?;
        if outer.req_str("frame")? != "response" {
            return err("expected a response frame");
        }
        if !outer.req_bool("ok")? {
            let id = match outer.req("id")? {
                Json::Null => None,
                other => match other.as_u64() {
                    Some(id) => Some(id),
                    None => return err("\"id\" must be an integer or null"),
                },
            };
            let e = Fields::of(outer.req("error")?, &["kind", "message"])?;
            return Ok(Response::Error {
                id,
                kind: ErrorKind::parse(e.req_str("kind")?)?,
                message: e.req_str("message")?.to_owned(),
            });
        }
        let id = outer.req_u64("id")?;
        let result = outer.req("result")?;
        match outer.req_str("cmd")? {
            "open" => {
                let f = Fields::of(
                    result,
                    &[
                        "session",
                        "design_hash",
                        "reused_session",
                        "shared_cache",
                        "summary",
                    ],
                )?;
                Ok(Response::Opened {
                    id,
                    session: f.req_str("session")?.to_owned(),
                    design_hash: f.req_str("design_hash")?.to_owned(),
                    reused_session: f.req_bool("reused_session")?,
                    shared_cache: f.req_bool("shared_cache")?,
                    summary: RunSummary::parse(f.req("summary")?)?,
                })
            }
            "apply-delta" => {
                let f = Fields::of(result, &["summary"])?;
                Ok(Response::Applied {
                    id,
                    summary: RunSummary::parse(f.req("summary")?)?,
                })
            }
            "run" => {
                let f = Fields::of(result, &["summary"])?;
                Ok(Response::Ran {
                    id,
                    summary: RunSummary::parse(f.req("summary")?)?,
                })
            }
            "report" => {
                let f = Fields::of(result, &["effort", "report"])?;
                Ok(Response::Report {
                    id,
                    report: f.req("report")?.clone(),
                    effort: f.req_bool("effort")?,
                })
            }
            "subscribe-trace" => {
                let f = Fields::of(result, &["mode"])?;
                Ok(Response::Subscribed {
                    id,
                    mode: TraceMode::parse(f.req_str("mode")?)?,
                })
            }
            "close" => {
                let f = Fields::of(result, &["pooled"])?;
                Ok(Response::Closed {
                    id,
                    pooled: f.req_bool("pooled")?,
                })
            }
            "stats" => Ok(Response::Stats {
                id,
                stats: DaemonStats::parse(result)?,
            }),
            "shutdown" => Ok(Response::ShuttingDown { id }),
            other => err(format!("unknown response cmd {other:?}")),
        }
    }
}

/// Any server-to-client frame: the connection hello, a response, or a
/// streamed trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum Frame {
    /// The connection handshake.
    Hello(Hello),
    /// The answer to one request.
    Response(Response),
    /// One engine trace event from a subscribed session.
    Trace {
        /// The session the event belongs to.
        session: String,
        /// The event, in the `scald-trace` JSONL schema.
        event: Json,
    },
}

impl Frame {
    /// The frame as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Json {
        match self {
            Frame::Hello(h) => h.to_json(),
            Frame::Response(r) => r.to_json(),
            Frame::Trace { session, event } => Json::Obj(vec![
                ("frame".into(), Json::str("trace")),
                ("session".into(), Json::str(session)),
                ("event".into(), event.clone()),
            ]),
        }
    }

    /// Parses any server-to-client frame by its `frame` tag.
    ///
    /// # Errors
    ///
    /// A [`ProtoError`] naming the first problem.
    pub fn parse(json: &Json) -> Result<Frame, ProtoError> {
        let Some(tag) = json.get("frame").and_then(Json::as_str) else {
            return err("frame object lacks a \"frame\" tag");
        };
        match tag {
            "hello" => Ok(Frame::Hello(Hello::parse(json)?)),
            "response" => Ok(Frame::Response(Response::parse(json)?)),
            "trace" => {
                let f = Fields::of(json, &["frame", "session", "event"])?;
                Ok(Frame::Trace {
                    session: f.req_str("session")?.to_owned(),
                    event: f.req("event")?.clone(),
                })
            }
            other => err(format!("unknown frame tag {other:?}")),
        }
    }
}

/// Strict field access over a JSON object: construction fails on a
/// non-object, a duplicate key, or any key outside `allowed`.
struct Fields<'a> {
    obj: &'a [(String, Json)],
}

impl<'a> Fields<'a> {
    fn of(json: &'a Json, allowed: &[&str]) -> Result<Fields<'a>, ProtoError> {
        let Some(obj) = json.as_object() else {
            return err("expected a JSON object");
        };
        for (i, (key, _)) in obj.iter().enumerate() {
            if !allowed.contains(&key.as_str()) {
                return err(format!("unknown field {key:?}"));
            }
            if obj[..i].iter().any(|(k, _)| k == key) {
                return err(format!("duplicate field {key:?}"));
            }
        }
        Ok(Fields { obj })
    }

    fn req(&self, key: &str) -> Result<&'a Json, ProtoError> {
        match self.obj.iter().find(|(k, _)| k == key) {
            Some((_, v)) => Ok(v),
            None => err(format!("missing field {key:?}")),
        }
    }

    fn opt(&self, key: &str) -> Option<&'a Json> {
        self.obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn req_str(&self, key: &str) -> Result<&'a str, ProtoError> {
        match self.req(key)?.as_str() {
            Some(s) => Ok(s),
            None => err(format!("field {key:?} must be a string")),
        }
    }

    fn opt_str(&self, key: &str) -> Result<Option<&'a str>, ProtoError> {
        match self.opt(key) {
            None => Ok(None),
            Some(v) => match v.as_str() {
                Some(s) => Ok(Some(s)),
                None => err(format!("field {key:?} must be a string")),
            },
        }
    }

    fn req_u64(&self, key: &str) -> Result<u64, ProtoError> {
        match self.req(key)?.as_u64() {
            Some(n) => Ok(n),
            None => err(format!("field {key:?} must be a non-negative integer")),
        }
    }

    fn req_bool(&self, key: &str) -> Result<bool, ProtoError> {
        match self.req(key)?.as_bool() {
            Some(b) => Ok(b),
            None => err(format!("field {key:?} must be a boolean")),
        }
    }

    fn opt_bool(&self, key: &str) -> Result<Option<bool>, ProtoError> {
        match self.opt(key) {
            None => Ok(None),
            Some(v) => match v.as_bool() {
                Some(b) => Ok(Some(b)),
                None => err(format!("field {key:?} must be a boolean")),
            },
        }
    }
}

/// Best-effort recovery of a request id from a frame that failed strict
/// parsing, so the error response can still be correlated.
#[must_use]
pub fn recover_id(json: &Json) -> Option<u64> {
    json.get("id").and_then(Json::as_u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_trace::json::parse;

    fn round_trip_request(req: &Request) {
        let text = req.to_json().to_string();
        let back = Request::parse(&parse(&text).expect("valid json")).expect("parses");
        assert_eq!(&back, req, "wire text: {text}");
    }

    #[test]
    fn requests_round_trip() {
        round_trip_request(&Request::Open {
            id: 1,
            source: "design D;\nperiod 50.0;\n".into(),
            label: Some("demo".into()),
            frontend: Frontend::Scald,
        });
        round_trip_request(&Request::Open {
            id: 1,
            source: "module m(input wire clk);\nendmodule\n".into(),
            label: None,
            frontend: Frontend::Verilog,
        });
        round_trip_request(&Request::ApplyDelta {
            id: 2,
            session: "s1".into(),
            delta: DeltaSpec::Cases(vec![vec![("CTL 0".into(), true)], vec![]]),
        });
        round_trip_request(&Request::Run {
            id: 3,
            session: "s1".into(),
            cases: None,
        });
        round_trip_request(&Request::Run {
            id: 3,
            session: "s1".into(),
            cases: Some(SweepSpec::Exhaustive(vec!["A".into()])),
        });
        round_trip_request(&Request::Report {
            id: 4,
            session: "s1".into(),
            effort: true,
        });
        round_trip_request(&Request::SubscribeTrace {
            id: 5,
            session: "s1".into(),
            mode: TraceMode::Full,
        });
        round_trip_request(&Request::Close {
            id: 6,
            session: "s1".into(),
        });
        round_trip_request(&Request::Stats { id: 7 });
        round_trip_request(&Request::Shutdown { id: 8 });
    }

    #[test]
    fn sweep_specs_round_trip_and_expand() {
        let spec = SweepSpec::Product(vec![
            SweepSpec::Exhaustive(vec!["MODE0".into(), "MODE1".into()]),
            SweepSpec::Corners(vec![DelayCorner::Min, DelayCorner::Max]),
            SweepSpec::List(vec![vec![("EN".into(), true)], vec![]]),
        ]);
        // 4 exhaustive combinations x 2 corners x 2 listed cases.
        assert_eq!(spec.to_case_set().len(), 16);
        round_trip_request(&Request::ApplyDelta {
            id: 9,
            session: "s1".into(),
            delta: DeltaSpec::Sweep(spec),
        });
        round_trip_request(&Request::ApplyDelta {
            id: 10,
            session: "s1".into(),
            delta: DeltaSpec::Sweep(SweepSpec::Exhaustive(Vec::new())),
        });
    }

    #[test]
    fn sweep_case_count_is_multiplicative_and_saturates() {
        let wide = SweepSpec::Exhaustive((0..20).map(|i| format!("S{i}")).collect());
        assert_eq!(wide.case_count(), 1 << 20);
        assert_eq!(SweepSpec::Exhaustive(Vec::new()).case_count(), 1);
        assert_eq!(SweepSpec::Product(Vec::new()).case_count(), 1);
        assert_eq!(
            SweepSpec::Corners(vec![DelayCorner::Min, DelayCorner::Max]).case_count(),
            2
        );
        assert_eq!(SweepSpec::List(vec![vec![]]).case_count(), 1);
        // An empty-list axis annihilates the product, like CaseSet.
        assert_eq!(
            SweepSpec::Product(vec![wide.clone(), SweepSpec::List(Vec::new())]).case_count(),
            0
        );
        // 2^20 x 2^20 x 2^20 = 2^60 still fits; one more axis overflows
        // u64 and must saturate rather than wrap back under the cap.
        let three = SweepSpec::Product(vec![wide.clone(), wide.clone(), wide.clone()]);
        assert_eq!(three.case_count(), 1 << 60);
        let four = SweepSpec::Product(vec![three, wide]);
        assert_eq!(four.case_count(), u64::MAX);
    }

    #[test]
    fn sweep_parse_is_strict() {
        let parse_delta = |delta: &str| {
            let line = format!(r#"{{"id":1,"cmd":"apply-delta","session":"s1","delta":{delta}}}"#);
            Request::parse(&parse(&line).expect("valid json"))
        };
        // The documented wire shapes parse.
        for good in [
            r#"{"kind":"sweep","sweep":{"kind":"exhaustive","signals":["A","B"]}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"corners","corners":["worst","min","typ","max"]}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"list","cases":[{"SIG":true}]}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"product","axes":[
                {"kind":"exhaustive","signals":["A"]},
                {"kind":"corners","corners":["min"]}]}}"#,
        ] {
            parse_delta(good).unwrap_or_else(|e| panic!("{good} must parse: {e}"));
        }
        // Unknown kinds, bad tokens, stray fields, wrong types: errors.
        for bad in [
            r#"{"kind":"sweep","sweep":{"kind":"spiral"}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"corners","corners":["typical"]}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"exhaustive","signals":["A"],"extra":1}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"exhaustive","signals":[1]}}"#,
            r#"{"kind":"sweep","sweep":{"kind":"list","cases":[{"SIG":"yes"}]}}"#,
            r#"{"kind":"sweep"}"#,
        ] {
            assert!(parse_delta(bad).is_err(), "{bad} must be rejected");
        }
        // Width guard: an exhaustive sweep over 21 signals is a parse
        // error, not a 2-million-case enumeration (or a panic).
        let wide: Vec<String> = (0..21).map(|i| format!("\"S{i}\"")).collect();
        let wide = format!(
            r#"{{"kind":"sweep","sweep":{{"kind":"exhaustive","signals":[{}]}}}}"#,
            wide.join(",")
        );
        assert!(parse_delta(&wide).is_err(), "21-signal sweep rejected");
        // Total guard: each axis passes the per-axis width guard, but
        // the product multiplies — three 20-signal exhaustive axes name
        // 2^60 cases and must be a parse error, not an OOM in
        // to_case_set.
        let axis = |base: usize| {
            let names: Vec<String> = (0..20).map(|i| format!("\"S{}_{i}\"", base)).collect();
            format!(r#"{{"kind":"exhaustive","signals":[{}]}}"#, names.join(","))
        };
        let huge = format!(
            r#"{{"kind":"sweep","sweep":{{"kind":"product","axes":[{},{},{}]}}}}"#,
            axis(0),
            axis(1),
            axis(2)
        );
        assert!(
            parse_delta(&huge).is_err(),
            "2^60-case product sweep rejected"
        );
        // ...while a product that lands exactly on the limit (2^10 x
        // 2^10 = SWEEP_MAX_CASES) still parses.
        let half = |base: usize| {
            let names: Vec<String> = (0..10).map(|i| format!("\"S{}_{i}\"", base)).collect();
            format!(r#"{{"kind":"exhaustive","signals":[{}]}}"#, names.join(","))
        };
        let at_limit = format!(
            r#"{{"kind":"sweep","sweep":{{"kind":"product","axes":[{},{}]}}}}"#,
            half(0),
            half(1)
        );
        parse_delta(&at_limit).expect("a sweep at exactly SWEEP_MAX_CASES parses");
        // Duplicate signal names in an exhaustive sweep are a parse
        // error (they would enumerate colliding cases), mirroring the
        // CaseSet::exhaustive uniqueness guard.
        assert!(
            parse_delta(r#"{"kind":"sweep","sweep":{"kind":"exhaustive","signals":["A","A"]}}"#)
                .is_err(),
            "duplicate exhaustive signals rejected"
        );
        // Depth guard: product nesting beyond SWEEP_MAX_DEPTH is a
        // parse error, not unbounded recursion.
        let mut deep = r#"{"kind":"corners","corners":["min"]}"#.to_owned();
        for _ in 0..10 {
            deep = format!(r#"{{"kind":"product","axes":[{deep}]}}"#);
        }
        assert!(
            parse_delta(&format!(r#"{{"kind":"sweep","sweep":{deep}}}"#)).is_err(),
            "over-deep product nesting rejected"
        );
    }

    #[test]
    fn responses_round_trip() {
        let summary = RunSummary {
            clean: false,
            violations: 3,
            warm: true,
            seeded_prims: 4,
            total_prims: 400,
            events: 120,
            evaluations: 200,
            wall_ns: 12345,
            cache: Some(CacheDelta {
                hits: 10,
                misses: 2,
                entries: 12,
            }),
            sweep: Some(SweepEffort {
                prefix_nodes: 7,
                prefix_evaluations: 91,
                leaf_check_evals: 30,
                leaf_check_hits: 270,
                leaf_storage_evals: 12,
                leaf_storage_hits: 388,
            }),
        };
        for resp in [
            Response::Opened {
                id: 1,
                session: "s1".into(),
                design_hash: "00ff00ff00ff00ff".into(),
                reused_session: true,
                shared_cache: true,
                summary,
            },
            Response::Applied { id: 2, summary },
            Response::Ran { id: 3, summary },
            Response::Report {
                id: 4,
                report: Json::Obj(vec![("schema".into(), Json::str("scald-tv-report"))]),
                effort: false,
            },
            Response::Subscribed {
                id: 5,
                mode: TraceMode::Coarse,
            },
            Response::Closed {
                id: 6,
                pooled: true,
            },
            Response::Stats {
                id: 7,
                stats: DaemonStats {
                    connections: 4,
                    active_runs: 1,
                    jobs_total: 8,
                    shutting_down: false,
                    designs: vec![DesignStats {
                        design_hash: "0123456789abcdef".into(),
                        opens: 4,
                        reuses: 2,
                        idle_sessions: 1,
                        cache_hits: 100,
                        cache_misses: 10,
                        cache_entries: 10,
                    }],
                },
            },
            Response::ShuttingDown { id: 8 },
            Response::Error {
                id: None,
                kind: ErrorKind::Parse,
                message: "unknown cmd \"frobnicate\"".into(),
            },
            Response::Error {
                id: Some(9),
                kind: ErrorKind::Timeout,
                message: "request exceeded 30000 ms".into(),
            },
        ] {
            let text = resp.to_json().to_string();
            let back = Response::parse(&parse(&text).expect("valid json")).expect("parses");
            assert_eq!(back, resp, "wire text: {text}");
            // And through the generic frame parser.
            let frame = Frame::parse(&parse(&text).expect("valid json")).expect("parses");
            assert_eq!(frame, Frame::Response(resp));
        }
    }

    #[test]
    fn hello_round_trips_and_checks_version() {
        let hello = Hello {
            proto: PROTO_VERSION,
            server: "scald-serve/0.1.0".into(),
            jobs: 4,
        };
        let text = hello.to_json().to_string();
        assert!(text.contains("\"scald-serve-proto\":1"), "{text}");
        assert_eq!(Hello::parse(&parse(&text).expect("valid")), Ok(hello));
    }

    #[test]
    fn strict_parse_rejects_bad_frames() {
        for (bad, why) in [
            (r#"{"cmd":"open","source":"x"}"#, "missing id"),
            (r#"{"id":1,"cmd":"frobnicate"}"#, "unknown cmd"),
            (r#"{"id":1,"cmd":"open"}"#, "missing source"),
            (
                r#"{"id":1,"cmd":"open","source":"x","extra":1}"#,
                "unknown field",
            ),
            (r#"{"id":1,"cmd":"run"}"#, "missing session"),
            (r#"{"id":1,"cmd":"run","session":7}"#, "non-string session"),
            (r#"{"id":-1,"cmd":"stats"}"#, "negative id"),
            (
                r#"{"id":1,"cmd":"stats","session":"s1"}"#,
                "field from another cmd",
            ),
            (
                r#"{"id":1,"cmd":"subscribe-trace","session":"s1","mode":"loud"}"#,
                "bad mode",
            ),
            (
                r#"{"id":1,"cmd":"apply-delta","session":"s1","delta":{"kind":"cases","cases":[{"A":1}]}}"#,
                "non-bool assignment",
            ),
            (r#"[1,2,3]"#, "not an object"),
            (r#"{"id":1,"id":2,"cmd":"stats"}"#, "duplicate field"),
            (
                r#"{"id":1,"cmd":"open","source":"x","frontend":"vhdl"}"#,
                "unknown frontend",
            ),
            (
                r#"{"id":1,"cmd":"run","session":"s1","frontend":"scald"}"#,
                "frontend on wrong cmd",
            ),
        ] {
            let json = parse(bad).expect("tests use well-formed JSON text");
            assert!(Request::parse(&json).is_err(), "accepted ({why}): {bad}");
        }
    }

    #[test]
    fn frontend_field_defaults_to_scald_and_stays_off_the_wire() {
        // A v1 client that has never heard of frontends still parses.
        let json = parse(r#"{"id":1,"cmd":"open","source":"design D;"}"#).expect("valid");
        let req = Request::parse(&json).expect("parses");
        assert_eq!(
            req,
            Request::Open {
                id: 1,
                source: "design D;".into(),
                label: None,
                frontend: Frontend::Scald,
            }
        );
        // And the default frontend is never emitted, so golden frames
        // recorded against the v1 daemon keep matching byte for byte.
        assert!(!req.to_json().to_string().contains("frontend"));
        let verilog = Request::Open {
            id: 2,
            source: "module m();\nendmodule\n".into(),
            label: None,
            frontend: Frontend::Verilog,
        };
        assert!(verilog
            .to_json()
            .to_string()
            .contains(r#""frontend":"verilog""#));
    }

    #[test]
    fn recover_id_salvages_correlation_tags() {
        let json = parse(r#"{"id":41,"cmd":"nope"}"#).expect("valid");
        assert_eq!(recover_id(&json), Some(41));
        let json = parse(r#"{"cmd":"nope"}"#).expect("valid");
        assert_eq!(recover_id(&json), None);
    }
}
