//! The daemon: accept loop, per-connection protocol handling, the
//! jobs-budget ledger, per-request timeouts, and graceful shutdown.
//!
//! One [`serve`] call owns everything: a [`SessionPool`] shared by all
//! connections, a [`JobsLedger`] splitting the single `--jobs` budget
//! across whatever is verifying right now, and the listener(s). Each
//! connection is one thread; each potentially-slow request (`open`,
//! `apply-delta`, `run`) runs on a worker thread the connection waits on
//! with a deadline, so a pathological design can time out one request
//! without wedging the connection — the orphaned verification finishes
//! in the background and its session rejoins the pool.

use crate::pool::{CheckoutInfo, PooledSession, SessionPool};
use crate::proto::{
    CacheDelta, DaemonStats, DeltaSpec, ErrorKind, Frame, Frontend, Hello, Request, Response,
    RunSummary, SweepEffort, SweepSpec, PROTO_VERSION,
};
use crate::tap::SharedWriter;
use scald_incr::{compile_source, compile_verilog, Delta, SessionError, SessionOutcome};
use scald_verifier::{Case, EvalCacheStats};
use std::collections::BTreeMap;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::{UnixListener, UnixStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread;
use std::time::Duration;

/// How the daemon listens and how it spends effort.
#[derive(Debug, Clone)]
pub struct ServeOptions {
    /// Bind a Unix socket here (the path must not already exist; it is
    /// unlinked on clean shutdown).
    pub socket: Option<PathBuf>,
    /// Speak the protocol on stdin/stdout as one implicit connection;
    /// its EOF begins graceful shutdown.
    pub stdio: bool,
    /// Daemon-wide verification worker budget, split across concurrent
    /// requests (`0` = available parallelism).
    pub jobs: usize,
    /// Deadline for `open` / `apply-delta` / `run`. A request that
    /// exceeds it gets an [`ErrorKind::Timeout`] response; its session
    /// is evicted from the connection and returns to the pool when the
    /// background verification finishes.
    pub request_timeout: Duration,
    /// `false` disables the shared evaluation cache (`--no-eval-cache`).
    pub eval_cache: bool,
    /// Settled sessions kept idle per design hash.
    pub idle_cap: usize,
    /// Largest case count a `sweep` spec may expand to server-side.
    /// The protocol already refuses anything over
    /// [`SWEEP_MAX_CASES`](crate::proto::SWEEP_MAX_CASES) at parse
    /// time; this is the daemon's own (lower, operator-tunable) budget,
    /// since even a legal 2^20-case expansion is a lot of memory to
    /// hand one client of a shared daemon. Specs over budget get an
    /// [`ErrorKind::Delta`] response and the session stays usable.
    pub max_sweep_cases: u64,
}

/// Default for [`ServeOptions::max_sweep_cases`]: 2^16 cases, well past
/// the 1000-case sweeps the case-tree engine targets while keeping one
/// client's expansion far below the protocol's 2^20 hard cap.
pub const DEFAULT_MAX_SWEEP_CASES: u64 = 1 << 16;

impl Default for ServeOptions {
    fn default() -> ServeOptions {
        ServeOptions {
            socket: None,
            stdio: false,
            jobs: 0,
            request_timeout: Duration::from_secs(30),
            eval_cache: true,
            idle_cap: 4,
            max_sweep_cases: DEFAULT_MAX_SWEEP_CASES,
        }
    }
}

/// Splits one daemon-wide worker budget across concurrent requests: a
/// lease taken while `n` requests are active gets `max(1, total / n)`
/// workers. Deliberately simple — shares are computed at acquisition and
/// not rebalanced mid-run, so a request's worker count is stable for its
/// whole verification.
pub struct JobsLedger {
    total: usize,
    active: AtomicUsize,
}

impl JobsLedger {
    /// A ledger over `total` workers (`0` = available parallelism).
    #[must_use]
    pub fn new(total: usize) -> JobsLedger {
        let total = if total == 0 {
            thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
        } else {
            total
        };
        JobsLedger {
            total,
            active: AtomicUsize::new(0),
        }
    }

    /// The daemon-wide budget.
    #[must_use]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Takes a share for one request; released when the lease drops.
    #[must_use]
    pub fn lease(self: &Arc<JobsLedger>) -> JobsLease {
        let active = self.active.fetch_add(1, Ordering::AcqRel) + 1;
        JobsLease {
            ledger: Arc::clone(self),
            share: (self.total / active).max(1),
        }
    }
}

/// One request's slice of the jobs budget (RAII).
pub struct JobsLease {
    ledger: Arc<JobsLedger>,
    share: usize,
}

impl JobsLease {
    /// The worker count this request may use.
    #[must_use]
    pub fn share(&self) -> usize {
        self.share
    }
}

impl Drop for JobsLease {
    fn drop(&mut self) {
        self.ledger.active.fetch_sub(1, Ordering::AcqRel);
    }
}

/// State shared by every connection of one [`serve`] call.
struct Shared {
    pool: SessionPool,
    jobs: Arc<JobsLedger>,
    timeout: Duration,
    max_sweep_cases: u64,
    shutting_down: AtomicBool,
    connections: AtomicUsize,
    active_runs: AtomicUsize,
}

impl Shared {
    fn new(opts: &ServeOptions) -> Arc<Shared> {
        Arc::new(Shared {
            pool: SessionPool::new(opts.idle_cap, opts.eval_cache),
            jobs: Arc::new(JobsLedger::new(opts.jobs)),
            timeout: opts.request_timeout,
            max_sweep_cases: opts.max_sweep_cases,
            shutting_down: AtomicBool::new(false),
            connections: AtomicUsize::new(0),
            active_runs: AtomicUsize::new(0),
        })
    }

    fn hello(&self) -> Hello {
        Hello {
            proto: PROTO_VERSION,
            server: concat!("scald-serve/", env!("CARGO_PKG_VERSION")).to_owned(),
            jobs: self.jobs.total() as u64,
        }
    }

    fn drained(&self) -> bool {
        self.shutting_down.load(Ordering::Acquire)
            && self.connections.load(Ordering::Acquire) == 0
            && self.active_runs.load(Ordering::Acquire) == 0
    }
}

/// Runs the daemon until graceful shutdown completes: a `shutdown`
/// request (or EOF on a `stdio` connection) stops new opens, in-flight
/// work drains, and `serve` returns once no connection or background run
/// remains. At least one of `socket` / `stdio` must be requested.
///
/// # Errors
///
/// Binding or accepting on the socket, or (in `stdio` mode) writing the
/// handshake.
pub fn serve(opts: &ServeOptions) -> io::Result<()> {
    if opts.socket.is_none() && !opts.stdio {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "serve needs a socket path, stdio mode, or both",
        ));
    }
    let shared = Shared::new(opts);

    let mut socket_thread = None;
    if let Some(path) = &opts.socket {
        let listener = UnixListener::bind(path)?;
        listener.set_nonblocking(true)?;
        let shared = Arc::clone(&shared);
        socket_thread = Some(thread::spawn(move || accept_loop(&listener, &shared)));
    }

    if opts.stdio {
        let shared_stdio = Arc::clone(&shared);
        shared_stdio.connections.fetch_add(1, Ordering::AcqRel);
        handle_connection(io::stdin().lock(), Box::new(io::stdout()), &shared_stdio)?;
        shared_stdio.connections.fetch_sub(1, Ordering::AcqRel);
        // The controlling client hung up: begin the drain so `serve`
        // (and the daemon process) can exit.
        shared_stdio.shutting_down.store(true, Ordering::Release);
    }

    while !shared.drained() {
        thread::sleep(Duration::from_millis(25));
    }
    if let Some(handle) = socket_thread {
        handle.join().expect("accept loop panicked");
    }
    if let Some(path) = &opts.socket {
        let _ = std::fs::remove_file(path);
    }
    Ok(())
}

/// Accepts until shutdown, handing each connection its own thread.
fn accept_loop(listener: &UnixListener, shared: &Arc<Shared>) {
    loop {
        if shared.shutting_down.load(Ordering::Acquire) {
            return;
        }
        match listener.accept() {
            Ok((stream, _)) => {
                let shared = Arc::clone(shared);
                shared.connections.fetch_add(1, Ordering::AcqRel);
                thread::spawn(move || {
                    let _ = connection_on_stream(stream, &shared);
                    shared.connections.fetch_sub(1, Ordering::AcqRel);
                });
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                thread::sleep(Duration::from_millis(50));
            }
            Err(_) => thread::sleep(Duration::from_millis(50)),
        }
    }
}

fn connection_on_stream(stream: UnixStream, shared: &Arc<Shared>) -> io::Result<()> {
    let reader = stream.try_clone()?;
    handle_connection(BufReader::new(reader), Box::new(stream), shared)
}

/// One session checked out to a connection, under the name the client
/// knows it by.
struct ConnState {
    sessions: BTreeMap<String, PooledSession>,
    next_session: u64,
}

/// The protocol loop for one client: handshake, then one strict JSONL
/// request per line. Malformed frames get a structured parse error and
/// the connection lives on; only EOF (or an unterminated final line,
/// i.e. a client that died mid-write) ends it. Any session still checked
/// out at the end returns to the pool.
fn handle_connection(
    mut reader: impl BufRead,
    writer: Box<dyn Write + Send>,
    shared: &Arc<Shared>,
) -> io::Result<()> {
    let writer: SharedWriter = Arc::new(Mutex::new(writer));
    write_frame(&writer, &Frame::Hello(shared.hello()))?;

    let mut conn = ConnState {
        sessions: BTreeMap::new(),
        next_session: 1,
    };
    let mut line = String::new();
    loop {
        line.clear();
        let n = reader.read_line(&mut line)?;
        if n == 0 {
            break; // clean EOF
        }
        if !line.ends_with('\n') {
            // The client vanished mid-frame; the fragment was never a
            // complete request, so it must not be processed.
            break;
        }
        let text = line.trim();
        if text.is_empty() {
            continue;
        }
        let request = match scald_trace::json::parse(text) {
            Err(e) => {
                let resp = Response::Error {
                    id: None,
                    kind: ErrorKind::Parse,
                    message: format!("malformed JSON: {e}"),
                };
                write_frame(&writer, &Frame::Response(resp))?;
                continue;
            }
            Ok(json) => match Request::parse(&json) {
                Err(e) => {
                    let resp = Response::Error {
                        id: crate::proto::recover_id(&json),
                        kind: ErrorKind::Parse,
                        message: e.to_string(),
                    };
                    write_frame(&writer, &Frame::Response(resp))?;
                    continue;
                }
                Ok(request) => request,
            },
        };
        let response = dispatch(request, &mut conn, &writer, shared);
        write_frame(&writer, &Frame::Response(response))?;
    }

    // Disconnect (clean or torn): park every remaining session.
    for (_, pooled) in std::mem::take(&mut conn.sessions) {
        shared.pool.checkin(pooled);
    }
    Ok(())
}

fn write_frame(writer: &SharedWriter, frame: &Frame) -> io::Result<()> {
    let line = frame.to_json().to_string();
    let mut w = writer.lock().expect("connection writer poisoned");
    writeln!(w, "{line}")?;
    w.flush()
}

fn dispatch(
    request: Request,
    conn: &mut ConnState,
    writer: &SharedWriter,
    shared: &Arc<Shared>,
) -> Response {
    match request {
        Request::Open {
            id,
            source,
            label,
            frontend,
        } => {
            if shared.shutting_down.load(Ordering::Acquire) {
                return Response::Error {
                    id: Some(id),
                    kind: ErrorKind::ShuttingDown,
                    message: "daemon is draining; new opens are rejected".into(),
                };
            }
            let label = label.unwrap_or_else(|| "<unnamed>".to_owned());
            do_open(id, source, frontend, label, conn, shared)
        }
        Request::ApplyDelta { id, session, delta } => {
            if let DeltaSpec::Sweep(spec) = &delta {
                if let Some(resp) = sweep_over_budget(id, spec, shared) {
                    return resp;
                }
            }
            let Some(pooled) = conn.sessions.remove(&session) else {
                return unknown_session(id, &session);
            };
            do_verify_op(
                id,
                session,
                pooled,
                VerifyOp::Apply(delta),
                OpKind::Applied,
                conn,
                shared,
            )
        }
        Request::Run { id, session, cases } => {
            if let Some(spec) = &cases {
                if let Some(resp) = sweep_over_budget(id, spec, shared) {
                    return resp;
                }
            }
            let Some(pooled) = conn.sessions.remove(&session) else {
                return unknown_session(id, &session);
            };
            // A `run` with a sweep spec is sugar for applying the
            // expanded case list, so both spellings share one path.
            let op = match cases {
                Some(spec) => VerifyOp::Apply(DeltaSpec::Sweep(spec)),
                None => VerifyOp::Reverify,
            };
            do_verify_op(id, session, pooled, op, OpKind::Ran, conn, shared)
        }
        Request::Report {
            id,
            session,
            effort,
        } => {
            let Some(pooled) = conn.sessions.get(&session) else {
                return unknown_session(id, &session);
            };
            let report = pooled.session.report();
            let doc = if effort {
                report.json_value()
            } else {
                report.strip_effort().json_value()
            };
            Response::Report {
                id,
                report: doc,
                effort,
            }
        }
        Request::SubscribeTrace { id, session, mode } => {
            let Some(pooled) = conn.sessions.get(&session) else {
                return unknown_session(id, &session);
            };
            pooled.tap.subscribe(mode, session, Arc::clone(writer));
            Response::Subscribed { id, mode }
        }
        Request::Close { id, session } => {
            let Some(pooled) = conn.sessions.remove(&session) else {
                return unknown_session(id, &session);
            };
            let pooled = shared.pool.checkin(pooled);
            Response::Closed { id, pooled }
        }
        Request::Stats { id } => Response::Stats {
            id,
            stats: DaemonStats {
                connections: shared.connections.load(Ordering::Acquire) as u64,
                active_runs: shared.active_runs.load(Ordering::Acquire) as u64,
                jobs_total: shared.jobs.total() as u64,
                shutting_down: shared.shutting_down.load(Ordering::Acquire),
                designs: shared.pool.stats(),
            },
        },
        Request::Shutdown { id } => {
            shared.shutting_down.store(true, Ordering::Release);
            Response::ShuttingDown { id }
        }
    }
}

/// The daemon-budget sweep guard: the protocol's hard cap has already
/// run at parse time, but a shared daemon enforces its own (lower,
/// `--max-sweep-cases`) budget before a single case is materialized.
/// The session is untouched, so the client can retry a smaller sweep.
fn sweep_over_budget(id: u64, spec: &SweepSpec, shared: &Shared) -> Option<Response> {
    let total = spec.case_count();
    (total > shared.max_sweep_cases).then(|| Response::Error {
        id: Some(id),
        kind: ErrorKind::Delta,
        message: format!(
            "sweep expands to {total} cases, over this daemon's budget of {} \
             (raise with --max-sweep-cases)",
            shared.max_sweep_cases
        ),
    })
}

fn unknown_session(id: u64, session: &str) -> Response {
    Response::Error {
        id: Some(id),
        kind: ErrorKind::UnknownSession,
        message: format!("no session {session:?} on this connection"),
    }
}

/// Decrements a counter when dropped, whatever path the worker exits by.
struct RunGuard(Arc<Shared>);

impl Drop for RunGuard {
    fn drop(&mut self) {
        self.0.active_runs.fetch_sub(1, Ordering::AcqRel);
    }
}

/// `open`: compile inline (cheap, bounded by source size), then check
/// out / verify on a worker thread under the request deadline.
fn do_open(
    id: u64,
    source: String,
    frontend: Frontend,
    label: String,
    conn: &mut ConnState,
    shared: &Arc<Shared>,
) -> Response {
    let compiled = match frontend {
        Frontend::Scald => compile_source(&source),
        Frontend::Verilog => compile_verilog(&source),
    };
    let (netlist, cases) = match compiled {
        Ok(pair) => pair,
        Err(e) => return session_error(id, &e),
    };

    let worker_shared = Arc::clone(shared);
    shared.active_runs.fetch_add(1, Ordering::AcqRel);
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _guard = RunGuard(Arc::clone(&worker_shared));
        let lease = worker_shared.jobs.lease();
        let result = worker_shared
            .pool
            .checkout(netlist, cases, &label, Some(lease.share()));
        let _ = tx.send(result);
    });

    match rx.recv_timeout(shared.timeout) {
        Ok(Ok((pooled, info))) => {
            let name = format!("s{}", conn.next_session);
            conn.next_session += 1;
            let summary = open_summary(&pooled, &info);
            let response = Response::Opened {
                id,
                session: name.clone(),
                design_hash: format!("{:016x}", info.design_hash),
                reused_session: info.reused_session,
                shared_cache: info.shared_cache,
                summary,
            };
            conn.sessions.insert(name, pooled);
            response
        }
        Ok(Err(e)) => session_error(id, &e),
        Err(_) => {
            reap_checkout(rx, Arc::clone(shared));
            timeout_error(id, shared.timeout)
        }
    }
}

/// The deadline-guarded mutating ops: the session moves to the worker;
/// on success (or a failed-but-harmless delta) it comes back to the
/// connection, on timeout the reaper parks it in the pool instead.
enum VerifyOp {
    Apply(DeltaSpec),
    Reverify,
}

#[allow(clippy::too_many_arguments)]
fn do_verify_op(
    id: u64,
    name: String,
    mut pooled: PooledSession,
    op: VerifyOp,
    kind: OpKind,
    conn: &mut ConnState,
    shared: &Arc<Shared>,
) -> Response {
    let worker_shared = Arc::clone(shared);
    shared.active_runs.fetch_add(1, Ordering::AcqRel);
    let (tx, rx) = mpsc::channel();
    thread::spawn(move || {
        let _guard = RunGuard(Arc::clone(&worker_shared));
        let lease = worker_shared.jobs.lease();
        pooled.session.set_jobs(Some(lease.share()));
        let before = pooled.session.cache_stats();
        let result = match op {
            VerifyOp::Apply(DeltaSpec::Source(src)) => pooled.session.apply(Delta::Source(src)),
            VerifyOp::Apply(DeltaSpec::Cases(cases)) => pooled
                .session
                .apply(Delta::Cases(cases.into_iter().map(build_case).collect())),
            // The sweep expands server-side through the same CaseSet
            // builders the in-process API uses, so a swept run is
            // byte-identical to handing the expanded list to `cases`.
            VerifyOp::Apply(DeltaSpec::Sweep(spec)) => pooled
                .session
                .apply(Delta::Cases(spec.to_case_set().into_cases())),
            VerifyOp::Reverify => pooled.session.reverify(),
        };
        let delta = cache_delta(before, pooled.session.cache_stats());
        let _ = tx.send((pooled, result, delta));
    });

    match rx.recv_timeout(shared.timeout) {
        Ok((pooled, result, delta)) => {
            // Even a failed apply leaves the session valid at its prior
            // state, so it always returns to the connection here.
            let response = match &result {
                Ok(outcome) => {
                    let summary = outcome_summary(outcome, delta);
                    match kind {
                        OpKind::Applied => Response::Applied { id, summary },
                        OpKind::Ran => Response::Ran { id, summary },
                    }
                }
                Err(e) => session_error(id, e),
            };
            conn.sessions.insert(name, pooled);
            response
        }
        Err(_) => {
            reap_verify(rx, Arc::clone(shared));
            timeout_error(id, shared.timeout)
        }
    }
}

/// Which success variant a verify op maps to, captured before the op
/// moves to its worker thread.
enum OpKind {
    Applied,
    Ran,
}

/// Collects a timed-out `open` in the background: when the checkout
/// finally finishes, its session goes straight to the pool so the work
/// is not wasted.
fn reap_checkout(
    rx: mpsc::Receiver<Result<(PooledSession, CheckoutInfo), SessionError>>,
    shared: Arc<Shared>,
) {
    thread::spawn(move || {
        if let Ok(Ok((pooled, _))) = rx.recv() {
            shared.pool.checkin(pooled);
        }
    });
}

/// Collects a timed-out `apply-delta` / `run` in the background.
fn reap_verify(
    rx: mpsc::Receiver<(
        PooledSession,
        Result<SessionOutcome, SessionError>,
        Option<CacheDelta>,
    )>,
    shared: Arc<Shared>,
) {
    thread::spawn(move || {
        if let Ok((pooled, _, _)) = rx.recv() {
            shared.pool.checkin(pooled);
        }
    });
}

fn build_case(assigns: Vec<(String, bool)>) -> Case {
    assigns
        .into_iter()
        .fold(Case::new(), |c, (signal, value)| c.assign(signal, value))
}

fn cache_delta(
    before: Option<EvalCacheStats>,
    after: Option<EvalCacheStats>,
) -> Option<CacheDelta> {
    let (before, after) = (before?, after?);
    let moved = after.since(&before);
    Some(CacheDelta {
        hits: moved.hits,
        misses: moved.misses,
        entries: moved.entries as u64,
    })
}

/// The summary of a fresh or reused open. A pooled reuse ran nothing, so
/// every effort counter is zero and `warm` is `true`; outcome fields
/// come from the retained report.
fn open_summary(pooled: &PooledSession, info: &CheckoutInfo) -> RunSummary {
    if info.reused_session {
        let report = pooled.session.report();
        RunSummary {
            clean: report.is_clean(),
            violations: report.total_violations() as u64,
            warm: true,
            seeded_prims: 0,
            total_prims: pooled.session.netlist().prims().len() as u64,
            events: 0,
            evaluations: 0,
            wall_ns: 0,
            cache: pooled.session.cache_stats().map(|s| CacheDelta {
                hits: 0,
                misses: 0,
                entries: s.entries as u64,
            }),
            // A reuse ran no verification, so there is no sweep effort
            // to attribute to this request.
            sweep: None,
        }
    } else {
        let outcome = pooled.session.outcome();
        let cache = pooled.session.cache_stats().map(|s| CacheDelta {
            // An open is this session's first traffic on the shared
            // table, so the absolute counters over-attribute only under
            // concurrent opens of the same design.
            hits: s.hits,
            misses: s.misses,
            entries: s.entries as u64,
        });
        outcome_summary(outcome, cache)
    }
}

fn outcome_summary(outcome: &SessionOutcome, cache: Option<CacheDelta>) -> RunSummary {
    // The sweep block is reported only when the pass actually amortized
    // something across cases (the independent path leaves every counter
    // at zero), so single-case clients never see it.
    let (prefix, memo) = (outcome.stats.prefix, outcome.stats.memo);
    let sweep = (prefix.nodes > 0 || memo.leaf_check_hits > 0 || memo.leaf_storage_hits > 0)
        .then_some(SweepEffort {
            prefix_nodes: prefix.nodes as u64,
            prefix_evaluations: prefix.evaluations,
            leaf_check_evals: memo.leaf_check_evals,
            leaf_check_hits: memo.leaf_check_hits,
            leaf_storage_evals: memo.leaf_storage_evals,
            leaf_storage_hits: memo.leaf_storage_hits,
        });
    RunSummary {
        clean: outcome.report.is_clean(),
        violations: outcome.report.total_violations() as u64,
        warm: outcome.stats.warm,
        seeded_prims: outcome.stats.seeded_prims as u64,
        total_prims: outcome.stats.total_prims as u64,
        events: outcome.stats.events,
        evaluations: outcome.stats.evaluations,
        wall_ns: outcome.stats.wall.as_nanos() as u64,
        cache,
        sweep,
    }
}

fn session_error(id: u64, e: &SessionError) -> Response {
    let kind = match e {
        SessionError::Compile(_) | SessionError::Rtl(_) => ErrorKind::Compile,
        SessionError::Delta(_) => ErrorKind::Delta,
        SessionError::Verify(_) => ErrorKind::Verify,
    };
    Response::Error {
        id: Some(id),
        kind,
        message: e.to_string(),
    }
}

fn timeout_error(id: u64, timeout: Duration) -> Response {
    Response::Error {
        id: Some(id),
        kind: ErrorKind::Timeout,
        message: format!(
            "request exceeded the {}ms deadline; the session was evicted and will \
             rejoin the pool when its verification completes",
            timeout.as_millis()
        ),
    }
}
