//! Per-session trace forwarding: a [`TapSink`] is attached to every
//! pooled session for its whole life, and `subscribe-trace` points it at
//! (or away from) a connection's outbound writer.
//!
//! The engine only constructs trace events when a sink is attached, so
//! daemon sessions pay the (measured-small) enabled-path cost of event
//! construction; an *unsubscribed* tap then costs one relaxed atomic
//! load per event before discarding it. Subscribed taps write each event
//! as one `{"frame":"trace",...}` line under the connection's writer
//! lock — interleaved between responses, never inside one.

use crate::proto::{Frame, TraceMode};
use scald_trace::{TraceEvent, TraceSink};
use std::io::Write;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};

/// The shared, lockable outbound writer of one client connection.
pub(crate) type SharedWriter = Arc<Mutex<Box<dyn Write + Send>>>;

struct TapTarget {
    mode: TraceMode,
    /// The session name as this connection knows it, echoed in frames.
    session: String,
    writer: SharedWriter,
}

/// A swappable [`TraceSink`] bridging one session's engine events to
/// whichever connection (if any) currently subscribes to them.
#[derive(Default)]
pub struct TapSink {
    subscribed: AtomicBool,
    target: Mutex<Option<TapTarget>>,
}

impl TapSink {
    /// A fresh, unsubscribed tap.
    #[must_use]
    pub fn new() -> TapSink {
        TapSink::default()
    }

    /// Points the tap at a connection's writer ([`TraceMode::Off`]
    /// unsubscribes).
    pub(crate) fn subscribe(&self, mode: TraceMode, session: String, writer: SharedWriter) {
        let mut target = self.target.lock().expect("tap target poisoned");
        if mode == TraceMode::Off {
            *target = None;
        } else {
            *target = Some(TapTarget {
                mode,
                session,
                writer,
            });
        }
        self.subscribed.store(target.is_some(), Ordering::Release);
    }

    /// Unsubscribes (used when a session returns to the pool, so the
    /// next client never inherits a dead connection's writer).
    pub(crate) fn reset(&self) {
        self.subscribe(TraceMode::Off, String::new(), unused_writer());
    }
}

fn unused_writer() -> SharedWriter {
    Arc::new(Mutex::new(
        Box::new(std::io::sink()) as Box<dyn Write + Send>
    ))
}

/// `true` for the coarse subset: run/case/wave milestones, never the
/// per-evaluation or per-signal firehose.
fn coarse(event: &TraceEvent<'_>) -> bool {
    !matches!(
        event,
        TraceEvent::Evaluation { .. } | TraceEvent::SignalSettled { .. }
    )
}

impl TraceSink for TapSink {
    fn record(&self, event: &TraceEvent<'_>) {
        if !self.subscribed.load(Ordering::Acquire) {
            return;
        }
        let mut target = self.target.lock().expect("tap target poisoned");
        let Some(t) = target.as_ref() else { return };
        if t.mode == TraceMode::Coarse && !coarse(event) {
            return;
        }
        let frame = Frame::Trace {
            session: t.session.clone(),
            event: event.to_json(),
        };
        let line = frame.to_json().to_string();
        let failed = {
            let mut w = t.writer.lock().expect("connection writer poisoned");
            writeln!(w, "{line}").and_then(|()| w.flush()).is_err()
        };
        if failed {
            // The subscriber hung up; stop forwarding rather than
            // erroring on every subsequent event.
            *target = None;
            self.subscribed.store(false, Ordering::Release);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Clone, Default)]
    struct Buf(Arc<Mutex<Vec<u8>>>);

    impl Write for Buf {
        fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
            self.0.lock().expect("buf").extend_from_slice(buf);
            Ok(buf.len())
        }
        fn flush(&mut self) -> std::io::Result<()> {
            Ok(())
        }
    }

    fn eval_event() -> TraceEvent<'static> {
        TraceEvent::Evaluation {
            case: None,
            prim: 1,
            name: "P",
            ordinal: 1,
            queue_depth: 0,
        }
    }

    #[test]
    fn unsubscribed_tap_discards_and_coarse_filters() {
        let tap = TapSink::new();
        tap.record(&eval_event()); // no target: discarded, no panic

        let buf = Buf::default();
        let writer: SharedWriter = Arc::new(Mutex::new(Box::new(buf.clone())));
        tap.subscribe(TraceMode::Coarse, "s1".into(), writer);
        tap.record(&eval_event()); // filtered out by coarse mode
        tap.record(&TraceEvent::RunEnd {
            wall_nanos: 1,
            events: 2,
            evaluations: 3,
        });
        let text = String::from_utf8(buf.0.lock().expect("buf").clone()).expect("utf8");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 1, "{text}");
        assert!(lines[0].contains("\"frame\":\"trace\""), "{text}");
        assert!(lines[0].contains("\"session\":\"s1\""), "{text}");
        assert!(lines[0].contains("\"type\":\"run_end\""), "{text}");

        tap.reset();
        tap.record(&TraceEvent::RunEnd {
            wall_nanos: 1,
            events: 2,
            evaluations: 3,
        });
        let after = buf.0.lock().expect("buf").len();
        assert_eq!(after, text.len(), "reset tap must not write");
    }
}
