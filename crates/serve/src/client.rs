//! A small blocking client for the `scald-serve` protocol — used by the
//! daemon's own tests and the `loadtest` bench, and usable as a library
//! by anything that wants to talk to a running daemon without writing
//! JSONL by hand.

use crate::proto::{
    DeltaSpec, Frame, Frontend, Hello, Request, Response, SweepSpec, TraceMode, PROTO_VERSION,
};
use scald_trace::json::Json;
use std::io::{self, BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::Path;

/// A blocking protocol client over any line-framed byte stream.
///
/// Requests are serialized (protocol v1 has no pipelining); trace frames
/// that arrive interleaved with a response are buffered and retrievable
/// via [`take_trace`](Client::take_trace).
pub struct Client {
    reader: Box<dyn BufRead + Send>,
    writer: Box<dyn Write + Send>,
    hello: Hello,
    next_id: u64,
    trace: Vec<(String, Json)>,
}

impl Client {
    /// Connects to a daemon's Unix socket and performs the handshake.
    ///
    /// # Errors
    ///
    /// Connection failure, or a handshake frame that is malformed or
    /// speaks a different protocol version.
    pub fn connect_unix(path: impl AsRef<Path>) -> io::Result<Client> {
        let stream = UnixStream::connect(path)?;
        let reader = stream.try_clone()?;
        Client::from_streams(Box::new(BufReader::new(reader)), Box::new(stream))
    }

    /// Wraps an already-connected stream pair (e.g. a child daemon's
    /// stdout/stdin) and performs the handshake.
    ///
    /// # Errors
    ///
    /// As for [`connect_unix`](Client::connect_unix).
    pub fn from_streams(
        mut reader: Box<dyn BufRead + Send>,
        writer: Box<dyn Write + Send>,
    ) -> io::Result<Client> {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(bad_proto("connection closed before the hello frame"));
        }
        let json = scald_trace::json::parse(line.trim())
            .map_err(|e| bad_proto(format!("malformed hello frame: {e}")))?;
        let Frame::Hello(hello) =
            Frame::parse(&json).map_err(|e| bad_proto(format!("bad hello frame: {e}")))?
        else {
            return Err(bad_proto("first frame was not a hello"));
        };
        if hello.proto != PROTO_VERSION {
            return Err(bad_proto(format!(
                "server speaks protocol {}, this client speaks {PROTO_VERSION}",
                hello.proto
            )));
        }
        Ok(Client {
            reader,
            writer,
            hello,
            next_id: 1,
            trace: Vec::new(),
        })
    }

    /// The server's handshake (name, protocol version, jobs budget).
    #[must_use]
    pub fn hello(&self) -> &Hello {
        &self.hello
    }

    /// Sends one request and blocks for its response, buffering any
    /// trace frames that arrive in between.
    ///
    /// # Errors
    ///
    /// I/O failure, an unparseable server frame, or the connection
    /// closing before the response arrives.
    pub fn request(&mut self, request: &Request) -> io::Result<Response> {
        let line = request.to_json().to_string();
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Reads frames until a response arrives, buffering trace frames.
    fn read_response(&mut self) -> io::Result<Response> {
        loop {
            let mut line = String::new();
            if self.reader.read_line(&mut line)? == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed while waiting for a response",
                ));
            }
            let json = scald_trace::json::parse(line.trim())
                .map_err(|e| bad_proto(format!("malformed server frame: {e}")))?;
            match Frame::parse(&json).map_err(|e| bad_proto(format!("bad server frame: {e}")))? {
                Frame::Response(response) => return Ok(response),
                Frame::Trace { session, event } => self.trace.push((session, event)),
                Frame::Hello(_) => return Err(bad_proto("unexpected mid-stream hello")),
            }
        }
    }

    /// Sends one raw line verbatim (no JSON validation) and blocks for
    /// the server's response — for exercising the daemon's handling of
    /// malformed frames.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn request_raw(&mut self, line: &str) -> io::Result<Response> {
        writeln!(self.writer, "{line}")?;
        self.writer.flush()?;
        self.read_response()
    }

    /// Drains the trace frames buffered so far, as `(session, event)`
    /// pairs in arrival order.
    pub fn take_trace(&mut self) -> Vec<(String, Json)> {
        std::mem::take(&mut self.trace)
    }

    fn id(&mut self) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        id
    }

    /// `open` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn open_source(
        &mut self,
        source: impl Into<String>,
        label: impl Into<String>,
    ) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Open {
            id,
            source: source.into(),
            label: Some(label.into()),
            frontend: Frontend::Scald,
        })
    }

    /// `open` sugar for Verilog sources (the `scald-rtl` frontend).
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn open_verilog(
        &mut self,
        source: impl Into<String>,
        label: impl Into<String>,
    ) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Open {
            id,
            source: source.into(),
            label: Some(label.into()),
            frontend: Frontend::Verilog,
        })
    }

    /// `apply-delta` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn apply(&mut self, session: impl Into<String>, delta: DeltaSpec) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::ApplyDelta {
            id,
            session: session.into(),
            delta,
        })
    }

    /// `run` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn run(&mut self, session: impl Into<String>) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Run {
            id,
            session: session.into(),
            cases: None,
        })
    }

    /// `run` with a case sweep: installs the expanded sweep as the
    /// session's case set and re-verifies, in one request.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn run_sweep(
        &mut self,
        session: impl Into<String>,
        cases: SweepSpec,
    ) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Run {
            id,
            session: session.into(),
            cases: Some(cases),
        })
    }

    /// `report` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn report(&mut self, session: impl Into<String>, effort: bool) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Report {
            id,
            session: session.into(),
            effort,
        })
    }

    /// `subscribe-trace` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn subscribe_trace(
        &mut self,
        session: impl Into<String>,
        mode: TraceMode,
    ) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::SubscribeTrace {
            id,
            session: session.into(),
            mode,
        })
    }

    /// `close` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn close(&mut self, session: impl Into<String>) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Close {
            id,
            session: session.into(),
        })
    }

    /// `stats` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn stats(&mut self) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Stats { id })
    }

    /// `shutdown` sugar.
    ///
    /// # Errors
    ///
    /// As for [`request`](Client::request).
    pub fn shutdown(&mut self) -> io::Result<Response> {
        let id = self.id();
        self.request(&Request::Shutdown { id })
    }
}

fn bad_proto(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}
