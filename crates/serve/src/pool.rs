//! The session pool: settled `scald-incr` sessions and shared
//! evaluation caches, keyed by [`design_hash`].
//!
//! Two levels of sharing, both keyed on the same content hash:
//!
//! 1. **Cache sharing** — every session of one design hash verifies
//!    through one `Arc`'d [`EvalCache`], so the second client opening a
//!    popular design replays the first client's evaluations (the
//!    measured ~2x warm path of `BENCH_cache.json`) even though it gets
//!    its own private session.
//! 2. **Session reuse** — a closed session parks here still settled; a
//!    later `open` of the same design (and label) checks it out and
//!    serves its retained report with *zero* verification work.
//!
//! A checked-out session belongs exclusively to its connection —
//! `apply-delta` may drift its design arbitrarily — and is re-keyed by
//! its *current* hash when it comes back.

use crate::proto::DesignStats;
use crate::tap::TapSink;
use scald_incr::{design_hash, DesignInput, Session, SessionBuilder, SessionError};
use scald_netlist::Netlist;
use scald_verifier::{Case, EvalCache, EvalCacheStats};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

/// A pooled session plus its permanently attached trace tap.
pub struct PooledSession {
    /// The settled session; exclusively owned until checked back in.
    pub session: Session,
    /// The tap `subscribe-trace` retargets.
    pub tap: Arc<TapSink>,
}

/// What [`SessionPool::checkout`] found.
pub struct CheckoutInfo {
    /// The pool key of the opened design.
    pub design_hash: u64,
    /// `true` when a parked settled session was handed back as-is.
    pub reused_session: bool,
    /// `true` when the design's shared cache predates this open.
    pub shared_cache: bool,
}

#[derive(Default)]
struct DesignEntry {
    cache: Arc<EvalCache>,
    idle: Vec<PooledSession>,
    opens: u64,
    reuses: u64,
}

/// The design-hash-keyed pool. All methods are `&self`; the internal
/// lock covers only map bookkeeping — never a verification.
pub struct SessionPool {
    designs: Mutex<BTreeMap<u64, DesignEntry>>,
    /// Parked sessions kept per design; beyond this, closed sessions are
    /// dropped (their cache contribution survives in the shared table).
    idle_cap: usize,
    /// `false` disables evaluation caching entirely (`--no-eval-cache`).
    eval_cache: bool,
}

impl SessionPool {
    /// An empty pool.
    #[must_use]
    pub fn new(idle_cap: usize, eval_cache: bool) -> SessionPool {
        SessionPool {
            designs: Mutex::new(BTreeMap::new()),
            idle_cap,
            eval_cache,
        }
    }

    /// Opens a session on `netlist`/`cases`: hands back a parked settled
    /// session when one with a matching label exists, otherwise builds
    /// (and cold- or cache-warm-verifies) a fresh one against the
    /// design's shared cache. The verification runs outside the pool
    /// lock.
    ///
    /// `jobs` is the worker budget for the opening verification (the
    /// caller's lease share).
    ///
    /// # Errors
    ///
    /// Any [`SessionError`] from the opening verification.
    pub fn checkout(
        &self,
        netlist: Netlist,
        cases: Vec<Case>,
        label: &str,
        jobs: Option<usize>,
    ) -> Result<(PooledSession, CheckoutInfo), SessionError> {
        let hash = design_hash(&netlist, &cases);
        let (cache, reused, shared) = {
            let mut designs = self.designs.lock().expect("pool poisoned");
            let existed = designs.contains_key(&hash);
            let entry = designs.entry(hash).or_default();
            entry.opens += 1;
            let reused = entry
                .idle
                .iter()
                .position(|p| p.session.label() == label)
                .map(|i| entry.idle.swap_remove(i));
            if reused.is_some() {
                entry.reuses += 1;
            }
            (Arc::clone(&entry.cache), reused, existed)
        };
        if let Some(mut pooled) = reused {
            pooled.tap.reset();
            pooled.session.set_jobs(jobs);
            return Ok((
                pooled,
                CheckoutInfo {
                    design_hash: hash,
                    reused_session: true,
                    shared_cache: shared,
                },
            ));
        }
        let tap = Arc::new(TapSink::new());
        let mut builder = SessionBuilder::new().trace(Arc::clone(&tap) as _);
        if self.eval_cache {
            builder = builder.shared_eval_cache(cache);
        } else {
            builder = builder.eval_cache(false);
        }
        if let Some(jobs) = jobs {
            builder = builder.jobs(jobs);
        }
        let session = builder.open(DesignInput::Netlist { netlist, cases }, label)?;
        Ok((
            PooledSession { session, tap },
            CheckoutInfo {
                design_hash: hash,
                reused_session: false,
                shared_cache: shared,
            },
        ))
    }

    /// Returns a session to the pool, re-keyed by its current design
    /// hash (deltas may have drifted it since checkout). Returns `true`
    /// when the session was parked, `false` when the design's idle slots
    /// were full and it was dropped.
    pub fn checkin(&self, pooled: PooledSession) -> bool {
        pooled.tap.reset();
        let hash = pooled.session.design_hash();
        let mut designs = self.designs.lock().expect("pool poisoned");
        let entry = designs.entry(hash).or_default();
        // A drifted session re-seeds its new key's shared cache so later
        // opens of the drifted design warm-replay from it.
        if entry.opens == 0 {
            if let Some(cache) = pooled.session.eval_cache() {
                entry.cache = Arc::clone(cache);
            }
        }
        if entry.idle.len() < self.idle_cap {
            entry.idle.push(pooled);
            true
        } else {
            false
        }
    }

    /// The shared cache's cumulative counters for one design hash.
    #[must_use]
    pub fn cache_stats(&self, hash: u64) -> Option<EvalCacheStats> {
        let designs = self.designs.lock().expect("pool poisoned");
        designs.get(&hash).map(|e| e.cache.stats())
    }

    /// Per-design statistics, in hash order.
    #[must_use]
    pub fn stats(&self) -> Vec<DesignStats> {
        let designs = self.designs.lock().expect("pool poisoned");
        designs
            .iter()
            .map(|(hash, e)| {
                let cache = e.cache.stats();
                DesignStats {
                    design_hash: format!("{hash:016x}"),
                    opens: e.opens,
                    reuses: e.reuses,
                    idle_sessions: e.idle.len() as u64,
                    cache_hits: cache.hits,
                    cache_misses: cache.misses,
                    cache_entries: cache.entries as u64,
                }
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_netlist::{Config, NetlistBuilder};
    use scald_wave::{DelayRange, Time};

    fn tiny_netlist() -> Netlist {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CLK .P0-2").expect("clk");
        let d = b.signal("D").expect("d");
        let q = b.signal("Q").expect("q");
        b.reg("R", DelayRange::from_ns(1.5, 4.5), clk, d, q);
        b.setup_hold("R CHK", Time::from_ns(2.5), Time::from_ns(1.5), d, clk);
        b.finish().expect("well-formed")
    }

    #[test]
    fn checkout_builds_then_reuses_and_shares_cache() {
        let pool = SessionPool::new(4, true);
        let netlist = tiny_netlist();
        let (a, info_a) = pool
            .checkout(netlist.clone(), vec![Case::new()], "demo", None)
            .expect("opens");
        assert!(!info_a.reused_session);
        assert!(!info_a.shared_cache);

        // A second concurrent open of the same design: fresh session,
        // shared cache.
        let (b, info_b) = pool
            .checkout(netlist.clone(), vec![Case::new()], "demo", None)
            .expect("opens");
        assert!(!info_b.reused_session);
        assert!(info_b.shared_cache);
        assert_eq!(info_a.design_hash, info_b.design_hash);

        // Check one in; the next open reuses it outright.
        assert!(pool.checkin(a));
        let (_c, info_c) = pool
            .checkout(netlist.clone(), vec![Case::new()], "demo", None)
            .expect("opens");
        assert!(info_c.reused_session);

        // A different label never reuses (reports carry the label).
        assert!(pool.checkin(b));
        let (_d, info_d) = pool
            .checkout(netlist, vec![Case::new()], "other", None)
            .expect("opens");
        assert!(!info_d.reused_session);
        assert!(info_d.shared_cache);

        let stats = pool.stats();
        assert_eq!(stats.len(), 1);
        assert_eq!(stats[0].opens, 4);
        assert_eq!(stats[0].reuses, 1);
    }

    #[test]
    fn idle_cap_bounds_parked_sessions() {
        let pool = SessionPool::new(1, true);
        let netlist = tiny_netlist();
        let (a, _) = pool
            .checkout(netlist.clone(), vec![Case::new()], "demo", None)
            .expect("opens");
        let (b, _) = pool
            .checkout(netlist, vec![Case::new()], "demo", None)
            .expect("opens");
        assert!(pool.checkin(a));
        assert!(!pool.checkin(b), "second checkin exceeds idle_cap=1");
        assert_eq!(pool.stats()[0].idle_sessions, 1);
    }

    #[test]
    fn distinct_cases_key_distinct_designs() {
        let pool = SessionPool::new(4, true);
        let netlist = tiny_netlist();
        pool.checkout(netlist.clone(), vec![Case::new()], "demo", None)
            .expect("opens");
        pool.checkout(netlist, vec![Case::new().assign("D", true)], "demo", None)
            .expect("opens");
        assert_eq!(pool.stats().len(), 2);
    }
}
