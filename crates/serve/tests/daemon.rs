//! End-to-end daemon tests over a real Unix socket: concurrency,
//! sharing, malformed frames, disconnects, timeouts, shutdown.

use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_serve::{
    serve, Client, DeltaSpec, ErrorKind, Request, Response, ServeOptions, TraceMode,
};
use std::io::Write;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::thread;
use std::time::Duration;

/// A fresh socket path per test (tests run in parallel in one process).
fn socket_path(tag: &str) -> PathBuf {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let path =
        std::env::temp_dir().join(format!("scald-serve-{}-{tag}-{n}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// Starts an in-process daemon and waits until its socket accepts.
fn start_daemon(opts: ServeOptions) -> (PathBuf, thread::JoinHandle<()>) {
    let path = opts.socket.clone().expect("test daemons listen on sockets");
    let handle = thread::spawn(move || serve(&opts).expect("daemon runs"));
    for _ in 0..400 {
        if UnixStream::connect(&path).is_ok() {
            return (path, handle);
        }
        thread::sleep(Duration::from_millis(5));
    }
    panic!("daemon socket {} never came up", path.display());
}

fn small_design(seed: u64) -> String {
    s1_like_hdl(S1Options { chips: 9, seed })
}

fn opened(response: Response) -> (String, bool, bool) {
    match response {
        Response::Opened {
            session,
            reused_session,
            shared_cache,
            ..
        } => (session, reused_session, shared_cache),
        other => panic!("expected an open response, got {other:?}"),
    }
}

fn report_text(response: Response) -> String {
    match response {
        Response::Report { report, .. } => report.to_string_pretty(),
        other => panic!("expected a report response, got {other:?}"),
    }
}

#[test]
fn four_concurrent_clients_get_identical_reports_and_share_the_cache() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("fourway")),
        ..ServeOptions::default()
    });
    let src = small_design(0xF00);

    // A first client pays the cold open, then leaves.
    let mut warmup = Client::connect_unix(&path).expect("connects");
    let (s, reused, shared) = opened(warmup.open_source(&src, "shared").expect("opens"));
    assert!(!reused && !shared, "first open must be cold");
    let reference = report_text(warmup.report(&s, false).expect("reports"));
    warmup.close(&s).expect("closes");

    // Four clients now open the same design concurrently.
    let reports: Vec<(String, bool)> = {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let path = path.clone();
                let src = src.clone();
                thread::spawn(move || {
                    let mut client = Client::connect_unix(&path).expect("connects");
                    let (s, _, shared) = opened(client.open_source(&src, "shared").expect("opens"));
                    let text = report_text(client.report(&s, false).expect("reports"));
                    client.close(&s).expect("closes");
                    (text, shared)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("client"))
            .collect()
    };
    for (text, shared) in &reports {
        assert_eq!(*text, reference, "every client sees the same bytes");
        assert!(*shared, "later opens verify through the shared cache");
    }

    // The shared table served more than half of all evaluations.
    let mut probe = Client::connect_unix(&path).expect("connects");
    let Response::Stats { stats, .. } = probe.stats().expect("stats") else {
        panic!("expected stats");
    };
    let design = &stats.designs[0];
    assert_eq!(stats.designs.len(), 1);
    assert!(design.opens >= 5);
    assert!(
        design.cache_hits as f64 > 0.5 * (design.cache_hits + design.cache_misses) as f64,
        "cross-client hit rate should exceed 50%, got {}/{}",
        design.cache_hits,
        design.cache_hits + design.cache_misses,
    );
    probe.shutdown().expect("shutdown");
    drop(probe);
    drop(warmup);
    daemon.join().expect("daemon drains");
}

#[test]
fn malformed_frames_answer_with_parse_errors_and_the_connection_lives() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("malformed")),
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");

    // Raw invalid JSON: error with no recoverable id.
    let resp = client
        .request_raw("this is not json")
        .expect("connection survives");
    match resp {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, None);
            assert_eq!(kind, ErrorKind::Parse);
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    // Valid JSON, invalid request: the id is still echoed back.
    let resp = client
        .request_raw(r#"{"id":42,"cmd":"open","source":"x","bogus":true}"#)
        .expect("connection survives");
    match resp {
        Response::Error { id, kind, .. } => {
            assert_eq!(id, Some(42));
            assert_eq!(kind, ErrorKind::Parse);
        }
        other => panic!("expected a parse error, got {other:?}"),
    }

    // Unknown session: a structured error, not a hangup.
    let resp = client.run("s99").expect("connection survives");
    match resp {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::UnknownSession),
        other => panic!("expected unknown-session, got {other:?}"),
    }

    // And the connection still does real work afterwards.
    let (s, _, _) = opened(
        client
            .open_source(small_design(0xBAD), "after-errors")
            .expect("opens"),
    );
    assert!(matches!(
        client.run(&s).expect("runs"),
        Response::Ran { .. }
    ));
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

#[test]
fn disconnect_parks_sessions_for_reuse() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("disconnect")),
        ..ServeOptions::default()
    });
    let src = small_design(0xD15C);

    // Open a session, then vanish without closing it — including a torn
    // final frame, which must be discarded, not processed.
    {
        let mut client = Client::connect_unix(&path).expect("connects");
        let _ = opened(client.open_source(&src, "parked").expect("opens"));
        let mut raw = UnixStream::connect(&path).expect("second raw connection");
        raw.write_all(b"{\"id\":7,\"cmd\":\"shutdown\"")
            .expect("half a frame");
        // Both connections drop here.
    }

    // The torn shutdown must NOT have taken effect, and the parked
    // session must be reusable by a fresh client.
    let mut client = Client::connect_unix(&path).expect("daemon still alive");
    let reused = (0..100).any(|_| {
        let (s, reused, _) = opened(client.open_source(&src, "parked").expect("opens"));
        client.close(&s).expect("closes");
        if reused {
            true
        } else {
            thread::sleep(Duration::from_millis(10));
            false
        }
    });
    assert!(
        reused,
        "the dropped connection's session should be reusable"
    );
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

#[test]
fn timeouts_evict_the_request_but_the_work_rejoins_the_pool() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("timeout")),
        request_timeout: Duration::from_millis(1),
        ..ServeOptions::default()
    });
    // Big enough that compile+settle cannot finish in a millisecond.
    let src = s1_like_hdl(S1Options {
        chips: 600,
        seed: 0x7143,
    });

    let mut client = Client::connect_unix(&path).expect("connects");
    let resp = client.open_source(&src, "slow").expect("answered");
    match resp {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Timeout),
        other => panic!("expected a timeout, got {other:?}"),
    }

    // The orphaned verification finishes in the background and its
    // session is parked for the next client.
    let parked = (0..600).any(|_| {
        let Response::Stats { stats, .. } = client.stats().expect("stats") else {
            panic!("expected stats");
        };
        if stats.designs.iter().any(|d| d.idle_sessions > 0) {
            true
        } else {
            thread::sleep(Duration::from_millis(25));
            false
        }
    });
    assert!(parked, "the timed-out open should park its session");
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

#[test]
fn shutdown_rejects_new_opens_but_existing_sessions_finish() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("shutdown")),
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");
    let (s, _, _) = opened(
        client
            .open_source(small_design(0x5D), "draining")
            .expect("opens"),
    );
    assert!(matches!(
        client.shutdown().expect("shutdown"),
        Response::ShuttingDown { .. }
    ));
    // New opens are refused...
    match client
        .open_source(small_design(0x5E), "late")
        .expect("answered")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::ShuttingDown),
        other => panic!("expected shutting-down, got {other:?}"),
    }
    // ...but in-flight sessions still serve requests until they close.
    assert!(matches!(
        client.run(&s).expect("runs"),
        Response::Ran { .. }
    ));
    assert!(matches!(
        client.close(&s).expect("closes"),
        Response::Closed { .. }
    ));
    drop(client);
    daemon
        .join()
        .expect("daemon drains after the last connection");
}

#[test]
fn trace_subscription_streams_and_unsubscribes() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("trace")),
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");
    let (s, _, _) = opened(
        client
            .open_source(small_design(0x7A), "traced")
            .expect("opens"),
    );

    client
        .subscribe_trace(&s, TraceMode::Coarse)
        .expect("subscribes");
    client.run(&s).expect("runs");
    let frames = client.take_trace();
    assert!(
        !frames.is_empty(),
        "a subscribed run should stream trace frames"
    );
    assert!(frames.iter().all(|(session, _)| session == &s));
    assert!(frames
        .iter()
        .any(|(_, e)| e.get("type").and_then(|t| t.as_str()) == Some("run_end")));

    client
        .subscribe_trace(&s, TraceMode::Off)
        .expect("unsubscribes");
    client.run(&s).expect("runs");
    assert!(
        client.take_trace().is_empty(),
        "an unsubscribed run must stream nothing"
    );
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

#[test]
fn apply_delta_reverifies_and_bad_deltas_leave_the_session_usable() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("delta")),
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");
    let src = small_design(0xDE17A);
    let (s, _, _) = opened(client.open_source(&src, "edited").expect("opens"));

    // A whole-source delta with identical text warm-replays.
    match client
        .apply(&s, DeltaSpec::Source(src.clone()))
        .expect("applies")
    {
        Response::Applied { summary, .. } => assert!(summary.warm),
        other => panic!("expected applied, got {other:?}"),
    }

    // Broken source: a structured compile error, session intact.
    match client
        .apply(&s, DeltaSpec::Source("design BROKEN".to_owned()))
        .expect("answered")
    {
        Response::Error { kind, .. } => assert_eq!(kind, ErrorKind::Compile),
        other => panic!("expected a compile error, got {other:?}"),
    }
    assert!(matches!(
        client.run(&s).expect("still runs"),
        Response::Ran { .. }
    ));

    // A case-set delta replaces the cases and re-verifies.
    match client
        .apply(&s, DeltaSpec::Cases(vec![vec![]]))
        .expect("applies")
    {
        Response::Applied { .. } => {}
        other => panic!("expected applied, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

#[test]
fn verilog_frontend_is_served_and_bad_rtl_is_a_compile_error() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("verilog")),
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");

    let src = "\
// scald: period 50.0
module counter(input wire clk, input wire rst, output reg [3:0] q);
  // scald: input clk .P0-4(0,0)
  // scald: input rst .S0-8
  always_ff @(posedge clk or posedge rst) begin
    if (rst) q <= 4'd0;
    else q <= q + 4'd1;
  end
endmodule
";
    let (s, _, _) = opened(client.open_verilog(src, "rtl").expect("opens"));
    assert!(matches!(
        client.run(&s).expect("runs"),
        Response::Ran { .. }
    ));
    let report = report_text(client.report(&s, false).expect("reports"));
    assert!(
        report.contains("TOP/reg_sr#1"),
        "report names the lowered RTL primitives: {report}"
    );

    // A torn module is a structured compile error carrying the span,
    // and the connection keeps working.
    match client
        .open_verilog("module torn(input wire clk);\n", "broken")
        .expect("answered")
    {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::Compile);
            assert!(message.contains("endmodule"), "spanned message: {message}");
        }
        other => panic!("expected a compile error, got {other:?}"),
    }
    client.close(&s).expect("closes");
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

/// `Request`/`Response` stay in sync with the daemon over the wire for
/// the `stats` command's full shape.
#[test]
fn stats_reflect_live_connections() {
    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("stats")),
        jobs: 3,
        ..ServeOptions::default()
    });
    let mut client = Client::connect_unix(&path).expect("connects");
    assert_eq!(client.hello().jobs, 3);
    let Response::Stats { stats, .. } = client.stats().expect("stats") else {
        panic!("expected stats");
    };
    assert_eq!(stats.jobs_total, 3);
    assert_eq!(stats.connections, 1);
    assert!(!stats.shutting_down);
    assert!(stats.designs.is_empty());

    // Ids are echoed verbatim, even large ones.
    match client
        .request(&Request::Stats { id: u64::MAX })
        .expect("stats")
    {
        Response::Stats { id, .. } => assert_eq!(id, u64::MAX),
        other => panic!("expected stats, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}

/// The sweep satellite's acceptance test: a `sweep` delta applied over
/// the wire must produce a stripped report byte-identical to expanding
/// the same spec client-side and handing the case list to an
/// in-process session — proving the daemon's server-side expansion
/// goes through the same `CaseSet` builders and the same engine.
#[test]
fn sweep_delta_is_byte_identical_to_the_expanded_case_list() {
    use scald_incr::{Delta, DesignInput, Session};
    use scald_serve::SweepSpec;
    use scald_verifier::DelayCorner;

    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("sweep")),
        ..ServeOptions::default()
    });
    let src = small_design(0x51EEB);
    // The generated HDL references a seed-dependent subset of the CTL
    // control signals; sweep over the first two that actually exist.
    let mut ctls: Vec<&str> = src
        .match_indices("'CTL ")
        .filter_map(|(i, _)| src[i + 1..].split(" .").next())
        .collect();
    ctls.sort();
    ctls.dedup();
    assert!(ctls.len() >= 2, "design must have control signals to sweep");
    let spec = SweepSpec::Product(vec![
        SweepSpec::Exhaustive(ctls.iter().take(2).map(|s| (*s).to_owned()).collect()),
        SweepSpec::Corners(vec![DelayCorner::Worst, DelayCorner::Min]),
    ]);

    let mut client = Client::connect_unix(&path).expect("connects");
    let (s, _, _) = opened(client.open_source(&src, "swept").expect("opens"));
    // The sweep rides the `run` request (protocol v1 additive field);
    // the equivalent `apply-delta` spelling shares the same path.
    match client.run_sweep(&s, spec.clone()).expect("runs") {
        Response::Ran { summary, .. } => {
            assert!(summary.warm, "sweep re-verifies the settled session");
        }
        other => panic!("expected a ran response, got {other:?}"),
    }
    let swept = report_text(client.report(&s, false).expect("reports"));
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");

    // Same source, same label, sweep expanded caller-side instead.
    let mut session = Session::open(DesignInput::source(&src), "swept").expect("opens");
    session
        .apply(Delta::Cases(spec.to_case_set().into_cases()))
        .expect("applies");
    let local = session
        .report()
        .strip_effort()
        .json_value()
        .to_string_pretty();
    assert_eq!(swept, local, "daemon sweep and in-process cases diverge");
}

/// The run reply's additive `sweep` effort block must report exactly
/// the amortization counters the in-process engine produced for the
/// same sweep: prefix-settle effort from `PrefixStats` and per-leaf
/// checker/storage memoization from `MemoStats`, so wire clients can
/// observe the hit rate without access to `RunOutcome`.
#[test]
fn run_reply_sweep_block_matches_the_in_process_outcome() {
    use scald_incr::{Delta, DesignInput, Session};
    use scald_serve::SweepSpec;

    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("sweepfx")),
        ..ServeOptions::default()
    });
    let src = small_design(0x5EFF);
    let mut ctls: Vec<&str> = src
        .match_indices("'CTL ")
        .filter_map(|(i, _)| src[i + 1..].split(" .").next())
        .collect();
    ctls.sort();
    ctls.dedup();
    assert!(ctls.len() >= 3, "design must have control signals to sweep");
    let spec = SweepSpec::Exhaustive(ctls.iter().take(3).map(|s| (*s).to_owned()).collect());

    let mut client = Client::connect_unix(&path).expect("connects");
    let (s, _, _) = opened(client.open_source(&src, "sweepfx").expect("opens"));
    let wire = match client.run_sweep(&s, spec.clone()).expect("runs") {
        Response::Ran { summary, .. } => summary
            .sweep
            .expect("an 8-case exhaustive sweep shares prefixes, so the block is present"),
        other => panic!("expected a ran response, got {other:?}"),
    };
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");

    // Same design, same sweep, run in-process: the wire block must be
    // a verbatim copy of the outcome's counters.
    let mut session = Session::open(DesignInput::source(&src), "sweepfx").expect("opens");
    let outcome = session
        .apply(Delta::Cases(spec.to_case_set().into_cases()))
        .expect("applies");
    assert_eq!(wire.prefix_nodes, outcome.stats.prefix.nodes as u64);
    assert_eq!(wire.prefix_evaluations, outcome.stats.prefix.evaluations);
    assert_eq!(wire.leaf_check_evals, outcome.stats.memo.leaf_check_evals);
    assert_eq!(wire.leaf_check_hits, outcome.stats.memo.leaf_check_hits);
    assert_eq!(
        wire.leaf_storage_evals,
        outcome.stats.memo.leaf_storage_evals
    );
    assert_eq!(wire.leaf_storage_hits, outcome.stats.memo.leaf_storage_hits);
    assert!(
        wire.leaf_check_hits > wire.leaf_check_evals,
        "most per-leaf checker work should be inherited, got {} hits / {} evals",
        wire.leaf_check_hits,
        wire.leaf_check_evals
    );
}

/// A short untrusted frame must not be able to make the shared daemon
/// materialize an astronomically large case list: a product of three
/// individually-legal 20-signal exhaustive axes (2^60 cases) dies at
/// parse time, an over-budget-but-legal sweep dies at the daemon's
/// `max_sweep_cases` check, and the session survives both rejections.
#[test]
fn oversized_sweeps_are_rejected_without_expansion() {
    use scald_serve::SweepSpec;

    let (path, daemon) = start_daemon(ServeOptions {
        socket: Some(socket_path("sweepcap")),
        // A deliberately tiny daemon budget so the test sweep is cheap.
        max_sweep_cases: 4,
        ..ServeOptions::default()
    });
    let src = small_design(0xCA9);

    let mut client = Client::connect_unix(&path).expect("connects");
    let (s, _, _) = opened(client.open_source(&src, "capped").expect("opens"));

    // 2^60-case product sweep: every axis passes the per-axis width
    // guard, so only the multiplicative total guard stands between this
    // ~700-byte line and an OOM.
    let axis = |base: usize| {
        let names: Vec<String> = (0..20).map(|i| format!("\"S{base}_{i}\"")).collect();
        format!(r#"{{"kind":"exhaustive","signals":[{}]}}"#, names.join(","))
    };
    let line = format!(
        r#"{{"id":90,"cmd":"run","session":"{s}","cases":{{"kind":"product","axes":[{},{},{}]}}}}"#,
        axis(0),
        axis(1),
        axis(2)
    );
    match client.request_raw(&line).expect("answers") {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::Parse, "{message}");
            assert!(message.contains("over the protocol limit"), "{message}");
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    // 8 cases is fine by the protocol but over this daemon's budget of
    // 4: rejected before expansion, session untouched.
    let spec = SweepSpec::Exhaustive(vec!["A".into(), "B".into(), "C".into()]);
    match client.run_sweep(&s, spec).expect("answers") {
        Response::Error { kind, message, .. } => {
            assert_eq!(kind, ErrorKind::Delta, "{message}");
            assert!(message.contains("daemon's budget of 4"), "{message}");
        }
        other => panic!("expected an error response, got {other:?}"),
    }

    // Both rejections left the session usable.
    match client.run(&s).expect("runs") {
        Response::Ran { .. } => {}
        other => panic!("expected a ran response, got {other:?}"),
    }
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}
