//! Property: for any design, the daemon's default `report` document is
//! byte-identical to what a direct, single-shot `Verifier::run` of the
//! same source produces (effort-stripped) — serving is a pure transport,
//! never a semantic layer.

use scald_gen::s1::{s1_like_hdl, S1Options};
use scald_serve::{serve, Client, Response, ServeOptions};
use scald_verifier::{Case, CaseSet, RunOptions, VerifierBuilder};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::thread;
use std::time::Duration;

fn socket_path() -> PathBuf {
    let path = std::env::temp_dir().join(format!("scald-serve-props-{}.sock", std::process::id()));
    let _ = std::fs::remove_file(&path);
    path
}

/// The single-shot reference: compile and verify exactly as `scald-tv`
/// would, then strip effort counters.
fn direct_report(src: &str, label: &str) -> String {
    let expansion = scald_hdl::compile(src).expect("design compiles");
    let cases: Vec<Case> = if expansion.cases.is_empty() {
        vec![Case::new()]
    } else {
        expansion
            .cases
            .iter()
            .map(|assigns| {
                assigns
                    .iter()
                    .fold(Case::new(), |c, (s, v)| c.assign(s.clone(), *v))
            })
            .collect()
    };
    let mut verifier = VerifierBuilder::new(expansion.netlist).build();
    let results = verifier
        .run(&RunOptions::new().cases(CaseSet::list(cases)))
        .expect("design verifies")
        .cases;
    verifier.report(label, &results).strip_effort().to_json()
}

#[test]
fn daemon_reports_are_byte_identical_to_direct_runs() {
    let path = socket_path();
    let daemon = {
        let opts = ServeOptions {
            socket: Some(path.clone()),
            ..ServeOptions::default()
        };
        thread::spawn(move || serve(&opts).expect("daemon runs"))
    };
    for _ in 0..400 {
        if UnixStream::connect(&path).is_ok() {
            break;
        }
        thread::sleep(Duration::from_millis(5));
    }

    let mut client = Client::connect_unix(&path).expect("connects");
    for i in 0..50u64 {
        let src = s1_like_hdl(S1Options {
            chips: 3 + (i % 7) as usize * 2,
            seed: 0x9e3779b9 ^ i,
        });
        let label = format!("prop-{i}");

        let session = match client.open_source(&src, &label).expect("opens") {
            Response::Opened { session, .. } => session,
            other => panic!("design {i}: expected opened, got {other:?}"),
        };
        // `run` must not change the document either.
        assert!(matches!(
            client.run(&session).expect("runs"),
            Response::Ran { .. }
        ));
        let served = match client.report(&session, false).expect("reports") {
            Response::Report { report, .. } => report.to_string_pretty(),
            other => panic!("design {i}: expected report, got {other:?}"),
        };
        client.close(&session).expect("closes");

        assert_eq!(
            served,
            direct_report(&src, &label),
            "design {i} (seed {:#x}): served report diverged from the direct run",
            0x9e3779b9u64 ^ i,
        );
    }
    client.shutdown().expect("shutdown");
    drop(client);
    daemon.join().expect("daemon drains");
}
