//! Probability-based timing analysis (§1.4.1.2 and §4.2.4 of McWilliams
//! 1980): the DIGSIM-style alternative to min/max analysis, sketched in
//! the thesis as future work and implemented here as an extension.
//!
//! Instead of a `[min, max]` pair, every delay is a normal distribution.
//! Delays in series add (means and variances sum); converging paths take
//! the distribution of the *maximum*, computed with Clark's classic
//! moment-matching approximation, including a correlation coefficient —
//! the thesis' §4.2.3 point that delays from one production run are
//! correlated and ignoring that skews the prediction.
//!
//! A probabilistic counterpart of the worst-case path search propagates
//! arrival distributions through the same netlists and reports, per
//! endpoint, the probability that the constraint is violated — showing
//! the §1.4.1.2 observation that "a real design usually could be made to
//! run faster than [the min/max] system will predict".
//!
//! ```
//! use scald_stats::DelayDist;
//! use scald_wave::DelayRange;
//!
//! // Interpret a 1.5/4.5 ns data-sheet range as mean 3, sigma 0.5 (3-sigma).
//! let d = DelayDist::from_range(DelayRange::from_ns(1.5, 4.5));
//! assert!((d.mean - 3.0).abs() < 1e-9);
//! assert!((d.sigma - 0.5).abs() < 1e-9);
//! // Two in series.
//! let path = d.then(d);
//! assert!((path.mean - 6.0).abs() < 1e-9);
//! ```

#![warn(missing_docs)]

use scald_netlist::{Netlist, PrimKind, SignalId};
use scald_wave::DelayRange;
use std::collections::VecDeque;
use std::f64::consts::{PI, SQRT_2};
use std::fmt;

/// Standard normal probability density function.
#[must_use]
pub fn phi(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Error function, via the Abramowitz & Stegun 7.1.26 rational
/// approximation (|error| < 1.5e-7).
#[must_use]
pub fn erf(x: f64) -> f64 {
    let sign = if x < 0.0 { -1.0 } else { 1.0 };
    let x = x.abs();
    let t = 1.0 / (1.0 + 0.3275911 * x);
    let y = 1.0
        - (((((1.061405429 * t - 1.453152027) * t) + 1.421413741) * t - 0.284496736) * t
            + 0.254829592)
            * t
            * (-x * x).exp();
    sign * y
}

/// Standard normal cumulative distribution function.
#[must_use]
pub fn norm_cdf(x: f64) -> f64 {
    0.5 * (1.0 + erf(x / SQRT_2))
}

/// A delay modelled as a normal distribution (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayDist {
    /// Mean delay in ns.
    pub mean: f64,
    /// Standard deviation in ns.
    pub sigma: f64,
}

impl DelayDist {
    /// A deterministic (zero-variance) delay.
    #[must_use]
    pub fn exact(mean: f64) -> DelayDist {
        DelayDist { mean, sigma: 0.0 }
    }

    /// Interprets a data-sheet `[min, max]` range as a normal distribution
    /// with the range covering ±3σ — the conventional conversion when
    /// manufacturers only publish worst-case numbers (§1.4.1.2 discusses
    /// why distribution data is hard to obtain directly).
    #[must_use]
    pub fn from_range(range: DelayRange) -> DelayDist {
        let min = range.min.as_ns();
        let max = range.max.as_ns();
        DelayDist {
            mean: 0.5 * (min + max),
            sigma: (max - min) / 6.0,
        }
    }

    /// Variance in ns².
    #[must_use]
    pub fn var(self) -> f64 {
        self.sigma * self.sigma
    }

    /// Series composition: delays add, so means and variances add.
    #[must_use]
    pub fn then(self, other: DelayDist) -> DelayDist {
        DelayDist {
            mean: self.mean + other.mean,
            sigma: (self.var() + other.var()).sqrt(),
        }
    }

    /// Clark's approximation to the distribution of `max(self, other)`
    /// for jointly normal delays with correlation `rho` (§4.2.3).
    ///
    /// The result is moment-matched to a normal, as DIGSIM assumes
    /// (§1.4.1.2).
    #[must_use]
    pub fn max(self, other: DelayDist, rho: f64) -> DelayDist {
        let (m1, m2) = (self.mean, other.mean);
        let (v1, v2) = (self.var(), other.var());
        let a2 = v1 + v2 - 2.0 * rho * self.sigma * other.sigma;
        if a2 <= 1e-18 {
            // Effectively the same random variable: the max is the larger
            // mean.
            return if m1 >= m2 { self } else { other };
        }
        let a = a2.sqrt();
        let alpha = (m1 - m2) / a;
        let c1 = norm_cdf(alpha);
        let c2 = norm_cdf(-alpha);
        let p = phi(alpha);
        let mean = m1 * c1 + m2 * c2 + a * p;
        let second = (m1 * m1 + v1) * c1 + (m2 * m2 + v2) * c2 + (m1 + m2) * a * p;
        let var = (second - mean * mean).max(0.0);
        DelayDist {
            mean,
            sigma: var.sqrt(),
        }
    }

    /// The quantile `mean + z * sigma`, e.g. `z = 3.0` for a 99.87%
    /// arrival bound.
    #[must_use]
    pub fn quantile(self, z: f64) -> f64 {
        self.mean + z * self.sigma
    }

    /// Probability that this delay exceeds `deadline` ns.
    #[must_use]
    pub fn prob_exceeds(self, deadline: f64) -> f64 {
        if self.sigma <= 1e-12 {
            return if self.mean > deadline { 1.0 } else { 0.0 };
        }
        1.0 - norm_cdf((deadline - self.mean) / self.sigma)
    }
}

impl fmt::Display for DelayDist {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N({:.3}, {:.3}²) ns", self.mean, self.sigma)
    }
}

/// Per-endpoint result of the probabilistic path analysis.
#[derive(Debug, Clone, PartialEq)]
pub struct ProbReport {
    /// Endpoint signal name.
    pub endpoint: String,
    /// The constraining checker/storage primitive.
    pub constraint_source: String,
    /// Arrival-time distribution at the endpoint.
    pub arrival: DelayDist,
    /// The min/max worst-case arrival, for comparison.
    pub worst_case_ns: f64,
    /// The latest acceptable arrival (period minus the endpoint's
    /// set-up requirement), against which the violation probability and
    /// slack distribution are measured.
    pub deadline_ns: f64,
    /// Probability the set-up constraint is violated.
    pub violation_probability: f64,
}

impl ProbReport {
    /// The slack as a distribution: `deadline - arrival`, so a negative
    /// mean is a probable violation and `sigma` carries the arrival
    /// uncertainty through unchanged.
    #[must_use]
    pub fn slack(&self) -> DelayDist {
        DelayDist {
            mean: self.deadline_ns - self.arrival.mean,
            sigma: self.arrival.sigma,
        }
    }
}

/// Probabilistic counterpart of the worst-case path search: propagates
/// normal arrival distributions through the combinational graph, using
/// Clark's max with correlation `rho` at reconvergence.
#[derive(Debug)]
pub struct ProbPathAnalysis {
    arrivals: Vec<Option<DelayDist>>,
    reports: Vec<ProbReport>,
}

impl ProbPathAnalysis {
    /// Analyzes `netlist` with inter-path correlation `rho` in `[0, 1]`
    /// (0 = independent components, 1 = same production run, §4.2.3).
    #[must_use]
    pub fn analyze(netlist: &Netlist, rho: f64) -> ProbPathAnalysis {
        let n = netlist.signals().len();
        let period = netlist.config().timing.period.as_ns();
        let mut arrivals: Vec<Option<DelayDist>> = vec![None; n];
        let mut worst: Vec<Option<f64>> = vec![None; n];

        let is_comb = |kind: PrimKind| {
            matches!(
                kind,
                PrimKind::And
                    | PrimKind::Or
                    | PrimKind::Nand
                    | PrimKind::Nor
                    | PrimKind::Xor
                    | PrimKind::Xnor
                    | PrimKind::Not
                    | PrimKind::Buf
                    | PrimKind::Chg
                    | PrimKind::Delay
                    | PrimKind::Mux { .. }
            )
        };

        for (sid, _) in netlist.iter_signals() {
            match netlist.driver(sid) {
                None => {
                    arrivals[sid.index()] = Some(DelayDist::exact(0.0));
                    worst[sid.index()] = Some(0.0);
                }
                Some(pid) => {
                    let p = netlist.prim(pid);
                    if p.kind.is_storage() {
                        arrivals[sid.index()] = Some(DelayDist::from_range(p.delay));
                        worst[sid.index()] = Some(p.delay.max.as_ns());
                    } else if matches!(p.kind, PrimKind::Const(_)) {
                        arrivals[sid.index()] = Some(DelayDist::exact(0.0));
                        worst[sid.index()] = Some(0.0);
                    }
                }
            }
        }

        // Topological propagation (identical structure to scald-paths).
        let mut indegree: Vec<usize> = vec![0; netlist.prims().len()];
        for (pid, p) in netlist.iter_prims() {
            if is_comb(p.kind) {
                indegree[pid.index()] = p
                    .inputs
                    .iter()
                    .filter(|c| {
                        netlist
                            .driver(c.signal)
                            .is_some_and(|d| is_comb(netlist.prim(d).kind))
                    })
                    .count();
            }
        }
        let mut ready: VecDeque<_> = netlist
            .iter_prims()
            .filter(|(pid, p)| is_comb(p.kind) && indegree[pid.index()] == 0)
            .map(|(pid, _)| pid)
            .collect();
        let mut processed = vec![false; netlist.prims().len()];
        while let Some(pid) = ready.pop_front() {
            if processed[pid.index()] {
                continue;
            }
            processed[pid.index()] = true;
            let p = netlist.prim(pid);
            let out = p.output.expect("combinational prims drive outputs");
            let mut acc: Option<DelayDist> = None;
            let mut acc_worst: Option<f64> = None;
            for c in &p.inputs {
                let Some(a) = arrivals[c.signal.index()] else {
                    continue;
                };
                let total = netlist.wire_delay(c).then(p.delay);
                let cand = a.then(DelayDist::from_range(total));
                acc = Some(match acc {
                    None => cand,
                    Some(prev) => prev.max(cand, rho),
                });
                if let Some(w) = worst[c.signal.index()] {
                    let cw = w + total.max.as_ns();
                    acc_worst = Some(acc_worst.map_or(cw, |p: f64| p.max(cw)));
                }
            }
            if let Some(a) = acc {
                arrivals[out.index()] = Some(a);
                worst[out.index()] = acc_worst;
            }
            for &next in netlist.fanout(out) {
                if is_comb(netlist.prim(next).kind) && !processed[next.index()] {
                    let deg = &mut indegree[next.index()];
                    *deg = deg.saturating_sub(1);
                    if *deg == 0 {
                        ready.push_back(next);
                    }
                }
            }
        }

        let mut reports = Vec::new();
        for (_, p) in netlist.iter_prims() {
            let (conn, setup) = match p.kind {
                PrimKind::SetupHold { setup, .. } | PrimKind::SetupRiseHoldFall { setup, .. } => {
                    (&p.inputs[0], setup.as_ns())
                }
                PrimKind::Reg { .. } | PrimKind::Latch { .. } => (&p.inputs[1], 0.0),
                _ => continue,
            };
            let sid = conn.signal;
            let (Some(arrival), Some(w)) = (arrivals[sid.index()], worst[sid.index()]) else {
                continue;
            };
            let deadline = period - setup;
            reports.push(ProbReport {
                endpoint: netlist.signal(sid).name.clone(),
                constraint_source: p.name.clone(),
                arrival,
                worst_case_ns: w,
                deadline_ns: deadline,
                violation_probability: arrival.prob_exceeds(deadline),
            });
        }
        ProbPathAnalysis { arrivals, reports }
    }

    /// Arrival distribution of a signal, if reachable.
    #[must_use]
    pub fn arrival(&self, sid: SignalId) -> Option<DelayDist> {
        self.arrivals[sid.index()]
    }

    /// All endpoint reports.
    #[must_use]
    pub fn reports(&self) -> &[ProbReport] {
        &self.reports
    }

    /// Endpoints whose violation probability exceeds `threshold`.
    #[must_use]
    pub fn violations(&self, threshold: f64) -> Vec<&ProbReport> {
        self.reports
            .iter()
            .filter(|r| r.violation_probability > threshold)
            .collect()
    }

    /// Verifies every endpoint at a confidence level — §4.2.4's "checked
    /// to see that all of the paths in it are within their required limits
    /// with a specified level of probability".
    ///
    /// `confidence` is the required probability of meeting timing, e.g.
    /// `0.9987` for a 3σ design. Returns the endpoints that fail.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not within `(0, 1)`.
    #[must_use]
    pub fn verify_at_confidence(&self, confidence: f64) -> Vec<&ProbReport> {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence must be in (0, 1), got {confidence}"
        );
        self.violations(1.0 - confidence)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_netlist::{Config, Conn, NetlistBuilder};
    use scald_rng::Rng;

    #[test]
    fn erf_matches_known_values() {
        assert!((erf(0.0)).abs() < 1e-7);
        assert!((erf(1.0) - 0.842_700_79).abs() < 1e-6);
        assert!((erf(-1.0) + 0.842_700_79).abs() < 1e-6);
        assert!((erf(2.0) - 0.995_322_27).abs() < 1e-6);
        assert!((norm_cdf(0.0) - 0.5).abs() < 1e-9);
        assert!((norm_cdf(1.96) - 0.975).abs() < 1e-3);
    }

    #[test]
    fn series_composition() {
        let a = DelayDist {
            mean: 3.0,
            sigma: 0.4,
        };
        let b = DelayDist {
            mean: 2.0,
            sigma: 0.3,
        };
        let c = a.then(b);
        assert!((c.mean - 5.0).abs() < 1e-12);
        assert!((c.var() - 0.25).abs() < 1e-12);
    }

    /// Clark's max vs Monte Carlo with a Box-Muller sampler.
    #[test]
    fn clark_max_matches_monte_carlo() {
        let a = DelayDist {
            mean: 10.0,
            sigma: 1.0,
        };
        let b = DelayDist {
            mean: 10.5,
            sigma: 2.0,
        };
        let clark = a.max(b, 0.0);
        let mut rng = Rng::seed_from_u64(42);
        let mut normal = move || {
            let u1: f64 = rng.range_f64(1e-12, 1.0);
            let u2: f64 = rng.range_f64(0.0, 1.0);
            (-2.0 * u1.ln()).sqrt() * (2.0 * PI * u2).cos()
        };
        let n = 200_000;
        let mut sum = 0.0;
        let mut sum2 = 0.0;
        for _ in 0..n {
            let x = a.mean + a.sigma * normal();
            let y = b.mean + b.sigma * normal();
            let m = x.max(y);
            sum += m;
            sum2 += m * m;
        }
        let mc_mean = sum / f64::from(n);
        let mc_var = sum2 / f64::from(n) - mc_mean * mc_mean;
        assert!(
            (clark.mean - mc_mean).abs() < 0.02,
            "clark {} vs mc {}",
            clark.mean,
            mc_mean
        );
        assert!(
            (clark.var() - mc_var).abs() < 0.1,
            "clark var {} vs mc var {}",
            clark.var(),
            mc_var
        );
    }

    #[test]
    fn perfectly_correlated_max_degenerates() {
        let a = DelayDist {
            mean: 10.0,
            sigma: 1.0,
        };
        let b = DelayDist {
            mean: 12.0,
            sigma: 1.0,
        };
        // Same sigma, rho = 1: the max is simply the larger-mean branch.
        let m = a.max(b, 1.0);
        assert!((m.mean - 12.0).abs() < 1e-9);
    }

    #[test]
    fn prob_exceeds_monotone() {
        let d = DelayDist {
            mean: 10.0,
            sigma: 1.0,
        };
        assert!(d.prob_exceeds(8.0) > 0.97);
        assert!((d.prob_exceeds(10.0) - 0.5).abs() < 1e-6);
        assert!(d.prob_exceeds(13.0) < 0.01);
        let exact = DelayDist::exact(5.0);
        assert_eq!(exact.prob_exceeds(4.0), 1.0);
        assert_eq!(exact.prob_exceeds(6.0), 0.0);
    }

    /// The §1.4.1.2 claim: a chain of components rarely has every stage at
    /// its maximum, so the 3-sigma probabilistic bound is tighter than the
    /// min/max worst case.
    #[test]
    fn probabilistic_bound_tighter_than_worst_case_on_chain() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let mut cur = b.signal("Q0").unwrap();
        b.reg(
            "R0",
            DelayRange::from_ns(1.5, 4.5),
            Conn::new(clk).with_wire_delay(DelayRange::ZERO),
            Conn::new(d).with_wire_delay(DelayRange::ZERO),
            cur,
        );
        for i in 0..8 {
            let next = b.signal(&format!("N{i}")).unwrap();
            b.buf(
                format!("B{i}"),
                DelayRange::from_ns(1.0, 4.0),
                Conn::new(cur).with_wire_delay(DelayRange::ZERO),
                next,
            );
            cur = next;
        }
        b.setup_hold(
            "END CHK",
            scald_wave::Time::from_ns(2.5),
            scald_wave::Time::from_ns(0.0),
            Conn::new(cur).with_wire_delay(DelayRange::ZERO),
            Conn::new(clk).with_wire_delay(DelayRange::ZERO),
        );
        let n = b.finish().unwrap();
        let an = ProbPathAnalysis::analyze(&n, 0.0);
        let r = an
            .reports()
            .iter()
            .find(|r| r.constraint_source == "END CHK")
            .unwrap();
        // Worst case: 4.5 + 8*4 = 36.5 ns. 3-sigma bound must be tighter.
        assert!((r.worst_case_ns - 36.5).abs() < 1e-9);
        assert!(
            r.arrival.quantile(3.0) < r.worst_case_ns,
            "3-sigma {} !< worst {}",
            r.arrival.quantile(3.0),
            r.worst_case_ns
        );
        // And the deadline (50 - 2.5) is comfortably met.
        assert!(r.violation_probability < 1e-6);
    }

    #[test]
    fn confidence_level_verification() {
        // A path that misses the deadline on average: tighten the period
        // by using a huge setup so the deadline sits below the mean.
        let mut b = NetlistBuilder::new(Config::s1_example());
        let clk = b.signal("CK .P0-1").unwrap();
        let d = b.signal("D").unwrap();
        let q = b.signal("Q").unwrap();
        let m = b.signal("M").unwrap();
        let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
        b.reg("R", DelayRange::from_ns(1.5, 4.5), z(clk), z(d), q);
        b.buf("SLOW", DelayRange::from_ns(30.0, 46.0), z(q), m);
        b.setup_hold(
            "CHK",
            scald_wave::Time::from_ns(10.0),
            scald_wave::Time::from_ns(0.0),
            z(m),
            z(clk),
        );
        let n = b.finish().unwrap();
        let an = ProbPathAnalysis::analyze(&n, 0.0);
        // Deadline 40 ns; mean arrival = 3 + 38 = 41 ns: fails at any
        // reasonable confidence.
        let failures = an.verify_at_confidence(0.9987);
        assert_eq!(failures.len(), 1);
        assert!(failures[0].violation_probability > 0.5);
        // A lax 20% confidence bar passes it.
        assert!(an.verify_at_confidence(0.2).is_empty());
    }

    #[test]
    #[should_panic(expected = "confidence must be in (0, 1)")]
    fn confidence_bounds_checked() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let q = b.signal("Q").unwrap();
        b.buf("B", DelayRange::from_ns(1.0, 2.0), Conn::new(a), q);
        let an = ProbPathAnalysis::analyze(&b.finish().unwrap(), 0.0);
        let _ = an.verify_at_confidence(1.0);
    }

    /// With full correlation the reconvergent max degenerates; ignoring
    /// correlation overstates the mean (§4.2.4's warning).
    #[test]
    fn correlation_changes_the_answer() {
        let mut b = NetlistBuilder::new(Config::s1_example());
        let a = b.signal("A").unwrap();
        let x = b.signal("X").unwrap();
        let y = b.signal("Y").unwrap();
        let q = b.signal("Q").unwrap();
        let z = |s| Conn::new(s).with_wire_delay(DelayRange::ZERO);
        b.buf("B1", DelayRange::from_ns(5.0, 11.0), z(a), x);
        b.buf("B2", DelayRange::from_ns(5.0, 11.0), z(a), y);
        b.and2("J", DelayRange::ZERO, z(x), z(y), q);
        let n = b.finish().unwrap();
        let independent = ProbPathAnalysis::analyze(&n, 0.0);
        let correlated = ProbPathAnalysis::analyze(&n, 1.0);
        let qi = independent.arrival(q).unwrap();
        let qc = correlated.arrival(q).unwrap();
        assert!(qi.mean > qc.mean);
    }
}
