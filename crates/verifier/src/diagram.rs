//! ASCII timing diagrams: a visual rendering of the Fig 3-10 summary
//! listing.
//!
//! Each signal becomes one row of one character per time bucket:
//!
//! ```text
//! time        0    6.25  12.5  18.75  25    31.25 37.5  43.75   ns
//! CK .P2-3    ______________/~~~~~\______________________________
//! W DATA      =============================================xxxxxx
//! ```
//!
//! | char | value |
//! |---|---|
//! | `_` | `0` |
//! | `~` | `1` |
//! | `=` | `S` (stable, level unknown) |
//! | `x` | `C` (may be changing) |
//! | `/` | `R` (rising) |
//! | `\` | `F` (falling) |
//! | `?` | `U` (undefined) |

use scald_logic::Value;
use scald_wave::{Time, Waveform};
use std::fmt::Write;

/// One character per bucket for a value.
fn glyph(v: Value) -> char {
    match v {
        Value::Zero => '_',
        Value::One => '~',
        Value::Stable => '=',
        Value::Change => 'x',
        Value::Rise => '/',
        Value::Fall => '\\',
        Value::Unknown => '?',
    }
}

/// Renders labelled waveforms as an ASCII timing diagram with `columns`
/// buckets across one period. All waveforms must share a period.
///
/// # Panics
///
/// Panics if `columns` is zero or the waveforms' periods differ.
#[must_use]
pub fn render_diagram(signals: &[(String, Waveform)], columns: usize) -> String {
    assert!(columns > 0, "diagram needs at least one column");
    let Some(period) = signals.first().map(|(_, w)| w.period()) else {
        return String::new();
    };
    assert!(
        signals.iter().all(|(_, w)| w.period() == period),
        "all diagram waveforms must share one period"
    );
    let label_width = signals
        .iter()
        .map(|(n, _)| n.len())
        .max()
        .unwrap_or(0)
        .max(4);

    let mut out = String::new();
    // Time scale header: a mark roughly every eight columns.
    let _ = write!(out, "{:<label_width$}  ", "time");
    let mut col = 0;
    while col < columns {
        let t = Time::from_ps(period.as_ps() * col as i64 / columns as i64);
        let mark = t.to_string();
        let _ = write!(out, "{mark:<8}");
        col += 8;
    }
    out.push_str("ns\n");

    for (name, wave) in signals {
        let _ = write!(out, "{name:<label_width$}  ");
        for c in 0..columns {
            // Sample the bucket's midpoint.
            let t = Time::from_ps(period.as_ps() * (2 * c as i64 + 1) / (2 * columns as i64));
            out.push(glyph(wave.value_at(t)));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use scald_logic::Value::*;

    #[test]
    fn clock_renders_as_pulse() {
        let period = Time::from_ns(50.0);
        let clk = Waveform::from_intervals(
            period,
            Zero,
            [(Time::from_ns(10.0), Time::from_ns(20.0), One)],
        );
        let out = render_diagram(&[("CK".to_owned(), clk)], 10);
        let row = out.lines().nth(1).expect("signal row");
        assert_eq!(row, "CK    __~~______");
    }

    #[test]
    fn all_values_have_distinct_glyphs() {
        let period = Time::from_ns(70.0);
        let w = Waveform::from_segments(
            period,
            [
                (Zero, Time::from_ns(10.0)),
                (One, Time::from_ns(10.0)),
                (Stable, Time::from_ns(10.0)),
                (Change, Time::from_ns(10.0)),
                (Rise, Time::from_ns(10.0)),
                (Fall, Time::from_ns(10.0)),
                (Unknown, Time::from_ns(10.0)),
            ],
        )
        .expect("segments valid");
        let out = render_diagram(&[("W".to_owned(), w)], 7);
        let row = out.lines().nth(1).expect("signal row");
        assert_eq!(row, "W     _~=x/\\?");
    }

    #[test]
    fn header_carries_time_marks() {
        let period = Time::from_ns(50.0);
        let w = Waveform::constant(period, Stable);
        let out = render_diagram(&[("SIG".to_owned(), w)], 16);
        let header = out.lines().next().expect("header");
        assert!(header.starts_with("time"));
        assert!(header.contains("0.0"));
        assert!(header.contains("25.0"));
        assert!(header.trim_end().ends_with("ns"));
    }

    #[test]
    fn empty_input_renders_empty() {
        assert_eq!(render_diagram(&[], 10), "");
    }

    #[test]
    #[should_panic(expected = "share one period")]
    fn mismatched_periods_rejected() {
        let a = Waveform::constant(Time::from_ns(50.0), Stable);
        let b = Waveform::constant(Time::from_ns(25.0), Stable);
        let _ = render_diagram(&[("A".to_owned(), a), ("B".to_owned(), b)], 10);
    }
}
