//! Primitive evaluation: computing a primitive's output state from its
//! input states (§2.9).
//!
//! Each evaluator implements the worst-case semantics of §2.4 on whole
//! waveforms. Delay handling follows §2.8: a lone varying input keeps its
//! skew separate through the gate (preserving pulse widths); when two or
//! more varying signals are combined, each is first *resolved* — its skew
//! folded into `R`/`F`/`C` windows — and the result carries no skew.
//!
//! Evaluation directives (§2.6) are honoured here: the effective directive
//! for an input is the first letter of the directive string attached to its
//! connection, or of the string riding on the incoming signal value; the
//! string's tail is passed along with the output value.

use scald_logic::{mux as mux_value, Value};
use scald_netlist::{Conn, Netlist, PrimKind, Primitive};
use scald_wave::{
    edge_windows, DelayCorner, DelayRange, Edge, Skew, Span, Time, WaveRef, Waveform,
};

use crate::state::{Directive, EvalStr, SignalState};
use crate::view::StateView;

/// The result of evaluating one primitive. `Clone` lets the evaluation
/// cache hand out stored outcomes; the clone is cheap because the states
/// inside hold interned [`WaveRef`] handles.
#[derive(Debug, Clone)]
pub(crate) struct EvalOutcome {
    /// New output state (`None` for checkers, which drive nothing).
    pub output: Option<SignalState>,
    /// Indices of inputs whose directive requests the asserted-stability
    /// check (`A`/`H`, §2.6); collected by the engine and verified after
    /// the fixed point.
    pub hazard_inputs: Vec<usize>,
}

/// An input as seen at the gate pin: inversion applied, wire (and possibly
/// gate) delay folded per its directive, and the directive bookkeeping.
struct Pin {
    state: SignalState,
    directive: Option<Directive>,
    /// The directive string's tail, to be passed downstream — `Some` only
    /// if this input carried a string at all.
    had_string: bool,
    tail: Option<EvalStr>,
}

fn prep_input<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    conn: &Conn,
    states: &S,
    include_gate_delay: bool,
    corner: DelayCorner,
) -> Pin {
    let src = states.state_at(conn.signal.index());
    let eval = conn
        .directive
        .as_ref()
        .map(|d| EvalStr::new(d.as_str()))
        .or_else(|| src.eval.clone());
    let directive = eval.as_ref().and_then(EvalStr::head);
    let tail = eval.as_ref().and_then(EvalStr::tail);
    let had_string = eval.is_some();

    let wire = if directive.is_some_and(Directive::zeroes_wire) {
        DelayRange::ZERO
    } else {
        corner.collapse(netlist.wire_delay(conn))
    };
    let gate = if include_gate_delay && !directive.is_some_and(Directive::zeroes_gate) {
        corner.collapse(prim.delay)
    } else {
        DelayRange::ZERO
    };
    let mut st = src.to_state();
    if conn.invert {
        st.wave = st.wave.map(Value::not).into();
    }
    let mut st = st.delayed(wire.then(gate));
    st.eval = None; // output eval computed separately
    Pin {
        state: st,
        directive,
        had_string,
        tail,
    }
}

/// Output eval string: the tail of the (single) input string, per §2.8.
/// If several inputs carry strings the first one wins (the thesis assumes
/// one directive path per gate).
fn output_eval(pins: &[Pin]) -> Option<EvalStr> {
    pins.iter()
        .find(|p| p.had_string)
        .and_then(|p| p.tail.clone())
}

/// Combines pin states with an n-ary fold, preserving separated skew when
/// at most one input actually varies (§2.8).
fn combine_pins(states: &[&SignalState], fold: impl Fn(&[Value]) -> Value) -> SignalState {
    let varying: Vec<&SignalState> = states
        .iter()
        .copied()
        .filter(|s| !s.wave.is_constant())
        .collect();
    if varying.len() <= 1 {
        let waves: Vec<&Waveform> = states.iter().map(|s| s.wave.as_wave()).collect();
        let wave = Waveform::combine_many(&waves, &fold);
        let skew = varying.first().map_or(Skew::ZERO, |s| s.skew);
        SignalState {
            wave: wave.into(),
            skew,
            eval: None,
        }
    } else {
        let resolved: Vec<WaveRef> = states.iter().map(|s| s.resolved()).collect();
        let refs: Vec<&Waveform> = resolved.iter().map(WaveRef::as_wave).collect();
        let wave = Waveform::combine_many(&refs, &fold);
        SignalState {
            wave: wave.into(),
            skew: Skew::ZERO,
            eval: None,
        }
    }
}

/// Evaluates `prim` against the current signal states, returning the new
/// output state and any asserted-check requests. `corner` selects how
/// every [`DelayRange`] the evaluation reads is collapsed
/// ([`DelayCorner::Worst`] keeps the full range — the default analysis).
pub(crate) fn evaluate<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    corner: DelayCorner,
) -> EvalOutcome {
    let period = netlist.config().timing.period;
    match prim.kind {
        PrimKind::And
        | PrimKind::Or
        | PrimKind::Nand
        | PrimKind::Nor
        | PrimKind::Xor
        | PrimKind::Xnor
        | PrimKind::Chg => eval_gate(netlist, prim, states, corner),
        PrimKind::Not | PrimKind::Buf | PrimKind::Delay => {
            eval_unary(netlist, prim, states, corner)
        }
        PrimKind::Mux { .. } => eval_mux(netlist, prim, states, corner),
        PrimKind::Reg { set_reset } => eval_reg(netlist, prim, states, set_reset, corner),
        PrimKind::Latch { set_reset } => eval_latch(netlist, prim, states, set_reset, corner),
        PrimKind::Const(v) => EvalOutcome {
            output: Some(SignalState::new(Waveform::constant(period, v))),
            hazard_inputs: Vec::new(),
        },
        // Checkers compute nothing during the fixed point; they are
        // examined afterwards (§2.9). Their hazard semantics are fixed, so
        // no directive scan is needed either.
        PrimKind::SetupHold { .. }
        | PrimKind::SetupRiseHoldFall { .. }
        | PrimKind::MinPulseWidth { .. } => EvalOutcome {
            output: None,
            hazard_inputs: Vec::new(),
        },
    }
}

/// The identity element substituted for "the other inputs" of a gate when
/// an `A`/`H` directive assumes they are enabling it (§2.6).
fn enabling_identity(kind: PrimKind) -> Value {
    match kind {
        PrimKind::And | PrimKind::Nand => Value::One,
        PrimKind::Or | PrimKind::Nor | PrimKind::Xor | PrimKind::Xnor => Value::Zero,
        // For CHG the quiescent value is the identity.
        _ => Value::Stable,
    }
}

fn gate_fold(kind: PrimKind, vals: &[Value]) -> Value {
    let base = match kind {
        PrimKind::And | PrimKind::Nand => scald_logic::and_all(vals.iter().copied()),
        PrimKind::Or | PrimKind::Nor => scald_logic::or_all(vals.iter().copied()),
        PrimKind::Xor | PrimKind::Xnor => scald_logic::xor_all(vals.iter().copied()),
        PrimKind::Chg => scald_logic::chg(vals.iter().copied()),
        _ => unreachable!("gate_fold on non-gate"),
    };
    match kind {
        PrimKind::Nand | PrimKind::Nor | PrimKind::Xnor => base.not(),
        _ => base,
    }
}

fn eval_gate<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    corner: DelayCorner,
) -> EvalOutcome {
    let pins: Vec<Pin> = prim
        .inputs
        .iter()
        .map(|c| prep_input(netlist, prim, c, states, true, corner))
        .collect();
    let hazard_inputs: Vec<usize> = pins
        .iter()
        .enumerate()
        .filter(|(_, p)| p.directive.is_some_and(Directive::checks_assertion))
        .map(|(i, _)| i)
        .collect();

    let period = netlist.config().timing.period;
    // Assume-enabling (§2.6): with an A/H input present, the other inputs
    // are replaced by the gate's identity so the output value is
    // determined only by the asserted (clock) input.
    let ident = SignalState::new(Waveform::constant(period, enabling_identity(prim.kind)));
    let participating: Vec<&SignalState> = if hazard_inputs.is_empty() {
        pins.iter().map(|p| &p.state).collect()
    } else {
        pins.iter()
            .enumerate()
            .map(|(i, p)| {
                if hazard_inputs.contains(&i) {
                    &p.state
                } else {
                    &ident
                }
            })
            .collect()
    };

    let mut out = combine_pins(&participating, |vals| gate_fold(prim.kind, vals));
    out.eval = output_eval(&pins);
    EvalOutcome {
        output: Some(out),
        hazard_inputs,
    }
}

fn eval_unary<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    corner: DelayCorner,
) -> EvalOutcome {
    // §4.2.2 extension: with asymmetric rise/fall delays the gate delay is
    // applied per output edge instead of uniformly.
    if let Some(ed) = prim.edge_delays {
        let ed = scald_netlist::EdgeDelays {
            rise: corner.collapse(ed.rise),
            fall: corner.collapse(ed.fall),
        };
        let pin = prep_input(netlist, prim, &prim.inputs[0], states, false, corner);
        let apply_gate = !pin.directive.is_some_and(Directive::zeroes_gate);
        let resolved = pin.state.resolved();
        let wave: WaveRef = match (prim.kind == PrimKind::Not, apply_gate) {
            (true, true) => delayed_per_edge(&resolved.map(Value::not), ed).into(),
            (true, false) => resolved.map(Value::not).into(),
            (false, true) => delayed_per_edge(&resolved, ed).into(),
            (false, false) => resolved,
        };
        return EvalOutcome {
            output: Some(SignalState {
                wave,
                skew: scald_wave::Skew::ZERO,
                eval: pin.tail.clone(),
            }),
            hazard_inputs: if pin.directive.is_some_and(Directive::checks_assertion) {
                vec![0]
            } else {
                Vec::new()
            },
        };
    }
    let pin = prep_input(netlist, prim, &prim.inputs[0], states, true, corner);
    let mut st = pin.state;
    if prim.kind == PrimKind::Not {
        st.wave = st.wave.map(Value::not).into();
    }
    st.eval = pin.tail.clone();
    EvalOutcome {
        output: Some(st),
        hazard_inputs: if pin.directive.is_some_and(Directive::checks_assertion) {
            vec![0]
        } else {
            Vec::new()
        },
    }
}

/// Applies per-edge propagation delays to an (output-polarity) waveform:
/// rising transitions are delayed by `ed.rise`, falling by `ed.fall`, and
/// polarity-unknown transitions by the conservative envelope (§4.2.2).
///
/// Each transition becomes an uncertainty window `[t + d.min, t + d.max)`
/// holding its edge value; the value between windows is that of the most
/// recently completed transition, with overlapping windows joined. Narrow
/// pulses whose opposite-edge delays reorder collapse conservatively into
/// `C` regions.
fn delayed_per_edge(wave: &Waveform, ed: scald_netlist::EdgeDelays) -> Waveform {
    if wave.is_constant() {
        return wave.clone();
    }
    let period = wave.period();
    let n = wave.transitions().len();
    // Choose each transition's delay range by output-edge polarity.
    let delays: Vec<DelayRange> = (0..n)
        .map(|i| {
            let (_, v_new) = wave.transitions()[i];
            let v_old = wave.transitions()[(i + n - 1) % n].1;
            match v_old.edge_to(v_new) {
                Value::Rise => ed.rise,
                Value::Fall => ed.fall,
                _ => ed.envelope(),
            }
        })
        .collect();
    // Soundness guard: the per-edge shift is only exact while output
    // events keep the input order. A pulse narrower than the opposite
    // edges' delay difference reorders (is swallowed or glitches); fall
    // back to the uniform envelope then — still the "correct choice" the
    // thesis prescribes for the value-unknown case.
    for i in 0..n {
        let prev = (i + n - 1) % n;
        let gap = (wave.transitions()[i].0 - wave.transitions()[prev].0).rem_period(period);
        if gap + delays[i].min < delays[prev].max {
            let env = ed.envelope();
            return wave
                .delayed(env.min)
                .with_skew_applied(scald_wave::Skew::new(Time::ZERO, env.spread()));
        }
    }
    // Per transition: (window span, edge value, settled value, window end).
    let mut events = Vec::with_capacity(n);
    for (i, &(t, v_new)) in wave.transitions().iter().enumerate() {
        let v_old = wave.transitions()[(i + n - 1) % n].1;
        let d = delays[i];
        let start = (t + d.min).rem_period(period);
        let width = d.spread();
        events.push((
            Span::new(start, width, period),
            v_old.edge_to(v_new),
            v_new,
            (t + d.max).rem_period(period),
        ));
    }
    let mut bounds: Vec<Time> = events
        .iter()
        .flat_map(|(span, _, _, end)| [span.start(), *end])
        .collect();
    bounds.sort();
    bounds.dedup();
    let trans = bounds
        .into_iter()
        .map(|b| {
            // Base: the settled value of the most recently completed
            // transition (smallest circular distance back from b).
            let base = events
                .iter()
                .min_by_key(|(_, _, _, end)| (b - *end).rem_period(period))
                .map(|(_, _, v, _)| *v)
                .expect("non-constant wave has transitions");
            let mut v = base;
            for (span, edge, _, _) in &events {
                if span.contains(b, period) && !span.is_empty() {
                    v = v.join(*edge);
                }
            }
            (b, v)
        })
        .collect();
    Waveform::from_transitions(period, trans)
}

fn eval_mux<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    corner: DelayCorner,
) -> EvalOutcome {
    let pins: Vec<Pin> = prim
        .inputs
        .iter()
        .map(|c| prep_input(netlist, prim, c, states, true, corner))
        .collect();
    let select = &pins[0].state;
    // A constant known select routes one data input straight through,
    // preserving its separated skew — this is what makes case analysis
    // (mapping a STABLE select to 0 or 1, §2.7) recover tight timing.
    let routed = match (select.wave.is_constant(), select.wave.value_at(Time::ZERO)) {
        (true, Value::Zero) => Some(1),
        (true, Value::One) => Some(2),
        _ => None,
    };
    let mut out = match routed {
        Some(idx) if idx < pins.len() => pins[idx].state.clone(),
        _ => {
            let parts: Vec<&SignalState> = pins.iter().map(|p| &p.state).collect();
            combine_pins(&parts, |vals| mux_value(vals[0], &vals[1..]))
        }
    };
    out.eval = output_eval(&pins);
    EvalOutcome {
        output: Some(out),
        hazard_inputs: pins
            .iter()
            .enumerate()
            .filter(|(_, p)| p.directive.is_some_and(Directive::checks_assertion))
            .map(|(i, _)| i)
            .collect(),
    }
}

/// Joins the values a waveform takes over a (possibly zero-width) window.
fn sample_window(wave: &Waveform, w: Span) -> Value {
    if w.is_empty() {
        return wave.value_at(w.start());
    }
    let period = wave.period();
    let mut acc: Option<Value> = None;
    for (a, b) in w.linear_pieces(period) {
        for (t, v, width) in wave.segments() {
            if t < b && a < t + width {
                acc = Some(acc.map_or(v, |x| x.join(v)));
            }
        }
    }
    acc.unwrap_or_else(|| wave.value_at(w.start()))
}

/// What a storage element latches from the sampled data value: a known
/// constant passes through; anything else — including `U` — becomes `S`
/// for the rest of the cycle, exactly as §2.4.3 specifies ("unless the
/// DATA input is a true or false during the rising edge of CLOCK, the
/// output will be set to the STABLE value"). A register holds *some*
/// steady level once clocked, which is all that matters for timing; the
/// set-up checker reports sampling of changing data separately. Mapping
/// `U` to `S` here is also what lets register feedback loops (counters,
/// shift registers, §4.2.3) settle instead of sticking at `U`.
fn latched_value(sampled: Value) -> Value {
    match sampled {
        Value::Zero | Value::One => sampled,
        _ => Value::Stable,
    }
}

fn eval_reg<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    set_reset: bool,
    corner: DelayCorner,
) -> EvalOutcome {
    let period = netlist.config().timing.period;
    let delay = corner.collapse(prim.delay);
    // Clock and data are observed at the pins (wire delay only); the
    // register's own delay is applied from the clock edge to the output.
    let ck_pin = prep_input(netlist, prim, &prim.inputs[0], states, false, corner);
    let d_pin = prep_input(netlist, prim, &prim.inputs[1], states, false, corner);
    let ck = ck_pin.state.resolved();
    let dd = d_pin.state.resolved();

    let edges = edge_windows(&ck, Edge::Rising);
    let clocked = if edges.is_empty() {
        let v = if ck.transitions().iter().any(|&(_, v)| v == Value::Unknown) {
            Value::Unknown
        } else {
            Value::Stable
        };
        Waveform::constant(period, v)
    } else {
        let spread = delay.spread();
        // Output value regions: from the end of each change span until the
        // start of the next, the output holds what that edge latched.
        let change_spans: Vec<Span> = edges
            .iter()
            .map(|e| Span::new(e.span.start() + delay.min, e.span.width() + spread, period))
            .collect();
        let sampled: Vec<Value> = edges
            .iter()
            .map(|e| latched_value(sample_window(&dd, e.span)))
            .collect();
        let mut wave = Waveform::from_transitions(
            period,
            change_spans
                .iter()
                .zip(&sampled)
                .map(|(c, &v)| (c.end(period), v))
                .collect(),
        );
        for c in &change_spans {
            if !c.is_empty() {
                wave = wave.overwrite(*c, Value::Change);
            }
        }
        wave
    };

    let wave = if set_reset {
        let s = prep_input(netlist, prim, &prim.inputs[2], states, true, corner)
            .state
            .resolved();
        let r = prep_input(netlist, prim, &prim.inputs[3], states, true, corner)
            .state
            .resolved();
        overlay_set_reset(&clocked, &s, &r)
    } else {
        clocked
    };

    EvalOutcome {
        output: Some(SignalState::new(wave)),
        hazard_inputs: Vec::new(),
    }
}

/// Asynchronous SET/RESET overlay shared by registers and latches
/// (§2.4.3).
fn overlay_set_reset(base: &Waveform, set: &Waveform, reset: &Waveform) -> Waveform {
    Waveform::combine_many(&[set, reset, base], |vals| {
        let (s, r, b) = (vals[0], vals[1], vals[2]);
        use Value::*;
        match (s, r) {
            (Unknown, _) | (_, Unknown) => Unknown,
            _ if s.is_transitioning() || r.is_transitioning() => Change,
            (One, Zero) => One,
            (Zero, One) => Zero,
            (One, One) => Unknown,
            (Zero, Zero) => b,
            // At least one side is S (steady, level unknown): the output
            // is forced-or-clocked but not changing, unless the clocked
            // value itself is in flux.
            _ => match b {
                Unknown => Unknown,
                Change | Rise | Fall => Change,
                _ => Stable,
            },
        }
    })
}

/// The fully resolved waveform seen at a primitive's input pin: inversion
/// applied, wire delay (subject to `W`/`Z`/`H` zeroing) folded, skew
/// resolved. Set-up/hold checkers observe their inputs through this view.
pub(crate) fn pin_wave<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    conn: &Conn,
    states: &S,
    corner: DelayCorner,
) -> WaveRef {
    prep_input(netlist, prim, conn, states, false, corner)
        .state
        .resolved()
}

/// The *unresolved* pin waveform: wire delay applied as a shift, skew kept
/// separate. The minimum-pulse-width checker measures pulses on this view,
/// because skew displaces both edges of a pulse equally and must not
/// narrow it — the precise reason §2.8 separates skew from the value list
/// ("to avoid incorrect assertions ... that minimum pulse width
/// requirements have not been met").
pub(crate) fn pin_wave_pulse_view<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    conn: &Conn,
    states: &S,
    corner: DelayCorner,
) -> WaveRef {
    prep_input(netlist, prim, conn, states, false, corner)
        .state
        .wave
}

fn eval_latch<S: StateView + ?Sized>(
    netlist: &Netlist,
    prim: &Primitive,
    states: &S,
    set_reset: bool,
    corner: DelayCorner,
) -> EvalOutcome {
    let period = netlist.config().timing.period;
    // The latch's propagation delay applies from every input (§2.4.3), so
    // both enable and data are viewed after wire + latch delay.
    let en = prep_input(netlist, prim, &prim.inputs[0], states, true, corner)
        .state
        .resolved();
    let dd = prep_input(netlist, prim, &prim.inputs[1], states, true, corner)
        .state
        .resolved();

    // Held values: sampled at each falling (closing) edge of the enable.
    let falls = edge_windows(&en, Edge::Falling);
    let held: Vec<(Time, Value)> = falls
        .iter()
        .map(|f| {
            (
                f.span.end(period),
                latched_value(sample_window(&dd, f.span)),
            )
        })
        .collect();
    let held_at = |t: Time| -> Value {
        if held.is_empty() {
            return Value::Stable;
        }
        // Most recent closing at or before t, circularly.
        held.iter()
            .filter(|&&(ht, _)| ht <= t)
            .max_by_key(|&&(ht, _)| ht)
            .or_else(|| held.iter().max_by_key(|&&(ht, _)| ht))
            .map(|&(_, v)| v)
            .expect("held is non-empty")
    };

    let mut bounds: Vec<Time> = en
        .transitions()
        .iter()
        .chain(dd.transitions())
        .map(|&(t, _)| t)
        .chain(held.iter().map(|&(t, _)| t))
        .collect();
    bounds.sort();
    bounds.dedup();
    if bounds.is_empty() {
        bounds.push(Time::ZERO);
    }
    let trans: Vec<(Time, Value)> = bounds
        .into_iter()
        .map(|t| {
            let e = en.value_at(t);
            let v = dd.value_at(t);
            let h = held_at(t);
            let out = match e {
                Value::One => v,
                Value::Zero => h,
                Value::Unknown => Value::Unknown,
                Value::Stable => {
                    if v == h {
                        v
                    } else {
                        v.join(h)
                    }
                }
                // Closing (enable falling): the held value is sampled from
                // this very instant's data, so quiescent data passes
                // through without a transition — only changing data can
                // glitch the output while the latch closes.
                Value::Fall => match v {
                    Value::Unknown => Value::Unknown,
                    Value::Zero | Value::One => v,
                    Value::Stable => Value::Stable,
                    _ => Value::Change,
                },
                // Opening (or ambiguous): the previously held value and the
                // incoming data may differ, so only identical known
                // constants are guaranteed transition-free.
                Value::Rise | Value::Change => {
                    if v == h && v.is_constant() {
                        v
                    } else if v == Value::Unknown || h == Value::Unknown {
                        Value::Unknown
                    } else {
                        Value::Change
                    }
                }
            };
            (t, out)
        })
        .collect();
    let transparent = Waveform::from_transitions(period, trans);

    let wave = if set_reset {
        let s = prep_input(netlist, prim, &prim.inputs[2], states, true, corner)
            .state
            .resolved();
        let r = prep_input(netlist, prim, &prim.inputs[3], states, true, corner)
            .state
            .resolved();
        overlay_set_reset(&transparent, &s, &r)
    } else {
        transparent
    };

    EvalOutcome {
        output: Some(SignalState::new(wave)),
        hazard_inputs: Vec::new(),
    }
}
