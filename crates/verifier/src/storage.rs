//! Storage accounting in the five categories of Table 3-3.
//!
//! The thesis reports the memory the Timing Verifier's data structures
//! required for the 6357-chip example: circuit description (37.8%), signal
//! values, signal names (11.6%), string space (10.6%), the CALL LIST ARRAY
//! (6.9%) and miscellaneous (0.7%), with an average of 2.97 value records
//! per signal. This module measures the same categories for any design,
//! using the thesis' storage model (the S-1 Mark I PASCAL compiler did not
//! pack records: four bytes per field, one byte per char/boolean) so the
//! *percentages* are directly comparable.

use scald_netlist::Netlist;
use std::fmt;

use crate::view::StateView;

/// Bytes per unpacked PASCAL field on the S-1 Mark I (§3.3.2).
const FIELD: usize = 4;

/// Measured storage by Table 3-3 category, in 1980-model bytes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StorageReport {
    /// Circuit description: one record per primitive plus its parameter
    /// connections (the thesis measured ~260 bytes per primitive).
    pub circuit_description: usize,
    /// Signal values: a VALUE BASE record per signal plus its VALUE
    /// records (Fig 2-7).
    pub signal_values: usize,
    /// Signal name table: per-signal descriptors pointing at values,
    /// drivers and users.
    pub signal_names: usize,
    /// String space: the text of all signal and primitive names.
    pub string_space: usize,
    /// The CALL LIST ARRAY: which primitives to re-evaluate per signal.
    pub call_list: usize,
    /// Everything else (fixed overhead).
    pub miscellaneous: usize,
    /// Total value records across all signals.
    pub value_records: usize,
    /// Number of signals, for the records-per-signal average.
    pub signal_count: usize,
}

impl StorageReport {
    /// Measures a settled verifier's structures.
    #[must_use]
    pub(crate) fn measure<S: StateView + ?Sized>(netlist: &Netlist, states: &S) -> StorageReport {
        // Circuit description: a primitive header (kind, delay min/max,
        // output pointer, name pointer, width — 8 fields) plus a parameter
        // record per connection (signal pointer, flags, directive pointer,
        // wire delay pair — 6 fields).
        let circuit_description: usize = netlist
            .prims()
            .iter()
            .map(|p| 8 * FIELD + p.inputs.len() * 6 * FIELD)
            .sum();

        // Signal values: VALUE BASE record (free-storage link, skew,
        // eval-string pointer, value-list pointer — 4 fields) plus a VALUE
        // record (value, width — 2 fields) per run-length node.
        let mut signal_values = 0usize;
        let mut value_records = 0usize;
        for i in 0..netlist.signals().len() {
            let records = states.state_at(i).value_records();
            value_records += records;
            signal_values += 4 * FIELD + records * 2 * FIELD;
        }

        // Signal names: per signal, pointers to the value definition, the
        // defining primitive and the user list, plus width/assertion
        // descriptors (6 fields).
        let signal_names = netlist.signals().len() * 6 * FIELD;

        // String space: the actual name text.
        let string_space: usize = netlist
            .signals()
            .iter()
            .map(|s| s.full_name().len())
            .sum::<usize>()
            + netlist.prims().iter().map(|p| p.name.len()).sum::<usize>();

        // CALL LIST ARRAY: one pointer per (signal, using primitive) pair.
        let call_list: usize = netlist
            .iter_signals()
            .map(|(sid, _)| netlist.fanout(sid).len() * FIELD)
            .sum();

        // Miscellaneous fixed structures (queues, configuration, roots).
        let miscellaneous = 2048;

        StorageReport {
            circuit_description,
            signal_values,
            signal_names,
            string_space,
            call_list,
            miscellaneous,
            value_records,
            signal_count: netlist.signals().len(),
        }
    }

    /// Total bytes across all categories.
    #[must_use]
    pub fn total(&self) -> usize {
        self.circuit_description
            + self.signal_values
            + self.signal_names
            + self.string_space
            + self.call_list
            + self.miscellaneous
    }

    /// Average value records per signal (the thesis measured 2.97).
    #[must_use]
    pub fn value_records_per_signal(&self) -> f64 {
        if self.signal_count == 0 {
            0.0
        } else {
            self.value_records as f64 / self.signal_count as f64
        }
    }

    /// The rows of Table 3-3: `(category, bytes, percent)`.
    #[must_use]
    pub fn rows(&self) -> Vec<(&'static str, usize, f64)> {
        let total = self.total().max(1) as f64;
        let pct = |b: usize| 100.0 * b as f64 / total;
        vec![
            (
                "CIRCUIT DESCRIPTION",
                self.circuit_description,
                pct(self.circuit_description),
            ),
            ("SIGNAL VALUES", self.signal_values, pct(self.signal_values)),
            ("SIGNAL NAMES", self.signal_names, pct(self.signal_names)),
            ("STRING SPACE", self.string_space, pct(self.string_space)),
            ("CALL LIST ARRAY", self.call_list, pct(self.call_list)),
            ("MISCELLANEOUS", self.miscellaneous, pct(self.miscellaneous)),
        ]
    }
}

impl fmt::Display for StorageReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{:<22} {:>12} {:>8}", "STORAGE AREA", "BYTES", "PERCENT")?;
        for (name, bytes, pct) in self.rows() {
            writeln!(f, "{name:<22} {bytes:>12} {pct:>7.1}%")?;
        }
        writeln!(f, "{:<22} {:>12} {:>8}", "TOTAL", self.total(), "100.0%")?;
        write!(
            f,
            "value records per signal: {:.2}",
            self.value_records_per_signal()
        )
    }
}
